#ifndef MACE_KERNEL_FUSED_PLAN_H_
#define MACE_KERNEL_FUSED_PLAN_H_

#include <cstddef>
#include <new>
#include <vector>

namespace mace::kernel {

/// Minimal 64-byte-aligned allocator for the packed SIMD panels. Panel
/// rows are padded to 8-lane multiples, so a cache-line-aligned base
/// keeps every full-vector load inside one line; a plain vector's
/// 16-byte base makes most 64-byte loads span two lines, which measures
/// ~1.7x slower on the panel sweeps.
template <class T>
struct Aligned64Allocator {
  using value_type = T;
  Aligned64Allocator() noexcept = default;
  template <class U>
  Aligned64Allocator(const Aligned64Allocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{64});
  }
  template <class U>
  bool operator==(const Aligned64Allocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const Aligned64Allocator<U>&) const noexcept {
    return false;
  }
};

/// Cache-line-aligned double buffer used for every packed panel.
using AlignedVec = std::vector<double, Aligned64Allocator<double>>;

/// Which arm of the fused scoring kernel executes a call.
enum class Backend {
  kAuto,    ///< runtime dispatch: SIMD when the CPU supports it
  kScalar,  ///< the scalar reference arm (bit-identical to the op graph)
  kSimd     ///< the AVX2/FMA arm (pinned-tolerance equivalent)
};

/// \brief Model-wide weights and dimensions of the fused scoring kernel,
/// packed once at model-load time (Fit commit or deserialization).
///
/// Plain data on purpose: the kernel unit sits below core and knows
/// nothing about tensors, layers or configs — core's plan builder copies
/// the learned weights in, then FinalizeModelPlan() derives the padded
/// SIMD panels. Raw fields keep the op-graph layouts so the scalar arm
/// walks them in the exact arithmetic order of the tensor ops.
struct FusedModelPlan {
  // -- Dimensions ---------------------------------------------------------
  int features = 0;   ///< m, feature rows per window
  int window = 0;     ///< T, time steps per window
  int num_bases = 0;  ///< k, amplitude columns (coefficient columns / 2)

  // -- Stage 1: dualistic time amplification ------------------------------
  bool amplify = false;
  int time_kernel = 1;
  double gamma_t = 1.0;
  double sigma_t = 1.0;

  // -- Stage 2: spectrum ---------------------------------------------------
  /// MaceModel::kSpectrumEpsilon, copied in by the plan builder so the
  /// kernel unit needs no core dependency.
  double spectrum_epsilon = 1e-8;

  // -- Frequency characterization (3-channel pointwise conv, residual) ----
  bool has_char = false;
  int char_channels = 0;          ///< C
  std::vector<double> char_w1;    ///< [C][3] pointwise conv 3 -> C
  std::vector<double> char_b1;    ///< [C]
  std::vector<double> char_w2;    ///< [C] pointwise conv C -> 1
  double char_b2 = 0.0;

  // -- Stage 3: autoencoder ----------------------------------------------
  bool dualistic_encoders = false;
  double gamma_f = 1.0;
  double sigma_f = 1.0;
  double inv_sigma_f = 1.0;  ///< the exact 1.0 / sigma_f double MulScalar uses
  int freq_kernel = 1;
  int freq_stride = 1;
  int hidden_channels = 0;  ///< h, encoder output channels
  int compressed = 0;       ///< encoder output length per channel
  int latent = 0;           ///< h * compressed
  int decoder_hidden = 0;   ///< 2 * latent

  struct Branch {
    std::vector<double> enc_w;   ///< [h][m][freq_kernel], conv layout
    std::vector<double> enc_b;   ///< [h] (plain-conv ablation; else empty)
    std::vector<double> dec_w1;  ///< [latent][decoder_hidden], row-major
    std::vector<double> dec_b1;  ///< [decoder_hidden]
    std::vector<double> dec_w2;  ///< [decoder_hidden][m * k], row-major
    std::vector<double> dec_b2;  ///< [m * k]

    // SIMD panels (FinalizeModelPlan): rows padded to 4-column multiples,
    // encoder weights re-packed filter-fastest for broadcast-FMA loops.
    AlignedVec enc_w_packed;   ///< [m][freq_kernel][h_pad]
    AlignedVec enc_b_packed;   ///< [h_pad] (zeros when no bias)
    AlignedVec dec_w1_packed;  ///< [latent][hidden_pad]
    AlignedVec dec_b1_packed;  ///< [hidden_pad]
    AlignedVec dec_w2_packed;  ///< [decoder_hidden][flat_pad]
    AlignedVec dec_b2_packed;  ///< [flat_pad]
  };
  Branch peak;
  Branch valley;

  // -- Padded SIMD dimensions (FinalizeModelPlan). Extents round up to
  // 8-lane (AVX-512) multiples; the AVX2 arm consumes the same panels
  // four lanes at a time. -------------------------------------------------
  int window_pad = 0;  ///< T rounded up to a multiple of 8
  int cols_pad = 0;    ///< 2k rounded up
  int flat_pad = 0;    ///< m * k rounded up
  int hidden_pad = 0;  ///< decoder_hidden rounded up
  int h_pad = 0;       ///< hidden_channels rounded up

  bool valid = false;
};

/// \brief Per-service fixed transforms of the fused kernel: the
/// context-aware DFT/IDFT as packed row-major panels plus the frequency
/// markers, with lane-padded copies for the SIMD arms.
struct FusedServicePlan {
  std::vector<double> forward;     ///< F^T, [T][2k] row-major
  std::vector<double> inverse;     ///< G^T, [2k][T] row-major
  std::vector<double> marker_sin;  ///< [k]
  std::vector<double> marker_cos;  ///< [k]

  // SIMD panels (FinalizeServicePlan).
  AlignedVec forward_padded;   ///< [T][cols_pad]
  AlignedVec inverse_padded;   ///< [2k][window_pad]
  AlignedVec marker_sin_flat;  ///< [flat_pad], repeated per feature
  AlignedVec marker_cos_flat;  ///< [flat_pad]

  bool valid = false;
};

/// Derives the padded SIMD panels of a plan whose raw fields are filled,
/// and marks it valid. Idempotent.
void FinalizeModelPlan(FusedModelPlan* plan);

/// Same for a service plan; `model` must already be finalized.
void FinalizeServicePlan(const FusedModelPlan& model, FusedServicePlan* plan);

}  // namespace mace::kernel

#endif  // MACE_KERNEL_FUSED_PLAN_H_
