#include "kernel/fused_kernel.h"

#include "common/check.h"
#include "kernel/kernel_arms.h"

namespace mace::kernel {

bool SimdSupported() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported =
      internal::Avx2ArmCompiled() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

namespace {

/// Whether the kSimd resolution may take the AVX-512 tier. The 512-bit
/// arm computes the same bits as the AVX2 arm, so this is purely a
/// throughput upgrade inside Backend::kSimd, not a distinct backend.
bool Avx512Supported() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = internal::Avx512ArmCompiled() &&
                                __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512dq");
  return supported;
#else
  return false;
#endif
}

}  // namespace

Backend ResolveBackend(Backend requested) {
  switch (requested) {
    case Backend::kScalar:
      return Backend::kScalar;
    case Backend::kSimd:
    case Backend::kAuto:
      return SimdSupported() ? Backend::kSimd : Backend::kScalar;
  }
  return Backend::kScalar;
}

void ScoreWindows(const FusedModelPlan& model, const FusedServicePlan& service,
                  const double* windows, int batch, double* step_errors,
                  Backend backend) {
  MACE_CHECK(model.valid && service.valid)
      << "ScoreWindows on unfinalized plans";
  MACE_CHECK(windows != nullptr && step_errors != nullptr);
  MACE_CHECK(batch >= 1);
  if (ResolveBackend(backend) == Backend::kSimd) {
    if (Avx512Supported()) {
      internal::ScoreWindowsAvx512(model, service, windows, batch,
                                   step_errors);
    } else {
      internal::ScoreWindowsAvx2(model, service, windows, batch,
                                 step_errors);
    }
  } else {
    internal::ScoreWindowsScalar(model, service, windows, batch, step_errors);
  }
}

}  // namespace mace::kernel
