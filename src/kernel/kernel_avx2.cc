// The AVX2/FMA arm of the fused scoring kernel.
//
// Same pipeline as the scalar arm, but with 4-lane double vectors, FMA
// panels over the padded plan layouts, and polynomial vector
// transcendentals (exp2 / log2 based pow, tanh). Accumulation orders and
// contraction differ from the op graph, so this arm matches to the
// pinned tolerance documented in tests/score_fastpath_test.cc rather
// than bit-identically. Per-window arithmetic never depends on the batch
// size or on neighbouring windows, so batch calls equal repeated
// single-window calls bit for bit on this arm too.
//
// Tail discipline: every padded buffer comes from one zero-filled
// scratch block; tail lanes only ever hold zeros or deterministic
// finite functions of zeros, and no tail value ever feeds a lane that
// survives to the output. See the per-stage notes.
//
// When the compiler cannot target AVX2+FMA this translation unit
// degrades to a forwarder onto the scalar arm (Avx2ArmCompiled() tells
// the dispatcher).

#include "kernel/kernel_arms.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mace::kernel::internal {

namespace {

// ---------------------------------------------------------------------------
// Vector math
// ---------------------------------------------------------------------------

inline __m256d Fma(__m256d a, __m256d b, __m256d c) {
  return _mm256_fmadd_pd(a, b, c);
}

/// 2^n for integer-valued n with n + 1023 in [1, 2046], via direct
/// exponent-bit construction.
inline __m256d Pow2Int(__m256d n) {
  const __m128i ni = _mm256_cvtpd_epi32(n);
  const __m256i wide = _mm256_cvtepi32_epi64(ni);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(wide, _mm256_set1_epi64x(1023)), 52);
  return _mm256_castsi256_pd(bits);
}

/// 2^y with y clamped to [-1100, 1100]: split off the nearest integer n,
/// exp(f * ln2) by a 13-term Taylor Horner (|f| <= 0.5 so |z| <= 0.347),
/// then scale by 2^n in two halves so each half's exponent stays in the
/// normal range (the second scaling rounds denormal results once).
inline __m256d Exp2Pd(__m256d y) {
  y = _mm256_max_pd(_mm256_set1_pd(-1100.0),
                    _mm256_min_pd(_mm256_set1_pd(1100.0), y));
  const __m256d n =
      _mm256_round_pd(y, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d f = _mm256_sub_pd(y, n);
  const __m256d z = _mm256_mul_pd(f, _mm256_set1_pd(0.6931471805599453));
  __m256d p = _mm256_set1_pd(1.0 / 479001600.0);  // 1/12!
  p = Fma(p, z, _mm256_set1_pd(1.0 / 39916800.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 3628800.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 362880.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 40320.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 5040.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 720.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 120.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 24.0));
  p = Fma(p, z, _mm256_set1_pd(1.0 / 6.0));
  p = Fma(p, z, _mm256_set1_pd(0.5));
  p = Fma(p, z, _mm256_set1_pd(1.0));
  p = Fma(p, z, _mm256_set1_pd(1.0));
  const __m256d n1 = _mm256_floor_pd(_mm256_mul_pd(n, _mm256_set1_pd(0.5)));
  const __m256d n2 = _mm256_sub_pd(n, n1);
  return _mm256_mul_pd(_mm256_mul_pd(p, Pow2Int(n1)), Pow2Int(n2));
}

/// log2(x) for finite x > 0 (x == 0 lanes produce a finite garbage value
/// the callers mask off). Denormals are pre-scaled into the normal range;
/// the mantissa is reduced to [sqrt(2)/2, sqrt(2)] and log'd via the
/// atanh series in t = (m-1)/(m+1) up to t^19.
inline __m256d Log2Pd(__m256d x) {
  const __m256d tiny = _mm256_cmp_pd(
      x, _mm256_set1_pd(2.2250738585072014e-308), _CMP_LT_OQ);
  x = _mm256_blendv_pd(x, _mm256_mul_pd(x, _mm256_set1_pd(0x1p54)), tiny);
  const __m256d ebias = _mm256_and_pd(tiny, _mm256_set1_pd(54.0));

  const __m256i bits = _mm256_castpd_si256(x);
  const __m256i expi = _mm256_srli_epi64(bits, 52);
  // Biased exponent to double via the 2^52 magic-number trick.
  const __m256i emagic =
      _mm256_or_si256(expi, _mm256_castpd_si256(_mm256_set1_pd(0x1p52)));
  __m256d e = _mm256_sub_pd(_mm256_castsi256_pd(emagic),
                            _mm256_set1_pd(0x1p52 + 1023.0));
  const __m256i mbits = _mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
      _mm256_castpd_si256(_mm256_set1_pd(1.0)));
  __m256d m = _mm256_castsi256_pd(mbits);
  const __m256d big =
      _mm256_cmp_pd(m, _mm256_set1_pd(1.4142135623730951), _CMP_GT_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), big);
  e = _mm256_add_pd(e, _mm256_and_pd(big, _mm256_set1_pd(1.0)));

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d t =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d u = _mm256_mul_pd(t, t);
  __m256d s = _mm256_set1_pd(1.0 / 19.0);
  s = Fma(s, u, _mm256_set1_pd(1.0 / 17.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 15.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 13.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 11.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 9.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 7.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 5.0));
  s = Fma(s, u, _mm256_set1_pd(1.0 / 3.0));
  s = Fma(s, u, one);
  // log2(m) = 2 * atanh(t) * log2(e)
  const __m256d log2m = _mm256_mul_pd(
      _mm256_mul_pd(t, s), _mm256_set1_pd(2.8853900817779268));
  return _mm256_sub_pd(_mm256_add_pd(e, log2m), ebias);
}

/// x^p for x >= 0 (p > 0): exp2(log2(x) * p), with x == 0 forced to 0.
inline __m256d PowPd(__m256d x, __m256d p) {
  const __m256d r = Exp2Pd(_mm256_mul_pd(Log2Pd(x), p));
  const __m256d zero = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_EQ_OQ);
  return _mm256_andnot_pd(zero, r);
}

/// tanh(x) = sign(x) * (1 - 2 / (exp(2|x|) + 1)); saturates correctly
/// because Exp2Pd overflows to +inf for large arguments.
inline __m256d TanhPd(__m256d x) {
  const __m256d mzero = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, mzero);
  const __m256d ax = _mm256_andnot_pd(mzero, x);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e =
      Exp2Pd(_mm256_mul_pd(ax, _mm256_set1_pd(2.0 * 1.4426950408889634)));
  const __m256d r = _mm256_sub_pd(
      one, _mm256_div_pd(_mm256_set1_pd(2.0), _mm256_add_pd(e, one)));
  return _mm256_or_pd(r, sign);
}

/// SignedPow exponent, resolved once per call: small integer exponents
/// run the scalar arm's exact multiply chain per lane (bit-identical
/// magnitudes), anything else goes through PowPd.
struct PowSpec {
  bool is_int;
  int ip;
  double power;
};

inline PowSpec MakePowSpec(double power) {
  const int ip = static_cast<int>(power);
  return {power == static_cast<double>(ip) && ip >= 0 && ip <= 32, ip,
          power};
}

inline __m256d SignedPowPd(__m256d x, const PowSpec& spec) {
  const __m256d mzero = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, mzero);
  const __m256d ax = _mm256_andnot_pd(mzero, x);
  __m256d mag;
  if (spec.is_int) {
    mag = _mm256_set1_pd(1.0);
    __m256d base = ax;
    for (int e = spec.ip; e > 0; e >>= 1) {
      if (e & 1) mag = _mm256_mul_pd(mag, base);
      base = _mm256_mul_pd(base, base);
    }
  } else {
    mag = PowPd(ax, _mm256_set1_pd(spec.power));
  }
  return _mm256_or_pd(mag, sign);
}

inline __m256d SignedRootPd(__m256d x, __m256d inv_power) {
  const __m256d mzero = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, mzero);
  const __m256d ax = _mm256_andnot_pd(mzero, x);
  return _mm256_or_pd(PowPd(ax, inv_power), sign);
}

inline double HorizontalMax(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d mx = _mm_max_pd(lo, hi);
  mx = _mm_max_sd(mx, _mm_unpackhi_pd(mx, mx));
  return _mm_cvtsd_f64(mx);
}

/// Max of |buf[i]| over a 4-padded range whose tail lanes are known
/// finite (zeros never raise the max since |x| >= 0).
inline double MaxAbsPadded(const double* buf, int n_pad) {
  const __m256d mzero = _mm256_set1_pd(-0.0);
  __m256d mx = _mm256_setzero_pd();
  for (int i = 0; i < n_pad; i += 4) {
    mx = _mm256_max_pd(mx,
                       _mm256_andnot_pd(mzero, _mm256_loadu_pd(buf + i)));
  }
  return HorizontalMax(mx);
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

struct Scratch {
  double* ampw;        ///< [m][T_pad] amplified window rows
  double* padded;      ///< [P4(pn) + 4] edge-replicated row, zero tails
  double* terms;       ///< [P4(pn) + 4] power terms, zero margin
  double* conv_a;      ///< [T_pad]
  double* conv_b;      ///< [T_pad]
  double* coeffs;      ///< [m][cols_pad]
  double* amp;         ///< [flat_pad]
  double* phase_re;    ///< [flat_pad]
  double* phase_im;    ///< [flat_pad]
  double* rep;         ///< [flat_pad]
  double* powered;     ///< [flat_pad]
  double* enc_taps;    ///< [m * freq_kernel] gathered encoder window taps
  double* enc_taps2;   ///< [m * freq_kernel] taps of the paired position
  double* latent_acc;  ///< [h_pad] per-position filter accumulator
  double* latent_acc2;  ///< [h_pad] accumulator of the paired position
  double* latent;      ///< [P4(latent)]
  double* hidden;      ///< [hidden_pad]
  double* amp_dec;     ///< [flat_pad]
  double* rec;         ///< [m][2k]
  double* time;        ///< [T_pad]
  double* err;         ///< [m][T_pad]
  double* step_acc;    ///< [T_pad]
};

/// out[0..n_pad) = bias (zeros when null) + sum_kk a[kk] * w[kk][.],
/// where w is a packed [kn][n_pad] panel. Per-column accumulation stays
/// kk-ascending (same order as the op-graph MatMul), but the accumulator
/// vectors live in registers across the whole kk loop — tiled 16, 8,
/// then 4 columns wide — instead of round-tripping through memory per
/// step, which is what makes the panel FMA throughput- rather than
/// store-forward-bound.
void BroadcastFmaPanelAvx(const double* a, int kn, const double* w,
                          int n_pad, const double* bias, double* out) {
  int v = 0;
  for (; v + 16 <= n_pad; v += 16) {
    __m256d acc0, acc1, acc2, acc3;
    if (bias != nullptr) {
      acc0 = _mm256_loadu_pd(bias + v);
      acc1 = _mm256_loadu_pd(bias + v + 4);
      acc2 = _mm256_loadu_pd(bias + v + 8);
      acc3 = _mm256_loadu_pd(bias + v + 12);
    } else {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_pd();
    }
    const double* wp = w + v;
    for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
      const __m256d av = _mm256_set1_pd(a[kk]);
      acc0 = Fma(av, _mm256_loadu_pd(wp), acc0);
      acc1 = Fma(av, _mm256_loadu_pd(wp + 4), acc1);
      acc2 = Fma(av, _mm256_loadu_pd(wp + 8), acc2);
      acc3 = Fma(av, _mm256_loadu_pd(wp + 12), acc3);
    }
    _mm256_storeu_pd(out + v, acc0);
    _mm256_storeu_pd(out + v + 4, acc1);
    _mm256_storeu_pd(out + v + 8, acc2);
    _mm256_storeu_pd(out + v + 12, acc3);
  }
  if (v + 8 <= n_pad) {
    __m256d acc0, acc1;
    if (bias != nullptr) {
      acc0 = _mm256_loadu_pd(bias + v);
      acc1 = _mm256_loadu_pd(bias + v + 4);
    } else {
      acc0 = acc1 = _mm256_setzero_pd();
    }
    const double* wp = w + v;
    for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
      const __m256d av = _mm256_set1_pd(a[kk]);
      acc0 = Fma(av, _mm256_loadu_pd(wp), acc0);
      acc1 = Fma(av, _mm256_loadu_pd(wp + 4), acc1);
    }
    _mm256_storeu_pd(out + v, acc0);
    _mm256_storeu_pd(out + v + 4, acc1);
    v += 8;
  }
  if (v < n_pad) {
    __m256d acc =
        bias != nullptr ? _mm256_loadu_pd(bias + v) : _mm256_setzero_pd();
    const double* wp = w + v;
    for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
      acc = Fma(_mm256_set1_pd(a[kk]), _mm256_loadu_pd(wp), acc);
    }
    _mm256_storeu_pd(out + v, acc);
  }
}

/// Two independent activation rows against one weight panel. Each output
/// keeps the exact per-column kk-ascending accumulation of
/// BroadcastFmaPanelAvx — the weight row is just loaded once for both
/// accumulator chains, which matters when n_pad is only a vector or two
/// and one chain alone would serialize on FMA latency.
void DualBroadcastFmaPanelAvx(const double* a0, const double* a1, int kn,
                              const double* w, int n_pad, const double* bias,
                              double* out0, double* out1) {
  for (int v = 0; v < n_pad; v += 4) {
    __m256d acc0 =
        bias != nullptr ? _mm256_loadu_pd(bias + v) : _mm256_setzero_pd();
    __m256d acc1 = acc0;
    const double* wp = w + v;
    for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
      const __m256d wv = _mm256_loadu_pd(wp);
      acc0 = Fma(_mm256_set1_pd(a0[kk]), wv, acc0);
      acc1 = Fma(_mm256_set1_pd(a1[kk]), wv, acc1);
    }
    _mm256_storeu_pd(out0 + v, acc0);
    _mm256_storeu_pd(out1 + v, acc1);
  }
}

/// One dualistic convolution pass over the padded row. Vector lanes past
/// the logical ranges read only the zeroed tails/margin of `padded` /
/// `terms`, producing finite tail values that the caller's output rows
/// carry but never reduce over.
void ConvolveRowAvx(const double* padded, int pn_pad, int kernel,
                    const PowSpec& gamma_spec, __m256d inv_gamma,
                    double sigma, bool valley, double* terms, double* out,
                    int t_pad) {
  double shift = 0.0;
  if (valley) {
    shift = MaxAbsPadded(padded, pn_pad) + 1.0;
  }
  const __m256d shiftv = _mm256_set1_pd(shift);
  // One fused alpha/sigma multiplier instead of a mul + div per vector;
  // differs from the scalar arm's (alpha * p) / sigma by at most an ulp,
  // well inside the pinned SIMD tolerance.
  const __m256d scalev =
      _mm256_set1_pd(1.0 / (static_cast<double>(kernel) * sigma));
  const __m256d sigmav = _mm256_set1_pd(sigma);
  for (int i = 0; i < pn_pad; i += 4) {
    const __m256d x =
        _mm256_sub_pd(shiftv, _mm256_loadu_pd(padded + i));
    const __m256d p = SignedPowPd(x, gamma_spec);
    _mm256_storeu_pd(terms + i, _mm256_mul_pd(p, scalev));
  }
  // Two independent root chains per iteration: the root's long
  // log2/exp2 dependency chain otherwise leaves the FMA ports idle.
  // Lane arithmetic is unchanged — this is pure instruction-level
  // parallelism, not a numeric rewrite.
  int i = 0;
  for (; i + 8 <= t_pad; i += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int j = 0; j < kernel; ++j) {
      acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(terms + i + j));
      acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(terms + i + 4 + j));
    }
    const __m256d r0 = SignedRootPd(_mm256_mul_pd(acc0, sigmav), inv_gamma);
    const __m256d r1 = SignedRootPd(_mm256_mul_pd(acc1, sigmav), inv_gamma);
    _mm256_storeu_pd(out + i, _mm256_sub_pd(shiftv, r0));
    _mm256_storeu_pd(out + i + 4, _mm256_sub_pd(shiftv, r1));
  }
  for (; i < t_pad; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int j = 0; j < kernel; ++j) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(terms + i + j));
    }
    const __m256d rooted =
        SignedRootPd(_mm256_mul_pd(acc, sigmav), inv_gamma);
    _mm256_storeu_pd(out + i, _mm256_sub_pd(shiftv, rooted));
  }
}

void AmplifyRowAvx(const FusedModelPlan& model, const double* signal, int n,
                   const PowSpec& gamma_spec, __m256d inv_gamma,
                   const Scratch& s, double* out, int t_pad) {
  const int half = model.time_kernel / 2;
  const int pn = n + 2 * half;
  const int pn_pad = (pn + 3) & ~3;
  for (int i = 0; i < pn; ++i) {
    const std::int64_t src = static_cast<std::int64_t>(i) - half;
    const std::int64_t clamped =
        src < 0 ? 0
                : (src >= static_cast<std::int64_t>(n)
                       ? static_cast<std::int64_t>(n) - 1
                       : src);
    s.padded[i] = signal[static_cast<size_t>(clamped)];
  }
  ConvolveRowAvx(s.padded, pn_pad, model.time_kernel, gamma_spec, inv_gamma,
                 model.sigma_t, /*valley=*/false, s.terms, s.conv_a, t_pad);
  ConvolveRowAvx(s.padded, pn_pad, model.time_kernel, gamma_spec, inv_gamma,
                 model.sigma_t, /*valley=*/true, s.terms, s.conv_b, t_pad);
  const __m256d halfv = _mm256_set1_pd(0.5);
  for (int i = 0; i < t_pad; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_mul_pd(halfv, _mm256_add_pd(_mm256_loadu_pd(s.conv_a + i),
                                           _mm256_loadu_pd(s.conv_b + i))));
  }
}

void RunBranchAvx(const FusedModelPlan& model,
                  const FusedServicePlan& service,
                  const FusedModelPlan::Branch& branch, bool valley,
                  const PowSpec& gf_spec, __m256d inv_gamma_f,
                  const Scratch& s) {
  const int m = model.features;
  const int k = model.num_bases;
  const int t_pad = model.window_pad;
  const int fk = model.freq_kernel;
  const int stride = model.freq_stride;
  const int comp = model.compressed;
  const int h = model.hidden_channels;
  const int h_pad = model.h_pad;
  const int latent_n = model.latent;
  const int latent_pad = (latent_n + 3) & ~3;
  const int hidden_n = model.decoder_hidden;
  const int hidden_pad = model.hidden_pad;
  const int flat_pad = model.flat_pad;

  // Encode. Valley shift scans rep over flat_pad — rep tails are zeroed
  // by the caller, so padding never moves the max. Powered tails hold
  // SignedPow(shift) * inv_sigma: finite, only read back through conv
  // taps that stay inside each feature row (max index k - 1).
  double shift = 0.0;
  const double* enc_in = s.rep;
  if (model.dualistic_encoders) {
    if (valley) {
      shift = MaxAbsPadded(s.rep, flat_pad) + 1.0;
    }
    const __m256d shiftv = _mm256_set1_pd(shift);
    const __m256d isv = _mm256_set1_pd(model.inv_sigma_f);
    int i = 0;
    for (; i + 8 <= flat_pad; i += 8) {
      const __m256d x0 =
          _mm256_sub_pd(shiftv, _mm256_loadu_pd(s.rep + i));
      const __m256d x1 =
          _mm256_sub_pd(shiftv, _mm256_loadu_pd(s.rep + i + 4));
      _mm256_storeu_pd(s.powered + i,
                       _mm256_mul_pd(SignedPowPd(x0, gf_spec), isv));
      _mm256_storeu_pd(s.powered + i + 4,
                       _mm256_mul_pd(SignedPowPd(x1, gf_spec), isv));
    }
    for (; i < flat_pad; i += 4) {
      const __m256d x =
          _mm256_sub_pd(shiftv, _mm256_loadu_pd(s.rep + i));
      _mm256_storeu_pd(s.powered + i,
                       _mm256_mul_pd(SignedPowPd(x, gf_spec), isv));
    }
    enc_in = s.powered;
  }
  // enc_w_packed is [(c, j)][h_pad]; gathering the matching window taps
  // into enc_taps keeps the panel helper's kk order identical to the
  // original c-major, tap-minor accumulation. Adjacent positions run as
  // paired accumulator chains (bit-identical per position, the weight
  // panel is just streamed once for both).
  int t = 0;
  for (; t + 2 <= comp; t += 2) {
    for (int c = 0; c < m; ++c) {
      const double* x =
          enc_in + static_cast<size_t>(c) * k + static_cast<size_t>(t) * stride;
      for (int j = 0; j < fk; ++j) {
        s.enc_taps[c * fk + j] = x[j];
        s.enc_taps2[c * fk + j] = x[stride + j];
      }
    }
    DualBroadcastFmaPanelAvx(s.enc_taps, s.enc_taps2, m * fk,
                             branch.enc_w_packed.data(), h_pad,
                             branch.enc_b_packed.data(), s.latent_acc,
                             s.latent_acc2);
    for (int hc = 0; hc < h; ++hc) {
      s.latent[static_cast<size_t>(hc) * comp + t] = s.latent_acc[hc];
      s.latent[static_cast<size_t>(hc) * comp + t + 1] = s.latent_acc2[hc];
    }
  }
  for (; t < comp; ++t) {
    for (int c = 0; c < m; ++c) {
      const double* x =
          enc_in + static_cast<size_t>(c) * k + static_cast<size_t>(t) * stride;
      for (int j = 0; j < fk; ++j) {
        s.enc_taps[c * fk + j] = x[j];
      }
    }
    BroadcastFmaPanelAvx(s.enc_taps, m * fk, branch.enc_w_packed.data(),
                         h_pad, branch.enc_b_packed.data(), s.latent_acc);
    for (int hc = 0; hc < h; ++hc) {
      s.latent[static_cast<size_t>(hc) * comp + t] = s.latent_acc[hc];
    }
  }
  if (model.dualistic_encoders) {
    const __m256d shiftv = _mm256_set1_pd(shift);
    const __m256d sv = _mm256_set1_pd(model.sigma_f);
    int i = 0;
    for (; i + 8 <= latent_pad; i += 8) {
      const __m256d r0 = SignedRootPd(
          _mm256_mul_pd(_mm256_loadu_pd(s.latent + i), sv), inv_gamma_f);
      const __m256d r1 = SignedRootPd(
          _mm256_mul_pd(_mm256_loadu_pd(s.latent + i + 4), sv), inv_gamma_f);
      _mm256_storeu_pd(s.latent + i, _mm256_sub_pd(shiftv, r0));
      _mm256_storeu_pd(s.latent + i + 4, _mm256_sub_pd(shiftv, r1));
    }
    for (; i < latent_pad; i += 4) {
      const __m256d rooted = SignedRootPd(
          _mm256_mul_pd(_mm256_loadu_pd(s.latent + i), sv), inv_gamma_f);
      _mm256_storeu_pd(s.latent + i, _mm256_sub_pd(shiftv, rooted));
    }
  }

  // Decode: bias-seeded FMA panels (tails zero throughout: packed panel
  // rows and biases carry zero tails, and tanh(0) = 0).
  BroadcastFmaPanelAvx(s.latent, latent_n, branch.dec_w1_packed.data(),
                       hidden_pad, branch.dec_b1_packed.data(), s.hidden);
  {
    int v = 0;
    for (; v + 8 <= hidden_pad; v += 8) {
      const __m256d t0 = TanhPd(_mm256_loadu_pd(s.hidden + v));
      const __m256d t1 = TanhPd(_mm256_loadu_pd(s.hidden + v + 4));
      _mm256_storeu_pd(s.hidden + v, t0);
      _mm256_storeu_pd(s.hidden + v + 4, t1);
    }
    for (; v < hidden_pad; v += 4) {
      _mm256_storeu_pd(s.hidden + v, TanhPd(_mm256_loadu_pd(s.hidden + v)));
    }
  }
  BroadcastFmaPanelAvx(s.hidden, hidden_n, branch.dec_w2_packed.data(),
                       flat_pad, branch.dec_b2_packed.data(), s.amp_dec);

  // Stage 4: phase reattach per feature row (vector body + scalar tail so
  // flat stores never cross row boundaries), broadcast-FMA IDFT, squared
  // residual with the branch max folded in on the valley pass.
  for (int f = 0; f < m; ++f) {
    const double* ad = s.amp_dec + static_cast<size_t>(f) * k;
    const double* pr = s.phase_re + static_cast<size_t>(f) * k;
    const double* pi = s.phase_im + static_cast<size_t>(f) * k;
    double* rec = s.rec + static_cast<size_t>(f) * (2 * k);
    int c = 0;
    for (; c + 4 <= k; c += 4) {
      const __m256d adv = _mm256_loadu_pd(ad + c);
      _mm256_storeu_pd(rec + c,
                       _mm256_mul_pd(adv, _mm256_loadu_pd(pr + c)));
      _mm256_storeu_pd(rec + k + c,
                       _mm256_mul_pd(adv, _mm256_loadu_pd(pi + c)));
    }
    for (; c < k; ++c) {
      rec[c] = ad[c] * pr[c];
      rec[k + c] = ad[c] * pi[c];
    }
  }
  for (int f = 0; f < m; ++f) {
    const double* rec = s.rec + static_cast<size_t>(f) * (2 * k);
    BroadcastFmaPanelAvx(rec, 2 * k, service.inverse_padded.data(), t_pad,
                         /*bias=*/nullptr, s.time);
    const double* xrow = s.ampw + static_cast<size_t>(f) * t_pad;
    double* erow = s.err + static_cast<size_t>(f) * t_pad;
    for (int t = 0; t < t_pad; t += 4) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(s.time + t),
                                      _mm256_loadu_pd(xrow + t));
      __m256d e = _mm256_mul_pd(d, d);
      if (valley) e = _mm256_max_pd(_mm256_loadu_pd(erow + t), e);
      _mm256_storeu_pd(erow + t, e);
    }
  }
}

}  // namespace

bool Avx2ArmCompiled() { return true; }

void ScoreWindowsAvx2(const FusedModelPlan& model,
                      const FusedServicePlan& service, const double* windows,
                      int batch, double* step_errors) {
  const int m = model.features;
  const int k = model.num_bases;
  const int t_len = model.window;
  const int t_pad = model.window_pad;
  const int cols_pad = model.cols_pad;
  const int flat_pad = model.flat_pad;
  const size_t flat = static_cast<size_t>(m) * k;
  const size_t entry = static_cast<size_t>(m) * t_len;
  const int half = model.amplify ? model.time_kernel / 2 : 0;
  const int pn = t_len + 2 * half;
  const size_t pn_slab = static_cast<size_t>((pn + 3) & ~3) + 4;
  const int latent_pad = (model.latent + 3) & ~3;

  const PowSpec gt_spec = MakePowSpec(model.gamma_t);
  const PowSpec gf_spec = MakePowSpec(model.gamma_f);
  const __m256d inv_gamma_t = _mm256_set1_pd(1.0 / model.gamma_t);
  const __m256d inv_gamma_f = _mm256_set1_pd(1.0 / model.gamma_f);

  const size_t total =
      static_cast<size_t>(m) * t_pad + 2 * pn_slab +
      2 * static_cast<size_t>(t_pad) +
      static_cast<size_t>(m) * cols_pad + 5 * static_cast<size_t>(flat_pad) +
      2 * static_cast<size_t>(m) * model.freq_kernel +
      2 * static_cast<size_t>(model.h_pad) + static_cast<size_t>(latent_pad) +
      static_cast<size_t>(model.hidden_pad) +
      static_cast<size_t>(flat_pad) + 2 * flat +
      static_cast<size_t>(t_pad) + static_cast<size_t>(m) * t_pad +
      static_cast<size_t>(t_pad);
  // Round the block base up to a cache line; the slabs are 4-lane
  // padded, so an aligned base avoids most line-split vector loads.
  std::vector<double> block =
      tensor::AcquireScratchBuffer(total + 8, /*zero_fill=*/true);
  Scratch s;
  {
    double* p = reinterpret_cast<double*>(
        (reinterpret_cast<uintptr_t>(block.data()) + 63) & ~uintptr_t{63});
    auto take = [&p](size_t n) {
      double* out = p;
      p += n;
      return out;
    };
    s.ampw = take(static_cast<size_t>(m) * t_pad);
    s.padded = take(pn_slab);
    s.terms = take(pn_slab);
    s.conv_a = take(static_cast<size_t>(t_pad));
    s.conv_b = take(static_cast<size_t>(t_pad));
    s.coeffs = take(static_cast<size_t>(m) * cols_pad);
    s.amp = take(static_cast<size_t>(flat_pad));
    s.phase_re = take(static_cast<size_t>(flat_pad));
    s.phase_im = take(static_cast<size_t>(flat_pad));
    s.rep = take(static_cast<size_t>(flat_pad));
    s.powered = take(static_cast<size_t>(flat_pad));
    s.enc_taps = take(static_cast<size_t>(m) * model.freq_kernel);
    s.enc_taps2 = take(static_cast<size_t>(m) * model.freq_kernel);
    s.latent_acc = take(static_cast<size_t>(model.h_pad));
    s.latent_acc2 = take(static_cast<size_t>(model.h_pad));
    s.latent = take(static_cast<size_t>(latent_pad));
    s.hidden = take(static_cast<size_t>(model.hidden_pad));
    s.amp_dec = take(static_cast<size_t>(flat_pad));
    s.rec = take(2 * flat);
    s.time = take(static_cast<size_t>(t_pad));
    s.err = take(static_cast<size_t>(m) * t_pad);
    s.step_acc = take(static_cast<size_t>(t_pad));
  }

  const __m256d zerov = _mm256_setzero_pd();
  const __m256d epsv = _mm256_set1_pd(model.spectrum_epsilon);

  for (int b = 0; b < batch; ++b) {
    const double* win = windows + static_cast<size_t>(b) * entry;

    // Stage 1 into [m][T_pad] rows (tails hold deterministic finite
    // values downstream loops never read past index T - 1 of).
    if (model.amplify) {
      for (int f = 0; f < m; ++f) {
        AmplifyRowAvx(model, win + static_cast<size_t>(f) * t_len, t_len,
                      gt_spec, inv_gamma_t, s,
                      s.ampw + static_cast<size_t>(f) * t_pad, t_pad);
      }
    } else {
      for (int f = 0; f < m; ++f) {
        const double* src = win + static_cast<size_t>(f) * t_len;
        double* dst = s.ampw + static_cast<size_t>(f) * t_pad;
        for (int t = 0; t < t_len; ++t) dst[t] = src[t];
      }
    }

    // Stage 2: DFT panel FMA. Forward rows carry zero tails, so
    // coefficient tails stay zero.
    for (int f = 0; f < m; ++f) {
      BroadcastFmaPanelAvx(s.ampw + static_cast<size_t>(f) * t_pad, t_len,
                           service.forward_padded.data(), cols_pad,
                           /*bias=*/nullptr,
                           s.coeffs + static_cast<size_t>(f) * cols_pad);
    }

    // Amplitudes and unit phases, per feature row with scalar tails (k
    // need not be a lane multiple; amp/phase tails past m*k stay zero).
    for (int f = 0; f < m; ++f) {
      const double* crow = s.coeffs + static_cast<size_t>(f) * cols_pad;
      double* arow = s.amp + static_cast<size_t>(f) * k;
      double* prrow = s.phase_re + static_cast<size_t>(f) * k;
      double* pirow = s.phase_im + static_cast<size_t>(f) * k;
      int c = 0;
      for (; c + 4 <= k; c += 4) {
        const __m256d r = _mm256_loadu_pd(crow + c);
        const __m256d i = _mm256_loadu_pd(crow + k + c);
        const __m256d a2 = _mm256_add_pd(
            Fma(i, i, _mm256_mul_pd(r, r)), epsv);
        const __m256d a = _mm256_sqrt_pd(a2);
        _mm256_storeu_pd(arow + c, a);
        _mm256_storeu_pd(prrow + c, _mm256_div_pd(r, a));
        _mm256_storeu_pd(pirow + c, _mm256_div_pd(i, a));
      }
      for (; c < k; ++c) {
        const double r = crow[c];
        const double i = crow[k + c];
        const double a = std::sqrt(r * r + i * i + model.spectrum_epsilon);
        arow[c] = a;
        prrow[c] = r / a;
        pirow[c] = i / a;
      }
    }


    // Frequency characterization over flat_pad lanes (marker flats carry
    // zero tails); rep tails re-zeroed so the valley encoder's max-abs
    // scan stays tail-clean.
    if (model.has_char) {
      const __m256d b2v = _mm256_set1_pd(model.char_b2);
      for (int i = 0; i < flat_pad; i += 4) {
        _mm256_storeu_pd(s.rep + i, b2v);
      }
      for (int ci = 0; ci < model.char_channels; ++ci) {
        const __m256d b1v =
            _mm256_set1_pd(model.char_b1[static_cast<size_t>(ci)]);
        const __m256d w0v =
            _mm256_set1_pd(model.char_w1[static_cast<size_t>(ci) * 3 + 0]);
        const __m256d w1v =
            _mm256_set1_pd(model.char_w1[static_cast<size_t>(ci) * 3 + 1]);
        const __m256d w2v =
            _mm256_set1_pd(model.char_w1[static_cast<size_t>(ci) * 3 + 2]);
        const __m256d wov =
            _mm256_set1_pd(model.char_w2[static_cast<size_t>(ci)]);
        const double* sinp = service.marker_sin_flat.data();
        const double* cosp = service.marker_cos_flat.data();
        // Paired tanh chains (pure ILP; per-lane arithmetic unchanged).
        int i = 0;
        for (; i + 8 <= flat_pad; i += 8) {
          __m256d row0 = Fma(w0v, _mm256_loadu_pd(s.amp + i), b1v);
          row0 = Fma(w1v, _mm256_loadu_pd(sinp + i), row0);
          row0 = Fma(w2v, _mm256_loadu_pd(cosp + i), row0);
          __m256d row1 = Fma(w0v, _mm256_loadu_pd(s.amp + i + 4), b1v);
          row1 = Fma(w1v, _mm256_loadu_pd(sinp + i + 4), row1);
          row1 = Fma(w2v, _mm256_loadu_pd(cosp + i + 4), row1);
          const __m256d t0 = TanhPd(row0);
          const __m256d t1 = TanhPd(row1);
          _mm256_storeu_pd(s.rep + i,
                           Fma(wov, t0, _mm256_loadu_pd(s.rep + i)));
          _mm256_storeu_pd(s.rep + i + 4,
                           Fma(wov, t1, _mm256_loadu_pd(s.rep + i + 4)));
        }
        for (; i < flat_pad; i += 4) {
          __m256d row = Fma(w0v, _mm256_loadu_pd(s.amp + i), b1v);
          row = Fma(w1v, _mm256_loadu_pd(sinp + i), row);
          row = Fma(w2v, _mm256_loadu_pd(cosp + i), row);
          _mm256_storeu_pd(s.rep + i, Fma(wov, TanhPd(row),
                                          _mm256_loadu_pd(s.rep + i)));
        }
      }
      for (int i = 0; i < flat_pad; i += 4) {
        _mm256_storeu_pd(s.rep + i,
                         _mm256_add_pd(_mm256_loadu_pd(s.rep + i),
                                       _mm256_loadu_pd(s.amp + i)));
      }
      for (size_t i = flat; i < static_cast<size_t>(flat_pad); ++i) {
        s.rep[i] = 0.0;
      }
    } else {
      for (int i = 0; i < flat_pad; i += 4) {
        _mm256_storeu_pd(s.rep + i, _mm256_loadu_pd(s.amp + i));
      }
    }


    RunBranchAvx(model, service, model.peak, /*valley=*/false, gf_spec,
                 inv_gamma_f, s);

    RunBranchAvx(model, service, model.valley, /*valley=*/true, gf_spec,
                 inv_gamma_f, s);


    // Per-step feature mean; only the first T lanes leave the scratch.
    for (int t = 0; t < t_pad; t += 4) {
      _mm256_storeu_pd(s.step_acc + t, zerov);
    }
    for (int f = 0; f < m; ++f) {
      const double* erow = s.err + static_cast<size_t>(f) * t_pad;
      for (int t = 0; t < t_pad; t += 4) {
        _mm256_storeu_pd(s.step_acc + t,
                         _mm256_add_pd(_mm256_loadu_pd(s.step_acc + t),
                                       _mm256_loadu_pd(erow + t)));
      }
    }
    const __m256d mv = _mm256_set1_pd(static_cast<double>(m));
    for (int t = 0; t < t_pad; t += 4) {
      _mm256_storeu_pd(s.step_acc + t,
                       _mm256_div_pd(_mm256_loadu_pd(s.step_acc + t), mv));
    }
    double* out = step_errors + static_cast<size_t>(b) * t_len;
    for (int t = 0; t < t_len; ++t) out[t] = s.step_acc[t];
  }

  tensor::ReleaseScratchBuffer(std::move(block));
}

}  // namespace mace::kernel::internal

#else  // !(__AVX2__ && __FMA__)

namespace mace::kernel::internal {

bool Avx2ArmCompiled() { return false; }

void ScoreWindowsAvx2(const FusedModelPlan& model,
                      const FusedServicePlan& service, const double* windows,
                      int batch, double* step_errors) {
  ScoreWindowsScalar(model, service, windows, batch, step_errors);
}

}  // namespace mace::kernel::internal

#endif
