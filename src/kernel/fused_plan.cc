#include "kernel/fused_plan.h"

#include <cstddef>

#include "common/check.h"

namespace mace::kernel {

namespace {

/// Rounds up to the 8-lane (one AVX-512 double vector) multiple. The
/// AVX2 arm walks the same panels four lanes at a time — 8 is a multiple
/// of its vector width too — so one padding serves both SIMD arms.
int PadLanes(int x) { return (x + 7) & ~7; }

/// Copies `rows` rows of `cols` doubles into rows of `cols_pad` doubles,
/// zero-filling the tail lanes.
AlignedVec PadRows(const std::vector<double>& src, int rows,
                            int cols, int cols_pad) {
  MACE_CHECK(static_cast<int>(src.size()) == rows * cols);
  AlignedVec out(static_cast<size_t>(rows) * cols_pad, 0.0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out[static_cast<size_t>(r) * cols_pad + c] =
          src[static_cast<size_t>(r) * cols + c];
    }
  }
  return out;
}

void FinalizeBranch(const FusedModelPlan& plan,
                    FusedModelPlan::Branch* branch) {
  const int m = plan.features;
  const int k = plan.num_bases;
  const int fk = plan.freq_kernel;
  const int h = plan.hidden_channels;
  const size_t flat = static_cast<size_t>(m) * k;

  MACE_CHECK(branch->enc_w.size() ==
             static_cast<size_t>(h) * m * fk);
  MACE_CHECK(branch->enc_b.empty() ||
             branch->enc_b.size() == static_cast<size_t>(h));
  MACE_CHECK(branch->dec_w1.size() ==
             static_cast<size_t>(plan.latent) * plan.decoder_hidden);
  MACE_CHECK(branch->dec_b1.size() ==
             static_cast<size_t>(plan.decoder_hidden));
  MACE_CHECK(branch->dec_w2.size() ==
             static_cast<size_t>(plan.decoder_hidden) * flat);
  MACE_CHECK(branch->dec_b2.size() == flat);

  // Encoder weights re-packed filter-fastest: row (c * fk + j) holds the
  // h filter weights of input channel c at tap j, so the SIMD arm
  // broadcasts one input element and FMAs all filters at once.
  branch->enc_w_packed.assign(
      static_cast<size_t>(m) * fk * plan.h_pad, 0.0);
  for (int hc = 0; hc < h; ++hc) {
    for (int c = 0; c < m; ++c) {
      for (int j = 0; j < fk; ++j) {
        branch->enc_w_packed[(static_cast<size_t>(c) * fk + j) * plan.h_pad +
                             hc] =
            branch->enc_w[(static_cast<size_t>(hc) * m + c) * fk + j];
      }
    }
  }
  branch->enc_b_packed.assign(static_cast<size_t>(plan.h_pad), 0.0);
  for (size_t i = 0; i < branch->enc_b.size(); ++i) {
    branch->enc_b_packed[i] = branch->enc_b[i];
  }

  branch->dec_w1_packed = PadRows(branch->dec_w1, plan.latent,
                                  plan.decoder_hidden, plan.hidden_pad);
  branch->dec_b1_packed.assign(static_cast<size_t>(plan.hidden_pad), 0.0);
  for (size_t i = 0; i < branch->dec_b1.size(); ++i) {
    branch->dec_b1_packed[i] = branch->dec_b1[i];
  }
  branch->dec_w2_packed = PadRows(branch->dec_w2, plan.decoder_hidden,
                                  static_cast<int>(flat), plan.flat_pad);
  branch->dec_b2_packed.assign(static_cast<size_t>(plan.flat_pad), 0.0);
  for (size_t i = 0; i < branch->dec_b2.size(); ++i) {
    branch->dec_b2_packed[i] = branch->dec_b2[i];
  }
}

}  // namespace

void FinalizeModelPlan(FusedModelPlan* plan) {
  MACE_CHECK(plan != nullptr);
  MACE_CHECK(plan->features > 0 && plan->window > 0 && plan->num_bases > 0);
  MACE_CHECK(plan->freq_kernel >= 1 && plan->freq_stride >= 1);
  MACE_CHECK(plan->hidden_channels > 0 && plan->compressed > 0);
  MACE_CHECK(plan->latent == plan->hidden_channels * plan->compressed);
  MACE_CHECK(plan->decoder_hidden == 2 * plan->latent);
  if (plan->amplify) {
    MACE_CHECK(plan->time_kernel >= 1 && plan->time_kernel % 2 == 1);
  }
  if (plan->has_char) {
    const int c = plan->char_channels;
    MACE_CHECK(c > 0);
    MACE_CHECK(plan->char_w1.size() == static_cast<size_t>(c) * 3);
    MACE_CHECK(plan->char_b1.size() == static_cast<size_t>(c));
    MACE_CHECK(plan->char_w2.size() == static_cast<size_t>(c));
  }

  plan->window_pad = PadLanes(plan->window);
  plan->cols_pad = PadLanes(2 * plan->num_bases);
  plan->flat_pad = PadLanes(plan->features * plan->num_bases);
  plan->hidden_pad = PadLanes(plan->decoder_hidden);
  plan->h_pad = PadLanes(plan->hidden_channels);

  FinalizeBranch(*plan, &plan->peak);
  FinalizeBranch(*plan, &plan->valley);
  plan->valid = true;
}

void FinalizeServicePlan(const FusedModelPlan& model,
                         FusedServicePlan* plan) {
  MACE_CHECK(plan != nullptr);
  MACE_CHECK(model.valid) << "finalize the model plan first";
  const int t_len = model.window;
  const int k = model.num_bases;
  const int cols = 2 * k;
  MACE_CHECK(plan->forward.size() ==
             static_cast<size_t>(t_len) * cols);
  MACE_CHECK(plan->inverse.size() ==
             static_cast<size_t>(cols) * t_len);
  MACE_CHECK(plan->marker_sin.size() == static_cast<size_t>(k));
  MACE_CHECK(plan->marker_cos.size() == static_cast<size_t>(k));

  plan->forward_padded =
      PadRows(plan->forward, t_len, cols, model.cols_pad);
  plan->inverse_padded =
      PadRows(plan->inverse, cols, t_len, model.window_pad);

  // Frequency markers flattened to the [m * k] spectrum layout (value of
  // column c repeated for every feature row) — the characterization
  // channels both arms stream over, tail lanes zero.
  plan->marker_sin_flat.assign(static_cast<size_t>(model.flat_pad), 0.0);
  plan->marker_cos_flat.assign(static_cast<size_t>(model.flat_pad), 0.0);
  for (int f = 0; f < model.features; ++f) {
    for (int c = 0; c < k; ++c) {
      plan->marker_sin_flat[static_cast<size_t>(f) * k + c] =
          plan->marker_sin[static_cast<size_t>(c)];
      plan->marker_cos_flat[static_cast<size_t>(f) * k + c] =
          plan->marker_cos[static_cast<size_t>(c)];
    }
  }
  plan->valid = true;
}

}  // namespace mace::kernel
