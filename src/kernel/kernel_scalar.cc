// The scalar reference arm of the fused scoring kernel.
//
// Replicates the tensor op graph's arithmetic — accumulation orders,
// epsilon forms, MatMul's skip-on-zero rows, Conv1d's per-(channel, tap)
// local accumulator — operation for operation, so its outputs are
// bit-identical to MaceModel::Forward / ForwardBatch. Any change here
// must preserve that: tests/score_fastpath_test.cc pins equality with
// ==, not a tolerance.
//
// Compiled with AVX/FMA explicitly disabled (see src/kernel/CMakeLists)
// so the arm stays genuinely scalar even under MACE_NATIVE_ARCH builds;
// -ffp-contract=off repo-wide already forbids contraction.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/math_utils.h"
#include "kernel/kernel_arms.h"
#include "tensor/tensor.h"

namespace mace::kernel::internal {

namespace {

/// Scratch layout of one ScoreWindows call, partitioned out of a single
/// pooled block and reused across the whole batch.
struct Scratch {
  double* ampw;     ///< [m][T] amplified (stage-1 output) window
  double* padded;   ///< [T + 2 * half] edge-replicated row
  double* terms;    ///< [T + 2 * half] hoisted power terms
  double* conv_a;   ///< [T] stage-1 peak row
  double* conv_b;   ///< [T] stage-1 valley row
  double* coeffs;   ///< [m][2k]
  double* amp;      ///< [m * k]
  double* phase_re; ///< [m * k]
  double* phase_im; ///< [m * k]
  double* rep;      ///< [m * k]
  double* powered;  ///< [m * k] encoder input, powered
  double* latent;   ///< [latent]
  double* hidden;   ///< [decoder_hidden]
  double* amp_dec;  ///< [m * k]
  double* rec;      ///< [m][2k]
  double* time;     ///< [T] one reconstructed feature row
  double* err;      ///< [m][T] branch-max squared error
};

/// DualisticConvolve's ConvolveInto, verbatim: hoisted power terms,
/// left-to-right sliding accumulation, shift-conjugated valley.
void ConvolveRow(const double* signal, size_t n, int kernel, double gamma,
                 double sigma, bool valley, double* terms, double* out,
                 size_t out_len) {
  double shift = 0.0;
  if (valley) {
    double max_abs = 0.0;
    for (size_t t = 0; t < n; ++t) {
      max_abs = std::max(max_abs, std::fabs(signal[t]));
    }
    shift = max_abs + 1.0;
  }
  const double alpha = 1.0 / static_cast<double>(kernel);
  for (size_t t = 0; t < n; ++t) {
    terms[t] = alpha * SignedPow(shift - signal[t], gamma) / sigma;
  }
  for (size_t i = 0; i < out_len; ++i) {
    double acc = 0.0;
    for (int j = 0; j < kernel; ++j) {
      acc += terms[i + static_cast<size_t>(j)];
    }
    out[i] = shift - SignedRoot(acc * sigma, gamma);
  }
}

/// Stage 1 for one feature row: DualisticAmplifyInto's edge-replication
/// pad, both convolution modes, half-sum merge.
void AmplifyRow(const FusedModelPlan& model, const double* signal, size_t n,
                const Scratch& s, double* out) {
  const int half = model.time_kernel / 2;
  const size_t pn = n + 2 * static_cast<size_t>(half);
  for (size_t i = 0; i < pn; ++i) {
    const std::int64_t src = static_cast<std::int64_t>(i) - half;
    const std::int64_t clamped =
        src < 0 ? 0
                : (src >= static_cast<std::int64_t>(n)
                       ? static_cast<std::int64_t>(n) - 1
                       : src);
    s.padded[i] = signal[static_cast<size_t>(clamped)];
  }
  ConvolveRow(s.padded, pn, model.time_kernel, model.gamma_t, model.sigma_t,
              /*valley=*/false, s.terms, s.conv_a, n);
  ConvolveRow(s.padded, pn, model.time_kernel, model.gamma_t, model.sigma_t,
              /*valley=*/true, s.terms, s.conv_b, n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = 0.5 * (s.conv_a[i] + s.conv_b[i]);
  }
}

/// One autoencoder branch end to end: encode `rep`, decode, reattach
/// phases, IDFT back to time, square the residual. Peak overwrites
/// `s.err`; valley folds in through the op graph's Maximum (x >= y ? x : y
/// with peak as x).
void RunBranch(const FusedModelPlan& model, const FusedServicePlan& service,
               const FusedModelPlan::Branch& branch, bool valley,
               const Scratch& s) {
  const int m = model.features;
  const int k = model.num_bases;
  const int t_len = model.window;
  const int fk = model.freq_kernel;
  const int stride = model.freq_stride;
  const int comp = model.compressed;
  const int h = model.hidden_channels;
  const int latent_n = model.latent;
  const int hidden_n = model.decoder_hidden;
  const size_t flat = static_cast<size_t>(m) * k;

  // Encode. Dualistic: power -> summation conv (no bias) -> root, with
  // the valley shift-conjugated around max-abs of the WHOLE encoder input
  // (DualisticConvLayer::Forward — ForwardBatched computes the same
  // per-entry shift). Plain-conv ablation: Conv1d with bias, untouched
  // input.
  double shift = 0.0;
  const double* enc_in = s.rep;
  if (model.dualistic_encoders) {
    if (valley) {
      double max_abs = 0.0;
      for (size_t i = 0; i < flat; ++i) {
        max_abs = std::max(max_abs, std::fabs(s.rep[i]));
      }
      shift = max_abs + 1.0;
    }
    for (size_t i = 0; i < flat; ++i) {
      s.powered[i] =
          SignedPow(shift - s.rep[i], model.gamma_f) * model.inv_sigma_f;
    }
    enc_in = s.powered;
  }
  for (int hc = 0; hc < h; ++hc) {
    double* out = s.latent + static_cast<size_t>(hc) * comp;
    if (branch.enc_b.empty()) {
      for (int t = 0; t < comp; ++t) out[t] = 0.0;
    } else {
      const double bf = branch.enc_b[static_cast<size_t>(hc)];
      for (int t = 0; t < comp; ++t) out[t] = bf;
    }
    for (int c = 0; c < m; ++c) {
      const double* x = enc_in + static_cast<size_t>(c) * k;
      const double* w =
          branch.enc_w.data() + (static_cast<size_t>(hc) * m + c) * fk;
      for (int t = 0; t < comp; ++t) {
        const double* xw = x + static_cast<size_t>(t) * stride;
        double acc = 0.0;
        for (int j = 0; j < fk; ++j) acc += w[j] * xw[j];
        out[t] += acc;
      }
    }
  }
  if (model.dualistic_encoders) {
    for (int i = 0; i < latent_n; ++i) {
      const double rooted =
          SignedRoot(s.latent[i] * model.sigma_f, model.gamma_f);
      s.latent[i] = shift - rooted;
    }
  }

  // Decode: Linear -> Tanh -> Linear, with MatMul's skip-on-zero rows and
  // the bias added after the full matmul (tanh(mm + b) folds the
  // elementwise Add the op graph runs first — same double either way).
  for (int j = 0; j < hidden_n; ++j) s.hidden[j] = 0.0;
  for (int kk = 0; kk < latent_n; ++kk) {
    const double a = s.latent[kk];
    if (a == 0.0) continue;
    const double* brow =
        branch.dec_w1.data() + static_cast<size_t>(kk) * hidden_n;
    for (int j = 0; j < hidden_n; ++j) s.hidden[j] += a * brow[j];
  }
  for (int j = 0; j < hidden_n; ++j) {
    s.hidden[j] = std::tanh(s.hidden[j] + branch.dec_b1[static_cast<size_t>(j)]);
  }
  for (size_t j = 0; j < flat; ++j) s.amp_dec[j] = 0.0;
  for (int kk = 0; kk < hidden_n; ++kk) {
    const double a = s.hidden[kk];
    if (a == 0.0) continue;
    const double* brow =
        branch.dec_w2.data() + static_cast<size_t>(kk) * flat;
    for (size_t j = 0; j < flat; ++j) s.amp_dec[j] += a * brow[j];
  }
  for (size_t j = 0; j < flat; ++j) s.amp_dec[j] += branch.dec_b2[j];

  // Stage 4: reattach the detached unit phases, IDFT matmul row by row
  // (skip-on-zero), square the residual against the amplified window.
  for (int f = 0; f < m; ++f) {
    const double* ad = s.amp_dec + static_cast<size_t>(f) * k;
    const double* pr = s.phase_re + static_cast<size_t>(f) * k;
    const double* pi = s.phase_im + static_cast<size_t>(f) * k;
    double* rec = s.rec + static_cast<size_t>(f) * (2 * k);
    for (int c = 0; c < k; ++c) {
      rec[c] = ad[c] * pr[c];
      rec[k + c] = ad[c] * pi[c];
    }
  }
  for (int f = 0; f < m; ++f) {
    for (int t = 0; t < t_len; ++t) s.time[t] = 0.0;
    const double* rec = s.rec + static_cast<size_t>(f) * (2 * k);
    for (int kk = 0; kk < 2 * k; ++kk) {
      const double a = rec[kk];
      if (a == 0.0) continue;
      const double* brow =
          service.inverse.data() + static_cast<size_t>(kk) * t_len;
      for (int t = 0; t < t_len; ++t) s.time[t] += a * brow[t];
    }
    const double* xw = s.ampw + static_cast<size_t>(f) * t_len;
    double* err = s.err + static_cast<size_t>(f) * t_len;
    for (int t = 0; t < t_len; ++t) {
      const double d = s.time[t] - xw[t];
      const double e = d * d;
      if (valley) {
        err[t] = err[t] >= e ? err[t] : e;  // Maximum(err_peak, err_valley)
      } else {
        err[t] = e;
      }
    }
  }
}

}  // namespace

void ScoreWindowsScalar(const FusedModelPlan& model,
                        const FusedServicePlan& service,
                        const double* windows, int batch,
                        double* step_errors) {
  const int m = model.features;
  const int k = model.num_bases;
  const int t_len = model.window;
  const int cols = 2 * k;
  const size_t flat = static_cast<size_t>(m) * k;
  const size_t entry = static_cast<size_t>(m) * t_len;
  const int half = model.amplify ? model.time_kernel / 2 : 0;
  const size_t pn = static_cast<size_t>(t_len) + 2 * static_cast<size_t>(half);

  // amp/phase_re/phase_im/rep/powered (5) + amp_dec (1) + rec (2) = 8 flats.
  const size_t total = entry + 2 * pn + 2 * static_cast<size_t>(t_len) +
                       static_cast<size_t>(m) * cols + 8 * flat +
                       static_cast<size_t>(model.latent) +
                       static_cast<size_t>(model.decoder_hidden) +
                       static_cast<size_t>(t_len) + entry;
  std::vector<double> block = tensor::AcquireScratchBuffer(total);
  Scratch s;
  {
    double* p = block.data();
    auto take = [&p](size_t n) {
      double* out = p;
      p += n;
      return out;
    };
    s.ampw = take(entry);
    s.padded = take(pn);
    s.terms = take(pn);
    s.conv_a = take(static_cast<size_t>(t_len));
    s.conv_b = take(static_cast<size_t>(t_len));
    s.coeffs = take(static_cast<size_t>(m) * cols);
    s.amp = take(flat);
    s.phase_re = take(flat);
    s.phase_im = take(flat);
    s.rep = take(flat);
    s.powered = take(flat);
    s.latent = take(static_cast<size_t>(model.latent));
    s.hidden = take(static_cast<size_t>(model.decoder_hidden));
    s.amp_dec = take(flat);
    s.rec = take(2 * flat);
    s.time = take(static_cast<size_t>(t_len));
    s.err = take(entry);
  }

  for (int b = 0; b < batch; ++b) {
    const double* win = windows + static_cast<size_t>(b) * entry;

    // Stage 1: dualistic time amplification per feature row (skipped
    // entirely when use_dualistic_time is off, like AmplifyWindow).
    const double* xw = win;
    if (model.amplify) {
      for (int f = 0; f < m; ++f) {
        AmplifyRow(model, win + static_cast<size_t>(f) * t_len,
                   static_cast<size_t>(t_len), s,
                   s.ampw + static_cast<size_t>(f) * t_len);
      }
      xw = s.ampw;
    } else {
      for (size_t i = 0; i < entry; ++i) s.ampw[i] = win[i];
    }

    // Stage 2: context-aware DFT — MatMul([m, T], [T, 2k]) with the op's
    // kk-ascending, skip-on-zero accumulation.
    for (size_t i = 0; i < static_cast<size_t>(m) * cols; ++i) {
      s.coeffs[i] = 0.0;
    }
    for (int f = 0; f < m; ++f) {
      const double* arow = xw + static_cast<size_t>(f) * t_len;
      double* orow = s.coeffs + static_cast<size_t>(f) * cols;
      for (int kk = 0; kk < t_len; ++kk) {
        const double aik = arow[kk];
        if (aik == 0.0) continue;
        const double* brow =
            service.forward.data() + static_cast<size_t>(kk) * cols;
        for (int j = 0; j < cols; ++j) orow[j] += aik * brow[j];
      }
    }

    // Amplitudes and detached unit phases: both use the exact epsilon
    // association of the op graph — sqrt(((r*r) + (i*i)) + eps).
    for (int f = 0; f < m; ++f) {
      const double* crow = s.coeffs + static_cast<size_t>(f) * cols;
      for (int c = 0; c < k; ++c) {
        const double r = crow[c];
        const double i = crow[k + c];
        const double a2 = (r * r + i * i) + model.spectrum_epsilon;
        s.amp[static_cast<size_t>(f) * k + c] =
            std::sqrt(std::max(a2, 0.0));
        const double a = std::sqrt(r * r + i * i + model.spectrum_epsilon);
        s.phase_re[static_cast<size_t>(f) * k + c] = r / a;
        s.phase_im[static_cast<size_t>(f) * k + c] = i / a;
      }
    }

    // Frequency characterization: two pointwise convs with a residual
    // add. Interleaving per output channel keeps Conv1d's input-channel-
    // ascending accumulation per element.
    if (model.has_char) {
      for (size_t t = 0; t < flat; ++t) s.rep[t] = model.char_b2;
      for (int ci = 0; ci < model.char_channels; ++ci) {
        const double b1 = model.char_b1[static_cast<size_t>(ci)];
        const double w0 = model.char_w1[static_cast<size_t>(ci) * 3 + 0];
        const double w1 = model.char_w1[static_cast<size_t>(ci) * 3 + 1];
        const double w2 = model.char_w1[static_cast<size_t>(ci) * 3 + 2];
        const double wo = model.char_w2[static_cast<size_t>(ci)];
        for (size_t t = 0; t < flat; ++t) {
          const double row = ((b1 + w0 * s.amp[t]) +
                              w1 * service.marker_sin_flat[t]) +
                             w2 * service.marker_cos_flat[t];
          s.rep[t] += wo * std::tanh(row);
        }
      }
      // rep = Add(amp, charted); IEEE addition is commutative, so
      // accumulating charted first and adding amp last is bit-identical.
      for (size_t t = 0; t < flat; ++t) s.rep[t] += s.amp[t];
    } else {
      for (size_t t = 0; t < flat; ++t) s.rep[t] = s.amp[t];
    }

    // Stages 3 + 4, peak then valley (valley folds its error in via max).
    RunBranch(model, service, model.peak, /*valley=*/false, s);
    RunBranch(model, service, model.valley, /*valley=*/true, s);

    // Per-step feature mean, f ascending.
    double* out = step_errors + static_cast<size_t>(b) * t_len;
    for (int t = 0; t < t_len; ++t) {
      double acc = 0.0;
      for (int f = 0; f < m; ++f) {
        acc += s.err[static_cast<size_t>(f) * t_len + t];
      }
      out[t] = acc / static_cast<double>(m);
    }
  }

  tensor::ReleaseScratchBuffer(std::move(block));
}

}  // namespace mace::kernel::internal
