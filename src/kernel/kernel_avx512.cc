// The AVX-512F/DQ arm of the fused scoring kernel.
//
// An 8-lane transliteration of kernel_avx2.cc: every lane runs the exact
// same operation sequence (identical polynomial transcendentals, FMA
// placement, and per-column kk-ascending panel accumulation), so this
// arm produces the same bits as the AVX2 arm and inherits its pinned
// tolerance against the scalar reference — it is a throughput tier
// inside Backend::kSimd, not a different numeric contract. Keep the two
// files in lock-step: any arithmetic change must land in both.
//
// Tail discipline matches the AVX2 arm: one zero-filled scratch block,
// plan extents padded to 8-lane multiples by FinalizeModelPlan, and no
// tail lane ever feeds an output lane.
//
// When the compiler cannot target AVX-512F/DQ this translation unit
// degrades to a forwarder onto the AVX2 arm (Avx512ArmCompiled() tells
// the dispatcher).

#include "kernel/kernel_arms.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/tensor.h"

#if defined(__GNUC__) && !defined(__clang__)
// GCC lowers even unmasked AVX-512 intrinsics (max_pd, min_pd,
// srli_epi64, ...) through _mm512_undefined_pd(), which trips
// -Wmaybe-uninitialized on every call site (GCC PR105593). The
// "uninitialized" lanes are fully overwritten by the builtin.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace mace::kernel::internal {

namespace {

// ---------------------------------------------------------------------------
// Vector math (see kernel_avx2.cc for the derivations; constants and
// operation order are identical so lanes match the AVX2 arm bit for bit)
// ---------------------------------------------------------------------------

inline __m512d Fma(__m512d a, __m512d b, __m512d c) {
  return _mm512_fmadd_pd(a, b, c);
}

/// 2^n for integer-valued n with n + 1023 in [1, 2046].
inline __m512d Pow2Int(__m512d n) {
  const __m256i ni = _mm512_cvtpd_epi32(n);
  const __m512i wide = _mm512_cvtepi32_epi64(ni);
  const __m512i bits =
      _mm512_slli_epi64(_mm512_add_epi64(wide, _mm512_set1_epi64(1023)), 52);
  return _mm512_castsi512_pd(bits);
}

inline __m512d Exp2Pd(__m512d y) {
  y = _mm512_max_pd(_mm512_set1_pd(-1100.0),
                    _mm512_min_pd(_mm512_set1_pd(1100.0), y));
  const __m512d n = _mm512_roundscale_pd(
      y, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m512d f = _mm512_sub_pd(y, n);
  const __m512d z = _mm512_mul_pd(f, _mm512_set1_pd(0.6931471805599453));
  __m512d p = _mm512_set1_pd(1.0 / 479001600.0);  // 1/12!
  p = Fma(p, z, _mm512_set1_pd(1.0 / 39916800.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 3628800.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 362880.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 40320.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 5040.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 720.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 120.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 24.0));
  p = Fma(p, z, _mm512_set1_pd(1.0 / 6.0));
  p = Fma(p, z, _mm512_set1_pd(0.5));
  p = Fma(p, z, _mm512_set1_pd(1.0));
  p = Fma(p, z, _mm512_set1_pd(1.0));
  const __m512d n1 = _mm512_roundscale_pd(
      _mm512_mul_pd(n, _mm512_set1_pd(0.5)),
      _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  const __m512d n2 = _mm512_sub_pd(n, n1);
  return _mm512_mul_pd(_mm512_mul_pd(p, Pow2Int(n1)), Pow2Int(n2));
}

inline __m512d Log2Pd(__m512d x) {
  const __mmask8 tiny = _mm512_cmp_pd_mask(
      x, _mm512_set1_pd(2.2250738585072014e-308), _CMP_LT_OQ);
  x = _mm512_mask_mul_pd(x, tiny, x, _mm512_set1_pd(0x1p54));
  const __m512d ebias =
      _mm512_maskz_mov_pd(tiny, _mm512_set1_pd(54.0));

  const __m512i bits = _mm512_castpd_si512(x);
  const __m512i expi = _mm512_srli_epi64(bits, 52);
  const __m512i emagic =
      _mm512_or_si512(expi, _mm512_castpd_si512(_mm512_set1_pd(0x1p52)));
  __m512d e = _mm512_sub_pd(_mm512_castsi512_pd(emagic),
                            _mm512_set1_pd(0x1p52 + 1023.0));
  const __m512i mbits = _mm512_or_si512(
      _mm512_and_si512(bits, _mm512_set1_epi64(0x000FFFFFFFFFFFFFLL)),
      _mm512_castpd_si512(_mm512_set1_pd(1.0)));
  __m512d m = _mm512_castsi512_pd(mbits);
  const __mmask8 big =
      _mm512_cmp_pd_mask(m, _mm512_set1_pd(1.4142135623730951), _CMP_GT_OQ);
  m = _mm512_mask_mul_pd(m, big, m, _mm512_set1_pd(0.5));
  e = _mm512_mask_add_pd(e, big, e, _mm512_set1_pd(1.0));

  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d t =
      _mm512_div_pd(_mm512_sub_pd(m, one), _mm512_add_pd(m, one));
  const __m512d u = _mm512_mul_pd(t, t);
  __m512d s = _mm512_set1_pd(1.0 / 19.0);
  s = Fma(s, u, _mm512_set1_pd(1.0 / 17.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 15.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 13.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 11.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 9.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 7.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 5.0));
  s = Fma(s, u, _mm512_set1_pd(1.0 / 3.0));
  s = Fma(s, u, one);
  const __m512d log2m = _mm512_mul_pd(
      _mm512_mul_pd(t, s), _mm512_set1_pd(2.8853900817779268));
  return _mm512_sub_pd(_mm512_add_pd(e, log2m), ebias);
}

inline __m512d PowPd(__m512d x, __m512d p) {
  const __m512d r = Exp2Pd(_mm512_mul_pd(Log2Pd(x), p));
  // NEQ_UQ mirrors the AVX2 arm's andnot-of-ordered-equal exactly
  // (NaN lanes keep r there too).
  const __mmask8 nz =
      _mm512_cmp_pd_mask(x, _mm512_setzero_pd(), _CMP_NEQ_UQ);
  return _mm512_maskz_mov_pd(nz, r);
}

inline __m512d TanhPd(__m512d x) {
  const __m512d mzero = _mm512_set1_pd(-0.0);
  const __m512d sign = _mm512_and_pd(x, mzero);
  const __m512d ax = _mm512_andnot_pd(mzero, x);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d e =
      Exp2Pd(_mm512_mul_pd(ax, _mm512_set1_pd(2.0 * 1.4426950408889634)));
  const __m512d r = _mm512_sub_pd(
      one, _mm512_div_pd(_mm512_set1_pd(2.0), _mm512_add_pd(e, one)));
  return _mm512_or_pd(r, sign);
}

/// Same exponent resolution as the AVX2 arm's PowSpec.
struct PowSpec {
  bool is_int;
  int ip;
  double power;
};

inline PowSpec MakePowSpec(double power) {
  const int ip = static_cast<int>(power);
  return {power == static_cast<double>(ip) && ip >= 0 && ip <= 32, ip,
          power};
}

inline __m512d SignedPowPd(__m512d x, const PowSpec& spec) {
  const __m512d mzero = _mm512_set1_pd(-0.0);
  const __m512d sign = _mm512_and_pd(x, mzero);
  const __m512d ax = _mm512_andnot_pd(mzero, x);
  __m512d mag;
  if (spec.is_int) {
    mag = _mm512_set1_pd(1.0);
    __m512d base = ax;
    for (int e = spec.ip; e > 0; e >>= 1) {
      if (e & 1) mag = _mm512_mul_pd(mag, base);
      base = _mm512_mul_pd(base, base);
    }
  } else {
    mag = PowPd(ax, _mm512_set1_pd(spec.power));
  }
  return _mm512_or_pd(mag, sign);
}

inline __m512d SignedRootPd(__m512d x, __m512d inv_power) {
  const __m512d mzero = _mm512_set1_pd(-0.0);
  const __m512d sign = _mm512_and_pd(x, mzero);
  const __m512d ax = _mm512_andnot_pd(mzero, x);
  return _mm512_or_pd(PowPd(ax, inv_power), sign);
}

/// Max of |buf[i]| over an 8-padded range whose tail lanes are known
/// finite (zeros never raise the max since |x| >= 0).
inline double MaxAbsPadded(const double* buf, int n_pad) {
  const __m512d mzero = _mm512_set1_pd(-0.0);
  __m512d mx = _mm512_setzero_pd();
  for (int i = 0; i < n_pad; i += 8) {
    mx = _mm512_max_pd(mx,
                       _mm512_andnot_pd(mzero, _mm512_loadu_pd(buf + i)));
  }
  return _mm512_reduce_max_pd(mx);
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

/// Windows per stage-major group: panel stages (DFT, decoder layers,
/// IDFT) sweep each packed weight panel once across the whole group, so
/// panels larger than L1 are streamed from L2 once per kGroup windows
/// instead of once per window. Per-window arithmetic is untouched by the
/// grouping — every window's per-column accumulation stays kk-ascending
/// — so results are bit-identical for any batch split.
constexpr int kGroup = 8;

struct Scratch {
  // Shared row buffers (stage 1 runs one row at a time) and the small
  // encoder gather/accumulate strips.
  double* padded;      ///< [P8(pn) + 8] edge-replicated row, zero tails
  double* terms;       ///< [P8(pn) + 8] power terms, zero margin
  double* terms2;      ///< [P8(pn) + 8] valley-pass power terms
  double* conv_a;      ///< [T_pad]
  double* conv_b;      ///< [T_pad]
  double* enc_taps;    ///< [m * freq_kernel] gathered encoder window taps
  double* enc_taps2;   ///< [m * freq_kernel] taps of the paired position
  double* latent_acc;  ///< [h_pad] per-position filter accumulator
  double* latent_acc2;  ///< [h_pad] accumulator of the paired position
  double* step_acc;    ///< [T_pad]
  // Per-window slabs, indexed wi * (slab extent) within the group.
  double* ampw;        ///< [g][m * T_pad] amplified window rows
  double* coeffs;      ///< [g][m * cols_pad]
  double* amp;         ///< [g][flat_pad]
  double* phase_re;    ///< [g][flat_pad]
  double* phase_im;    ///< [g][flat_pad]
  double* rep;         ///< [g][flat_pad]
  double* powered;     ///< [g][flat_pad]
  double* latent;      ///< [g][P8(latent)]
  double* hidden;      ///< [g][hidden_pad]
  double* amp_dec;     ///< [g][flat_pad]
  double* rec;         ///< [g][P8(m * 2k)] rows of [m][2k]
  double* recon;       ///< [g][m * T_pad] IDFT outputs
  double* err;         ///< [g][m * T_pad]
};

/// One column tile of NV vectors (8*NV columns) of the broadcast-FMA
/// panel, starting at column `v`. NV accumulator chains run in parallel;
/// each output column's accumulation stays kk-ascending, so tiling width
/// never changes a column's arithmetic. NV >= 8 keeps two FMA ports busy
/// past the 4-cycle FMA latency without leaning on the reorder window.
template <int NV>
void PanelPassAvx512(const double* a, int kn, const double* w, int n_pad,
                     const double* bias, double* out, int v) {
  // The u loops must fully unroll so `acc` is scalarized into zmm
  // registers; without the pragma -O2 leaves the array on the stack and
  // the kk loop round-trips every accumulator through memory.
  __m512d acc[NV];
#pragma GCC unroll 12
  for (int u = 0; u < NV; ++u) {
    acc[u] = bias != nullptr ? _mm512_loadu_pd(bias + v + 8 * u)
                             : _mm512_setzero_pd();
  }
  const double* wp = w + v;
  for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
    const __m512d av = _mm512_set1_pd(a[kk]);
#pragma GCC unroll 12
    for (int u = 0; u < NV; ++u) {
      acc[u] = Fma(av, _mm512_loadu_pd(wp + 8 * u), acc[u]);
    }
  }
#pragma GCC unroll 12
  for (int u = 0; u < NV; ++u) {
    _mm512_storeu_pd(out + v + 8 * u, acc[u]);
  }
}

/// out[0..n_pad) = bias (zeros when null) + sum_kk a[kk] * w[kk][.] over
/// a packed [kn][n_pad] panel. Wide panels run 64-column (8-chain)
/// tiles; the remainder runs as one tile sized to the leftover columns
/// (up to 12 chains) so narrow shapes like 40 or 96 columns never fall
/// into a latency-starved 1-2 chain tail.
void BroadcastFmaPanelAvx512(const double* a, int kn, const double* w,
                             int n_pad, const double* bias, double* out) {
  int v = 0;
  while (n_pad - v > 96) {
    PanelPassAvx512<8>(a, kn, w, n_pad, bias, out, v);
    v += 64;
  }
  switch ((n_pad - v) / 8) {
    case 12: PanelPassAvx512<12>(a, kn, w, n_pad, bias, out, v); break;
    case 11: PanelPassAvx512<11>(a, kn, w, n_pad, bias, out, v); break;
    case 10: PanelPassAvx512<10>(a, kn, w, n_pad, bias, out, v); break;
    case 9: PanelPassAvx512<9>(a, kn, w, n_pad, bias, out, v); break;
    case 8: PanelPassAvx512<8>(a, kn, w, n_pad, bias, out, v); break;
    case 7: PanelPassAvx512<7>(a, kn, w, n_pad, bias, out, v); break;
    case 6: PanelPassAvx512<6>(a, kn, w, n_pad, bias, out, v); break;
    case 5: PanelPassAvx512<5>(a, kn, w, n_pad, bias, out, v); break;
    case 4: PanelPassAvx512<4>(a, kn, w, n_pad, bias, out, v); break;
    case 3: PanelPassAvx512<3>(a, kn, w, n_pad, bias, out, v); break;
    case 2: PanelPassAvx512<2>(a, kn, w, n_pad, bias, out, v); break;
    case 1: PanelPassAvx512<1>(a, kn, w, n_pad, bias, out, v); break;
    default: break;
  }
}

/// DualBroadcastFmaPanelAvx512's column tile: two activation rows, NV
/// vectors of columns each, 2*NV accumulator chains sharing one weight
/// load per column vector. Per-row, per-column arithmetic is exactly
/// PanelPassAvx512's.
template <int NV>
void DualPanelPassAvx512(const double* a0, const double* a1, int kn,
                         const double* w, int n_pad, const double* bias,
                         double* out0, double* out1, int v) {
  // Same register-promotion requirement as PanelPassAvx512's pragmas.
  __m512d acc0[NV];
  __m512d acc1[NV];
#pragma GCC unroll 12
  for (int u = 0; u < NV; ++u) {
    acc0[u] = bias != nullptr ? _mm512_loadu_pd(bias + v + 8 * u)
                              : _mm512_setzero_pd();
    acc1[u] = acc0[u];
  }
  const double* wp = w + v;
  for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
    const __m512d a0v = _mm512_set1_pd(a0[kk]);
    const __m512d a1v = _mm512_set1_pd(a1[kk]);
#pragma GCC unroll 12
    for (int u = 0; u < NV; ++u) {
      const __m512d wv = _mm512_loadu_pd(wp + 8 * u);
      acc0[u] = Fma(a0v, wv, acc0[u]);
      acc1[u] = Fma(a1v, wv, acc1[u]);
    }
  }
#pragma GCC unroll 12
  for (int u = 0; u < NV; ++u) {
    _mm512_storeu_pd(out0 + v + 8 * u, acc0[u]);
    _mm512_storeu_pd(out1 + v + 8 * u, acc1[u]);
  }
}

/// Two independent activation rows against one weight panel. Each output
/// keeps the exact per-column kk-ascending accumulation of
/// BroadcastFmaPanelAvx512 — the weight row is just loaded once for both
/// accumulator chains, which matters when n_pad is a single vector and
/// one chain alone would serialize on FMA latency.
void DualBroadcastFmaPanelAvx512(const double* a0, const double* a1, int kn,
                                 const double* w, int n_pad,
                                 const double* bias, double* out0,
                                 double* out1) {
  int v = 0;
  while (n_pad - v > 48) {
    DualPanelPassAvx512<4>(a0, a1, kn, w, n_pad, bias, out0, out1, v);
    v += 32;
  }
  switch ((n_pad - v) / 8) {
    case 6: DualPanelPassAvx512<6>(a0, a1, kn, w, n_pad, bias, out0, out1, v); break;
    case 5: DualPanelPassAvx512<5>(a0, a1, kn, w, n_pad, bias, out0, out1, v); break;
    case 4: DualPanelPassAvx512<4>(a0, a1, kn, w, n_pad, bias, out0, out1, v); break;
    case 3: DualPanelPassAvx512<3>(a0, a1, kn, w, n_pad, bias, out0, out1, v); break;
    case 2: DualPanelPassAvx512<2>(a0, a1, kn, w, n_pad, bias, out0, out1, v); break;
    case 1: DualPanelPassAvx512<1>(a0, a1, kn, w, n_pad, bias, out0, out1, v); break;
    default: break;
  }
}

/// GroupPanelAvx512's tile: W activation rows by C column vectors, W*C
/// accumulator chains sharing C weight loads per kk. Each (row, column)
/// accumulation is kk-ascending exactly as in PanelPassAvx512, so the
/// grouping never changes any window's arithmetic.
template <int W, int C>
void GroupPanelTileAvx512(const double* const* acts, double* const* outs,
                          int kn, const double* w, int n_pad,
                          const double* bias, int v) {
  // Hoist the activation row pointers so the kk loop reads registers,
  // and fully unroll every W/C loop so `acc` scalarizes into zmm
  // registers (same -O2 stack-spill hazard as PanelPassAvx512).
  const double* a[W];
#pragma GCC unroll 4
  for (int i = 0; i < W; ++i) a[i] = acts[i];
  __m512d acc[W][C];
#pragma GCC unroll 4
  for (int i = 0; i < W; ++i) {
#pragma GCC unroll 3
    for (int c = 0; c < C; ++c) {
      acc[i][c] = bias != nullptr ? _mm512_loadu_pd(bias + v + 8 * c)
                                  : _mm512_setzero_pd();
    }
  }
  const double* wp = w + v;
  for (int kk = 0; kk < kn; ++kk, wp += n_pad) {
    __m512d wv[C];
#pragma GCC unroll 3
    for (int c = 0; c < C; ++c) wv[c] = _mm512_loadu_pd(wp + 8 * c);
#pragma GCC unroll 4
    for (int i = 0; i < W; ++i) {
      const __m512d av = _mm512_set1_pd(a[i][kk]);
#pragma GCC unroll 3
      for (int c = 0; c < C; ++c) acc[i][c] = Fma(av, wv[c], acc[i][c]);
    }
  }
#pragma GCC unroll 4
  for (int i = 0; i < W; ++i) {
#pragma GCC unroll 3
    for (int c = 0; c < C; ++c) {
      _mm512_storeu_pd(outs[i] + v + 8 * c, acc[i][c]);
    }
  }
}

/// Column sweep for a fixed group width W: 24-column tiles (W*3 chains)
/// plus one remainder tile.
template <int W>
void GroupPanelColsAvx512(const double* const* acts, double* const* outs,
                          int kn, const double* w, int n_pad,
                          const double* bias) {
  int v = 0;
  while (n_pad - v > 24) {
    GroupPanelTileAvx512<W, 3>(acts, outs, kn, w, n_pad, bias, v);
    v += 24;
  }
  switch ((n_pad - v) / 8) {
    case 3: GroupPanelTileAvx512<W, 3>(acts, outs, kn, w, n_pad, bias, v); break;
    case 2: GroupPanelTileAvx512<W, 2>(acts, outs, kn, w, n_pad, bias, v); break;
    case 1: GroupPanelTileAvx512<W, 1>(acts, outs, kn, w, n_pad, bias, v); break;
    default: break;
  }
}

/// One packed [kn][n_pad] panel applied to nw independent activation
/// rows in one sweep. Windows run four at a time, so the panel's weight
/// stream — the dominant memory traffic once a panel outgrows L1, as the
/// decoder panels do — is read once per four windows instead of once per
/// window, while per-window results stay bit-identical to the
/// single-activation path for any batch split.
void GroupPanelAvx512(const double* const* acts, double* const* outs, int nw,
                      int kn, const double* w, int n_pad,
                      const double* bias) {
  int i = 0;
  for (; i + 4 <= nw; i += 4) {
    GroupPanelColsAvx512<4>(acts + i, outs + i, kn, w, n_pad, bias);
  }
  switch (nw - i) {
    case 3:
      GroupPanelColsAvx512<3>(acts + i, outs + i, kn, w, n_pad, bias);
      break;
    case 2:
      DualBroadcastFmaPanelAvx512(acts[i], acts[i + 1], kn, w, n_pad, bias,
                                  outs[i], outs[i + 1]);
      break;
    case 1:
      BroadcastFmaPanelAvx512(acts[i], kn, w, n_pad, bias, outs[i]);
      break;
    default:
      break;
  }
}

/// One tile of ConvolveRowsAvx512's root section: NV vectors of lanes,
/// both passes, so 2*NV signed-root chains are in flight at once. The
/// ~40-op log2/exp2 dependency chains are latency-bound below eight
/// chains, so running a whole 40-lane row as one NV=5 tile (ten chains)
/// beats an 8-chain block plus a 2-chain tail. Per-lane arithmetic is
/// identical at any NV.
template <int NV>
void RootsPassAvx512(const double* terms_a, const double* terms_b, int kernel,
                     __m512d sigmav, __m512d inv_gamma, __m512d shiftv,
                     double* out_a, double* out_b, int i) {
  const __m512d zero = _mm512_setzero_pd();
  // Full unrolls keep the accumulator arrays in registers (same -O2
  // stack-spill hazard as PanelPassAvx512).
  __m512d aa[NV];
  __m512d ab[NV];
#pragma GCC unroll 8
  for (int u = 0; u < NV; ++u) {
    aa[u] = _mm512_setzero_pd();
    ab[u] = _mm512_setzero_pd();
  }
  for (int j = 0; j < kernel; ++j) {
#pragma GCC unroll 8
    for (int u = 0; u < NV; ++u) {
      aa[u] = _mm512_add_pd(aa[u], _mm512_loadu_pd(terms_a + i + 8 * u + j));
      ab[u] = _mm512_add_pd(ab[u], _mm512_loadu_pd(terms_b + i + 8 * u + j));
    }
  }
  __m512d ra[NV];
  __m512d rb[NV];
#pragma GCC unroll 8
  for (int u = 0; u < NV; ++u) {
    ra[u] = SignedRootPd(_mm512_mul_pd(aa[u], sigmav), inv_gamma);
    rb[u] = SignedRootPd(_mm512_mul_pd(ab[u], sigmav), inv_gamma);
  }
#pragma GCC unroll 8
  for (int u = 0; u < NV; ++u) {
    _mm512_storeu_pd(out_a + i + 8 * u, _mm512_sub_pd(zero, ra[u]));
    _mm512_storeu_pd(out_b + i + 8 * u, _mm512_sub_pd(shiftv, rb[u]));
  }
}

/// One dualistic convolution pass; see the AVX2 arm for the tail notes.
/// Both dualistic convolution passes of one row in a single sweep: the
/// peak pass (shift 0) and the valley pass (shift = max|row| + 1) share
/// the padded input, and their root loops interleave into four
/// independent log2/exp2 chains. Per-lane arithmetic of each pass is
/// exactly the former one-pass-at-a-time code — this is pure
/// instruction-level parallelism, not a numeric rewrite.
void ConvolveRowsAvx512(const double* padded, int pn_pad, int kernel,
                        const PowSpec& gamma_spec, __m512d inv_gamma,
                        double sigma, double* terms_a, double* terms_b,
                        double* out_a, double* out_b, int t_pad) {
  const double shift = MaxAbsPadded(padded, pn_pad) + 1.0;
  const __m512d zero = _mm512_setzero_pd();
  const __m512d shiftv = _mm512_set1_pd(shift);
  const __m512d scalev =
      _mm512_set1_pd(1.0 / (static_cast<double>(kernel) * sigma));
  const __m512d sigmav = _mm512_set1_pd(sigma);
  for (int i = 0; i < pn_pad; i += 8) {
    const __m512d row = _mm512_loadu_pd(padded + i);
    const __m512d pa = SignedPowPd(_mm512_sub_pd(zero, row), gamma_spec);
    const __m512d pb = SignedPowPd(_mm512_sub_pd(shiftv, row), gamma_spec);
    _mm512_storeu_pd(terms_a + i, _mm512_mul_pd(pa, scalev));
    _mm512_storeu_pd(terms_b + i, _mm512_mul_pd(pb, scalev));
  }
  int i = 0;
  while (t_pad - i > 40) {
    RootsPassAvx512<4>(terms_a, terms_b, kernel, sigmav, inv_gamma, shiftv,
                       out_a, out_b, i);
    i += 32;
  }
  switch ((t_pad - i) / 8) {
    case 5:
      RootsPassAvx512<5>(terms_a, terms_b, kernel, sigmav, inv_gamma, shiftv,
                         out_a, out_b, i);
      break;
    case 4:
      RootsPassAvx512<4>(terms_a, terms_b, kernel, sigmav, inv_gamma, shiftv,
                         out_a, out_b, i);
      break;
    case 3:
      RootsPassAvx512<3>(terms_a, terms_b, kernel, sigmav, inv_gamma, shiftv,
                         out_a, out_b, i);
      break;
    case 2:
      RootsPassAvx512<2>(terms_a, terms_b, kernel, sigmav, inv_gamma, shiftv,
                         out_a, out_b, i);
      break;
    case 1:
      RootsPassAvx512<1>(terms_a, terms_b, kernel, sigmav, inv_gamma, shiftv,
                         out_a, out_b, i);
      break;
    default:
      break;
  }
}

void AmplifyRowAvx512(const FusedModelPlan& model, const double* signal,
                      int n, const PowSpec& gamma_spec, __m512d inv_gamma,
                      const Scratch& s, double* out, int t_pad) {
  const int half = model.time_kernel / 2;
  const int pn = n + 2 * half;
  const int pn_pad = (pn + 7) & ~7;
  // Edge-replicated pad: contiguous interior copy plus replicated rims
  // (same values the clamped gather produced, without the per-element
  // clamp).
  for (int i = 0; i < half; ++i) s.padded[i] = signal[0];
  std::memcpy(s.padded + half, signal, static_cast<size_t>(n) * sizeof(double));
  for (int i = half + n; i < pn; ++i) s.padded[i] = signal[n - 1];
  ConvolveRowsAvx512(s.padded, pn_pad, model.time_kernel, gamma_spec,
                     inv_gamma, model.sigma_t, s.terms, s.terms2, s.conv_a,
                     s.conv_b, t_pad);
  const __m512d halfv = _mm512_set1_pd(0.5);
  for (int i = 0; i < t_pad; i += 8) {
    _mm512_storeu_pd(
        out + i,
        _mm512_mul_pd(halfv, _mm512_add_pd(_mm512_loadu_pd(s.conv_a + i),
                                           _mm512_loadu_pd(s.conv_b + i))));
  }
}

void RunBranchGroupAvx512(const FusedModelPlan& model,
                          const FusedServicePlan& service,
                          const FusedModelPlan::Branch& branch, bool valley,
                          const PowSpec& gf_spec, __m512d inv_gamma_f,
                          const Scratch& s, int nw) {
  const int m = model.features;
  const int k = model.num_bases;
  const int t_pad = model.window_pad;
  const int fk = model.freq_kernel;
  const int stride = model.freq_stride;
  const int comp = model.compressed;
  const int h = model.hidden_channels;
  const int h_pad = model.h_pad;
  const int latent_n = model.latent;
  const int latent_pad = (latent_n + 7) & ~7;
  const int hidden_n = model.decoder_hidden;
  const int hidden_pad = model.hidden_pad;
  const int flat_pad = model.flat_pad;
  const size_t rec_pad =
      (2 * static_cast<size_t>(m) * k + 7) & ~static_cast<size_t>(7);
  const size_t row_slab = static_cast<size_t>(m) * t_pad;

  // Front half per window: dualistic power transform, strided encoder,
  // latent roots. These stages are transcendental- or gather-bound with
  // no panel reuse across windows, so they stay window-at-a-time.
  for (int wi = 0; wi < nw; ++wi) {
    const double* rep = s.rep + static_cast<size_t>(wi) * flat_pad;
    double* powered = s.powered + static_cast<size_t>(wi) * flat_pad;
    double* latent = s.latent + static_cast<size_t>(wi) * latent_pad;

    // Encode (see the AVX2 arm for the valley-shift tail notes).
    double shift = 0.0;
    const double* enc_in = rep;
    if (model.dualistic_encoders) {
      if (valley) {
        shift = MaxAbsPadded(rep, flat_pad) + 1.0;
      }
      const __m512d shiftv = _mm512_set1_pd(shift);
      const __m512d isv = _mm512_set1_pd(model.inv_sigma_f);
      int i = 0;
      for (; i + 16 <= flat_pad; i += 16) {
        const __m512d x0 = _mm512_sub_pd(shiftv, _mm512_loadu_pd(rep + i));
        const __m512d x1 =
            _mm512_sub_pd(shiftv, _mm512_loadu_pd(rep + i + 8));
        _mm512_storeu_pd(powered + i,
                         _mm512_mul_pd(SignedPowPd(x0, gf_spec), isv));
        _mm512_storeu_pd(powered + i + 8,
                         _mm512_mul_pd(SignedPowPd(x1, gf_spec), isv));
      }
      for (; i < flat_pad; i += 8) {
        const __m512d x = _mm512_sub_pd(shiftv, _mm512_loadu_pd(rep + i));
        _mm512_storeu_pd(powered + i,
                         _mm512_mul_pd(SignedPowPd(x, gf_spec), isv));
      }
      enc_in = powered;
    }
    // enc_w_packed is [(c, j)][h_pad]; the gathered taps keep kk order
    // identical to the original c-major, tap-minor accumulation. Adjacent
    // positions run as paired accumulator chains (bit-identical per
    // position, the weight panel is just streamed once for both).
    int t = 0;
    for (; t + 2 <= comp; t += 2) {
      for (int c = 0; c < m; ++c) {
        const double* x = enc_in + static_cast<size_t>(c) * k +
                          static_cast<size_t>(t) * stride;
        for (int j = 0; j < fk; ++j) {
          s.enc_taps[c * fk + j] = x[j];
          s.enc_taps2[c * fk + j] = x[stride + j];
        }
      }
      DualBroadcastFmaPanelAvx512(s.enc_taps, s.enc_taps2, m * fk,
                                  branch.enc_w_packed.data(), h_pad,
                                  branch.enc_b_packed.data(), s.latent_acc,
                                  s.latent_acc2);
      for (int hc = 0; hc < h; ++hc) {
        latent[static_cast<size_t>(hc) * comp + t] = s.latent_acc[hc];
        latent[static_cast<size_t>(hc) * comp + t + 1] = s.latent_acc2[hc];
      }
    }
    for (; t < comp; ++t) {
      for (int c = 0; c < m; ++c) {
        const double* x = enc_in + static_cast<size_t>(c) * k +
                          static_cast<size_t>(t) * stride;
        for (int j = 0; j < fk; ++j) {
          s.enc_taps[c * fk + j] = x[j];
        }
      }
      BroadcastFmaPanelAvx512(s.enc_taps, m * fk, branch.enc_w_packed.data(),
                              h_pad, branch.enc_b_packed.data(),
                              s.latent_acc);
      for (int hc = 0; hc < h; ++hc) {
        latent[static_cast<size_t>(hc) * comp + t] = s.latent_acc[hc];
      }
    }
    if (model.dualistic_encoders) {
      const __m512d shiftv = _mm512_set1_pd(shift);
      const __m512d sv = _mm512_set1_pd(model.sigma_f);
      int i = 0;
      // Eight root chains in flight (latency-bound below eight).
      for (; i + 64 <= latent_pad; i += 64) {
        const __m512d r0 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i), sv), inv_gamma_f);
        const __m512d r1 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 8), sv), inv_gamma_f);
        const __m512d r2 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 16), sv),
            inv_gamma_f);
        const __m512d r3 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 24), sv),
            inv_gamma_f);
        const __m512d r4 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 32), sv),
            inv_gamma_f);
        const __m512d r5 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 40), sv),
            inv_gamma_f);
        const __m512d r6 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 48), sv),
            inv_gamma_f);
        const __m512d r7 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 56), sv),
            inv_gamma_f);
        _mm512_storeu_pd(latent + i, _mm512_sub_pd(shiftv, r0));
        _mm512_storeu_pd(latent + i + 8, _mm512_sub_pd(shiftv, r1));
        _mm512_storeu_pd(latent + i + 16, _mm512_sub_pd(shiftv, r2));
        _mm512_storeu_pd(latent + i + 24, _mm512_sub_pd(shiftv, r3));
        _mm512_storeu_pd(latent + i + 32, _mm512_sub_pd(shiftv, r4));
        _mm512_storeu_pd(latent + i + 40, _mm512_sub_pd(shiftv, r5));
        _mm512_storeu_pd(latent + i + 48, _mm512_sub_pd(shiftv, r6));
        _mm512_storeu_pd(latent + i + 56, _mm512_sub_pd(shiftv, r7));
      }
      for (; i + 32 <= latent_pad; i += 32) {
        const __m512d r0 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i), sv), inv_gamma_f);
        const __m512d r1 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 8), sv), inv_gamma_f);
        const __m512d r2 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 16), sv),
            inv_gamma_f);
        const __m512d r3 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 24), sv),
            inv_gamma_f);
        _mm512_storeu_pd(latent + i, _mm512_sub_pd(shiftv, r0));
        _mm512_storeu_pd(latent + i + 8, _mm512_sub_pd(shiftv, r1));
        _mm512_storeu_pd(latent + i + 16, _mm512_sub_pd(shiftv, r2));
        _mm512_storeu_pd(latent + i + 24, _mm512_sub_pd(shiftv, r3));
      }
      for (; i + 16 <= latent_pad; i += 16) {
        const __m512d r0 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i), sv), inv_gamma_f);
        const __m512d r1 = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i + 8), sv), inv_gamma_f);
        _mm512_storeu_pd(latent + i, _mm512_sub_pd(shiftv, r0));
        _mm512_storeu_pd(latent + i + 8, _mm512_sub_pd(shiftv, r1));
      }
      for (; i < latent_pad; i += 8) {
        const __m512d rooted = SignedRootPd(
            _mm512_mul_pd(_mm512_loadu_pd(latent + i), sv), inv_gamma_f);
        _mm512_storeu_pd(latent + i, _mm512_sub_pd(shiftv, rooted));
      }
    }
  }

  // Decode: bias-seeded FMA panels, each swept once across the whole
  // group. The decoder panels are the only ones larger than L1, so this
  // is where the group sweep pays — the weight stream drops from
  // once-per-window to once-per-four-windows.
  {
    const double* acts[kGroup];
    double* outs[kGroup];
    for (int wi = 0; wi < nw; ++wi) {
      acts[wi] = s.latent + static_cast<size_t>(wi) * latent_pad;
      outs[wi] = s.hidden + static_cast<size_t>(wi) * hidden_pad;
    }
    GroupPanelAvx512(acts, outs, nw, latent_n, branch.dec_w1_packed.data(),
                     hidden_pad, branch.dec_b1_packed.data());
  }
  for (int wi = 0; wi < nw; ++wi) {
    double* hidden = s.hidden + static_cast<size_t>(wi) * hidden_pad;
    int v = 0;
    for (; v + 32 <= hidden_pad; v += 32) {
      const __m512d t0 = TanhPd(_mm512_loadu_pd(hidden + v));
      const __m512d t1 = TanhPd(_mm512_loadu_pd(hidden + v + 8));
      const __m512d t2 = TanhPd(_mm512_loadu_pd(hidden + v + 16));
      const __m512d t3 = TanhPd(_mm512_loadu_pd(hidden + v + 24));
      _mm512_storeu_pd(hidden + v, t0);
      _mm512_storeu_pd(hidden + v + 8, t1);
      _mm512_storeu_pd(hidden + v + 16, t2);
      _mm512_storeu_pd(hidden + v + 24, t3);
    }
    for (; v + 16 <= hidden_pad; v += 16) {
      const __m512d t0 = TanhPd(_mm512_loadu_pd(hidden + v));
      const __m512d t1 = TanhPd(_mm512_loadu_pd(hidden + v + 8));
      _mm512_storeu_pd(hidden + v, t0);
      _mm512_storeu_pd(hidden + v + 8, t1);
    }
    for (; v < hidden_pad; v += 8) {
      _mm512_storeu_pd(hidden + v, TanhPd(_mm512_loadu_pd(hidden + v)));
    }
  }
  {
    const double* acts[kGroup];
    double* outs[kGroup];
    for (int wi = 0; wi < nw; ++wi) {
      acts[wi] = s.hidden + static_cast<size_t>(wi) * hidden_pad;
      outs[wi] = s.amp_dec + static_cast<size_t>(wi) * flat_pad;
    }
    GroupPanelAvx512(acts, outs, nw, hidden_n, branch.dec_w2_packed.data(),
                     flat_pad, branch.dec_b2_packed.data());
  }

  // Stage 4: phase reattach per window (vector body + scalar tail), then
  // the IDFT panel swept per feature across the group, then the squared
  // residual with the branch max folded in on the valley pass.
  for (int wi = 0; wi < nw; ++wi) {
    const double* amp_dec = s.amp_dec + static_cast<size_t>(wi) * flat_pad;
    const double* phase_re = s.phase_re + static_cast<size_t>(wi) * flat_pad;
    const double* phase_im = s.phase_im + static_cast<size_t>(wi) * flat_pad;
    double* rec_w = s.rec + static_cast<size_t>(wi) * rec_pad;
    for (int f = 0; f < m; ++f) {
      const double* ad = amp_dec + static_cast<size_t>(f) * k;
      const double* pr = phase_re + static_cast<size_t>(f) * k;
      const double* pi = phase_im + static_cast<size_t>(f) * k;
      double* rec = rec_w + static_cast<size_t>(f) * (2 * k);
      int c = 0;
      for (; c + 8 <= k; c += 8) {
        const __m512d adv = _mm512_loadu_pd(ad + c);
        _mm512_storeu_pd(rec + c,
                         _mm512_mul_pd(adv, _mm512_loadu_pd(pr + c)));
        _mm512_storeu_pd(rec + k + c,
                         _mm512_mul_pd(adv, _mm512_loadu_pd(pi + c)));
      }
      for (; c < k; ++c) {
        rec[c] = ad[c] * pr[c];
        rec[k + c] = ad[c] * pi[c];
      }
    }
  }
  for (int f = 0; f < m; ++f) {
    const double* acts[kGroup];
    double* outs[kGroup];
    for (int wi = 0; wi < nw; ++wi) {
      acts[wi] = s.rec + static_cast<size_t>(wi) * rec_pad +
                 static_cast<size_t>(f) * (2 * k);
      outs[wi] = s.recon + static_cast<size_t>(wi) * row_slab +
                 static_cast<size_t>(f) * t_pad;
    }
    GroupPanelAvx512(acts, outs, nw, 2 * k, service.inverse_padded.data(),
                     t_pad, /*bias=*/nullptr);
  }
  for (int wi = 0; wi < nw; ++wi) {
    const double* recon_w = s.recon + static_cast<size_t>(wi) * row_slab;
    const double* ampw_w = s.ampw + static_cast<size_t>(wi) * row_slab;
    double* err_w = s.err + static_cast<size_t>(wi) * row_slab;
    for (int f = 0; f < m; ++f) {
      const double* rtime = recon_w + static_cast<size_t>(f) * t_pad;
      const double* xrow = ampw_w + static_cast<size_t>(f) * t_pad;
      double* erow = err_w + static_cast<size_t>(f) * t_pad;
      for (int t = 0; t < t_pad; t += 8) {
        const __m512d d = _mm512_sub_pd(_mm512_loadu_pd(rtime + t),
                                        _mm512_loadu_pd(xrow + t));
        __m512d e = _mm512_mul_pd(d, d);
        if (valley) e = _mm512_max_pd(_mm512_loadu_pd(erow + t), e);
        _mm512_storeu_pd(erow + t, e);
      }
    }
  }
}

}  // namespace

bool Avx512ArmCompiled() { return true; }

void ScoreWindowsAvx512(const FusedModelPlan& model,
                        const FusedServicePlan& service,
                        const double* windows, int batch,
                        double* step_errors) {
  const int m = model.features;
  const int k = model.num_bases;
  const int t_len = model.window;
  const int t_pad = model.window_pad;
  const int cols_pad = model.cols_pad;
  const int flat_pad = model.flat_pad;
  const size_t flat = static_cast<size_t>(m) * k;
  const size_t entry = static_cast<size_t>(m) * t_len;
  const int half = model.amplify ? model.time_kernel / 2 : 0;
  const int pn = t_len + 2 * half;
  const size_t pn_slab = static_cast<size_t>((pn + 7) & ~7) + 8;
  const int latent_pad = (model.latent + 7) & ~7;

  const PowSpec gt_spec = MakePowSpec(model.gamma_t);
  const PowSpec gf_spec = MakePowSpec(model.gamma_f);
  const __m512d inv_gamma_t = _mm512_set1_pd(1.0 / model.gamma_t);
  const __m512d inv_gamma_f = _mm512_set1_pd(1.0 / model.gamma_f);

  const size_t g_cap =
      static_cast<size_t>(batch < kGroup ? batch : kGroup);
  const size_t rec_pad = (2 * flat + 7) & ~static_cast<size_t>(7);
  const size_t row_slab = static_cast<size_t>(m) * t_pad;
  const size_t coeff_slab = static_cast<size_t>(m) * cols_pad;
  const size_t per_win = 3 * row_slab + coeff_slab +
                         6 * static_cast<size_t>(flat_pad) +
                         static_cast<size_t>(latent_pad) +
                         static_cast<size_t>(model.hidden_pad) + rec_pad;
  const size_t total = 3 * pn_slab + 3 * static_cast<size_t>(t_pad) +
                       2 * static_cast<size_t>(m) * model.freq_kernel +
                       2 * static_cast<size_t>(model.h_pad) +
                       g_cap * per_win;
  // Every slab below is a multiple of 8 doubles, so rounding the block
  // base up to a cache line keeps all full-vector scratch loads within
  // one line (see Aligned64Allocator in fused_plan.h for the penalty).
  std::vector<double> block =
      tensor::AcquireScratchBuffer(total + 8, /*zero_fill=*/true);
  Scratch s;
  {
    double* p = reinterpret_cast<double*>(
        (reinterpret_cast<uintptr_t>(block.data()) + 63) & ~uintptr_t{63});
    auto take = [&p](size_t n) {
      double* out = p;
      p += n;
      return out;
    };
    s.padded = take(pn_slab);
    s.terms = take(pn_slab);
    s.terms2 = take(pn_slab);
    s.conv_a = take(static_cast<size_t>(t_pad));
    s.conv_b = take(static_cast<size_t>(t_pad));
    s.enc_taps = take(static_cast<size_t>(m) * model.freq_kernel);
    s.enc_taps2 = take(static_cast<size_t>(m) * model.freq_kernel);
    s.latent_acc = take(static_cast<size_t>(model.h_pad));
    s.latent_acc2 = take(static_cast<size_t>(model.h_pad));
    s.step_acc = take(static_cast<size_t>(t_pad));
    s.ampw = take(g_cap * row_slab);
    s.coeffs = take(g_cap * coeff_slab);
    s.amp = take(g_cap * static_cast<size_t>(flat_pad));
    s.phase_re = take(g_cap * static_cast<size_t>(flat_pad));
    s.phase_im = take(g_cap * static_cast<size_t>(flat_pad));
    s.rep = take(g_cap * static_cast<size_t>(flat_pad));
    s.powered = take(g_cap * static_cast<size_t>(flat_pad));
    s.latent = take(g_cap * static_cast<size_t>(latent_pad));
    s.hidden = take(g_cap * static_cast<size_t>(model.hidden_pad));
    s.amp_dec = take(g_cap * static_cast<size_t>(flat_pad));
    s.rec = take(g_cap * rec_pad);
    s.recon = take(g_cap * row_slab);
    s.err = take(g_cap * row_slab);
  }

  const __m512d zerov = _mm512_setzero_pd();
  const __m512d epsv = _mm512_set1_pd(model.spectrum_epsilon);

  for (int g0 = 0; g0 < batch; g0 += kGroup) {
    const int nw = batch - g0 < kGroup ? batch - g0 : kGroup;

    // Stage 1 per window into that window's [m][T_pad] rows.
    for (int wi = 0; wi < nw; ++wi) {
      const double* win =
          windows + static_cast<size_t>(g0 + wi) * entry;
      double* ampw = s.ampw + static_cast<size_t>(wi) * row_slab;
      if (model.amplify) {
        for (int f = 0; f < m; ++f) {
          AmplifyRowAvx512(model, win + static_cast<size_t>(f) * t_len,
                           t_len, gt_spec, inv_gamma_t, s,
                           ampw + static_cast<size_t>(f) * t_pad, t_pad);
        }
      } else {
        for (int f = 0; f < m; ++f) {
          const double* src = win + static_cast<size_t>(f) * t_len;
          double* dst = ampw + static_cast<size_t>(f) * t_pad;
          for (int t = 0; t < t_len; ++t) dst[t] = src[t];
        }
      }
    }

    // Stage 2: DFT panel FMA, per feature across the group.
    for (int f = 0; f < m; ++f) {
      const double* acts[kGroup];
      double* outs[kGroup];
      for (int wi = 0; wi < nw; ++wi) {
        acts[wi] = s.ampw + static_cast<size_t>(wi) * row_slab +
                   static_cast<size_t>(f) * t_pad;
        outs[wi] = s.coeffs + static_cast<size_t>(wi) * coeff_slab +
                   static_cast<size_t>(f) * cols_pad;
      }
      GroupPanelAvx512(acts, outs, nw, t_len,
                       service.forward_padded.data(), cols_pad,
                       /*bias=*/nullptr);
    }

    for (int wi = 0; wi < nw; ++wi) {
      const double* coeffs = s.coeffs + static_cast<size_t>(wi) * coeff_slab;
      double* amp = s.amp + static_cast<size_t>(wi) * flat_pad;
      double* phase_re = s.phase_re + static_cast<size_t>(wi) * flat_pad;
      double* phase_im = s.phase_im + static_cast<size_t>(wi) * flat_pad;
      double* rep = s.rep + static_cast<size_t>(wi) * flat_pad;

      // Amplitudes and unit phases, per feature row with scalar tails.
      for (int f = 0; f < m; ++f) {
        const double* crow = coeffs + static_cast<size_t>(f) * cols_pad;
        double* arow = amp + static_cast<size_t>(f) * k;
        double* prrow = phase_re + static_cast<size_t>(f) * k;
        double* pirow = phase_im + static_cast<size_t>(f) * k;
        int c = 0;
        for (; c + 8 <= k; c += 8) {
          const __m512d r = _mm512_loadu_pd(crow + c);
          const __m512d i = _mm512_loadu_pd(crow + k + c);
          const __m512d a2 = _mm512_add_pd(
              Fma(i, i, _mm512_mul_pd(r, r)), epsv);
          const __m512d a = _mm512_sqrt_pd(a2);
          _mm512_storeu_pd(arow + c, a);
          _mm512_storeu_pd(prrow + c, _mm512_div_pd(r, a));
          _mm512_storeu_pd(pirow + c, _mm512_div_pd(i, a));
        }
        for (; c < k; ++c) {
          const double r = crow[c];
          const double i = crow[k + c];
          const double a = std::sqrt(r * r + i * i + model.spectrum_epsilon);
          arow[c] = a;
          prrow[c] = r / a;
          pirow[c] = i / a;
        }
      }

      // Frequency characterization (rep tails re-zeroed for the valley
      // encoder's max-abs scan).
      if (model.has_char) {
        const __m512d b2v = _mm512_set1_pd(model.char_b2);
        for (int i = 0; i < flat_pad; i += 8) {
          _mm512_storeu_pd(rep + i, b2v);
        }
        for (int ci = 0; ci < model.char_channels; ++ci) {
          const __m512d b1v =
              _mm512_set1_pd(model.char_b1[static_cast<size_t>(ci)]);
          const __m512d w0v =
              _mm512_set1_pd(model.char_w1[static_cast<size_t>(ci) * 3 + 0]);
          const __m512d w1v =
              _mm512_set1_pd(model.char_w1[static_cast<size_t>(ci) * 3 + 1]);
          const __m512d w2v =
              _mm512_set1_pd(model.char_w1[static_cast<size_t>(ci) * 3 + 2]);
          const __m512d wov =
              _mm512_set1_pd(model.char_w2[static_cast<size_t>(ci)]);
          const double* sinp = service.marker_sin_flat.data();
          const double* cosp = service.marker_cos_flat.data();
          // Four tanh chains in flight (pure ILP; per-lane arithmetic
          // unchanged).
          int i = 0;
          for (; i + 32 <= flat_pad; i += 32) {
            __m512d row0 = Fma(w0v, _mm512_loadu_pd(amp + i), b1v);
            row0 = Fma(w1v, _mm512_loadu_pd(sinp + i), row0);
            row0 = Fma(w2v, _mm512_loadu_pd(cosp + i), row0);
            __m512d row1 = Fma(w0v, _mm512_loadu_pd(amp + i + 8), b1v);
            row1 = Fma(w1v, _mm512_loadu_pd(sinp + i + 8), row1);
            row1 = Fma(w2v, _mm512_loadu_pd(cosp + i + 8), row1);
            __m512d row2 = Fma(w0v, _mm512_loadu_pd(amp + i + 16), b1v);
            row2 = Fma(w1v, _mm512_loadu_pd(sinp + i + 16), row2);
            row2 = Fma(w2v, _mm512_loadu_pd(cosp + i + 16), row2);
            __m512d row3 = Fma(w0v, _mm512_loadu_pd(amp + i + 24), b1v);
            row3 = Fma(w1v, _mm512_loadu_pd(sinp + i + 24), row3);
            row3 = Fma(w2v, _mm512_loadu_pd(cosp + i + 24), row3);
            const __m512d t0 = TanhPd(row0);
            const __m512d t1 = TanhPd(row1);
            const __m512d t2 = TanhPd(row2);
            const __m512d t3 = TanhPd(row3);
            _mm512_storeu_pd(rep + i,
                             Fma(wov, t0, _mm512_loadu_pd(rep + i)));
            _mm512_storeu_pd(rep + i + 8,
                             Fma(wov, t1, _mm512_loadu_pd(rep + i + 8)));
            _mm512_storeu_pd(rep + i + 16,
                             Fma(wov, t2, _mm512_loadu_pd(rep + i + 16)));
            _mm512_storeu_pd(rep + i + 24,
                             Fma(wov, t3, _mm512_loadu_pd(rep + i + 24)));
          }
          for (; i + 16 <= flat_pad; i += 16) {
            __m512d row0 = Fma(w0v, _mm512_loadu_pd(amp + i), b1v);
            row0 = Fma(w1v, _mm512_loadu_pd(sinp + i), row0);
            row0 = Fma(w2v, _mm512_loadu_pd(cosp + i), row0);
            __m512d row1 = Fma(w0v, _mm512_loadu_pd(amp + i + 8), b1v);
            row1 = Fma(w1v, _mm512_loadu_pd(sinp + i + 8), row1);
            row1 = Fma(w2v, _mm512_loadu_pd(cosp + i + 8), row1);
            const __m512d t0 = TanhPd(row0);
            const __m512d t1 = TanhPd(row1);
            _mm512_storeu_pd(rep + i,
                             Fma(wov, t0, _mm512_loadu_pd(rep + i)));
            _mm512_storeu_pd(rep + i + 8,
                             Fma(wov, t1, _mm512_loadu_pd(rep + i + 8)));
          }
          for (; i < flat_pad; i += 8) {
            __m512d row = Fma(w0v, _mm512_loadu_pd(amp + i), b1v);
            row = Fma(w1v, _mm512_loadu_pd(sinp + i), row);
            row = Fma(w2v, _mm512_loadu_pd(cosp + i), row);
            _mm512_storeu_pd(rep + i, Fma(wov, TanhPd(row),
                                          _mm512_loadu_pd(rep + i)));
          }
        }
        for (int i = 0; i < flat_pad; i += 8) {
          _mm512_storeu_pd(rep + i,
                           _mm512_add_pd(_mm512_loadu_pd(rep + i),
                                         _mm512_loadu_pd(amp + i)));
        }
        for (size_t i = flat; i < static_cast<size_t>(flat_pad); ++i) {
          rep[i] = 0.0;
        }
      } else {
        for (int i = 0; i < flat_pad; i += 8) {
          _mm512_storeu_pd(rep + i, _mm512_loadu_pd(amp + i));
        }
      }
    }

    RunBranchGroupAvx512(model, service, model.peak, /*valley=*/false,
                         gf_spec, inv_gamma_f, s, nw);
    RunBranchGroupAvx512(model, service, model.valley, /*valley=*/true,
                         gf_spec, inv_gamma_f, s, nw);

    // Per-step feature mean; only the first T lanes leave the scratch.
    for (int wi = 0; wi < nw; ++wi) {
      const double* err_w = s.err + static_cast<size_t>(wi) * row_slab;
      for (int t = 0; t < t_pad; t += 8) {
        _mm512_storeu_pd(s.step_acc + t, zerov);
      }
      for (int f = 0; f < m; ++f) {
        const double* erow = err_w + static_cast<size_t>(f) * t_pad;
        for (int t = 0; t < t_pad; t += 8) {
          _mm512_storeu_pd(s.step_acc + t,
                           _mm512_add_pd(_mm512_loadu_pd(s.step_acc + t),
                                         _mm512_loadu_pd(erow + t)));
        }
      }
      const __m512d mv = _mm512_set1_pd(static_cast<double>(m));
      for (int t = 0; t < t_pad; t += 8) {
        _mm512_storeu_pd(s.step_acc + t,
                         _mm512_div_pd(_mm512_loadu_pd(s.step_acc + t), mv));
      }
      double* out = step_errors + static_cast<size_t>(g0 + wi) * t_len;
      for (int t = 0; t < t_len; ++t) out[t] = s.step_acc[t];
    }
  }

  tensor::ReleaseScratchBuffer(std::move(block));
}

}  // namespace mace::kernel::internal

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace mace::kernel::internal {

bool Avx512ArmCompiled() { return false; }

void ScoreWindowsAvx512(const FusedModelPlan& model,
                        const FusedServicePlan& service,
                        const double* windows, int batch,
                        double* step_errors) {
  ScoreWindowsAvx2(model, service, windows, batch, step_errors);
}

}  // namespace mace::kernel::internal

#endif  // __AVX512F__ && __AVX512DQ__
