#ifndef MACE_KERNEL_KERNEL_ARMS_H_
#define MACE_KERNEL_KERNEL_ARMS_H_

// Internal seam between the dispatcher and the per-ISA arms of the fused
// scoring kernel. Not installed API: include only from src/kernel/.

#include "kernel/fused_plan.h"

namespace mace::kernel::internal {

/// The scalar reference arm: replicates the tensor op graph's arithmetic
/// (accumulation orders, epsilon forms, skip-on-zero matmuls) operation
/// for operation — bit-identical to MaceModel::Forward. Compiled without
/// AVX/FMA so the "scalar" in the name survives -march=native builds.
void ScoreWindowsScalar(const FusedModelPlan& model,
                        const FusedServicePlan& service,
                        const double* windows, int batch,
                        double* step_errors);

/// The AVX2/FMA arm (pinned-tolerance equivalent of the scalar arm).
/// In builds whose compiler cannot target AVX2 this symbol still exists
/// and forwards to the scalar arm.
void ScoreWindowsAvx2(const FusedModelPlan& model,
                      const FusedServicePlan& service, const double* windows,
                      int batch, double* step_errors);

/// True when ScoreWindowsAvx2 was actually compiled with AVX2/FMA enabled
/// (i.e. is not the scalar forwarder).
bool Avx2ArmCompiled();

/// The AVX-512F/DQ arm: 8-lane, with per-lane arithmetic identical to
/// the AVX2 arm (same polynomial transcendentals, same per-column
/// kk-ascending panel accumulation), so it produces the same bits as
/// the AVX2 arm and inherits its pinned tolerance. Its scheduling is
/// free to differ — it processes windows in stage-major groups so each
/// packed panel streams from L2 once per group rather than once per
/// window — because grouping reorders no per-window accumulation. In
/// builds whose compiler cannot target AVX-512 this symbol forwards to
/// ScoreWindowsAvx2.
void ScoreWindowsAvx512(const FusedModelPlan& model,
                        const FusedServicePlan& service,
                        const double* windows, int batch,
                        double* step_errors);

/// True when ScoreWindowsAvx512 was compiled with AVX-512F/DQ enabled.
bool Avx512ArmCompiled();

}  // namespace mace::kernel::internal

#endif  // MACE_KERNEL_KERNEL_ARMS_H_
