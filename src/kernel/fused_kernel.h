#ifndef MACE_KERNEL_FUSED_KERNEL_H_
#define MACE_KERNEL_FUSED_KERNEL_H_

#include "kernel/fused_plan.h"

namespace mace::kernel {

/// True when this build carries a real AVX2/FMA arm and the CPU executes
/// those instruction sets. Checked once per process.
bool SimdSupported();

/// Maps a requested backend to the arm that will actually run: kAuto
/// picks kSimd when SimdSupported(), else kScalar; an explicit kSimd
/// request degrades to kScalar on machines (or builds) without the arm
/// rather than faulting.
Backend ResolveBackend(Backend requested);

/// \brief The fused inference scoring kernel: stages 1-4 of the MACE
/// pipeline over a batch of scaled windows in one pass per window.
///
/// `windows` holds `batch` consecutive scaled (NOT yet stage-1-amplified)
/// windows of `features * window` doubles each, feature-major
/// (value of feature f at step t lives at offset f * window + t).
/// `step_errors` receives `batch` consecutive vectors of `window`
/// per-step reconstruction errors (the stage-4 branch-max feature mean) —
/// exactly what MaceModel::Forward's `step_errors` holds for that window.
///
/// Every window is processed independently with batch-size-invariant
/// arithmetic, so a batch call is bit-identical to `batch` single-window
/// calls on BOTH arms. The scalar arm additionally replicates the tensor
/// op graph's accumulation orders operation for operation and is
/// bit-identical to MaceModel::Forward / ForwardBatch; the SIMD arm uses
/// FMA panels and vector transcendentals and matches to the pinned
/// tolerance documented in tests/score_fastpath_test.cc.
///
/// Scratch comes from the calling thread's inference-mode buffer pool
/// (one block amortized across the whole batch) and is returned before
/// the call exits; concurrent calls from different threads are safe.
/// Plans must be finalized (`valid == true`).
void ScoreWindows(const FusedModelPlan& model, const FusedServicePlan& service,
                  const double* windows, int batch, double* step_errors,
                  Backend backend = Backend::kAuto);

}  // namespace mace::kernel

#endif  // MACE_KERNEL_FUSED_KERNEL_H_
