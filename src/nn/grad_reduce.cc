#include "nn/grad_reduce.h"

#include <algorithm>

#include "common/check.h"

namespace mace::nn {

GradSlot MakeGradSlot(const std::vector<tensor::Tensor>& parameters) {
  GradSlot slot(parameters.size());
  for (size_t p = 0; p < parameters.size(); ++p) {
    slot[p].assign(static_cast<size_t>(parameters[p].numel()), 0.0);
  }
  return slot;
}

void CaptureGradients(const std::vector<tensor::Tensor>& parameters,
                      GradSlot* slot) {
  MACE_CHECK(slot != nullptr && slot->size() == parameters.size());
  for (size_t p = 0; p < parameters.size(); ++p) {
    const std::vector<double>& grad = parameters[p].grad();
    std::vector<double>& dst = (*slot)[p];
    MACE_CHECK(grad.size() == dst.size())
        << "gradient buffer of parameter " << p
        << " does not match its slot (" << grad.size() << " vs "
        << dst.size() << ")";
    std::copy(grad.begin(), grad.end(), dst.begin());
  }
}

void TreeReduceGradSlots(std::vector<GradSlot>* slots, size_t count) {
  MACE_CHECK(slots != nullptr && count >= 1 && count <= slots->size());
  for (size_t stride = 1; stride < count; stride *= 2) {
    for (size_t i = 0; i + stride < count; i += 2 * stride) {
      GradSlot& into = (*slots)[i];
      const GradSlot& from = (*slots)[i + stride];
      MACE_CHECK(into.size() == from.size());
      for (size_t p = 0; p < into.size(); ++p) {
        std::vector<double>& a = into[p];
        const std::vector<double>& b = from[p];
        MACE_CHECK(a.size() == b.size());
        for (size_t j = 0; j < a.size(); ++j) a[j] += b[j];
      }
    }
  }
}

}  // namespace mace::nn
