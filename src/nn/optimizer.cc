#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace mace::nn {

using tensor::Tensor;

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const Tensor& p : parameters_) {
    MACE_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameters must be differentiable leaves";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

void Optimizer::ClipGradNorm(double max_norm) {
  MACE_CHECK(max_norm > 0.0);
  double total = 0.0;
  for (const Tensor& p : parameters_) {
    for (double g : p.grad()) total += g * g;
  }
  const double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (Tensor& p : parameters_) {
    // Gradients live on the node; scale them through the mutable view.
    auto& node = *p.node();
    for (double& g : node.grad) g *= scale;
  }
}

Sgd::Sgd(std::vector<Tensor> parameters, double learning_rate,
         double momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  velocity_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].assign(parameters_[i].data().size(), 0.0);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    std::vector<double>& values = p.mutable_data();
    const std::vector<double>& grad = p.grad();
    std::vector<double>& vel = velocity_[i];
    for (size_t j = 0; j < values.size(); ++j) {
      if (momentum_ != 0.0) {
        vel[j] = momentum_ * vel[j] + grad[j];
        values[j] -= learning_rate_ * vel[j];
      } else {
        values[j] -= learning_rate_ * grad[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, double learning_rate, double beta1,
           double beta2, double epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    first_moment_[i].assign(parameters_[i].data().size(), 0.0);
    second_moment_[i].assign(parameters_[i].data().size(), 0.0);
  }
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    std::vector<double>& values = p.mutable_data();
    const std::vector<double>& grad = p.grad();
    std::vector<double>& m = first_moment_[i];
    std::vector<double>& v = second_moment_[i];
    for (size_t j = 0; j < values.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      values[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace mace::nn
