#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mace::nn {

using tensor::Tensor;

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const Tensor& p : parameters_) {
    MACE_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameters must be differentiable leaves";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

void Optimizer::ClipGradNorm(double max_norm) {
  MACE_CHECK(max_norm > 0.0);
  double total = 0.0;
  for (const Tensor& p : parameters_) {
    for (double g : p.grad()) total += g * g;
  }
  double norm = std::sqrt(total);
  // Covers norm == 0 and denormal norms: nothing to rescale, and skipping
  // avoids the degenerate max_norm/norm quotient entirely.
  if (norm <= max_norm) return;
  if (!std::isfinite(norm)) {
    // The naive sum of squares overflowed (|g| > ~1e154 squares to inf).
    // Recompute as max|g| * sqrt(sum (g/max|g|)^2), which stays finite for
    // any finite gradients; without this the scale below would be
    // max_norm/inf = 0 and clipping would silently erase the update.
    double max_abs = 0.0;
    for (const Tensor& p : parameters_) {
      for (double g : p.grad()) max_abs = std::max(max_abs, std::fabs(g));
    }
    if (!std::isfinite(max_abs) || max_abs == 0.0) {
      // Inf/NaN gradients: no finite rescale is meaningful, and
      // multiplying would turn inf into NaN and spread it everywhere.
      return;
    }
    double scaled_total = 0.0;
    for (const Tensor& p : parameters_) {
      for (double g : p.grad()) {
        const double r = g / max_abs;
        scaled_total += r * r;
      }
    }
    norm = max_abs * std::sqrt(scaled_total);
    if (!std::isfinite(norm) || norm <= max_norm) return;
  }
  const double scale = max_norm / norm;
  for (Tensor& p : parameters_) {
    for (double& g : p.mutable_grad()) g *= scale;
  }
}

void Optimizer::LoadGradients(const GradSlot& reduced, double scale) {
  MACE_CHECK(reduced.size() == parameters_.size())
      << "reduced gradients cover " << reduced.size() << " parameters, "
      << "optimizer holds " << parameters_.size();
  for (size_t p = 0; p < parameters_.size(); ++p) {
    std::vector<double>& grad = parameters_[p].mutable_grad();
    const std::vector<double>& src = reduced[p];
    MACE_CHECK(grad.size() == src.size());
    for (size_t j = 0; j < grad.size(); ++j) grad[j] = scale * src[j];
  }
}

Sgd::Sgd(std::vector<Tensor> parameters, double learning_rate,
         double momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  velocity_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].assign(parameters_[i].data().size(), 0.0);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    std::vector<double>& values = p.mutable_data();
    const std::vector<double>& grad = p.grad();
    std::vector<double>& vel = velocity_[i];
    for (size_t j = 0; j < values.size(); ++j) {
      if (momentum_ != 0.0) {
        vel[j] = momentum_ * vel[j] + grad[j];
        values[j] -= learning_rate_ * vel[j];
      } else {
        values[j] -= learning_rate_ * grad[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, double learning_rate, double beta1,
           double beta2, double epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    first_moment_[i].assign(parameters_[i].data().size(), 0.0);
    second_moment_[i].assign(parameters_[i].data().size(), 0.0);
  }
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    std::vector<double>& values = p.mutable_data();
    const std::vector<double>& grad = p.grad();
    std::vector<double>& m = first_moment_[i];
    std::vector<double>& v = second_moment_[i];
    for (size_t j = 0; j < values.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      values[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace mace::nn
