#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace mace::nn {

using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

Tensor GlorotUniform(Shape shape, int fan_in, int fan_out, Rng* rng) {
  MACE_CHECK(rng != nullptr);
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  return Tensor::RandomUniform(std::move(shape), rng, -limit, limit,
                               /*requires_grad=*/true);
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  MACE_CHECK(in_features > 0 && out_features > 0);
  weight_ = GlorotUniform(Shape{in_features, out_features}, in_features,
                          out_features, rng);
  if (bias) {
    bias_ = Tensor::Zeros(Shape{out_features}, /*requires_grad=*/true);
  }
}

Tensor Linear::Forward(const Tensor& input) {
  MACE_CHECK(input.ndim() == 2 && input.dim(1) == in_features_)
      << "Linear expects [N, " << in_features_ << "], got "
      << tensor::ShapeToString(input.shape());
  Tensor out = MatMul(input, weight_);
  if (bias_.defined()) out = Add(out, bias_);
  return out;
}

std::vector<Tensor> Linear::Parameters() const {
  std::vector<Tensor> params{weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

// ---------------------------------------------------------------------------
// Conv1dLayer
// ---------------------------------------------------------------------------

Conv1dLayer::Conv1dLayer(int in_channels, int out_channels, int kernel,
                         int stride, Rng* rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride) {
  MACE_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
             stride > 0);
  const int fan_in = in_channels * kernel;
  const int fan_out = out_channels * kernel;
  weight_ = GlorotUniform(Shape{out_channels, in_channels, kernel}, fan_in,
                          fan_out, rng);
  if (bias) {
    bias_ = Tensor::Zeros(Shape{out_channels}, /*requires_grad=*/true);
  }
}

Tensor Conv1dLayer::Forward(const Tensor& input) {
  return tensor::Conv1d(input, weight_, bias_, stride_);
}

std::vector<Tensor> Conv1dLayer::Parameters() const {
  std::vector<Tensor> params{weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

// ---------------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------------

Tensor Activation::Forward(const Tensor& input) {
  switch (kind_) {
    case ActivationKind::kRelu:
      return Relu(input);
    case ActivationKind::kTanh:
      return Tanh(input);
    case ActivationKind::kSigmoid:
      return Sigmoid(input);
    case ActivationKind::kIdentity:
      return input;
  }
  MACE_CHECK(false) << "unreachable activation kind";
  return input;
}

// ---------------------------------------------------------------------------
// Lstm
// ---------------------------------------------------------------------------

Lstm::Lstm(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  MACE_CHECK(input_size > 0 && hidden_size > 0);
  w_ih_ = GlorotUniform(Shape{input_size, 4 * hidden_size}, input_size,
                        4 * hidden_size, rng);
  w_hh_ = GlorotUniform(Shape{hidden_size, 4 * hidden_size}, hidden_size,
                        4 * hidden_size, rng);
  bias_ = Tensor::Zeros(Shape{4 * hidden_size}, /*requires_grad=*/true);
}

Tensor Lstm::Forward(const Tensor& sequence) {
  MACE_CHECK(sequence.ndim() == 2 && sequence.dim(1) == input_size_)
      << "Lstm expects [T, " << input_size_ << "], got "
      << tensor::ShapeToString(sequence.shape());
  const Index steps = sequence.dim(0);
  const Index hidden = hidden_size_;

  Tensor h = Tensor::Zeros(Shape{1, hidden});
  Tensor c = Tensor::Zeros(Shape{1, hidden});
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(steps));
  for (Index t = 0; t < steps; ++t) {
    Tensor x_t = Slice(sequence, /*axis=*/0, t, t + 1);  // [1, in]
    Tensor gates = Add(Add(MatMul(x_t, w_ih_), MatMul(h, w_hh_)), bias_);
    Tensor i_gate = Sigmoid(Slice(gates, 1, 0, hidden));
    Tensor f_gate = Sigmoid(Slice(gates, 1, hidden, 2 * hidden));
    Tensor g_gate = Tanh(Slice(gates, 1, 2 * hidden, 3 * hidden));
    Tensor o_gate = Sigmoid(Slice(gates, 1, 3 * hidden, 4 * hidden));
    c = Add(Mul(f_gate, c), Mul(i_gate, g_gate));
    h = Mul(o_gate, Tanh(c));
    outputs.push_back(h);
  }
  return Concat(outputs, /*axis=*/0);  // [T, hidden]
}

std::vector<Tensor> Lstm::Parameters() const { return {w_ih_, w_hh_, bias_}; }

// ---------------------------------------------------------------------------
// SelfAttention
// ---------------------------------------------------------------------------

SelfAttention::SelfAttention(int dim, Rng* rng) : dim_(dim) {
  MACE_CHECK(dim > 0);
  w_query_ = GlorotUniform(Shape{dim, dim}, dim, dim, rng);
  w_key_ = GlorotUniform(Shape{dim, dim}, dim, dim, rng);
  w_value_ = GlorotUniform(Shape{dim, dim}, dim, dim, rng);
}

Tensor SelfAttention::Forward(const Tensor& sequence) {
  MACE_CHECK(sequence.ndim() == 2 && sequence.dim(1) == dim_)
      << "SelfAttention expects [T, " << dim_ << "], got "
      << tensor::ShapeToString(sequence.shape());
  Tensor q = MatMul(sequence, w_query_);
  Tensor k = MatMul(sequence, w_key_);
  Tensor v = MatMul(sequence, w_value_);
  Tensor scores =
      MulScalar(MatMul(q, Transpose(k)), 1.0 / std::sqrt(double(dim_)));
  Tensor attn = Softmax(scores);
  return MatMul(attn, v);
}

std::vector<Tensor> SelfAttention::Parameters() const {
  return {w_query_, w_key_, w_value_};
}

}  // namespace mace::nn
