#ifndef MACE_NN_OPTIMIZER_H_
#define MACE_NN_OPTIMIZER_H_

#include <vector>

#include "nn/grad_reduce.h"
#include "tensor/tensor.h"

namespace mace::nn {

/// \brief Base class for first-order optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> parameters);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears the gradient buffers of every parameter.
  void ZeroGrad();

  /// \brief Clips gradients to a global L2 norm (no-op when already
  /// within).
  ///
  /// Robust at the edges: a zero or denormal norm never rescales (so no
  /// 0/0 or overflowing quotient), gradients large enough to overflow the
  /// naive sum of squares are clipped through a max-abs-scaled two-pass
  /// norm instead of being silently zeroed by max_norm/inf, and non-finite
  /// gradients (inf/NaN from a diverged step) are left untouched — no
  /// scale factor can make them meaningful, and rescaling would smear NaN
  /// across every parameter.
  void ClipGradNorm(double max_norm);

  /// \brief Overwrites every parameter's gradient buffer with
  /// `scale * reduced[p]` (assignment, not accumulation).
  ///
  /// The data-parallel trainer's hand-off into the sequential update:
  /// shard gradients are tree-reduced into one GradSlot, loaded here with
  /// scale = 1/batch (turning the summed per-window losses into the
  /// minibatch mean), then ClipGradNorm + Step run exactly as in
  /// single-threaded training.
  void LoadGradients(const GradSlot& reduced, double scale);

  const std::vector<tensor::Tensor>& parameters() const {
    return parameters_;
  }

 protected:
  std::vector<tensor::Tensor> parameters_;
};

/// \brief Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> parameters, double learning_rate,
      double momentum = 0.0);

  void Step() override;

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// \brief Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> parameters, double learning_rate,
       double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8);

  void Step() override;

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t step_count_ = 0;
  std::vector<std::vector<double>> first_moment_;
  std::vector<std::vector<double>> second_moment_;
};

}  // namespace mace::nn

#endif  // MACE_NN_OPTIMIZER_H_
