#ifndef MACE_NN_LAYERS_H_
#define MACE_NN_LAYERS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace mace::nn {

/// Supported pointwise nonlinearities.
enum class ActivationKind { kRelu, kTanh, kSigmoid, kIdentity };

/// \brief Fully connected layer: y = x W + b, x is [N, in].
class Linear : public Module {
 public:
  /// Glorot-uniform initialization from `rng`.
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::string name() const override { return "Linear"; }

  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  tensor::Tensor weight_;  // [in, out]
  tensor::Tensor bias_;    // [out] or undefined
};

/// \brief 1-D convolution layer over [N, C, L] inputs, no padding.
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int in_channels, int out_channels, int kernel, int stride,
              Rng* rng, bool bias = true);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::string name() const override { return "Conv1d"; }

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  const tensor::Tensor& weight() const { return weight_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  tensor::Tensor weight_;  // [out, in, kernel]
  tensor::Tensor bias_;    // [out] or undefined
};

/// \brief Stateless pointwise activation as a module.
class Activation : public Module {
 public:
  explicit Activation(ActivationKind kind) : kind_(kind) {}

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  std::string name() const override { return "Activation"; }

 private:
  ActivationKind kind_;
};

/// \brief Single-layer LSTM over a [T, in] sequence; outputs [T, hidden].
///
/// The recurrent substrate for the OmniAnomaly-family baseline. Gates are
/// packed (i, f, g, o) in the weight matrices' column blocks.
class Lstm : public Module {
 public:
  Lstm(int input_size, int hidden_size, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& sequence) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::string name() const override { return "Lstm"; }

  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  tensor::Tensor w_ih_;  // [in, 4H]
  tensor::Tensor w_hh_;  // [H, 4H]
  tensor::Tensor bias_;  // [4H]
};

/// \brief Single-head scaled dot-product self-attention over [T, dim].
///
/// The transformer-family substrate (AnomalyTransformer / TranAD stand-in).
class SelfAttention : public Module {
 public:
  SelfAttention(int dim, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& sequence) override;
  std::vector<tensor::Tensor> Parameters() const override;
  std::string name() const override { return "SelfAttention"; }

 private:
  int dim_;
  tensor::Tensor w_query_;  // [dim, dim]
  tensor::Tensor w_key_;
  tensor::Tensor w_value_;
};

/// Glorot-uniform tensor: U(-limit, limit), limit = sqrt(6 / (fan_in+fan_out)).
tensor::Tensor GlorotUniform(tensor::Shape shape, int fan_in, int fan_out,
                             Rng* rng);

}  // namespace mace::nn

#endif  // MACE_NN_LAYERS_H_
