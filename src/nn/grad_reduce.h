#ifndef MACE_NN_GRAD_REDUCE_H_
#define MACE_NN_GRAD_REDUCE_H_

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace mace::nn {

/// \brief One data-parallel gradient slot: a per-parameter copy of the
/// gradient buffers of one minibatch shard, aligned with the parameter
/// order of the optimizer that will consume the reduction.
///
/// The data-parallel trainer gives every worker thread a private model
/// replica (so Backward() never races on shared grad buffers — see
/// tensor::Tensor::mutable_grad), captures each shard's replica gradients
/// into the shard's slot, and merges the slots with TreeReduceGradSlots.
/// Because slots are indexed by shard — a pure function of the minibatch —
/// and the reduction pairing is fixed, the merged gradient is bit-identical
/// for any thread count.
using GradSlot = std::vector<std::vector<double>>;

/// A zero-filled slot shaped like `parameters`' gradient buffers.
GradSlot MakeGradSlot(const std::vector<tensor::Tensor>& parameters);

/// Copies `parameters`' current gradients into `slot` (shapes must match a
/// prior MakeGradSlot over the same parameter list).
void CaptureGradients(const std::vector<tensor::Tensor>& parameters,
                      GradSlot* slot);

/// \brief Merges slots [0, count) of `slots` into (*slots)[0] by a fixed
/// stride-doubling binary tree: pass 1 adds slot 1 into 0, 3 into 2, ...;
/// pass 2 adds slot 2 into 0, 6 into 4, ...; and so on. The pairing —
/// and therefore every intermediate rounding — depends only on `count`,
/// never on which thread produced which slot or when, which is what makes
/// fit_threads=N training reproduce fit_threads=1 bit for bit.
///
/// Slots [1, count) are left in an unspecified (partially summed) state.
void TreeReduceGradSlots(std::vector<GradSlot>* slots, size_t count);

}  // namespace mace::nn

#endif  // MACE_NN_GRAD_REDUCE_H_
