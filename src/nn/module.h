#ifndef MACE_NN_MODULE_H_
#define MACE_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mace::nn {

/// \brief Base class for neural-network layers.
///
/// A module owns its parameter tensors (leaves with requires_grad = true)
/// and maps one input tensor to one output tensor, building the autograd
/// graph as it goes.
class Module {
 public:
  virtual ~Module() = default;

  /// Applies the layer.
  virtual tensor::Tensor Forward(const tensor::Tensor& input) = 0;

  /// All trainable parameters of this module (and its children).
  virtual std::vector<tensor::Tensor> Parameters() const { return {}; }

  /// Layer name for diagnostics.
  virtual std::string name() const = 0;

  /// Total number of trainable scalars.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const tensor::Tensor& p : Parameters()) total += p.numel();
    return total;
  }
};

using ModulePtr = std::shared_ptr<Module>;

/// \brief Applies child modules in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> layers)
      : layers_(std::move(layers)) {}

  void Add(ModulePtr layer) { layers_.push_back(std::move(layer)); }

  tensor::Tensor Forward(const tensor::Tensor& input) override {
    tensor::Tensor x = input;
    for (const ModulePtr& layer : layers_) x = layer->Forward(x);
    return x;
  }

  std::vector<tensor::Tensor> Parameters() const override {
    std::vector<tensor::Tensor> params;
    for (const ModulePtr& layer : layers_) {
      for (tensor::Tensor& p : [&] { return layer->Parameters(); }()) {
        params.push_back(std::move(p));
      }
    }
    return params;
  }

  std::string name() const override { return "Sequential"; }

  const std::vector<ModulePtr>& layers() const { return layers_; }

 private:
  std::vector<ModulePtr> layers_;
};

}  // namespace mace::nn

#endif  // MACE_NN_MODULE_H_
