#include "net/router.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace mace::net {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Drains a non-blocking socket into the decoder. Returns false on EOF
/// or a hard error (caller closes / fails the peer).
bool DrainSocket(int fd, wire::FrameDecoder* decoder) {
  uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    if (n == 0) return false;
    decoder->Append(buffer, static_cast<size_t>(n));
  }
}

/// Flushes `outbound[sent..]`; true while the connection is healthy.
bool FlushBuffer(int fd, std::vector<uint8_t>* outbound, size_t* sent) {
  while (*sent < outbound->size()) {
    const ssize_t n = ::send(fd, outbound->data() + *sent,
                             outbound->size() - *sent, MSG_NOSIGNAL);
    if (n > 0) {
      *sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;
  }
  if (*sent == outbound->size()) {
    outbound->clear();
    *sent = 0;
  } else if (*sent > (1u << 20)) {
    outbound->erase(outbound->begin(),
                    outbound->begin() + static_cast<ptrdiff_t>(*sent));
    *sent = 0;
  }
  return true;
}

}  // namespace

size_t Router::RingPick(const std::vector<std::string>& backends,
                        size_t vnodes, const std::string& tenant) {
  // Mirrors the ring Init() builds; kept static so placement is testable
  // and other processes can predict it.
  std::vector<std::pair<uint64_t, size_t>> ring;
  ring.reserve(backends.size() * vnodes);
  for (size_t b = 0; b < backends.size(); ++b) {
    for (size_t v = 0; v < vnodes; ++v) {
      const std::string key = backends[b] + "#" + std::to_string(v);
      ring.emplace_back(wire::RingHash64(key), b);
    }
  }
  std::sort(ring.begin(), ring.end());
  const uint64_t h = wire::RingHash64(tenant);
  auto it = std::lower_bound(
      ring.begin(), ring.end(), std::make_pair(h, size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring.end()) it = ring.begin();
  return it->second;
}

Router::Router(RouterOptions options)
    : options_(std::move(options)), qos_(options_.qos) {
  obs::MetricsRegistry& metrics = obs::Metrics();
  const obs::Labels labels = {{"role", "router"}};
  forwarded_counter_ = metrics.GetCounter(
      "mace_net_router_forwarded_total",
      "Requests forwarded to a backend", labels);
  rejected_counter_ = metrics.GetCounter(
      "mace_net_router_rejected_total",
      "Requests rejected (QoS, backend overload, backend down)", labels);
  backend_errors_counter_ = metrics.GetCounter(
      "mace_net_router_backend_errors_total",
      "Backend connection failures", labels);
  protocol_errors_counter_ = metrics.GetCounter(
      "mace_net_protocol_errors_total",
      "Connections dropped for MWIREv1 protocol violations", labels);
  inflight_gauge_ = metrics.GetGauge(
      "mace_net_router_inflight", "Requests awaiting a backend response",
      labels);
}

Router::~Router() { Stop(); }

Result<std::unique_ptr<Router>> Router::Start(RouterOptions options) {
  if (options.backends.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  if (options.vnodes < 1) {
    return Status::InvalidArgument("vnodes must be >= 1");
  }
  std::unique_ptr<Router> router(new Router(std::move(options)));
  MACE_RETURN_IF_ERROR(router->Init());
  router->loop_ = std::thread([raw = router.get()] { raw->Loop(); });
  return router;
}

Status Router::Init() {
  // Connect every backend up front: a router that can't reach its
  // backends should fail fast at start, not shed live traffic later.
  backends_.reserve(options_.backends.size());
  for (const std::string& address : options_.backends) {
    MACE_ASSIGN_OR_RETURN(auto host_port, SplitHostPort(address));
    Backend backend;
    backend.address = address;
    MACE_ASSIGN_OR_RETURN(backend.fd,
                          TcpConnect(host_port.first, host_port.second));
    MACE_RETURN_IF_ERROR(SetNonBlocking(backend.fd.get()));
    backend.alive = true;
    backends_.push_back(std::move(backend));
  }
  ring_.reserve(backends_.size() * options_.vnodes);
  for (size_t b = 0; b < backends_.size(); ++b) {
    for (size_t v = 0; v < options_.vnodes; ++v) {
      const std::string key =
          backends_[b].address + "#" + std::to_string(v);
      ring_.emplace_back(wire::RingHash64(key), b);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  MACE_ASSIGN_OR_RETURN(listen_fd_,
                        TcpListen(options_.host, options_.port, &port_));
  MACE_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
  epoll_fd_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) return Status::IoError("epoll_create1 failed");
  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) return Status::IoError("eventfd failed");

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) !=
      0) {
    return Status::IoError("epoll_ctl add listen failed");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) !=
      0) {
    return Status::IoError("epoll_ctl add eventfd failed");
  }
  for (size_t b = 0; b < backends_.size(); ++b) {
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = backends_[b].fd.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, backends_[b].fd.get(),
                    &ev) != 0) {
      return Status::IoError("epoll_ctl add backend failed");
    }
    backend_by_fd_[backends_[b].fd.get()] = b;
  }
  return Status::OK();
}

void Router::Stop() {
  if (stopping_.exchange(true)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  clients_.clear();
  clients_by_id_.clear();
  pending_.clear();
}

void Router::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void Router::Loop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_.get()) {
        Accept();
        continue;
      }
      if (fd == wake_fd_.get()) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto backend_it = backend_by_fd_.find(fd);
      if (backend_it != backend_by_fd_.end()) {
        const size_t b = backend_it->second;
        if (events[i].events & (EPOLLERR | EPOLLHUP)) {
          FailBackend(b, "backend connection error");
          continue;
        }
        if (events[i].events & EPOLLOUT) FlushBackend(b);
        if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
          HandleBackendReadable(b);
        }
        continue;
      }
      auto it = clients_.find(fd);
      if (it == clients_.end()) continue;
      std::shared_ptr<ClientConn> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseClient(fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) FlushClient(conn);
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        HandleClientReadable(conn);
      }
    }
  }
}

void Router::Accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (clients_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    (void)SetNoDelay(fd);
    auto conn = std::make_shared<ClientConn>(Fd(fd), next_client_id_++);
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;
    }
    clients_by_id_.emplace(conn->id, conn);
    clients_.emplace(fd, std::move(conn));
  }
}

void Router::HandleClientReadable(const std::shared_ptr<ClientConn>& conn) {
  const bool healthy = DrainSocket(conn->fd.get(), &conn->decoder);
  for (;;) {
    Result<std::optional<wire::OwnedFrame>> next = conn->decoder.Next();
    if (!next.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_counter_->Increment();
      CloseClient(conn->fd.get());
      return;
    }
    if (!next.value().has_value()) break;
    if (!DispatchClientFrame(conn, std::move(*next.value()))) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_counter_->Increment();
      CloseClient(conn->fd.get());
      return;
    }
  }
  if (!healthy) CloseClient(conn->fd.get());
}

bool Router::DispatchClientFrame(const std::shared_ptr<ClientConn>& conn,
                                 wire::OwnedFrame frame) {
  switch (frame.type) {
    case wire::FrameType::kPing:
      SendToClient(conn.get(), wire::FrameType::kPong, frame.request_id,
                   {});
      return true;
    case wire::FrameType::kStatsRequest: {
      std::vector<uint8_t> payload;
      wire::EncodeStatsResponse(StatsLine(), &payload);
      SendToClient(conn.get(), wire::FrameType::kStatsResponse,
                   frame.request_id, payload);
      return true;
    }
    case wire::FrameType::kScoreRequest: {
      Result<wire::ScoreRouting> routing = wire::PeekScoreRouting(
          frame.payload.data(), frame.payload.size());
      if (!routing.ok()) {
        SendRejection(conn.get(), wire::FrameType::kScoreResponse,
                      frame.request_id, routing.status().message());
        return true;
      }
      ForwardOrReject(conn, frame, routing.value().tenant,
                      routing.value().priority);
      return true;
    }
    case wire::FrameType::kCloseRequest: {
      Result<wire::CloseRequest> request = wire::DecodeCloseRequest(
          frame.payload.data(), frame.payload.size());
      if (!request.ok()) {
        SendRejection(conn.get(), wire::FrameType::kCloseResponse,
                      frame.request_id, request.status().message());
        return true;
      }
      // Closes ride the same ring and pending table; priority high so a
      // session teardown is never refused behind scoring QoS.
      ForwardOrReject(conn, frame, request.value().tenant, /*priority=*/0);
      return true;
    }
    default:
      return false;
  }
}

void Router::ForwardOrReject(const std::shared_ptr<ClientConn>& conn,
                             const wire::OwnedFrame& frame,
                             const std::string& tenant, uint8_t priority) {
  const wire::FrameType response_type =
      frame.type == wire::FrameType::kScoreRequest
          ? wire::FrameType::kScoreResponse
          : wire::FrameType::kCloseResponse;
  if (frame.type == wire::FrameType::kScoreRequest &&
      !qos_.Admit(tenant, static_cast<serve::Priority>(priority),
                  SteadySeconds())) {
    SendRejection(conn.get(), response_type, frame.request_id,
                  "rate limited by per-tenant QoS");
    return;
  }
  const uint64_t h = wire::RingHash64(tenant);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  Backend& backend = backends_[it->second];
  if (!backend.alive) {
    SendRejection(conn.get(), response_type, frame.request_id,
                  "backend " + backend.address + " is down");
    return;
  }
  if (backend.inflight >= options_.max_inflight_per_backend ||
      backend.outbound.size() - backend.sent >
          options_.write_buffer_limit) {
    SendRejection(conn.get(), response_type, frame.request_id,
                  "backend " + backend.address + " overloaded");
    return;
  }
  const uint64_t router_id = next_router_id_++;
  pending_.emplace(router_id,
                   Pending{conn->id, frame.request_id, it->second});
  wire::AppendFrame(&backend.outbound, frame.type, router_id,
                    frame.payload);
  backend.inflight++;
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  forwarded_counter_->Increment();
  inflight_gauge_->Set(static_cast<double>(pending_.size()));
  FlushBackend(it->second);
}

void Router::HandleBackendReadable(size_t backend_index) {
  Backend& backend = backends_[backend_index];
  const bool healthy = DrainSocket(backend.fd.get(), &backend.decoder);
  for (;;) {
    Result<std::optional<wire::OwnedFrame>> next = backend.decoder.Next();
    if (!next.ok()) {
      FailBackend(backend_index, "backend protocol error");
      return;
    }
    if (!next.value().has_value()) break;
    HandleBackendFrame(backend_index, std::move(*next.value()));
  }
  if (!healthy) FailBackend(backend_index, "backend closed connection");
}

void Router::HandleBackendFrame(size_t backend_index,
                                wire::OwnedFrame frame) {
  if (frame.type != wire::FrameType::kScoreResponse &&
      frame.type != wire::FrameType::kCloseResponse) {
    FailBackend(backend_index, "unexpected backend frame type");
    return;
  }
  auto it = pending_.find(frame.request_id);
  if (it == pending_.end()) return;  // client gone or duplicate: drop
  const Pending pending = it->second;
  pending_.erase(it);
  backends_[backend_index].inflight--;
  inflight_gauge_->Set(static_cast<double>(pending_.size()));
  auto client_it = clients_by_id_.find(pending.client_conn_id);
  if (client_it == clients_by_id_.end()) return;
  SendToClient(client_it->second.get(), frame.type,
               pending.client_request_id, frame.payload);
}

void Router::FailBackend(size_t backend_index, const std::string& reason) {
  Backend& backend = backends_[backend_index];
  if (!backend.alive) return;
  backend.alive = false;
  backend_errors_.fetch_add(1, std::memory_order_relaxed);
  backend_errors_counter_->Increment();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, backend.fd.get(), nullptr);
  backend_by_fd_.erase(backend.fd.get());
  backend.fd.Close();
  // Every request waiting on this backend gets a terminal error — the
  // client is never left hanging on a response that cannot come.
  std::vector<std::pair<uint64_t, Pending>> orphaned;
  for (const auto& [router_id, pending] : pending_) {
    if (pending.backend == backend_index) {
      orphaned.emplace_back(router_id, pending);
    }
  }
  for (const auto& [router_id, pending] : orphaned) {
    pending_.erase(router_id);
    auto client_it = clients_by_id_.find(pending.client_conn_id);
    if (client_it == clients_by_id_.end()) continue;
    wire::ScoreResponse response;
    response.code = StatusCode::kIoError;
    response.message = reason + " (" + backend.address + ")";
    std::vector<uint8_t> payload;
    wire::EncodeScoreResponse(response, &payload);
    SendToClient(client_it->second.get(),
                 wire::FrameType::kScoreResponse,
                 pending.client_request_id, payload);
  }
  backend.inflight = 0;
  inflight_gauge_->Set(static_cast<double>(pending_.size()));
}

void Router::SendToClient(ClientConn* conn, wire::FrameType type,
                          uint64_t request_id,
                          const std::vector<uint8_t>& payload) {
  wire::AppendFrame(&conn->outbound, type, request_id, payload);
  auto it = clients_.find(conn->fd.get());
  if (it != clients_.end()) FlushClient(it->second);
}

void Router::SendRejection(ClientConn* conn, wire::FrameType type,
                           uint64_t request_id,
                           const std::string& message) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  rejected_counter_->Increment();
  wire::ScoreResponse response;
  response.code = StatusCode::kFailedPrecondition;
  response.message = message;
  response.rejected = true;
  std::vector<uint8_t> payload;
  wire::EncodeScoreResponse(response, &payload);
  SendToClient(conn, type, request_id, payload);
}

void Router::UpdateClientEpoll(ClientConn* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
}

void Router::UpdateBackendEpoll(size_t backend_index) {
  Backend& backend = backends_[backend_index];
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  if (backend.want_write) ev.events |= EPOLLOUT;
  ev.data.fd = backend.fd.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, backend.fd.get(), &ev);
}

void Router::FlushClient(const std::shared_ptr<ClientConn>& conn) {
  if (!FlushBuffer(conn->fd.get(), &conn->outbound, &conn->sent)) {
    CloseClient(conn->fd.get());
    return;
  }
  const bool want_write = conn->outbound.size() > conn->sent;
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    UpdateClientEpoll(conn.get());
  }
}

void Router::FlushBackend(size_t backend_index) {
  Backend& backend = backends_[backend_index];
  if (!backend.alive) return;
  if (!FlushBuffer(backend.fd.get(), &backend.outbound, &backend.sent)) {
    FailBackend(backend_index, "backend write failed");
    return;
  }
  const bool want_write = backend.outbound.size() > backend.sent;
  if (want_write != backend.want_write) {
    backend.want_write = want_write;
    UpdateBackendEpoll(backend_index);
  }
}

void Router::CloseClient(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  clients_by_id_.erase(it->second->id);
  clients_.erase(it);
  // Pending entries for this client stay until their backend responses
  // arrive, then drop at the clients_by_id_ lookup.
}

std::string Router::StatsLine() const {
  size_t alive = 0;
  for (const Backend& backend : backends_) {
    if (backend.alive) ++alive;
  }
  char line[256];
  std::snprintf(line, sizeof(line),
                "router backends %zu/%zu | clients %zu | inflight %zu | "
                "forwarded %llu rejected %llu backend_errors %llu",
                alive, backends_.size(), clients_.size(), pending_.size(),
                static_cast<unsigned long long>(forwarded_.load()),
                static_cast<unsigned long long>(rejected_.load()),
                static_cast<unsigned long long>(backend_errors_.load()));
  return line;
}

}  // namespace mace::net
