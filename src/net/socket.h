#ifndef MACE_NET_SOCKET_H_
#define MACE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"

namespace mace::net {

/// \brief RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Opens a TCP listening socket on `host:port` (SO_REUSEADDR, backlog
/// 512). `port` 0 binds an ephemeral port; `*bound_port` receives the
/// actual port either way.
Result<Fd> TcpListen(const std::string& host, uint16_t port,
                     uint16_t* bound_port);

/// Blocking TCP connect (numeric IPv4 host). TCP_NODELAY is set — this
/// protocol ships many small frames and Nagle would serialize them
/// behind ACKs.
Result<Fd> TcpConnect(const std::string& host, uint16_t port);

/// Splits "host:port". Returns InvalidArgument on a missing or
/// non-numeric port.
Result<std::pair<std::string, uint16_t>> SplitHostPort(
    const std::string& address);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);

/// Blocking write of the whole buffer (retries EINTR and partials).
Status SendAll(int fd, const uint8_t* data, size_t size);

/// Blocking read of up to `size` bytes. Returns 0 on orderly peer close.
Result<size_t> RecvSome(int fd, uint8_t* buffer, size_t size);

}  // namespace mace::net

#endif  // MACE_NET_SOCKET_H_
