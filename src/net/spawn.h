#ifndef MACE_NET_SPAWN_H_
#define MACE_NET_SPAWN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"

namespace mace::net {

/// The line a serving process prints on stdout once it is accepting
/// connections, e.g. "MACE_LISTENING port=41234". Parents block on it
/// instead of polling connect against a racing bind.
inline constexpr char kListeningPrefix[] = "MACE_LISTENING port=";

/// Formats the announcement for a child to print (newline included).
std::string ListeningLine(uint16_t port);
/// Extracts the port from an announcement line.
Result<uint16_t> ParseListeningLine(const std::string& line);

/// \brief One spawned child process with its stdout captured — the
/// multi-process test/bench harness primitive.
///
/// The child dies with its parent (PR_SET_PDEATHSIG + SIGKILL), and the
/// destructor kills and reaps it (SIGTERM, short grace, SIGKILL), so a
/// crashing test never strands router/backend orphans.
class Subprocess {
 public:
  /// fork/execs `argv` (argv[0] is the binary path) with stdout piped
  /// back to the parent.
  static Result<std::unique_ptr<Subprocess>> Spawn(
      std::vector<std::string> argv);

  ~Subprocess();
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Reads child stdout until a line starting with `prefix` appears.
  /// Lines are also buffered, so interleaved output is not lost.
  Result<std::string> WaitForLine(const std::string& prefix,
                                  int timeout_ms);

  /// Convenience: WaitForLine(kListeningPrefix) + ParseListeningLine.
  Result<uint16_t> WaitForListeningPort(int timeout_ms);

  /// SIGTERM, up to `grace_ms` to exit, then SIGKILL; reaps either way.
  /// Idempotent.
  void KillAndReap(int grace_ms = 2000);

  /// True while the child has not been reaped and has not exited.
  bool Running();

  /// The child's exit code, once it has been reaped after a normal exit
  /// (so 0 = it handled SIGTERM and shut down cleanly). Empty while the
  /// child runs or when it died on a signal (e.g. the SIGKILL escalation).
  std::optional<int> exit_code() const { return exit_code_; }

  int pid() const { return pid_; }

 private:
  Subprocess(int pid, Fd stdout_fd)
      : pid_(pid), stdout_(std::move(stdout_fd)) {}

  void RecordExit(int status);

  int pid_ = -1;
  Fd stdout_;
  std::string buffered_;
  std::optional<int> exit_code_;
};

}  // namespace mace::net

#endif  // MACE_NET_SPAWN_H_
