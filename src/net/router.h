#ifndef MACE_NET_ROUTER_H_
#define MACE_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/qos.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace mace::net {

struct RouterOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral
  /// Backend addresses, "host:port". Placement is a consistent-hash ring
  /// over these strings, so the same list (in any order) yields the same
  /// tenant → backend map in every process.
  std::vector<std::string> backends;
  /// Virtual nodes per backend on the ring.
  size_t vnodes = 64;
  /// Requests in flight per backend before new ones are rejected
  /// (backpressure surfaces to the client as a rejected response, not as
  /// unbounded router memory).
  size_t max_inflight_per_backend = 8192;
  size_t max_connections = 4096;
  size_t write_buffer_limit = 4u << 20;
  /// Router-level per-tenant admission control (fleet-wide QoS sits here,
  /// in front of every backend). rate_per_tenant <= 0 disables.
  serve::QosConfig qos;
};

/// \brief MWIREv1 fan-in router: consistent-hashes tenants across N
/// backend scoring processes.
///
/// One epoll loop owns the listening socket, every client connection and
/// every backend connection, so all state is single-threaded. Score and
/// close requests are routed on the tenant prefix (PeekScoreRouting) and
/// the payload bytes are forwarded verbatim — the router never decodes
/// observations. Request ids are remapped (client ids collide across
/// connections) through a pending table and restored on the way back.
///
/// Sessions are stateful, so a dead backend's tenants are NOT re-hashed:
/// in-flight requests get error responses and later requests are
/// rejected until the backend set is restored by a restart.
class Router {
 public:
  static Result<std::unique_ptr<Router>> Start(RouterOptions options);

  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void Stop();

  uint16_t port() const { return port_; }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t backend_errors() const { return backend_errors_; }
  uint64_t protocol_errors() const { return protocol_errors_; }

  /// The ring's backend index for a tenant — exposed so tests can assert
  /// placement stability without a live router.
  static size_t RingPick(const std::vector<std::string>& backends,
                         size_t vnodes, const std::string& tenant);

 private:
  struct ClientConn {
    explicit ClientConn(Fd fd, uint64_t id) : fd(std::move(fd)), id(id) {}
    Fd fd;
    uint64_t id;
    wire::FrameDecoder decoder;
    std::vector<uint8_t> outbound;
    size_t sent = 0;
    bool want_write = false;
  };

  struct Backend {
    std::string address;
    Fd fd;
    wire::FrameDecoder decoder;
    std::vector<uint8_t> outbound;
    size_t sent = 0;
    bool want_write = false;
    bool alive = false;
    size_t inflight = 0;
  };

  struct Pending {
    uint64_t client_conn_id = 0;
    uint64_t client_request_id = 0;
    size_t backend = 0;
  };

  explicit Router(RouterOptions options);

  Status Init();
  void Loop();
  void Accept();
  void HandleClientReadable(const std::shared_ptr<ClientConn>& conn);
  void HandleBackendReadable(size_t backend_index);
  bool DispatchClientFrame(const std::shared_ptr<ClientConn>& conn,
                           wire::OwnedFrame frame);
  void ForwardOrReject(const std::shared_ptr<ClientConn>& conn,
                       const wire::OwnedFrame& frame,
                       const std::string& tenant, uint8_t priority);
  void HandleBackendFrame(size_t backend_index, wire::OwnedFrame frame);
  /// Fails every pending request on `backend_index` and marks it dead.
  void FailBackend(size_t backend_index, const std::string& reason);
  void SendToClient(ClientConn* conn, wire::FrameType type,
                    uint64_t request_id,
                    const std::vector<uint8_t>& payload);
  void SendRejection(ClientConn* conn, wire::FrameType type,
                     uint64_t request_id, const std::string& message);
  void FlushClient(const std::shared_ptr<ClientConn>& conn);
  void FlushBackend(size_t backend_index);
  void CloseClient(int fd);
  /// epoll interest update helpers (fd key encodes client vs backend).
  void UpdateClientEpoll(ClientConn* conn);
  void UpdateBackendEpoll(size_t backend_index);
  void WakeLoop();
  std::string StatsLine() const;

  const RouterOptions options_;
  serve::QosController qos_;
  uint16_t port_ = 0;

  Fd listen_fd_;
  Fd epoll_fd_;
  Fd wake_fd_;
  std::vector<Backend> backends_;
  /// Ring: (hash, backend index), sorted by hash.
  std::vector<std::pair<uint64_t, size_t>> ring_;
  std::unordered_map<int, std::shared_ptr<ClientConn>> clients_;
  std::unordered_map<uint64_t, std::shared_ptr<ClientConn>> clients_by_id_;
  std::unordered_map<int, size_t> backend_by_fd_;
  std::unordered_map<uint64_t, Pending> pending_;
  uint64_t next_router_id_ = 1;
  uint64_t next_client_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> backend_errors_{0};
  std::atomic<uint64_t> protocol_errors_{0};

  obs::Counter* forwarded_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* backend_errors_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;

  std::thread loop_;
};

}  // namespace mace::net

#endif  // MACE_NET_ROUTER_H_
