#include "net/client.h"

#include <utility>

namespace mace::net {

Result<std::unique_ptr<WireClient>> WireClient::Connect(
    const std::string& host, uint16_t port) {
  MACE_ASSIGN_OR_RETURN(Fd fd, TcpConnect(host, port));
  return std::unique_ptr<WireClient>(new WireClient(std::move(fd)));
}

Status WireClient::SendFrame(wire::FrameType type, uint64_t request_id,
                             const std::vector<uint8_t>& payload) {
  scratch_.clear();
  wire::AppendFrame(&scratch_, type, request_id, payload);
  return SendAll(fd_.get(), scratch_.data(), scratch_.size());
}

Result<wire::OwnedFrame> WireClient::NextResponse() {
  for (;;) {
    MACE_ASSIGN_OR_RETURN(std::optional<wire::OwnedFrame> frame,
                          decoder_.Next());
    if (frame.has_value()) return std::move(*frame);
    uint8_t buffer[64 * 1024];
    MACE_ASSIGN_OR_RETURN(size_t n,
                          RecvSome(fd_.get(), buffer, sizeof(buffer)));
    if (n == 0) {
      return Status::IoError("connection closed by peer");
    }
    decoder_.Append(buffer, n);
  }
}

Result<wire::OwnedFrame> WireClient::ExpectFrame(wire::FrameType want,
                                                 uint64_t request_id) {
  MACE_ASSIGN_OR_RETURN(wire::OwnedFrame frame, NextResponse());
  if (frame.type != want) {
    return Status::IoError(std::string("expected ") +
                           wire::FrameTypeName(want) + ", got " +
                           wire::FrameTypeName(frame.type));
  }
  if (frame.request_id != request_id) {
    return Status::IoError("response id " +
                           std::to_string(frame.request_id) +
                           " does not match request id " +
                           std::to_string(request_id));
  }
  return frame;
}

Status WireClient::Ping() {
  const uint64_t id = next_request_id_++;
  MACE_RETURN_IF_ERROR(SendFrame(wire::FrameType::kPing, id, {}));
  return ExpectFrame(wire::FrameType::kPong, id).status();
}

Result<wire::ScoreResponse> WireClient::Score(
    const wire::ScoreRequest& request) {
  MACE_ASSIGN_OR_RETURN(uint64_t id, SendScore(request));
  MACE_ASSIGN_OR_RETURN(wire::OwnedFrame frame,
                        ExpectFrame(wire::FrameType::kScoreResponse, id));
  return wire::DecodeScoreResponse(frame.payload.data(),
                                   frame.payload.size());
}

Result<wire::ScoreResponse> WireClient::CloseSession(
    const std::string& tenant, int32_t service) {
  MACE_ASSIGN_OR_RETURN(uint64_t id, SendClose(tenant, service));
  MACE_ASSIGN_OR_RETURN(wire::OwnedFrame frame,
                        ExpectFrame(wire::FrameType::kCloseResponse, id));
  return wire::DecodeScoreResponse(frame.payload.data(),
                                   frame.payload.size());
}

Result<std::string> WireClient::Stats() {
  const uint64_t id = next_request_id_++;
  MACE_RETURN_IF_ERROR(SendFrame(wire::FrameType::kStatsRequest, id, {}));
  MACE_ASSIGN_OR_RETURN(wire::OwnedFrame frame,
                        ExpectFrame(wire::FrameType::kStatsResponse, id));
  return wire::DecodeStatsResponse(frame.payload.data(),
                                   frame.payload.size());
}

Result<uint64_t> WireClient::SendScore(const wire::ScoreRequest& request) {
  std::vector<uint8_t> payload;
  wire::EncodeScoreRequest(request, &payload);
  const uint64_t id = next_request_id_++;
  MACE_RETURN_IF_ERROR(
      SendFrame(wire::FrameType::kScoreRequest, id, payload));
  return id;
}

Result<uint64_t> WireClient::SendClose(const std::string& tenant,
                                       int32_t service) {
  wire::CloseRequest request;
  request.tenant = tenant;
  request.service = service;
  std::vector<uint8_t> payload;
  wire::EncodeCloseRequest(request, &payload);
  const uint64_t id = next_request_id_++;
  MACE_RETURN_IF_ERROR(
      SendFrame(wire::FrameType::kCloseRequest, id, payload));
  return id;
}

}  // namespace mace::net
