#ifndef MACE_NET_SERVER_H_
#define MACE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "serve/qos.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace mace::net {

struct ScoreServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  size_t max_connections = 4096;
  /// Outbound bytes buffered per connection before the server stops
  /// *reading* from it (backpressure: a slow reader throttles its own
  /// request stream instead of growing server memory). Reading resumes
  /// once the buffer drains below half this limit.
  size_t write_buffer_limit = 4u << 20;
  /// Per-tenant admission control; rate_per_tenant <= 0 disables it.
  serve::QosConfig qos;
};

/// \brief Non-blocking MWIREv1 front door over a ServeFrontend.
///
/// One epoll event-loop thread owns every socket (edge-triggered accept /
/// read / write, per-connection FrameDecoder reassembly, bounded write
/// queues). Score and close requests are handed to the frontend's
/// completion-callback path, so the loop never blocks on scoring: shard
/// worker threads encode the response into the connection's outbound
/// buffer and nudge the loop through an eventfd.
///
/// Protocol errors (bad magic/version/CRC, unexpected frame type) are
/// connection-fatal; malformed *payloads* on an intact frame get an
/// error response and the connection lives on.
///
/// `frontend` is borrowed and must outlive the server. Stop() (also run
/// by the destructor) joins the loop, then flushes the frontend so every
/// in-flight callback lands before connection state is freed.
class ScoreServer {
 public:
  static Result<std::unique_ptr<ScoreServer>> Start(
      serve::ServeFrontend* frontend, ScoreServerOptions options);

  ~ScoreServer();
  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  void Stop();

  uint16_t port() const { return port_; }
  serve::QosController& qos() { return qos_; }

  uint64_t connections_opened() const { return connections_opened_; }
  uint64_t protocol_errors() const { return protocol_errors_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t read_pauses() const { return read_pauses_; }

 private:
  struct Connection {
    explicit Connection(Fd fd) : fd(std::move(fd)) {}
    Fd fd;
    wire::FrameDecoder decoder;
    /// Outbound byte queue. Shard-worker callbacks append under `mu`;
    /// the loop thread drains. `sent` is the flushed prefix.
    std::mutex mu;
    std::vector<uint8_t> outbound;
    size_t sent = 0;
    bool want_write = false;   ///< EPOLLOUT currently armed (loop only)
    bool read_paused = false;  ///< EPOLLIN currently disarmed (loop only)
    bool dead = false;         ///< closed; callbacks drop their output
  };

  ScoreServer(serve::ServeFrontend* frontend, ScoreServerOptions options);

  Status Init();
  void Loop();
  void Accept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Dispatches one reassembled frame. Returns false when the frame is a
  /// protocol violation and the connection must close.
  bool Dispatch(const std::shared_ptr<Connection>& conn,
                wire::OwnedFrame frame);
  void HandleScore(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id, const wire::OwnedFrame& frame);
  /// Appends a frame to the connection's outbound queue (any thread).
  void SendFrame(const std::shared_ptr<Connection>& conn,
                 wire::FrameType type, uint64_t request_id,
                 const std::vector<uint8_t>& payload);
  void SendErrorResponse(const std::shared_ptr<Connection>& conn,
                         wire::FrameType type, uint64_t request_id,
                         StatusCode code, const std::string& message,
                         bool rejected);
  /// Flushes as much outbound as the socket takes; arms/disarms
  /// EPOLLOUT and re-arms reading when backpressure clears (loop only).
  void FlushOutbound(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);
  void UpdateEpoll(Connection* conn);
  void WakeLoop();

  serve::ServeFrontend* const frontend_;
  const ScoreServerOptions options_;
  serve::QosController qos_;
  uint16_t port_ = 0;

  Fd listen_fd_;
  Fd epoll_fd_;
  Fd wake_fd_;  ///< eventfd: callbacks nudge the loop after appending
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  /// Connections with freshly appended outbound bytes (callback threads
  /// push fds here; the loop drains on each eventfd wakeup).
  std::mutex pending_mu_;
  std::vector<int> pending_write_fds_;

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> read_pauses_{0};

  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* frames_rx_counter_ = nullptr;
  obs::Counter* frames_tx_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Counter* read_pauses_counter_ = nullptr;
  obs::Gauge* connections_gauge_ = nullptr;

  std::thread loop_;
  std::atomic<std::thread::id> loop_tid_{};
};

}  // namespace mace::net

#endif  // MACE_NET_SERVER_H_
