#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace mace::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> TcpListen(const std::string& host, uint16_t port,
                     uint16_t* bound_port) {
  MACE_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), 512) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<Fd> TcpConnect(const std::string& host, uint16_t port) {
  MACE_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  MACE_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

Result<std::pair<std::string, uint16_t>> SplitHostPort(
    const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 == address.size()) {
    return Status::InvalidArgument("expected host:port, got: " + address);
  }
  char* end = nullptr;
  const long port = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in: " + address);
  }
  return std::make_pair(address.substr(0, colon),
                        static_cast<uint16_t>(port));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt TCP_NODELAY");
  }
  return Status::OK();
}

Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, uint8_t* buffer, size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace mace::net
