#include "net/server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace mace::net {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScoreServer::ScoreServer(serve::ServeFrontend* frontend,
                         ScoreServerOptions options)
    : frontend_(frontend), options_(std::move(options)), qos_(options_.qos) {
  obs::MetricsRegistry& metrics = obs::Metrics();
  const obs::Labels labels = {{"role", "backend"}};
  connections_counter_ = metrics.GetCounter(
      "mace_net_connections_total", "TCP connections accepted", labels);
  frames_rx_counter_ = metrics.GetCounter(
      "mace_net_frames_rx_total", "Wire frames received", labels);
  frames_tx_counter_ = metrics.GetCounter(
      "mace_net_frames_tx_total", "Wire frames sent", labels);
  protocol_errors_counter_ = metrics.GetCounter(
      "mace_net_protocol_errors_total",
      "Connections dropped for MWIREv1 protocol violations", labels);
  read_pauses_counter_ = metrics.GetCounter(
      "mace_net_read_pauses_total",
      "Times backpressure paused reading a connection", labels);
  connections_gauge_ = metrics.GetGauge(
      "mace_net_connections_open", "Currently open connections", labels);
}

ScoreServer::~ScoreServer() { Stop(); }

Result<std::unique_ptr<ScoreServer>> ScoreServer::Start(
    serve::ServeFrontend* frontend, ScoreServerOptions options) {
  if (frontend == nullptr) {
    return Status::InvalidArgument("frontend must not be null");
  }
  std::unique_ptr<ScoreServer> server(
      new ScoreServer(frontend, std::move(options)));
  MACE_RETURN_IF_ERROR(server->Init());
  server->loop_ = std::thread([raw = server.get()] { raw->Loop(); });
  return server;
}

Status ScoreServer::Init() {
  MACE_ASSIGN_OR_RETURN(listen_fd_,
                        TcpListen(options_.host, options_.port, &port_));
  MACE_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
  epoll_fd_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) return Status::IoError("epoll_create1 failed");
  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) return Status::IoError("eventfd failed");

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) !=
      0) {
    return Status::IoError("epoll_ctl add listen failed");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) !=
      0) {
    return Status::IoError("epoll_ctl add eventfd failed");
  }
  return Status::OK();
}

void ScoreServer::Stop() {
  if (stopping_.exchange(true)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // The loop is gone, so no new submissions exist; Flush drains every
  // in-flight shard callback while the connection map (their weak_ptr
  // targets) and the eventfd are still alive.
  frontend_->Flush();
  connections_.clear();
  connections_gauge_->Set(0.0);
}

void ScoreServer::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void ScoreServer::UpdateEpoll(Connection* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLET | EPOLLRDHUP;
  if (!conn->read_paused) ev.events |= EPOLLIN;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
}

void ScoreServer::Loop() {
  loop_tid_.store(std::this_thread::get_id());
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_.get()) {
        Accept();
        continue;
      }
      if (fd == wake_fd_.get()) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        std::vector<int> pending;
        {
          std::lock_guard<std::mutex> lock(pending_mu_);
          pending.swap(pending_write_fds_);
        }
        for (int pending_fd : pending) {
          auto it = connections_.find(pending_fd);
          if (it != connections_.end()) FlushOutbound(it->second);
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) FlushOutbound(conn);
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) HandleReadable(conn);
    }
  }
}

void ScoreServer::Accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: wait for next event
    }
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    (void)SetNoDelay(fd);
    auto conn = std::make_shared<Connection>(Fd(fd));
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn's Fd closes it
    }
    connections_.emplace(fd, std::move(conn));
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
    connections_counter_->Increment();
    connections_gauge_->Set(static_cast<double>(connections_.size()));
  }
}

void ScoreServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  uint8_t buffer[64 * 1024];
  for (;;) {
    if (conn->read_paused) return;  // backpressure kicked in mid-batch
    const ssize_t n =
        ::recv(conn->fd.get(), buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(conn->fd.get());
      return;
    }
    if (n == 0) {
      CloseConnection(conn->fd.get());
      return;
    }
    conn->decoder.Append(buffer, static_cast<size_t>(n));
    for (;;) {
      Result<std::optional<wire::OwnedFrame>> next = conn->decoder.Next();
      if (!next.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        protocol_errors_counter_->Increment();
        CloseConnection(conn->fd.get());
        return;
      }
      if (!next.value().has_value()) break;
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      frames_rx_counter_->Increment();
      if (!Dispatch(conn, std::move(*next.value()))) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        protocol_errors_counter_->Increment();
        CloseConnection(conn->fd.get());
        return;
      }
    }
  }
}

bool ScoreServer::Dispatch(const std::shared_ptr<Connection>& conn,
                           wire::OwnedFrame frame) {
  switch (frame.type) {
    case wire::FrameType::kPing:
      SendFrame(conn, wire::FrameType::kPong, frame.request_id, {});
      return true;
    case wire::FrameType::kStatsRequest: {
      std::vector<uint8_t> payload;
      wire::EncodeStatsResponse(frontend_->Stats().FormatLine(), &payload);
      SendFrame(conn, wire::FrameType::kStatsResponse, frame.request_id,
                payload);
      return true;
    }
    case wire::FrameType::kScoreRequest:
      HandleScore(conn, frame.request_id, frame);
      return true;
    case wire::FrameType::kCloseRequest: {
      Result<wire::CloseRequest> request =
          wire::DecodeCloseRequest(frame.payload.data(),
                                   frame.payload.size());
      if (!request.ok()) {
        SendErrorResponse(conn, wire::FrameType::kCloseResponse,
                          frame.request_id, request.status().code(),
                          request.status().message(), /*rejected=*/false);
        return true;
      }
      std::weak_ptr<Connection> weak = conn;
      const uint64_t request_id = frame.request_id;
      frontend_->CloseAsync(
          request.value().tenant, request.value().service,
          [this, weak, request_id](serve::ScoreBatch&& batch) {
            std::shared_ptr<Connection> conn = weak.lock();
            if (conn == nullptr) return;
            wire::ScoreResponse response;
            response.code = batch.status.code();
            response.message = batch.status.message();
            response.first_step = batch.first_step;
            response.scores = std::move(batch.scores);
            std::vector<uint8_t> payload;
            wire::EncodeScoreResponse(response, &payload);
            SendFrame(conn, wire::FrameType::kCloseResponse, request_id,
                      payload);
          });
      return true;
    }
    default:
      // Response-direction frames arriving at the server lost framing
      // sync (or the peer is hostile): connection-fatal.
      return false;
  }
}

void ScoreServer::HandleScore(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id,
                              const wire::OwnedFrame& frame) {
  Result<wire::ScoreRequest> decoded = wire::DecodeScoreRequest(
      frame.payload.data(), frame.payload.size());
  if (!decoded.ok()) {
    SendErrorResponse(conn, wire::FrameType::kScoreResponse, request_id,
                      decoded.status().code(), decoded.status().message(),
                      /*rejected=*/false);
    return;
  }
  wire::ScoreRequest& request = decoded.value();
  serve::RequestOptions options;
  options.priority = static_cast<serve::Priority>(request.priority);
  if (request.policy_override != wire::kNoPolicyOverride) {
    options.non_finite_policy =
        static_cast<ts::NonFinitePolicy>(request.policy_override);
  }
  if (!qos_.Admit(request.tenant, options.priority, SteadySeconds())) {
    SendErrorResponse(conn, wire::FrameType::kScoreResponse, request_id,
                      StatusCode::kFailedPrecondition,
                      "rate limited by per-tenant QoS",
                      /*rejected=*/true);
    return;
  }
  std::weak_ptr<Connection> weak = conn;
  const Status submitted = frontend_->SubmitAsync(
      request.tenant, request.service, std::move(request.values), options,
      [this, weak, request_id](serve::ScoreBatch&& batch) {
        std::shared_ptr<Connection> conn = weak.lock();
        if (conn == nullptr) return;
        wire::ScoreResponse response;
        response.code = batch.status.code();
        response.message = batch.status.message();
        response.first_step = batch.first_step;
        response.dropped = batch.dropped;
        response.contaminated = batch.contaminated;
        response.scores = std::move(batch.scores);
        std::vector<uint8_t> payload;
        wire::EncodeScoreResponse(response, &payload);
        SendFrame(conn, wire::FrameType::kScoreResponse, request_id,
                  payload);
      });
  if (!submitted.ok()) {
    SendErrorResponse(conn, wire::FrameType::kScoreResponse, request_id,
                      submitted.code(), submitted.message(),
                      /*rejected=*/false);
  }
}

void ScoreServer::SendErrorResponse(
    const std::shared_ptr<Connection>& conn, wire::FrameType type,
    uint64_t request_id, StatusCode code, const std::string& message,
    bool rejected) {
  wire::ScoreResponse response;
  response.code = code;
  response.message = message;
  response.rejected = rejected;
  std::vector<uint8_t> payload;
  wire::EncodeScoreResponse(response, &payload);
  SendFrame(conn, type, request_id, payload);
}

void ScoreServer::SendFrame(const std::shared_ptr<Connection>& conn,
                            wire::FrameType type, uint64_t request_id,
                            const std::vector<uint8_t>& payload) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    wire::AppendFrame(&conn->outbound, type, request_id, payload);
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  frames_tx_counter_->Increment();
  if (std::this_thread::get_id() == loop_tid_.load()) {
    FlushOutbound(conn);
  } else {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_write_fds_.push_back(conn->fd.get());
    }
    WakeLoop();
  }
}

void ScoreServer::FlushOutbound(const std::shared_ptr<Connection>& conn) {
  bool close = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    while (conn->sent < conn->outbound.size()) {
      const ssize_t n =
          ::send(conn->fd.get(), conn->outbound.data() + conn->sent,
                 conn->outbound.size() - conn->sent, MSG_NOSIGNAL);
      if (n > 0) {
        conn->sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close = true;
      break;
    }
    if (!close) {
      if (conn->sent == conn->outbound.size()) {
        conn->outbound.clear();
        conn->sent = 0;
      } else if (conn->sent > (1u << 20)) {
        conn->outbound.erase(conn->outbound.begin(),
                             conn->outbound.begin() +
                                 static_cast<ptrdiff_t>(conn->sent));
        conn->sent = 0;
      }
      const size_t backlog = conn->outbound.size() - conn->sent;
      const bool want_write = backlog > 0;
      bool update = false;
      if (want_write != conn->want_write) {
        conn->want_write = want_write;
        update = true;
      }
      if (!conn->read_paused && backlog > options_.write_buffer_limit) {
        conn->read_paused = true;
        read_pauses_.fetch_add(1, std::memory_order_relaxed);
        read_pauses_counter_->Increment();
        update = true;
      } else if (conn->read_paused &&
                 backlog < options_.write_buffer_limit / 2) {
        conn->read_paused = false;
        update = true;
      }
      if (update) UpdateEpoll(conn.get());
    }
  }
  if (close) CloseConnection(conn->fd.get());
}

void ScoreServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  {
    std::lock_guard<std::mutex> lock(it->second->mu);
    it->second->dead = true;
  }
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);
  connections_gauge_->Set(static_cast<double>(connections_.size()));
}

}  // namespace mace::net
