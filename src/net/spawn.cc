#include "net/spawn.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <optional>

namespace mace::net {

std::string ListeningLine(uint16_t port) {
  return std::string(kListeningPrefix) + std::to_string(port) + "\n";
}

Result<uint16_t> ParseListeningLine(const std::string& line) {
  const std::string prefix(kListeningPrefix);
  if (line.compare(0, prefix.size(), prefix) != 0) {
    return Status::InvalidArgument("not a listening line: " + line);
  }
  char* end = nullptr;
  const long port = std::strtol(line.c_str() + prefix.size(), &end, 10);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in line: " + line);
  }
  return static_cast<uint16_t>(port);
}

Result<std::unique_ptr<Subprocess>> Subprocess::Spawn(
    std::vector<std::string> argv) {
  if (argv.empty()) {
    return Status::InvalidArgument("argv must not be empty");
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  const int pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout -> pipe, die with the parent, exec.
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (std::string& arg : argv) c_argv.push_back(arg.data());
    c_argv.push_back(nullptr);
    ::execv(c_argv[0], c_argv.data());
    // Only reached when exec failed.
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  return std::unique_ptr<Subprocess>(
      new Subprocess(pid, Fd(pipe_fds[0])));
}

Subprocess::~Subprocess() { KillAndReap(); }

Result<std::string> Subprocess::WaitForLine(const std::string& prefix,
                                            int timeout_ms) {
  const auto find_line = [&]() -> std::optional<std::string> {
    size_t start = 0;
    for (;;) {
      const size_t newline = buffered_.find('\n', start);
      if (newline == std::string::npos) {
        buffered_.erase(0, start);
        return std::nullopt;
      }
      std::string line = buffered_.substr(start, newline - start);
      start = newline + 1;
      if (line.compare(0, prefix.size(), prefix) == 0) {
        buffered_.erase(0, start);
        return line;
      }
    }
  };
  if (std::optional<std::string> line = find_line()) return *line;
  int remaining_ms = timeout_ms;
  while (remaining_ms > 0) {
    pollfd pfd;
    pfd.fd = stdout_.get();
    pfd.events = POLLIN;
    const int step = remaining_ms < 50 ? remaining_ms : 50;
    const int ready = ::poll(&pfd, 1, step);
    remaining_ms -= step;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;
    char buffer[4096];
    const ssize_t n = ::read(stdout_.get(), buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("child pid " + std::to_string(pid_) +
                             " closed stdout before printing \"" + prefix +
                             "\"");
    }
    buffered_.append(buffer, static_cast<size_t>(n));
    if (std::optional<std::string> line = find_line()) return *line;
  }
  return Status::IoError("timed out waiting for child pid " +
                         std::to_string(pid_) + " to print \"" + prefix +
                         "\"");
}

Result<uint16_t> Subprocess::WaitForListeningPort(int timeout_ms) {
  MACE_ASSIGN_OR_RETURN(std::string line,
                        WaitForLine(kListeningPrefix, timeout_ms));
  return ParseListeningLine(line);
}

void Subprocess::RecordExit(int status) {
  if (WIFEXITED(status)) exit_code_ = WEXITSTATUS(status);
  pid_ = -1;
}

bool Subprocess::Running() {
  if (pid_ < 0) return false;
  int status = 0;
  const int reaped = ::waitpid(pid_, &status, WNOHANG);
  if (reaped == pid_) {
    RecordExit(status);
    return false;
  }
  return reaped == 0;
}

void Subprocess::KillAndReap(int grace_ms) {
  if (pid_ < 0) return;
  ::kill(pid_, SIGTERM);
  int waited_ms = 0;
  while (waited_ms < grace_ms) {
    int status = 0;
    const int reaped = ::waitpid(pid_, &status, WNOHANG);
    if (reaped == pid_) {
      RecordExit(status);
      return;
    }
    ::usleep(10 * 1000);
    waited_ms += 10;
  }
  ::kill(pid_, SIGKILL);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  RecordExit(status);
}

}  // namespace mace::net
