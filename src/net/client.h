#ifndef MACE_NET_CLIENT_H_
#define MACE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "wire/frame.h"
#include "wire/messages.h"

namespace mace::net {

/// \brief Blocking MWIREv1 client: one TCP connection, synchronous
/// request/response plus a pipelined Send/Next pair for load drivers.
///
/// Single-threaded by design — a caller that wants concurrency opens one
/// WireClient per thread (connections are cheap; the server multiplexes).
class WireClient {
 public:
  static Result<std::unique_ptr<WireClient>> Connect(
      const std::string& host, uint16_t port);

  /// Round-trips an empty kPing / kPong pair.
  Status Ping();

  /// Synchronous score: send one kScoreRequest, wait for its response.
  Result<wire::ScoreResponse> Score(const wire::ScoreRequest& request);

  /// Synchronous close: the response carries the session's tail scores.
  Result<wire::ScoreResponse> CloseSession(const std::string& tenant,
                                           int32_t service);

  /// One stats line from the peer (a backend's ServeStats::FormatLine or
  /// the router's own line).
  Result<std::string> Stats();

  /// Pipelined path: enqueue a kScoreRequest without waiting and return
  /// the request id it was sent under. Responses come back in server
  /// completion order via NextResponse() — match on request_id.
  Result<uint64_t> SendScore(const wire::ScoreRequest& request);
  Result<uint64_t> SendClose(const std::string& tenant, int32_t service);

  /// Blocks for the next complete frame (any type). IoError on peer
  /// close or malformed framing.
  Result<wire::OwnedFrame> NextResponse();

 private:
  explicit WireClient(Fd fd) : fd_(std::move(fd)) {}

  Status SendFrame(wire::FrameType type, uint64_t request_id,
                   const std::vector<uint8_t>& payload);
  /// Reads until one frame of `want` arrives (frames of other types are
  /// a protocol violation in the synchronous flows).
  Result<wire::OwnedFrame> ExpectFrame(wire::FrameType want,
                                       uint64_t request_id);

  Fd fd_;
  wire::FrameDecoder decoder_;
  std::vector<uint8_t> scratch_;
  uint64_t next_request_id_ = 1;
};

}  // namespace mace::net

#endif  // MACE_NET_CLIENT_H_
