#ifndef MACE_BASELINES_LSTM_AUTOENCODER_H_
#define MACE_BASELINES_LSTM_AUTOENCODER_H_

#include <memory>

#include "baselines/reconstruction_detector.h"
#include "nn/layers.h"

namespace mace::baselines {

/// \brief Recurrent reconstruction baseline: an LSTM encoder with a
/// per-step linear readout — the OmniAnomaly family (stochastic recurrent
/// reconstruction), and the family whose step-by-step recurrence is the
/// paper's efficiency foil (C2: no parallelism across time).
class LstmAutoencoder : public ReconstructionDetector {
 public:
  explicit LstmAutoencoder(TrainOptions options, int hidden = 24)
      : ReconstructionDetector(options), hidden_(hidden) {}

  std::string name() const override { return "LSTM-AE"; }

 protected:
  Status BuildModel(int num_features, Rng* rng) override;
  tensor::Tensor Reconstruct(const tensor::Tensor& window) override;
  std::vector<tensor::Tensor> ModelParameters() const override;
  int64_t ActivationEstimate() const override;

 private:
  int hidden_;
  std::shared_ptr<nn::Lstm> lstm_;
  std::shared_ptr<nn::Linear> readout_;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_LSTM_AUTOENCODER_H_
