#include "baselines/attention_autoencoder.h"

namespace mace::baselines {

using tensor::Tensor;

Status AttentionAutoencoder::BuildModel(int num_features, Rng* rng) {
  embed_ = std::make_shared<nn::Linear>(num_features, dim_, rng);
  attention_ = std::make_shared<nn::SelfAttention>(dim_, rng);
  readout_ = std::make_shared<nn::Linear>(dim_, num_features, rng);
  return Status::OK();
}

Tensor AttentionAutoencoder::Reconstruct(const Tensor& window) {
  Tensor sequence = Transpose(window);                 // [T, m]
  Tensor embedded = Tanh(embed_->Forward(sequence));   // [T, d]
  Tensor attended = attention_->Forward(embedded);     // [T, d]
  Tensor mixed = Add(embedded, attended);              // residual
  return Transpose(readout_->Forward(mixed));          // [m, T]
}

std::vector<Tensor> AttentionAutoencoder::ModelParameters() const {
  std::vector<Tensor> params = embed_->Parameters();
  for (Tensor& p : attention_->Parameters()) params.push_back(std::move(p));
  for (Tensor& p : readout_->Parameters()) params.push_back(std::move(p));
  return params;
}

int64_t AttentionAutoencoder::ActivationEstimate() const {
  // Attention keeps the [T, T] score matrix plus Q/K/V projections alive.
  const int64_t t = options_.window;
  return t * t + 4 * t * dim_;
}

}  // namespace mace::baselines
