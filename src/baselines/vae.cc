#include "baselines/vae.h"

namespace mace::baselines {

using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

Status Vae::BuildModel(int num_features, Rng* rng) {
  const int flat = num_features * options_.window;
  encoder_ = std::make_shared<nn::Linear>(flat, hidden_, rng);
  mu_head_ = std::make_shared<nn::Linear>(hidden_, latent_, rng);
  logvar_head_ = std::make_shared<nn::Linear>(hidden_, latent_, rng);
  decoder_hidden_ = std::make_shared<nn::Linear>(latent_, hidden_, rng);
  decoder_out_ = std::make_shared<nn::Linear>(hidden_, flat, rng);
  return Status::OK();
}

void Vae::Encode(const Tensor& window, Tensor* mu, Tensor* logvar) {
  const Index m = window.dim(0);
  const Index t = window.dim(1);
  Tensor hidden =
      Tanh(encoder_->Forward(Reshape(window, Shape{1, m * t})));
  *mu = mu_head_->Forward(hidden);
  *logvar = logvar_head_->Forward(hidden);
}

Tensor Vae::Decode(const Tensor& z, Index m, Index t) {
  Tensor hidden = Tanh(decoder_hidden_->Forward(z));
  return Reshape(decoder_out_->Forward(hidden), Shape{m, t});
}

Tensor Vae::Reconstruct(const Tensor& window) {
  Tensor mu, logvar;
  Encode(window, &mu, &logvar);
  return Decode(mu, window.dim(0), window.dim(1));
}

Tensor Vae::TrainLoss(const Tensor& window) {
  Tensor mu, logvar;
  Encode(window, &mu, &logvar);
  Tensor eps = Tensor::RandomGaussian(Shape{1, latent_}, &rng_, 0.0, 1.0);
  Tensor z = Add(mu, Mul(Exp(MulScalar(logvar, 0.5)), eps));
  Tensor rec = Decode(z, window.dim(0), window.dim(1));
  Tensor recon_loss = tensor::MseLoss(rec, window);
  // KL(q || N(0, I)) = -0.5 mean(1 + logvar - mu^2 - exp(logvar)).
  Tensor kl = MulScalar(
      tensor::Mean(Sub(Sub(AddScalar(logvar, 1.0), Square(mu)), Exp(logvar))),
      -0.5);
  return Add(recon_loss, MulScalar(kl, beta_));
}

std::vector<Tensor> Vae::ModelParameters() const {
  std::vector<Tensor> params;
  for (const auto& layer :
       {encoder_, mu_head_, logvar_head_, decoder_hidden_, decoder_out_}) {
    for (Tensor& p : layer->Parameters()) params.push_back(std::move(p));
  }
  return params;
}

}  // namespace mace::baselines
