#ifndef MACE_BASELINES_CONV_AUTOENCODER_H_
#define MACE_BASELINES_CONV_AUTOENCODER_H_

#include <memory>

#include "baselines/reconstruction_detector.h"
#include "nn/layers.h"

namespace mace::baselines {

/// \brief Convolutional autoencoder baseline: strided Conv1d encoder with
/// a linear decoder — the MSCRED family (convolutional encoder-decoder
/// over signature representations).
class ConvAutoencoder : public ReconstructionDetector {
 public:
  explicit ConvAutoencoder(TrainOptions options, int channels1 = 12,
                           int channels2 = 8)
      : ReconstructionDetector(options),
        channels1_(channels1),
        channels2_(channels2) {}

  std::string name() const override { return "Conv-AE"; }

 protected:
  Status BuildModel(int num_features, Rng* rng) override;
  tensor::Tensor Reconstruct(const tensor::Tensor& window) override;
  std::vector<tensor::Tensor> ModelParameters() const override;

 private:
  int channels1_;
  int channels2_;
  int flat_latent_ = 0;
  std::shared_ptr<nn::Conv1dLayer> conv1_;
  std::shared_ptr<nn::Conv1dLayer> conv2_;
  std::shared_ptr<nn::Linear> decoder_;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_CONV_AUTOENCODER_H_
