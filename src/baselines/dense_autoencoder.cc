#include "baselines/dense_autoencoder.h"

namespace mace::baselines {

using tensor::Shape;
using tensor::Tensor;

Status DenseAutoencoder::BuildModel(int num_features, Rng* rng) {
  const int flat = num_features * options_.window;
  encoder_ = std::make_shared<nn::Linear>(flat, hidden_, rng);
  decoder_ = std::make_shared<nn::Linear>(hidden_, flat, rng);
  return Status::OK();
}

Tensor DenseAutoencoder::Reconstruct(const Tensor& window) {
  const auto m = window.dim(0);
  const auto t = window.dim(1);
  Tensor flat = Reshape(window, Shape{1, m * t});
  Tensor hidden = Tanh(encoder_->Forward(flat));
  return Reshape(decoder_->Forward(hidden), Shape{m, t});
}

std::vector<Tensor> DenseAutoencoder::ModelParameters() const {
  std::vector<Tensor> params = encoder_->Parameters();
  for (Tensor& p : decoder_->Parameters()) params.push_back(std::move(p));
  return params;
}

}  // namespace mace::baselines
