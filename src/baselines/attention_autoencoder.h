#ifndef MACE_BASELINES_ATTENTION_AUTOENCODER_H_
#define MACE_BASELINES_ATTENTION_AUTOENCODER_H_

#include <memory>

#include "baselines/reconstruction_detector.h"
#include "nn/layers.h"

namespace mace::baselines {

/// \brief Transformer-family reconstruction baseline: embedding,
/// single-head self-attention with a residual connection, and a readout —
/// the AnomalyTransformer / TranAD family.
class AttentionAutoencoder : public ReconstructionDetector {
 public:
  explicit AttentionAutoencoder(TrainOptions options, int dim = 24)
      : ReconstructionDetector(options), dim_(dim) {}

  std::string name() const override { return "Attn-AE"; }

 protected:
  Status BuildModel(int num_features, Rng* rng) override;
  tensor::Tensor Reconstruct(const tensor::Tensor& window) override;
  std::vector<tensor::Tensor> ModelParameters() const override;
  int64_t ActivationEstimate() const override;

 private:
  int dim_;
  std::shared_ptr<nn::Linear> embed_;
  std::shared_ptr<nn::SelfAttention> attention_;
  std::shared_ptr<nn::Linear> readout_;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_ATTENTION_AUTOENCODER_H_
