#ifndef MACE_BASELINES_VAE_H_
#define MACE_BASELINES_VAE_H_

#include <memory>

#include "baselines/reconstruction_detector.h"
#include "nn/layers.h"

namespace mace::baselines {

/// \brief Variational autoencoder baseline (Kingma & Welling, 2014) —
/// the "VAE" row of the paper's tables, and the backbone the paper's ProS
/// baseline builds on.
///
/// Training samples z = mu + exp(logvar / 2) * eps and minimizes
/// reconstruction MSE + beta * KL(q(z|x) || N(0, I)); scoring uses the
/// posterior mean (deterministic reconstruction).
class Vae : public ReconstructionDetector {
 public:
  explicit Vae(TrainOptions options, int hidden = 32, int latent = 8,
               double beta = 1e-3)
      : ReconstructionDetector(options),
        hidden_(hidden),
        latent_(latent),
        beta_(beta) {}

  std::string name() const override { return "VAE"; }

 protected:
  Status BuildModel(int num_features, Rng* rng) override;
  tensor::Tensor Reconstruct(const tensor::Tensor& window) override;
  tensor::Tensor TrainLoss(const tensor::Tensor& window) override;
  std::vector<tensor::Tensor> ModelParameters() const override;

 private:
  /// Encoder trunk -> (mu, logvar).
  void Encode(const tensor::Tensor& window, tensor::Tensor* mu,
              tensor::Tensor* logvar);
  tensor::Tensor Decode(const tensor::Tensor& z, tensor::Index m,
                        tensor::Index t);

  int hidden_;
  int latent_;
  double beta_;
  std::shared_ptr<nn::Linear> encoder_;
  std::shared_ptr<nn::Linear> mu_head_;
  std::shared_ptr<nn::Linear> logvar_head_;
  std::shared_ptr<nn::Linear> decoder_hidden_;
  std::shared_ptr<nn::Linear> decoder_out_;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_VAE_H_
