#ifndef MACE_BASELINES_RECONSTRUCTION_DETECTOR_H_
#define MACE_BASELINES_RECONSTRUCTION_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"

namespace mace::baselines {

/// \brief Training hyperparameters shared by all neural baselines.
struct TrainOptions {
  int window = 40;
  int train_stride = 8;
  int score_stride = 5;
  int epochs = 8;
  double learning_rate = 1e-3;
  double grad_clip = 5.0;
  uint64_t seed = 7;
};

/// \brief Common scaffolding of reconstruction-based neural baselines:
/// per-service z-scoring, windowed training with Adam, and per-step
/// scoring from reconstruction error. Subclasses only define the network.
class ReconstructionDetector : public core::Detector {
 public:
  Status Fit(const std::vector<ts::ServiceData>& services) override;
  Result<std::vector<double>> Score(int service_index,
                                    const ts::TimeSeries& test) override;
  Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) override;
  int64_t ParameterCount() const override;
  int64_t PeakActivationElements() const override;

  const TrainOptions& options() const { return options_; }
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

 protected:
  explicit ReconstructionDetector(TrainOptions options);

  /// Creates the network for `num_features` input channels.
  virtual Status BuildModel(int num_features, Rng* rng) = 0;

  /// Maps one scaled window [m, T] to its reconstruction [m, T]. Called
  /// both in training (graph is differentiated) and in scoring.
  virtual tensor::Tensor Reconstruct(const tensor::Tensor& window) = 0;

  /// Training loss for one window; default is the reconstruction MSE.
  /// Override to add regularizers (e.g. the VAE KL term).
  virtual tensor::Tensor TrainLoss(const tensor::Tensor& window);

  virtual std::vector<tensor::Tensor> ModelParameters() const = 0;

  /// Number of live activation elements in one forward pass (estimate).
  virtual int64_t ActivationEstimate() const;

  TrainOptions options_;
  int num_features_ = 0;
  Rng rng_;

 private:
  std::vector<double> ScoreScaled(const ts::TimeSeries& scaled_test);

  std::vector<ts::StandardScaler> scalers_;
  std::vector<double> epoch_losses_;
  bool fitted_ = false;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_RECONSTRUCTION_DETECTOR_H_
