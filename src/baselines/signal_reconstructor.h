#ifndef MACE_BASELINES_SIGNAL_RECONSTRUCTOR_H_
#define MACE_BASELINES_SIGNAL_RECONSTRUCTOR_H_

#include <vector>

#include "baselines/reconstruction_detector.h"
#include "core/detector.h"
#include "ts/scaler.h"

namespace mace::baselines {

/// \brief Signal-processing baseline (the JumpStarter family): no learned
/// weights — each service gets a shape subspace of its training windows
/// (top principal components of flattened windows) and test windows are
/// scored by their residual against that subspace.
///
/// Like JumpStarter, it is inherently per-service: a "unified" fit simply
/// stores one subspace per service, and transferring the learned state to
/// unseen services is the identity operation (ScoreUnseen recomputes the
/// subspace from the new service's train split).
class SignalReconstructor : public core::Detector {
 public:
  explicit SignalReconstructor(TrainOptions options, int components = 10)
      : options_(options), components_(components) {}

  Status Fit(const std::vector<ts::ServiceData>& services) override;
  Result<std::vector<double>> Score(int service_index,
                                    const ts::TimeSeries& test) override;
  Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) override;
  std::string name() const override { return "Signal-PCA"; }

 private:
  /// Per-service shape subspace: mean and orthonormal components of
  /// flattened [m * T] training windows.
  struct Subspace {
    std::vector<double> mean;
    std::vector<std::vector<double>> components;
  };

  Result<Subspace> BuildSubspace(const ts::TimeSeries& scaled_train) const;
  std::vector<double> ScoreScaled(const Subspace& subspace,
                                  const ts::TimeSeries& scaled_test) const;

  TrainOptions options_;
  int components_;
  int num_features_ = 0;
  std::vector<ts::StandardScaler> scalers_;
  std::vector<Subspace> subspaces_;
  bool fitted_ = false;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_SIGNAL_RECONSTRUCTOR_H_
