#include "baselines/lstm_autoencoder.h"

namespace mace::baselines {

using tensor::Tensor;

Status LstmAutoencoder::BuildModel(int num_features, Rng* rng) {
  lstm_ = std::make_shared<nn::Lstm>(num_features, hidden_, rng);
  readout_ = std::make_shared<nn::Linear>(hidden_, num_features, rng);
  return Status::OK();
}

Tensor LstmAutoencoder::Reconstruct(const Tensor& window) {
  // [m, T] -> [T, m] sequence; reconstruct each step from the hidden state.
  Tensor sequence = Transpose(window);
  Tensor hidden = lstm_->Forward(sequence);          // [T, H]
  Tensor rec_sequence = readout_->Forward(hidden);   // [T, m]
  return Transpose(rec_sequence);
}

std::vector<Tensor> LstmAutoencoder::ModelParameters() const {
  std::vector<Tensor> params = lstm_->Parameters();
  for (Tensor& p : readout_->Parameters()) params.push_back(std::move(p));
  return params;
}

int64_t LstmAutoencoder::ActivationEstimate() const {
  // Recurrent nets keep every step's gates/hidden/cell alive for backprop.
  return static_cast<int64_t>(options_.window) * hidden_ * 8;
}

}  // namespace mace::baselines
