#ifndef MACE_BASELINES_REGISTRY_H_
#define MACE_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/reconstruction_detector.h"
#include "common/result.h"
#include "core/detector.h"

namespace mace::baselines {

/// Names of the neural baselines that support unified multi-service
/// training (paper families in parentheses; see EXPERIMENTS.md):
/// DenseAE (DCdetector), VAE (VAE), LSTM-AE (OmniAnomaly), Attn-AE
/// (AnomalyTransformer/TranAD), Conv-AE (MSCRED/DVGCRN), ProS (ProS).
std::vector<std::string> NeuralBaselineNames();

/// Neural baselines plus the signal-processing method "Signal-PCA"
/// (JumpStarter family), which is excluded from unified/unseen tables as
/// in the paper.
std::vector<std::string> AllBaselineNames();

/// \brief Constructs a detector by name ("MACE" builds the paper's method
/// with its defaults, "ChannelAware" the channel-aware frequency-patching
/// variant (src/channel/); anything from AllBaselineNames() builds that
/// baseline). Returns NotFound for unknown names.
Result<std::unique_ptr<core::Detector>> MakeDetector(
    const std::string& name, const TrainOptions& options);

}  // namespace mace::baselines

#endif  // MACE_BASELINES_REGISTRY_H_
