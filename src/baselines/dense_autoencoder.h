#ifndef MACE_BASELINES_DENSE_AUTOENCODER_H_
#define MACE_BASELINES_DENSE_AUTOENCODER_H_

#include <memory>

#include "baselines/reconstruction_detector.h"
#include "nn/layers.h"

namespace mace::baselines {

/// \brief Fully connected autoencoder over flattened windows — the
/// simplest reconstruction baseline (contrastive/representation methods
/// like DCdetector reduce to window-representation reconstruction here).
class DenseAutoencoder : public ReconstructionDetector {
 public:
  explicit DenseAutoencoder(TrainOptions options, int hidden = 32)
      : ReconstructionDetector(options), hidden_(hidden) {}

  std::string name() const override { return "DenseAE"; }

 protected:
  Status BuildModel(int num_features, Rng* rng) override;
  tensor::Tensor Reconstruct(const tensor::Tensor& window) override;
  std::vector<tensor::Tensor> ModelParameters() const override;

 private:
  int hidden_;
  std::shared_ptr<nn::Linear> encoder_;
  std::shared_ptr<nn::Linear> decoder_;
};

}  // namespace mace::baselines

#endif  // MACE_BASELINES_DENSE_AUTOENCODER_H_
