#include "baselines/conv_autoencoder.h"

#include "common/check.h"

namespace mace::baselines {

using tensor::Shape;
using tensor::Tensor;

Status ConvAutoencoder::BuildModel(int num_features, Rng* rng) {
  constexpr int kKernel1 = 5, kStride1 = 2, kKernel2 = 3, kStride2 = 2;
  const int len1 = (options_.window - kKernel1) / kStride1 + 1;
  if (len1 < kKernel2) {
    return Status::InvalidArgument("window too short for ConvAutoencoder");
  }
  const int len2 = (len1 - kKernel2) / kStride2 + 1;
  conv1_ = std::make_shared<nn::Conv1dLayer>(num_features, channels1_,
                                             kKernel1, kStride1, rng);
  conv2_ = std::make_shared<nn::Conv1dLayer>(channels1_, channels2_, kKernel2,
                                             kStride2, rng);
  flat_latent_ = channels2_ * len2;
  decoder_ = std::make_shared<nn::Linear>(
      flat_latent_, num_features * options_.window, rng);
  return Status::OK();
}

Tensor ConvAutoencoder::Reconstruct(const Tensor& window) {
  const auto m = window.dim(0);
  const auto t = window.dim(1);
  Tensor x = Reshape(window, Shape{1, m, t});
  Tensor h1 = Relu(conv1_->Forward(x));
  Tensor h2 = Relu(conv2_->Forward(h1));
  Tensor flat = Reshape(h2, Shape{1, flat_latent_});
  return Reshape(decoder_->Forward(flat), Shape{m, t});
}

std::vector<Tensor> ConvAutoencoder::ModelParameters() const {
  std::vector<Tensor> params = conv1_->Parameters();
  for (Tensor& p : conv2_->Parameters()) params.push_back(std::move(p));
  for (Tensor& p : decoder_->Parameters()) params.push_back(std::move(p));
  return params;
}

}  // namespace mace::baselines
