#include "baselines/reconstruction_detector.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "ts/time_series.h"

namespace mace::baselines {

using tensor::Tensor;

ReconstructionDetector::ReconstructionDetector(TrainOptions options)
    : options_(options), rng_(options.seed) {
  MACE_CHECK(options_.window >= 4 && options_.train_stride >= 1 &&
             options_.score_stride >= 1 && options_.epochs >= 1);
}

Tensor ReconstructionDetector::TrainLoss(const Tensor& window) {
  return tensor::MseLoss(Reconstruct(window), window);
}

Status ReconstructionDetector::Fit(
    const std::vector<ts::ServiceData>& services) {
  if (services.empty()) {
    return Status::InvalidArgument("Fit requires at least one service");
  }
  num_features_ = services.front().train.num_features();
  for (const ts::ServiceData& s : services) {
    if (s.train.num_features() != num_features_) {
      return Status::InvalidArgument(
          "all services must share the feature count");
    }
  }

  scalers_.clear();
  epoch_losses_.clear();
  std::vector<Tensor> windows;
  for (const ts::ServiceData& service : services) {
    ts::StandardScaler scaler;
    scaler.Fit(service.train);
    MACE_ASSIGN_OR_RETURN(
        ts::WindowBatch batch,
        ts::MakeWindows(scaler.Transform(service.train), options_.window,
                        options_.train_stride));
    for (Tensor& w : batch.windows) windows.push_back(std::move(w));
    scalers_.push_back(std::move(scaler));
  }
  if (windows.empty()) {
    return Status::InvalidArgument("no training windows");
  }

  MACE_RETURN_IF_ERROR(BuildModel(num_features_, &rng_));
  nn::Adam optimizer(ModelParameters(), options_.learning_rate);

  std::vector<size_t> order(windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t idx : order) {
      Tensor loss = TrainLoss(windows[idx]);
      epoch_loss += loss.item();
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.ClipGradNorm(options_.grad_clip);
      optimizer.Step();
    }
    epoch_losses_.push_back(epoch_loss / static_cast<double>(order.size()));
    MACE_LOG(kDebug) << name() << " epoch " << epoch << " loss "
                     << epoch_losses_.back();
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> ReconstructionDetector::ScoreScaled(
    const ts::TimeSeries& scaled_test) {
  core::ScoreAccumulator accumulator(scaled_test.length());
  const auto window = static_cast<size_t>(options_.window);
  std::vector<size_t> starts;
  for (size_t start = 0; start + window <= scaled_test.length();
       start += static_cast<size_t>(options_.score_stride)) {
    starts.push_back(start);
  }
  if (scaled_test.length() >= window &&
      (starts.empty() || starts.back() + window < scaled_test.length())) {
    starts.push_back(scaled_test.length() - window);
  }
  const auto m = static_cast<size_t>(num_features_);
  for (size_t start : starts) {
    Tensor w = ts::WindowToTensor(scaled_test, start, options_.window);
    Tensor rec = Reconstruct(w);
    MACE_CHECK(rec.dim(0) == w.dim(0) && rec.dim(1) == w.dim(1))
        << name() << " reconstruction shape mismatch";
    const std::vector<double>& rv = rec.data();
    const std::vector<double>& wv = w.data();
    std::vector<double> errors(window, 0.0);
    for (size_t t = 0; t < window; ++t) {
      double acc = 0.0;
      for (size_t f = 0; f < m; ++f) {
        const double d = rv[f * window + t] - wv[f * window + t];
        acc += d * d;
      }
      errors[t] = acc / static_cast<double>(m);
    }
    accumulator.Add(start, errors);
  }
  return accumulator.Finalize();
}

Result<std::vector<double>> ReconstructionDetector::Score(
    int service_index, const ts::TimeSeries& test) {
  if (!fitted_) return Status::FailedPrecondition("Score before Fit");
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= scalers_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (test.length() < static_cast<size_t>(options_.window)) {
    return Status::InvalidArgument("test series shorter than window");
  }
  return ScoreScaled(
      scalers_[static_cast<size_t>(service_index)].Transform(test));
}

Result<std::vector<double>> ReconstructionDetector::ScoreUnseen(
    const ts::ServiceData& service) {
  if (!fitted_) return Status::FailedPrecondition("ScoreUnseen before Fit");
  if (service.train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service train split has " +
        std::to_string(service.train.num_features()) +
        " feature(s) but the model was fitted on " +
        std::to_string(num_features_));
  }
  if (service.test.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service test split has " +
        std::to_string(service.test.num_features()) +
        " feature(s) but the model was fitted on " +
        std::to_string(num_features_));
  }
  const auto window = static_cast<size_t>(options_.window);
  if (service.train.length() < window) {
    return Status::InvalidArgument(
        "unseen service train split (" +
        std::to_string(service.train.length()) +
        " steps) is shorter than the window (" + std::to_string(window) + ")");
  }
  if (service.test.length() < window) {
    return Status::InvalidArgument(
        "unseen service test split (" + std::to_string(service.test.length()) +
        " steps) is shorter than the window (" + std::to_string(window) + ")");
  }
  ts::StandardScaler scaler;
  scaler.Fit(service.train);
  return ScoreScaled(scaler.Transform(service.test));
}

int64_t ReconstructionDetector::ParameterCount() const {
  int64_t total = 0;
  for (const Tensor& p : ModelParameters()) total += p.numel();
  return total;
}

int64_t ReconstructionDetector::ActivationEstimate() const {
  return static_cast<int64_t>(num_features_) * options_.window * 8;
}

int64_t ReconstructionDetector::PeakActivationElements() const {
  return ActivationEstimate();
}

}  // namespace mace::baselines
