#include "baselines/signal_reconstructor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "core/detector.h"
#include "ts/time_series.h"

namespace mace::baselines {
namespace {

/// Top principal directions of rows via power iteration with deflation on
/// the (implicitly centered) Gram accumulation. Rows are the centered
/// flattened windows.
std::vector<std::vector<double>> TopComponents(
    const std::vector<std::vector<double>>& centered_rows, int count,
    int iterations = 120) {
  const size_t d = centered_rows.front().size();
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& row : centered_rows) {
    for (size_t i = 0; i < d; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (size_t j = i; j < d; ++j) cov[i][j] += ri * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) cov[j][i] = cov[i][j];
  }

  std::vector<std::vector<double>> components;
  std::vector<double> v(d), next(d);
  for (int c = 0; c < count; ++c) {
    for (size_t i = 0; i < d; ++i) {
      v[i] = 1.0 + 1e-3 * static_cast<double>((i + c) % 11);
    }
    double lambda = 0.0;
    for (int it = 0; it < iterations; ++it) {
      for (size_t i = 0; i < d; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < d; ++j) acc += cov[i][j] * v[j];
        next[i] = acc;
      }
      double norm = 0.0;
      for (double x : next) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;
      for (size_t i = 0; i < d; ++i) v[i] = next[i] / norm;
      lambda = norm;
    }
    components.push_back(v);
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) cov[i][j] -= lambda * v[i] * v[j];
    }
  }
  return components;
}

}  // namespace

Result<SignalReconstructor::Subspace> SignalReconstructor::BuildSubspace(
    const ts::TimeSeries& scaled_train) const {
  MACE_ASSIGN_OR_RETURN(
      ts::WindowBatch batch,
      ts::MakeWindows(scaled_train, options_.window, options_.train_stride));
  const size_t d = static_cast<size_t>(scaled_train.num_features()) *
                   static_cast<size_t>(options_.window);
  Subspace subspace;
  subspace.mean.assign(d, 0.0);
  std::vector<std::vector<double>> rows;
  rows.reserve(batch.windows.size());
  for (const tensor::Tensor& w : batch.windows) {
    rows.push_back(w.data());
    for (size_t i = 0; i < d; ++i) subspace.mean[i] += rows.back()[i];
  }
  if (rows.size() < 2) {
    return Status::InvalidArgument("too few windows for a shape subspace");
  }
  for (double& m : subspace.mean) m /= static_cast<double>(rows.size());
  for (auto& row : rows) {
    for (size_t i = 0; i < d; ++i) row[i] -= subspace.mean[i];
  }
  const int count =
      std::min<int>(components_, static_cast<int>(rows.size()) - 1);
  subspace.components = TopComponents(rows, count);
  return subspace;
}

Status SignalReconstructor::Fit(const std::vector<ts::ServiceData>& services) {
  if (services.empty()) {
    return Status::InvalidArgument("Fit requires at least one service");
  }
  num_features_ = services.front().train.num_features();
  scalers_.clear();
  subspaces_.clear();
  for (const ts::ServiceData& service : services) {
    if (service.train.num_features() != num_features_) {
      return Status::InvalidArgument(
          "all services must share the feature count");
    }
    ts::StandardScaler scaler;
    scaler.Fit(service.train);
    MACE_ASSIGN_OR_RETURN(Subspace subspace,
                          BuildSubspace(scaler.Transform(service.train)));
    scalers_.push_back(std::move(scaler));
    subspaces_.push_back(std::move(subspace));
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> SignalReconstructor::ScoreScaled(
    const Subspace& subspace, const ts::TimeSeries& scaled_test) const {
  core::ScoreAccumulator accumulator(scaled_test.length());
  const auto window = static_cast<size_t>(options_.window);
  const auto m = static_cast<size_t>(num_features_);
  std::vector<size_t> starts;
  for (size_t start = 0; start + window <= scaled_test.length();
       start += static_cast<size_t>(options_.score_stride)) {
    starts.push_back(start);
  }
  if (scaled_test.length() >= window &&
      (starts.empty() || starts.back() + window < scaled_test.length())) {
    starts.push_back(scaled_test.length() - window);
  }
  const size_t d = m * window;
  std::vector<double> centered(d), residual(d);
  for (size_t start : starts) {
    const tensor::Tensor w =
        ts::WindowToTensor(scaled_test, start, options_.window);
    const std::vector<double>& wv = w.data();
    for (size_t i = 0; i < d; ++i) centered[i] = wv[i] - subspace.mean[i];
    residual = centered;
    for (const auto& component : subspace.components) {
      double dot = 0.0;
      for (size_t i = 0; i < d; ++i) dot += centered[i] * component[i];
      for (size_t i = 0; i < d; ++i) residual[i] -= dot * component[i];
    }
    std::vector<double> errors(window, 0.0);
    for (size_t t = 0; t < window; ++t) {
      double acc = 0.0;
      for (size_t f = 0; f < m; ++f) {
        const double r = residual[f * window + t];
        acc += r * r;
      }
      errors[t] = acc / static_cast<double>(m);
    }
    accumulator.Add(start, errors);
  }
  return accumulator.Finalize();
}

Result<std::vector<double>> SignalReconstructor::Score(
    int service_index, const ts::TimeSeries& test) {
  if (!fitted_) return Status::FailedPrecondition("Score before Fit");
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= subspaces_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (test.num_features() != num_features_) {
    return Status::InvalidArgument(
        "test series has " + std::to_string(test.num_features()) +
        " feature(s) but the model was fitted on " +
        std::to_string(num_features_));
  }
  if (test.length() < static_cast<size_t>(options_.window)) {
    return Status::InvalidArgument("test series shorter than window");
  }
  return ScoreScaled(
      subspaces_[static_cast<size_t>(service_index)],
      scalers_[static_cast<size_t>(service_index)].Transform(test));
}

Result<std::vector<double>> SignalReconstructor::ScoreUnseen(
    const ts::ServiceData& service) {
  if (!fitted_) return Status::FailedPrecondition("ScoreUnseen before Fit");
  if (service.train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service train split has " +
        std::to_string(service.train.num_features()) +
        " feature(s) but the model was fitted on " +
        std::to_string(num_features_));
  }
  if (service.test.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service test split has " +
        std::to_string(service.test.num_features()) +
        " feature(s) but the model was fitted on " +
        std::to_string(num_features_));
  }
  const auto window = static_cast<size_t>(options_.window);
  if (service.train.length() < window) {
    return Status::InvalidArgument(
        "unseen service train split (" +
        std::to_string(service.train.length()) +
        " steps) is shorter than the window (" + std::to_string(window) + ")");
  }
  if (service.test.length() < window) {
    return Status::InvalidArgument(
        "unseen service test split (" + std::to_string(service.test.length()) +
        " steps) is shorter than the window (" + std::to_string(window) + ")");
  }
  ts::StandardScaler scaler;
  scaler.Fit(service.train);
  MACE_ASSIGN_OR_RETURN(Subspace subspace,
                        BuildSubspace(scaler.Transform(service.train)));
  return ScoreScaled(subspace, scaler.Transform(service.test));
}

}  // namespace mace::baselines
