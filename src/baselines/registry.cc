#include "baselines/registry.h"

#include "baselines/attention_autoencoder.h"
#include "baselines/conv_autoencoder.h"
#include "baselines/dense_autoencoder.h"
#include "baselines/lstm_autoencoder.h"
#include "baselines/signal_reconstructor.h"
#include "baselines/vae.h"
#include "channel/channel_aware_detector.h"
#include "core/mace_detector.h"

namespace mace::baselines {

std::vector<std::string> NeuralBaselineNames() {
  return {"DenseAE", "VAE", "LSTM-AE", "Attn-AE", "Conv-AE", "ProS"};
}

std::vector<std::string> AllBaselineNames() {
  std::vector<std::string> names = NeuralBaselineNames();
  names.push_back("Signal-PCA");
  return names;
}

Result<std::unique_ptr<core::Detector>> MakeDetector(
    const std::string& name, const TrainOptions& options) {
  std::unique_ptr<core::Detector> detector;
  if (name == "MACE") {
    core::MaceConfig config;
    config.window = options.window;
    config.train_stride = options.train_stride;
    config.score_stride = options.score_stride;
    config.epochs = options.epochs;
    config.learning_rate = options.learning_rate;
    config.grad_clip = options.grad_clip;
    config.seed = options.seed;
    detector = std::make_unique<core::MaceDetector>(config);
  } else if (name == "ChannelAware") {
    channel::ChannelAwareConfig config;
    config.window = options.window;
    config.train_stride = options.train_stride;
    config.score_stride = options.score_stride;
    config.seed = options.seed;
    detector = std::make_unique<channel::ChannelAwareDetector>(config);
  } else if (name == "DenseAE") {
    detector = std::make_unique<DenseAutoencoder>(options);
  } else if (name == "VAE") {
    detector = std::make_unique<Vae>(options);
  } else if (name == "ProS") {
    // ProS substitution: a zero-shot-oriented VAE with a narrower latent
    // (the paper's ProS is a VAE with latent domain vectors; see DESIGN.md).
    detector = std::make_unique<Vae>(options, /*hidden=*/32, /*latent=*/6,
                                     /*beta=*/5e-3);
  } else if (name == "LSTM-AE") {
    detector = std::make_unique<LstmAutoencoder>(options);
  } else if (name == "Attn-AE") {
    detector = std::make_unique<AttentionAutoencoder>(options);
  } else if (name == "Conv-AE") {
    detector = std::make_unique<ConvAutoencoder>(options);
  } else if (name == "Signal-PCA") {
    detector = std::make_unique<SignalReconstructor>(options);
  } else {
    return Status::NotFound("unknown detector '" + name + "'");
  }
  return detector;
}

}  // namespace mace::baselines
