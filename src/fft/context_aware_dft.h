#ifndef MACE_FFT_CONTEXT_AWARE_DFT_H_
#define MACE_FFT_CONTEXT_AWARE_DFT_H_

#include <vector>

#include "tensor/tensor.h"

namespace mace::fft {

/// \brief DFT / inverse-DFT restricted to a selected subset of Fourier
/// bases — the projection onto a service's normal-pattern subspace
/// (Section IV-C of the paper).
///
/// Base index j corresponds to frequency 2*pi*j/window; valid indices are
/// 0..floor(window/2) (one-sided spectrum of a real signal). Forward
/// computes the complex DFT coefficients X_j for the selected bases only;
/// Inverse reconstructs the time series from those coefficients, which is
/// exactly the orthogonal projection of the input onto the subspace
/// spanned by the selected sin/cos bases.
///
/// Both maps are also exposed as fixed (non-learned) matrices so a model
/// can apply them with MatMul and stay differentiable w.r.t. the input.
class ContextAwareDft {
 public:
  /// \param window length T of the time windows
  /// \param bases  distinct base indices in [0, T/2]; order is preserved
  ContextAwareDft(int window, std::vector<int> bases);

  int window() const { return window_; }
  int num_bases() const { return static_cast<int>(bases_.size()); }
  const std::vector<int>& bases() const { return bases_; }

  /// Frequency (radians/step) of the i-th selected base.
  double FrequencyOf(int i) const;

  /// Complex DFT coefficients of the selected bases: out_re/out_im get
  /// num_bases() entries each. `signal` must have `window` samples.
  void Forward(const std::vector<double>& signal, std::vector<double>* out_re,
               std::vector<double>* out_im) const;

  /// Reconstruction from selected coefficients (the context-aware IDFT).
  std::vector<double> Inverse(const std::vector<double>& re,
                              const std::vector<double>& im) const;

  /// Inverse(Forward(x)): the projection of x onto the subspace.
  std::vector<double> Project(const std::vector<double>& signal) const;

  /// One-sided amplitudes (sinusoid peak scale) of the selected bases.
  std::vector<double> Amplitudes(const std::vector<double>& re,
                                 const std::vector<double>& im) const;

  /// Fixed forward matrix, shape [2k, T]; rows are (cos_j, -sin_j) pairs so
  /// that MatMul(F, x[T, 1]) stacks (Re_0..Re_{k-1}, Im_0..Im_{k-1}).
  const tensor::Tensor& ForwardMatrix() const { return forward_matrix_; }

  /// Fixed inverse matrix, shape [T, 2k]: MatMul(G, coeffs[2k, 1]) is the
  /// context-aware IDFT. G * F is the orthogonal projector.
  const tensor::Tensor& InverseMatrix() const { return inverse_matrix_; }

  /// F^T as a packed row-major panel, shape [T, 2k] flattened: row t holds
  /// the 2k coefficient-column weights of time step t. This is the layout
  /// batched scoring multiplies by on the right (x[m, T] * F^T), exposed
  /// as raw doubles so model-load-time consumers (ServiceTransforms, the
  /// fused scoring kernel's panels) can pack it without building transpose
  /// ops. Values are the exact doubles of ForwardMatrix(), re-indexed.
  std::vector<double> ForwardTransposedPanel() const;

  /// G^T as a packed row-major panel, shape [2k, T] flattened: row c holds
  /// the T time-step weights of coefficient column c. Exact doubles of
  /// InverseMatrix(), re-indexed.
  std::vector<double> InverseTransposedPanel() const;

 private:
  void BuildMatrices();

  int window_;
  std::vector<int> bases_;
  tensor::Tensor forward_matrix_;
  tensor::Tensor inverse_matrix_;
};

}  // namespace mace::fft

#endif  // MACE_FFT_CONTEXT_AWARE_DFT_H_
