#ifndef MACE_FFT_FFT_H_
#define MACE_FFT_FFT_H_

#include <complex>
#include <vector>

namespace mace::fft {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

/// \brief In-place iterative radix-2 Cooley-Tukey FFT.
///
/// `data` size must be a power of two. When `inverse`, computes the inverse
/// transform including the 1/n scaling.
void Radix2Fft(std::vector<Complex>* data, bool inverse);

/// \brief Bluestein chirp-z FFT for arbitrary sizes (O(n log n)).
/// When `inverse`, includes the 1/n scaling.
void BluesteinFft(std::vector<Complex>* data, bool inverse);

/// \brief Forward DFT of arbitrary-size complex input: dispatches to
/// radix-2 when possible, Bluestein otherwise.
void Fft(std::vector<Complex>* data, bool inverse);

/// Forward DFT of a real signal; returns all n complex coefficients.
std::vector<Complex> Dft(const std::vector<double>& signal);

/// Inverse DFT returning the real part (for spectra of real signals).
std::vector<double> InverseDftReal(const std::vector<Complex>& spectrum);

/// \brief One-sided amplitude spectrum of a real signal.
///
/// Entry j (j = 0..floor(n/2)) is |X_j| / n, doubled for the interior bins
/// so amplitudes correspond to sinusoid peak amplitudes.
std::vector<double> AmplitudeSpectrum(const std::vector<double>& signal);

}  // namespace mace::fft

#endif  // MACE_FFT_FFT_H_
