#ifndef MACE_FFT_SPECTRUM_H_
#define MACE_FFT_SPECTRUM_H_

#include <cstddef>
#include <vector>

namespace mace::fft {

/// \brief Indices of the k largest amplitudes, descending by amplitude.
///
/// When `skip_dc`, bin 0 is excluded (z-scored windows have near-zero DC,
/// raw windows are dominated by it). Ties break toward the lower index.
std::vector<int> TopKIndices(const std::vector<double>& amplitudes, int k,
                             bool skip_dc = true);

/// \brief Normalized spectrum q_i = A_i / sum(A) (Definition 2 of the
/// paper). Returns a uniform distribution when the spectrum is all zero.
std::vector<double> NormalizeSpectrum(const std::vector<double>& amplitudes);

/// \brief KL reconstruction error of keeping only `subset` of a normalized
/// spectrum: KL(q_bar | q) = -log sum_{i in subset} q_i (Eq. 11).
double SubsetKlError(const std::vector<double>& normalized,
                     const std::vector<int>& subset);

/// \brief Mean and variance of spectrum amplitudes across windows —
/// the statistics behind Table II (variance) and Table III (expectation).
struct AmplitudeMoments {
  double mean = 0.0;
  double variance = 0.0;
};

/// Moments pooled over a collection of amplitude spectra.
AmplitudeMoments PooledAmplitudeMoments(
    const std::vector<std::vector<double>>& spectra);

}  // namespace mace::fft

#endif  // MACE_FFT_SPECTRUM_H_
