#include "fft/spectrum.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace mace::fft {

std::vector<int> TopKIndices(const std::vector<double>& amplitudes, int k,
                             bool skip_dc) {
  MACE_CHECK(k >= 0);
  std::vector<int> order;
  order.reserve(amplitudes.size());
  for (size_t i = skip_dc ? 1 : 0; i < amplitudes.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return amplitudes[static_cast<size_t>(a)] >
           amplitudes[static_cast<size_t>(b)];
  });
  if (static_cast<size_t>(k) < order.size()) order.resize(k);
  return order;
}

std::vector<double> NormalizeSpectrum(const std::vector<double>& amplitudes) {
  double total = std::accumulate(amplitudes.begin(), amplitudes.end(), 0.0);
  std::vector<double> out(amplitudes.size());
  if (total <= 1e-15) {
    const double uniform = 1.0 / static_cast<double>(amplitudes.size());
    std::fill(out.begin(), out.end(), uniform);
    return out;
  }
  for (size_t i = 0; i < amplitudes.size(); ++i) {
    out[i] = amplitudes[i] / total;
  }
  return out;
}

double SubsetKlError(const std::vector<double>& normalized,
                     const std::vector<int>& subset) {
  double mass = 0.0;
  for (int idx : subset) {
    MACE_CHECK(idx >= 0 && static_cast<size_t>(idx) < normalized.size());
    mass += normalized[static_cast<size_t>(idx)];
  }
  return -std::log(std::max(mass, 1e-15));
}

AmplitudeMoments PooledAmplitudeMoments(
    const std::vector<std::vector<double>>& spectra) {
  AmplitudeMoments moments;
  size_t count = 0;
  double sum = 0.0;
  for (const auto& s : spectra) {
    for (double a : s) {
      sum += a;
      ++count;
    }
  }
  if (count == 0) return moments;
  moments.mean = sum / static_cast<double>(count);
  double acc = 0.0;
  for (const auto& s : spectra) {
    for (double a : s) {
      acc += (a - moments.mean) * (a - moments.mean);
    }
  }
  moments.variance = acc / static_cast<double>(count);
  return moments;
}

}  // namespace mace::fft
