#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mace::fft {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

bool IsPowerOfTwo(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void Radix2Fft(std::vector<Complex>* data, bool inverse) {
  MACE_CHECK(data != nullptr);
  const size_t n = data->size();
  MACE_CHECK(IsPowerOfTwo(n)) << "Radix2Fft size " << n;
  std::vector<Complex>& a = *data;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (Complex& x : a) x /= static_cast<double>(n);
  }
}

void BluesteinFft(std::vector<Complex>* data, bool inverse) {
  MACE_CHECK(data != nullptr);
  const size_t n = data->size();
  if (n == 0) return;
  if (IsPowerOfTwo(n)) {
    Radix2Fft(data, inverse);
    return;
  }
  // Chirp-z: X_k = conj(w_k) * sum_j (x_j conj(w_j)) w_{k-j},
  // with w_j = exp(+- i pi j^2 / n); the convolution runs over a
  // power-of-two FFT of length >= 2n - 1.
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> chirp(n);
  for (size_t j = 0; j < n; ++j) {
    // j^2 mod 2n keeps the argument small for large n.
    const uintmax_t j2 = (static_cast<uintmax_t>(j) * j) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(j2) /
        static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }
  const size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (size_t j = 0; j < n; ++j) a[j] = (*data)[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (size_t j = 1; j < n; ++j) {
    b[j] = b[m - j] = std::conj(chirp[j]);
  }
  Radix2Fft(&a, /*inverse=*/false);
  Radix2Fft(&b, /*inverse=*/false);
  for (size_t j = 0; j < m; ++j) a[j] *= b[j];
  Radix2Fft(&a, /*inverse=*/true);
  for (size_t j = 0; j < n; ++j) (*data)[j] = a[j] * chirp[j];
  if (inverse) {
    for (Complex& x : *data) x /= static_cast<double>(n);
  }
}

void Fft(std::vector<Complex>* data, bool inverse) {
  if (IsPowerOfTwo(data->size())) {
    Radix2Fft(data, inverse);
  } else {
    BluesteinFft(data, inverse);
  }
}

std::vector<Complex> Dft(const std::vector<double>& signal) {
  std::vector<Complex> out(signal.size());
  for (size_t i = 0; i < signal.size(); ++i) out[i] = Complex(signal[i], 0.0);
  Fft(&out, /*inverse=*/false);
  return out;
}

std::vector<double> InverseDftReal(const std::vector<Complex>& spectrum) {
  std::vector<Complex> work = spectrum;
  Fft(&work, /*inverse=*/true);
  std::vector<double> out(work.size());
  for (size_t i = 0; i < work.size(); ++i) out[i] = work[i].real();
  return out;
}

std::vector<double> AmplitudeSpectrum(const std::vector<double>& signal) {
  const size_t n = signal.size();
  MACE_CHECK(n > 0);
  const std::vector<Complex> coeffs = Dft(signal);
  const size_t half = n / 2;
  std::vector<double> amps(half + 1);
  for (size_t j = 0; j <= half; ++j) {
    double scale = 2.0 / static_cast<double>(n);
    if (j == 0 || (n % 2 == 0 && j == half)) {
      scale = 1.0 / static_cast<double>(n);
    }
    amps[j] = std::abs(coeffs[j]) * scale;
  }
  return amps;
}

}  // namespace mace::fft
