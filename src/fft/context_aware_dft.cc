#include "fft/context_aware_dft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mace::fft {

using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

ContextAwareDft::ContextAwareDft(int window, std::vector<int> bases)
    : window_(window), bases_(std::move(bases)) {
  MACE_CHECK(window_ >= 2);
  for (size_t i = 0; i < bases_.size(); ++i) {
    MACE_CHECK(bases_[i] >= 0 && bases_[i] <= window_ / 2)
        << "base index " << bases_[i] << " outside [0, " << window_ / 2
        << "]";
    for (size_t j = i + 1; j < bases_.size(); ++j) {
      MACE_CHECK(bases_[i] != bases_[j])
          << "duplicate base index " << bases_[i];
    }
  }
  BuildMatrices();
}

double ContextAwareDft::FrequencyOf(int i) const {
  MACE_CHECK(i >= 0 && i < num_bases());
  return 2.0 * std::numbers::pi * bases_[static_cast<size_t>(i)] /
         static_cast<double>(window_);
}

void ContextAwareDft::Forward(const std::vector<double>& signal,
                              std::vector<double>* out_re,
                              std::vector<double>* out_im) const {
  MACE_CHECK(static_cast<int>(signal.size()) == window_)
      << "signal length " << signal.size() << " vs window " << window_;
  MACE_CHECK(out_re != nullptr && out_im != nullptr);
  const size_t k = bases_.size();
  out_re->assign(k, 0.0);
  out_im->assign(k, 0.0);
  for (size_t b = 0; b < k; ++b) {
    const int j = bases_[b];
    const double omega =
        2.0 * std::numbers::pi * j / static_cast<double>(window_);
    const bool edge = (j == 0) || (window_ % 2 == 0 && j == window_ / 2);
    const double weight =
        (edge ? 1.0 : 2.0) / static_cast<double>(window_);
    double re = 0.0, im = 0.0;
    for (int t = 0; t < window_; ++t) {
      re += signal[static_cast<size_t>(t)] * std::cos(omega * t);
      im -= signal[static_cast<size_t>(t)] * std::sin(omega * t);
    }
    (*out_re)[b] = weight * re;
    (*out_im)[b] = weight * im;
  }
}

std::vector<double> ContextAwareDft::Inverse(
    const std::vector<double>& re, const std::vector<double>& im) const {
  MACE_CHECK(re.size() == bases_.size() && im.size() == bases_.size());
  std::vector<double> out(static_cast<size_t>(window_), 0.0);
  for (size_t b = 0; b < bases_.size(); ++b) {
    const int j = bases_[b];
    const double omega =
        2.0 * std::numbers::pi * j / static_cast<double>(window_);
    // The conjugate-symmetry weight (2/T interior, 1/T edge) is applied by
    // Forward, so coefficients are amplitude-scale and Inverse is a plain
    // trigonometric synthesis; Inverse(Forward(x)) is still the projector.
    for (int t = 0; t < window_; ++t) {
      out[static_cast<size_t>(t)] +=
          re[b] * std::cos(omega * t) - im[b] * std::sin(omega * t);
    }
  }
  return out;
}

std::vector<double> ContextAwareDft::Project(
    const std::vector<double>& signal) const {
  std::vector<double> re, im;
  Forward(signal, &re, &im);
  return Inverse(re, im);
}

std::vector<double> ContextAwareDft::Amplitudes(
    const std::vector<double>& re, const std::vector<double>& im) const {
  MACE_CHECK(re.size() == bases_.size() && im.size() == bases_.size());
  std::vector<double> amps(bases_.size());
  for (size_t b = 0; b < bases_.size(); ++b) {
    amps[b] = std::hypot(re[b], im[b]);
  }
  return amps;
}

std::vector<double> ContextAwareDft::ForwardTransposedPanel() const {
  const size_t k2 = 2 * bases_.size();
  const size_t t_len = static_cast<size_t>(window_);
  const std::vector<double>& fwd = forward_matrix_.data();  // [2k, T]
  std::vector<double> panel(t_len * k2);
  for (size_t t = 0; t < t_len; ++t) {
    for (size_t c = 0; c < k2; ++c) {
      panel[t * k2 + c] = fwd[c * t_len + t];
    }
  }
  return panel;
}

std::vector<double> ContextAwareDft::InverseTransposedPanel() const {
  const size_t k2 = 2 * bases_.size();
  const size_t t_len = static_cast<size_t>(window_);
  const std::vector<double>& inv = inverse_matrix_.data();  // [T, 2k]
  std::vector<double> panel(k2 * t_len);
  for (size_t c = 0; c < k2; ++c) {
    for (size_t t = 0; t < t_len; ++t) {
      panel[c * t_len + t] = inv[t * k2 + c];
    }
  }
  return panel;
}

void ContextAwareDft::BuildMatrices() {
  const Index k = static_cast<Index>(bases_.size());
  const Index t_len = window_;
  std::vector<double> fwd(static_cast<size_t>(2 * k * t_len), 0.0);
  std::vector<double> inv(static_cast<size_t>(t_len * 2 * k), 0.0);
  for (Index b = 0; b < k; ++b) {
    const int j = bases_[static_cast<size_t>(b)];
    const double omega =
        2.0 * std::numbers::pi * j / static_cast<double>(window_);
    const bool edge = (j == 0) || (window_ % 2 == 0 && j == window_ / 2);
    const double weight =
        (edge ? 1.0 : 2.0) / static_cast<double>(window_);
    for (Index t = 0; t < t_len; ++t) {
      const double c = std::cos(omega * static_cast<double>(t));
      const double s = std::sin(omega * static_cast<double>(t));
      // Row b: Re coefficients; row k + b: Im coefficients. The
      // conjugate-symmetry weight lives on the forward map so that
      // coefficients are amplitude-scale.
      fwd[static_cast<size_t>(b * t_len + t)] = weight * c;
      fwd[static_cast<size_t>((k + b) * t_len + t)] = -weight * s;
      // Column b: contribution of Re_b; column k + b: of Im_b.
      inv[static_cast<size_t>(t * 2 * k + b)] = c;
      inv[static_cast<size_t>(t * 2 * k + k + b)] = -s;
    }
  }
  forward_matrix_ =
      Tensor::FromVector(std::move(fwd), Shape{2 * k, t_len});
  inverse_matrix_ =
      Tensor::FromVector(std::move(inv), Shape{t_len, 2 * k});
}

}  // namespace mace::fft
