#ifndef MACE_ONLINE_DRIFT_H_
#define MACE_ONLINE_DRIFT_H_

#include "core/pattern_extractor.h"

namespace mace::online {

/// \brief Mean squared cosine of the principal angles between the Fourier
/// subspaces spanned by two services' selected bases, in [0, 1].
///
/// Each base index b in [0, window/2] contributes its cos column (and,
/// for 0 < b < window/2, its sin column) over `window` sample points; the
/// columns are orthonormalized and the overlap is
/// ||Qa^T Qb||_F^2 / min(dim a, dim b) — exactly the mean cos^2 of the
/// principal angles, no SVD needed. Identical base sets give 1, disjoint
/// base sets give 0 (distinct Fourier bins are orthogonal), partial
/// agreement lands proportionally in between.
///
/// This is the drift gate's distance: a candidate model whose freshly
/// extracted subspace still overlaps the incumbent's was trained on the
/// same normality (skip-worthy); a low overlap means the stream's normal
/// pattern moved (drift).
double SubspaceOverlap(const core::PatternSubspace& a,
                       const core::PatternSubspace& b, int window);

/// What the drift gate decided to do with a candidate generation.
enum class GateDecision {
  /// Rotate the candidate into the ensemble (the steady-state outcome).
  kPromote,
  /// Ensemble is full and the candidate is indistinguishable from the
  /// incumbent — drop it, save the rotation churn.
  kSkip,
  /// Candidate diverged hard from the incumbent: promote it AND schedule
  /// the next refit early, because one generation of a new normality
  /// cannot outvote K-1 stale ones.
  kPromoteDrift,
};

const char* GateDecisionName(GateDecision decision);

/// Thresholds for the overlap-based gate. Defaults: skip when the
/// ensemble is full and overlap >= 0.98 (candidate ~ incumbent); declare
/// drift when overlap < 0.5 (less than half the candidate's energy lies
/// in the incumbent's subspace); promote otherwise.
struct DriftGateConfig {
  double skip_overlap = 0.98;
  double drift_overlap = 0.5;
};

/// Gate one candidate: `overlap` is SubspaceOverlap(candidate, incumbent)
/// (pass 1.0 when there is no incumbent yet — first generation always
/// promotes), `ensemble_full` whether promotion would evict a generation.
GateDecision GateCandidate(double overlap, bool ensemble_full,
                           const DriftGateConfig& config);

}  // namespace mace::online

#endif  // MACE_ONLINE_DRIFT_H_
