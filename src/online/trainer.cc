#include "online/trainer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/math_utils.h"

namespace mace::online {

namespace {

/// Thresholds calibrated on a candidate's self-scores can degenerate to
/// ~0 on a near-perfectly reconstructed buffer; flooring keeps the
/// consensus ratios finite without changing any realistic calibration.
constexpr double kThresholdFloor = 1e-9;

}  // namespace

OnlineTrainer::Stream::Stream(std::string key, size_t index, size_t capacity,
                              size_t num_features, size_t ensemble_size)
    : key(std::move(key)),
      index(index),
      buffer(std::make_unique<RollingWindowBuffer>(capacity, num_features)),
      ensemble(ensemble_size) {}

OnlineTrainer::OnlineTrainer(OnlineConfig config)
    : config_(std::move(config)),
      policy_(MakeConsensusPolicy(config_.consensus,
                                  config_.consensus_quantile)),
      pool_(std::max(1, config_.refit_threads)) {
  MACE_CHECK(core::MaceDetector::ValidateConfig(config_.model).ok())
      << "online refit model config is invalid";
  config_.ensemble_size = std::max<size_t>(1, config_.ensemble_size);
  config_.refit_interval = std::max<uint64_t>(1, config_.refit_interval);
  obs::MetricsRegistry& metrics = obs::Metrics();
  refits_total_ = metrics.GetCounter(
      "mace_online_refits_total", "Background refits completed");
  refit_failures_total_ = metrics.GetCounter(
      "mace_online_refit_failures_total",
      "Background refits that failed to fit or calibrate");
  promotions_total_ = metrics.GetCounter(
      "mace_online_promotions_total",
      "Candidate generations promoted into an ensemble");
  skips_total_ = metrics.GetCounter(
      "mace_online_skips_total",
      "Candidate generations dropped by the drift gate as redundant");
  drift_total_ = metrics.GetCounter(
      "mace_online_drift_total",
      "Drift alarms (candidate subspace diverged from the incumbent)");
  refit_seconds_ = metrics.GetHistogram(
      "mace_online_refit_seconds", "Wall time of one background refit", {},
      obs::LatencyBuckets());
  overlap_hist_ = metrics.GetHistogram(
      "mace_online_subspace_overlap",
      "Candidate-vs-incumbent subspace overlap at the drift gate", {},
      obs::OverlapBuckets());
}

OnlineTrainer::~OnlineTrainer() { Stop(); }

OnlineTrainer::Stream* OnlineTrainer::FindOrCreateStream(
    const std::string& key, int num_features) {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const std::unique_ptr<Stream>& stream : streams_) {
    if (stream->key == key) return stream.get();
  }
  auto stream = std::make_unique<Stream>(
      key, streams_.size(), config_.buffer_capacity,
      static_cast<size_t>(std::max(1, num_features)),
      config_.ensemble_size);
  // Stagger the first refit by the stream's phase slice so a fleet of
  // streams bound together never retrains in lockstep: stream i waits an
  // extra (i mod K) / K of an interval past the warm-up minimum.
  const uint64_t phase = (stream->index % config_.ensemble_size) *
                         (config_.refit_interval / config_.ensemble_size);
  stream->next_due = config_.min_refit_rows + phase;
  streams_.push_back(std::move(stream));
  return streams_.back().get();
}

core::StreamBinding OnlineTrainer::Bind(const std::string& key,
                                        int num_features) {
  Stream* stream = FindOrCreateStream(key, num_features);
  core::StreamBinding binding;
  binding.sink = stream->buffer.get();
  binding.ensemble =
      std::make_unique<EnsembleBinding>(&stream->ensemble, policy_.get());
  return binding;
}

size_t OnlineTrainer::PumpRefits() {
  std::unique_lock<std::mutex> pump(pump_mu_, std::try_to_lock);
  if (!pump.owns_lock()) return 0;  // a pump is already running
  std::vector<Stream*> due;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    for (const std::unique_ptr<Stream>& stream : streams_) {
      if (stream->buffer->total_appended() >= stream->next_due &&
          stream->buffer->size() >= config_.min_refit_rows) {
        due.push_back(stream.get());
      }
    }
  }
  for (Stream* stream : due) RefitStream(stream);
  return due.size();
}

void OnlineTrainer::RefitStream(Stream* stream) {
  const uint64_t appended = stream->buffer->total_appended();
  const auto reschedule = [&](double factor) {
    const auto delay = static_cast<uint64_t>(std::max(
        1.0, static_cast<double>(config_.refit_interval) * factor));
    stream->next_due = appended + delay;
  };
  const auto fail = [&] {
    refit_failures_total_->Increment();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.refit_failures;
  };

  const auto started = std::chrono::steady_clock::now();
  std::vector<ts::ServiceData> services(1);
  services[0].name = stream->key;
  services[0].train = stream->buffer->Snapshot();

  auto candidate = std::make_shared<core::MaceDetector>(config_.model);
  const Status fitted =
      candidate->Fit(services, &pool_, WorkerPool::TaskPriority::kLow);
  if (!fitted.ok()) {
    fail();
    reschedule(1.0);
    return;
  }

  // Calibrate the generation's own alert level on its training snapshot
  // (the same bulk-quantile rule the streaming monitor uses per tenant).
  Result<std::vector<double>> self_scores =
      candidate->Score(0, services[0].train);
  if (!self_scores.ok()) {
    fail();
    reschedule(1.0);
    return;
  }
  std::vector<double> finite;
  finite.reserve(self_scores->size());
  for (double score : *self_scores) {
    if (std::isfinite(score)) finite.push_back(score);
  }
  Result<double> calibrated = CalibratedThreshold(
      std::move(finite), config_.threshold_scale, config_.threshold_quantile);
  if (!calibrated.ok()) {
    fail();
    reschedule(1.0);
    return;
  }
  const double threshold = std::max(*calibrated, kThresholdFloor);

  const std::shared_ptr<const core::MaceDetector> incumbent =
      stream->ensemble.Newest();
  double overlap = 1.0;
  if (incumbent != nullptr) {
    overlap = SubspaceOverlap(candidate->subspaces()[0],
                              incumbent->subspaces()[0],
                              config_.model.window);
  }
  overlap_hist_->Observe(overlap);
  const GateDecision decision =
      incumbent == nullptr
          ? GateDecision::kPromote
          : GateCandidate(overlap, stream->ensemble.full(), config_.gate);

  refits_total_->Increment();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  refit_seconds_->Observe(elapsed.count());

  switch (decision) {
    case GateDecision::kSkip:
      skips_total_->Increment();
      reschedule(1.0);
      break;
    case GateDecision::kPromote:
      stream->ensemble.Promote(std::move(candidate), threshold);
      promotions_total_->Increment();
      reschedule(1.0);
      break;
    case GateDecision::kPromoteDrift:
      stream->ensemble.Promote(std::move(candidate), threshold);
      promotions_total_->Increment();
      drift_total_->Increment();
      // One fresh generation cannot outvote K-1 stale ones under
      // all-vote consensus — bring the next refit forward so the
      // ensemble converges on the new normality quickly.
      reschedule(config_.early_refit_factor);
      break;
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.refits;
  if (decision == GateDecision::kSkip) {
    ++stats_.skips;
  } else {
    ++stats_.promotions;
    if (decision == GateDecision::kPromoteDrift) ++stats_.drift_alarms;
  }
}

void OnlineTrainer::Start(std::chrono::milliseconds period) {
  Stop();
  {
    std::lock_guard<std::mutex> lock(pump_cv_mu_);
    stop_requested_ = false;
  }
  pump_thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(pump_cv_mu_);
    while (!stop_requested_) {
      lock.unlock();
      PumpRefits();
      lock.lock();
      pump_cv_.wait_for(lock, period, [this] { return stop_requested_; });
    }
  });
}

void OnlineTrainer::Stop() {
  {
    std::lock_guard<std::mutex> lock(pump_cv_mu_);
    stop_requested_ = true;
  }
  pump_cv_.notify_all();
  if (pump_thread_.joinable()) pump_thread_.join();
}

OnlineTrainer::Stats OnlineTrainer::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  std::lock_guard<std::mutex> lock(streams_mu_);
  out.streams = streams_.size();
  return out;
}

const ModelEnsemble* OnlineTrainer::ensemble(const std::string& key) const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const std::unique_ptr<Stream>& stream : streams_) {
    if (stream->key == key) return &stream->ensemble;
  }
  return nullptr;
}

const RollingWindowBuffer* OnlineTrainer::buffer(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const std::unique_ptr<Stream>& stream : streams_) {
    if (stream->key == key) return stream->buffer.get();
  }
  return nullptr;
}

}  // namespace mace::online
