#ifndef MACE_ONLINE_ROLLING_BUFFER_H_
#define MACE_ONLINE_ROLLING_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/online_hooks.h"
#include "ts/time_series.h"

namespace mace::online {

/// \brief Bounded ring of a stream's most recent finalized observations —
/// the training data of the next background refit.
///
/// Fed inline by StreamingScorer (via core::ObservationSink, the same way
/// AttachHistory feeds the history store) with raw sanitized rows: the
/// non-finite policy has already run, so every stored row is fully finite
/// (kImpute/kPropagate rows hold the imputed values) and `contaminated`
/// only needs counting — Snapshot() keeps repaired rows in place so the
/// refit sees a contiguous series, and contaminated_rows() lets the
/// trainer judge snapshot quality.
///
/// Concurrency: the owning stream's shard thread appends; the background
/// trainer snapshots. One mutex covers both — appends are O(row copy),
/// snapshots O(capacity), both brief next to a window score.
class RollingWindowBuffer : public core::ObservationSink {
 public:
  RollingWindowBuffer(size_t capacity, size_t num_features);

  /// Appends one row; rows of a foreign width are dropped (a defensive
  /// no-op: the scorer feeding this buffer validates widths upstream).
  void OnObservation(const std::vector<double>& row,
                     bool contaminated) override;

  /// Copy of the ring, oldest -> newest, as an unlabeled training series.
  ts::TimeSeries Snapshot() const;

  /// Drops every stored row (lifetime counters keep counting).
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t num_features() const { return num_features_; }
  size_t size() const;
  /// Rows accepted over the buffer's lifetime (>= size()) — the refit
  /// scheduler's clock.
  uint64_t total_appended() const;
  uint64_t contaminated_rows() const;

 private:
  const size_t capacity_;
  const size_t num_features_;

  mutable std::mutex mu_;
  /// Ring storage: grows to capacity, then wraps. Logical order is
  /// ring[head], ring[head+1], ... modulo ring.size().
  std::vector<std::vector<double>> ring_;
  size_t head_ = 0;
  uint64_t appended_ = 0;
  uint64_t contaminated_ = 0;
};

}  // namespace mace::online

#endif  // MACE_ONLINE_ROLLING_BUFFER_H_
