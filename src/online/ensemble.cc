#include "online/ensemble.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace mace::online {

ModelEnsemble::ModelEnsemble(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      snapshot_(std::make_shared<const std::vector<ModelGeneration>>()) {}

uint64_t ModelEnsemble::Promote(
    std::shared_ptr<const core::MaceDetector> model, double threshold) {
  MACE_CHECK(model != nullptr) << "cannot promote a null generation";
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelGeneration> next = *snapshot_;
  ModelGeneration generation;
  generation.model = std::move(model);
  generation.threshold = threshold;
  generation.version = next_version_++;
  next.push_back(std::move(generation));
  if (next.size() > capacity_) next.erase(next.begin());
  snapshot_ =
      std::make_shared<const std::vector<ModelGeneration>>(std::move(next));
  return next_version_ - 1;
}

ModelEnsemble::Snapshot ModelEnsemble::generations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::shared_ptr<const core::MaceDetector> ModelEnsemble::Newest() const {
  const Snapshot snapshot = generations();
  return snapshot->empty() ? nullptr : snapshot->back().model;
}

uint64_t ModelEnsemble::promotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_version_ - 1;
}

EnsembleBinding::EnsembleBinding(const ModelEnsemble* ensemble,
                                 const ConsensusPolicy* policy)
    : ensemble_(ensemble), policy_(policy) {
  MACE_CHECK(ensemble_ != nullptr && policy_ != nullptr);
}

void EnsembleBinding::SyncLanes() {
  ModelEnsemble::Snapshot current = ensemble_->generations();
  if (current == seen_) return;
  // Drop lanes of evicted generations; their shared_ptr kept the model
  // alive until exactly here, so no in-flight step ever lost its model.
  lanes_.erase(std::remove_if(lanes_.begin(), lanes_.end(),
                              [&](const Lane& lane) {
                                for (const ModelGeneration& gen : *current) {
                                  if (gen.version == lane.version) {
                                    return false;
                                  }
                                }
                                return true;
                              }),
               lanes_.end());
  // Open a lane for every generation we are not scoring yet. It starts at
  // the current stream step: earlier steps were consumed before this
  // generation existed here, so the lane abstains on them.
  for (const ModelGeneration& gen : *current) {
    bool have = false;
    for (const Lane& lane : lanes_) {
      if (lane.version == gen.version) {
        have = true;
        break;
      }
    }
    if (have) continue;
    Result<core::StreamingScorer> scorer =
        core::StreamingScorer::Create(gen.model.get(), 0);
    if (!scorer.ok()) continue;  // malformed generation: never vote with it
    Lane lane;
    lane.version = gen.version;
    lane.threshold = gen.threshold;
    lane.model = gen.model;
    lane.scorer = std::make_unique<core::StreamingScorer>(
        std::move(scorer).value());
    lane.next_step = consumed_;
    lanes_.push_back(std::move(lane));
  }
  seen_ = std::move(current);
}

void EnsembleBinding::OnObservation(const std::vector<double>& row) {
  SyncLanes();
  for (size_t i = 0; i < lanes_.size();) {
    Lane& lane = lanes_[i];
    Result<std::vector<double>> emitted = lane.scorer->Push(row);
    if (!emitted.ok()) {
      // A lane that cannot ingest the stream (feature-width mismatch with
      // its generation) can never vote again — drop it.
      lanes_.erase(lanes_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    for (double score : *emitted) lane.ready.push_back(score);
    ++i;
  }
  ++consumed_;
}

void EnsembleBinding::OnObservations(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return;
  SyncLanes();
  for (size_t i = 0; i < lanes_.size();) {
    Lane& lane = lanes_[i];
    Result<std::vector<std::vector<double>>> emitted =
        lane.scorer->PushMany(rows);
    if (!emitted.ok()) {
      lanes_.erase(lanes_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    for (const std::vector<double>& per_row : *emitted) {
      for (double score : per_row) lane.ready.push_back(score);
    }
    ++i;
  }
  consumed_ += rows.size();
}

core::StepVerdict EnsembleBinding::OnEmit(size_t step, double base_score) {
  (void)base_score;  // the base score reaches history directly
  std::vector<double> scores;
  std::vector<double> thresholds;
  for (Lane& lane : lanes_) {
    // In lockstep operation the front of `ready` is exactly `step`;
    // discard anything older defensively (a lane resumed past a gap).
    while (!lane.ready.empty() && lane.next_step < step) {
      lane.ready.pop_front();
      ++lane.next_step;
    }
    if (lane.ready.empty() || lane.next_step != step) continue;
    scores.push_back(lane.ready.front());
    thresholds.push_back(lane.threshold);
    lane.ready.pop_front();
    ++lane.next_step;
  }
  if (scores.empty()) return {};
  return policy_->Judge(scores, thresholds);
}

}  // namespace mace::online
