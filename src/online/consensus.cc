#include "online/consensus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace mace::online {

namespace {

/// A generation whose calibrated threshold degenerated to <= 0 cannot
/// express "how far past normal" — treat any score as maximally past it.
double Ratio(double score, double threshold) {
  if (threshold <= 0.0) return std::numeric_limits<double>::infinity();
  return score / threshold;
}

std::vector<double> Ratios(const std::vector<double>& scores,
                           const std::vector<double>& thresholds) {
  const size_t n = std::min(scores.size(), thresholds.size());
  std::vector<double> ratios;
  ratios.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ratios.push_back(Ratio(scores[i], thresholds[i]));
  }
  return ratios;
}

core::StepVerdict VerdictFrom(double combined) {
  core::StepVerdict verdict;
  verdict.voted = true;
  verdict.score = combined;
  verdict.anomaly = combined > 1.0;
  return verdict;
}

class AllVotePolicy : public ConsensusPolicy {
 public:
  ConsensusKind kind() const override { return ConsensusKind::kAllVote; }
  core::StepVerdict Judge(
      const std::vector<double>& scores,
      const std::vector<double>& thresholds) const override {
    const std::vector<double> ratios = Ratios(scores, thresholds);
    if (ratios.empty()) return {};
    // min over ratios: > 1 iff every generation is past its threshold.
    return VerdictFrom(*std::min_element(ratios.begin(), ratios.end()));
  }
};

class MaxPolicy : public ConsensusPolicy {
 public:
  ConsensusKind kind() const override { return ConsensusKind::kMax; }
  core::StepVerdict Judge(
      const std::vector<double>& scores,
      const std::vector<double>& thresholds) const override {
    const std::vector<double> ratios = Ratios(scores, thresholds);
    if (ratios.empty()) return {};
    return VerdictFrom(*std::max_element(ratios.begin(), ratios.end()));
  }
};

class QuantilePolicy : public ConsensusPolicy {
 public:
  explicit QuantilePolicy(double q) : q_(std::clamp(q, 0.0, 1.0)) {}
  ConsensusKind kind() const override { return ConsensusKind::kQuantile; }
  core::StepVerdict Judge(
      const std::vector<double>& scores,
      const std::vector<double>& thresholds) const override {
    std::vector<double> ratios = Ratios(scores, thresholds);
    if (ratios.empty()) return {};
    // Interpolated quantiles choke on infinities; one saturated ratio
    // should not NaN the verdict, so collapse them to a huge finite value.
    for (double& r : ratios) {
      if (!std::isfinite(r)) r = std::numeric_limits<double>::max();
    }
    Result<double> combined = Quantile(std::move(ratios), q_);
    if (!combined.ok()) return {};
    return VerdictFrom(*combined);
  }

 private:
  const double q_;
};

}  // namespace

const char* ConsensusKindName(ConsensusKind kind) {
  switch (kind) {
    case ConsensusKind::kAllVote:
      return "all";
    case ConsensusKind::kMax:
      return "max";
    case ConsensusKind::kQuantile:
      return "quantile";
  }
  return "?";
}

std::unique_ptr<ConsensusPolicy> MakeConsensusPolicy(ConsensusKind kind,
                                                     double quantile) {
  switch (kind) {
    case ConsensusKind::kAllVote:
      return std::make_unique<AllVotePolicy>();
    case ConsensusKind::kMax:
      return std::make_unique<MaxPolicy>();
    case ConsensusKind::kQuantile:
      return std::make_unique<QuantilePolicy>(quantile);
  }
  return nullptr;
}

std::unique_ptr<ConsensusPolicy> ParseConsensusPolicy(const std::string& name,
                                                      double quantile) {
  if (name == "all") return MakeConsensusPolicy(ConsensusKind::kAllVote);
  if (name == "max") return MakeConsensusPolicy(ConsensusKind::kMax);
  if (name == "quantile") {
    return MakeConsensusPolicy(ConsensusKind::kQuantile, quantile);
  }
  return nullptr;
}

}  // namespace mace::online
