#include "online/rolling_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace mace::online {

RollingWindowBuffer::RollingWindowBuffer(size_t capacity,
                                         size_t num_features)
    : capacity_(std::max<size_t>(1, capacity)),
      num_features_(num_features) {
  MACE_CHECK(num_features_ > 0) << "buffer needs at least one feature";
  ring_.reserve(capacity_);
}

void RollingWindowBuffer::OnObservation(const std::vector<double>& row,
                                        bool contaminated) {
  if (row.size() != num_features_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(row);
  } else {
    ring_[head_] = row;
    head_ = (head_ + 1) % ring_.size();
  }
  ++appended_;
  if (contaminated) ++contaminated_;
}

ts::TimeSeries RollingWindowBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<double>> rows;
  rows.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    rows.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return ts::TimeSeries(std::move(rows));
}

void RollingWindowBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

size_t RollingWindowBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t RollingWindowBuffer::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t RollingWindowBuffer::contaminated_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contaminated_;
}

}  // namespace mace::online
