#include "online/drift.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace mace::online {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Sampled Fourier columns for one subspace: cos(2 pi b t / window) for
/// every base b, plus sin for the strictly interior bins. Duplicate or
/// out-of-range bases are dropped.
std::vector<std::vector<double>> FourierColumns(
    const core::PatternSubspace& subspace, int window) {
  std::vector<std::vector<double>> columns;
  std::vector<char> seen(static_cast<size_t>(window / 2) + 1, 0);
  for (int base : subspace.bases) {
    if (base < 0 || base > window / 2) continue;
    if (seen[static_cast<size_t>(base)]) continue;
    seen[static_cast<size_t>(base)] = 1;
    std::vector<double> cos_col(static_cast<size_t>(window));
    for (int t = 0; t < window; ++t) {
      cos_col[static_cast<size_t>(t)] =
          std::cos(2.0 * kPi * base * t / window);
    }
    columns.push_back(std::move(cos_col));
    if (base == 0 || (window % 2 == 0 && base == window / 2)) continue;
    std::vector<double> sin_col(static_cast<size_t>(window));
    for (int t = 0; t < window; ++t) {
      sin_col[static_cast<size_t>(t)] =
          std::sin(2.0 * kPi * base * t / window);
    }
    columns.push_back(std::move(sin_col));
  }
  return columns;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

/// Modified Gram-Schmidt; near-zero columns (linearly dependent input)
/// are discarded so the result is a true orthonormal basis.
std::vector<std::vector<double>> Orthonormalize(
    std::vector<std::vector<double>> columns) {
  std::vector<std::vector<double>> q;
  for (std::vector<double>& col : columns) {
    for (const std::vector<double>& prev : q) {
      const double proj = Dot(col, prev);
      for (size_t i = 0; i < col.size(); ++i) col[i] -= proj * prev[i];
    }
    const double norm = std::sqrt(Dot(col, col));
    if (norm < 1e-9) continue;
    for (double& v : col) v /= norm;
    q.push_back(std::move(col));
  }
  return q;
}

}  // namespace

double SubspaceOverlap(const core::PatternSubspace& a,
                       const core::PatternSubspace& b, int window) {
  MACE_CHECK(window >= 2) << "overlap needs a real window";
  const std::vector<std::vector<double>> qa =
      Orthonormalize(FourierColumns(a, window));
  const std::vector<std::vector<double>> qb =
      Orthonormalize(FourierColumns(b, window));
  if (qa.empty() || qb.empty()) return 0.0;
  double frob_sq = 0.0;
  for (const std::vector<double>& ca : qa) {
    for (const std::vector<double>& cb : qb) {
      const double g = Dot(ca, cb);
      frob_sq += g * g;
    }
  }
  const double dim = static_cast<double>(std::min(qa.size(), qb.size()));
  // frob_sq / dim is the mean cos^2 of the principal angles; clamp the
  // float fuzz so callers can compare against 1.0 safely.
  return std::clamp(frob_sq / dim, 0.0, 1.0);
}

const char* GateDecisionName(GateDecision decision) {
  switch (decision) {
    case GateDecision::kPromote:
      return "promote";
    case GateDecision::kSkip:
      return "skip";
    case GateDecision::kPromoteDrift:
      return "promote_drift";
  }
  return "?";
}

GateDecision GateCandidate(double overlap, bool ensemble_full,
                           const DriftGateConfig& config) {
  if (overlap < config.drift_overlap) return GateDecision::kPromoteDrift;
  if (ensemble_full && overlap >= config.skip_overlap) {
    return GateDecision::kSkip;
  }
  return GateDecision::kPromote;
}

}  // namespace mace::online
