#ifndef MACE_ONLINE_TRAINER_H_
#define MACE_ONLINE_TRAINER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/mace_config.h"
#include "core/online_hooks.h"
#include "obs/metrics.h"
#include "online/consensus.h"
#include "online/drift.h"
#include "online/ensemble.h"
#include "online/rolling_buffer.h"

namespace mace::online {

/// Knobs of the online-learning subsystem (one trainer serves all
/// streams of a process).
struct OnlineConfig {
  /// Hyperparameters of every refit model. non_finite_policy is
  /// irrelevant here: rolling buffers only ever hold sanitized finite
  /// rows. fit_threads is ignored — refits run on the trainer's shared
  /// pool (see refit_threads) at low priority.
  core::MaceConfig model;

  /// Rolling-buffer rows kept per stream (the refit training horizon).
  size_t buffer_capacity = 2048;
  /// A refit is skipped while the buffer holds fewer rows than this
  /// (must cover several windows to extract a meaningful subspace).
  size_t min_refit_rows = 256;
  /// Rows consumed between two refits of the same stream.
  uint64_t refit_interval = 1024;
  /// After a drift alarm the next refit comes early, at
  /// refit_interval * early_refit_factor rows.
  double early_refit_factor = 0.25;

  /// Generations kept per stream (the paper-exemplar K; >= 3 for the
  /// consensus FP win). Refits of distinct streams are phase-staggered
  /// across this many interval slices so the fleet never retrains in
  /// lockstep.
  size_t ensemble_size = 3;
  ConsensusKind consensus = ConsensusKind::kAllVote;
  double consensus_quantile = 0.5;

  /// Per-generation threshold calibration: CalibratedThreshold(scale, q)
  /// over the candidate's self-scores on its own training snapshot.
  double threshold_scale = 2.0;
  double threshold_quantile = 0.90;

  DriftGateConfig gate;

  /// Workers of the trainer-owned refit pool. Refit rounds run at
  /// TaskPriority::kLow, which staffs at most half the pool and yields
  /// between task claims, so serving threads on the same machine keep
  /// their cores.
  int refit_threads = 2;
};

/// \brief The online-learning subsystem: per-stream rolling buffers,
/// background refits, drift-gated promotion into per-stream ensembles.
///
/// Plugs into the scoring layers through core::OnlineHooks — a serve
/// frontend sets ServeConfig::online to a trainer and every session gets
/// its buffer feed and consensus ensemble attached automatically.
///
/// Threading: Bind() is called from shard threads (thread-safe);
/// PumpRefits() runs refits on the caller (one pump at a time — a second
/// concurrent pump returns 0 immediately); Start()/Stop() run the pump
/// from an internal background thread instead. Scoring never blocks on a
/// refit: promotion swaps a copy-on-write snapshot that sessions pick up
/// at their next observation.
///
/// Determinism: a refit's resulting weights are a pure function of the
/// snapshot rows, the model config (seed included) and refit_threads —
/// the low-priority pool schedule does not leak into results (see
/// MaceDetector::Fit's pool overload).
class OnlineTrainer : public core::OnlineHooks {
 public:
  struct Stats {
    uint64_t streams = 0;
    uint64_t refits = 0;           ///< completed (successful) refits
    uint64_t refit_failures = 0;   ///< Fit/calibration errors
    uint64_t promotions = 0;
    uint64_t skips = 0;
    uint64_t drift_alarms = 0;
  };

  explicit OnlineTrainer(OnlineConfig config);
  ~OnlineTrainer() override;

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Returns the stream's buffer sink and a fresh ensemble binding. The
  /// stream (buffer + ensemble + refit schedule) is created on first
  /// bind and persists across session recycling, so a returning tenant
  /// keeps its warmed generations.
  core::StreamBinding Bind(const std::string& key,
                           int num_features) override;

  /// Runs every due refit now, on the calling thread (the deterministic
  /// pump for tests, benches and single-threaded monitors). Returns the
  /// number of refits executed.
  size_t PumpRefits();

  /// Starts/stops a background thread that pumps every `period`.
  void Start(std::chrono::milliseconds period = std::chrono::milliseconds(
                 100));
  void Stop();

  Stats stats() const;
  const OnlineConfig& config() const { return config_; }

  /// The stream's ensemble (nullptr when the key was never bound) — for
  /// tests and monitors that inspect generations directly.
  const ModelEnsemble* ensemble(const std::string& key) const;
  /// The stream's rolling buffer (nullptr when the key was never bound).
  const RollingWindowBuffer* buffer(const std::string& key) const;

 private:
  struct Stream {
    std::string key;
    size_t index = 0;  ///< bind order, fixes the stagger phase
    std::unique_ptr<RollingWindowBuffer> buffer;
    ModelEnsemble ensemble;
    /// Buffer row count (total_appended) at which the next refit is due.
    uint64_t next_due = 0;

    Stream(std::string key, size_t index, size_t capacity,
           size_t num_features, size_t ensemble_size);
  };

  Stream* FindOrCreateStream(const std::string& key, int num_features);
  /// One refit of one stream: snapshot -> low-priority Fit -> threshold
  /// calibration -> drift gate -> promote/skip + reschedule.
  void RefitStream(Stream* stream);

  OnlineConfig config_;
  std::unique_ptr<ConsensusPolicy> policy_;
  WorkerPool pool_;

  mutable std::mutex streams_mu_;
  std::vector<std::unique_ptr<Stream>> streams_;

  /// Serializes pumps; PumpRefits try-locks so overlapping pumps collapse
  /// into one instead of queueing refit storms.
  std::mutex pump_mu_;

  std::thread pump_thread_;
  std::mutex pump_cv_mu_;
  std::condition_variable pump_cv_;
  bool stop_requested_ = false;

  mutable std::mutex stats_mu_;
  Stats stats_;

  // Fleet-wide instruments, resolved once.
  obs::Counter* refits_total_;
  obs::Counter* refit_failures_total_;
  obs::Counter* promotions_total_;
  obs::Counter* skips_total_;
  obs::Counter* drift_total_;
  obs::Histogram* refit_seconds_;
  obs::Histogram* overlap_hist_;
};

}  // namespace mace::online

#endif  // MACE_ONLINE_TRAINER_H_
