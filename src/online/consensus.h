#ifndef MACE_ONLINE_CONSENSUS_H_
#define MACE_ONLINE_CONSENSUS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/online_hooks.h"

namespace mace::online {

/// How an ensemble's per-generation scores combine into one verdict.
enum class ConsensusKind {
  /// Anomalous only when EVERY generation fires — the netdata-style
  /// all-vote bit that eliminates single-model false positives.
  kAllVote,
  /// Most sensitive combiner: anomalous when ANY generation fires.
  kMax,
  /// Anomalous when the q-quantile of per-generation ratios exceeds 1 —
  /// a tunable midpoint (q=0 ~ kMax over the min, q=1 ~ strictest).
  kQuantile,
};

const char* ConsensusKindName(ConsensusKind kind);

/// \brief Combines one emitted step's scores across ensemble generations.
///
/// Each generation g contributes a ratio r_g = score_g / threshold_g
/// (scores from different generations are not directly comparable — each
/// model reconstructs against its own training regime — but "how far past
/// my own calibrated threshold" is). The policy folds the ratios into one
/// combined ratio; the anomaly bit is combined > 1.
class ConsensusPolicy {
 public:
  virtual ~ConsensusPolicy() = default;
  virtual ConsensusKind kind() const = 0;

  /// `scores` and `thresholds` are parallel (one entry per generation
  /// that produced a score for this step). Empty input abstains
  /// (voted=false); a non-positive threshold makes its generation's
  /// ratio saturate anomalous (defensive — calibration floors thresholds
  /// above zero).
  virtual core::StepVerdict Judge(
      const std::vector<double>& scores,
      const std::vector<double>& thresholds) const = 0;
};

/// Factory; `quantile` only affects kQuantile (clamped to [0, 1]).
std::unique_ptr<ConsensusPolicy> MakeConsensusPolicy(ConsensusKind kind,
                                                     double quantile = 0.5);

/// Parses "all" / "max" / "quantile" (case-sensitive); nullptr on junk.
/// CLI-flag convenience for the monitor example and benches.
std::unique_ptr<ConsensusPolicy> ParseConsensusPolicy(
    const std::string& name, double quantile = 0.5);

}  // namespace mace::online

#endif  // MACE_ONLINE_CONSENSUS_H_
