#ifndef MACE_ONLINE_ENSEMBLE_H_
#define MACE_ONLINE_ENSEMBLE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/mace_detector.h"
#include "core/online_hooks.h"
#include "core/streaming.h"
#include "online/consensus.h"

namespace mace::online {

/// One promoted model generation. The model is a complete fitted
/// MaceDetector trained on a rolling-buffer snapshot as a single service
/// (service index 0), `threshold` its calibrated per-generation alert
/// level (see common/math_utils.h CalibratedThreshold), `version` the
/// ensemble-assigned monotonic id.
struct ModelGeneration {
  std::shared_ptr<const core::MaceDetector> model;
  double threshold = 0.0;
  uint64_t version = 0;
};

/// \brief The K most recent promoted generations of one stream, rotated
/// copy-on-write: readers grab an immutable shared snapshot with one
/// mutex-guarded pointer copy, Promote builds a fresh vector and swaps the
/// pointer — a scoring lane mid-window keeps its generation alive through
/// its own shared_ptr even after eviction, so promotion is atomic with
/// zero lost steps on the serving path.
class ModelEnsemble {
 public:
  using Snapshot = std::shared_ptr<const std::vector<ModelGeneration>>;

  explicit ModelEnsemble(size_t capacity);

  /// Rotates in a new generation (evicting the oldest when at capacity)
  /// and returns its version.
  uint64_t Promote(std::shared_ptr<const core::MaceDetector> model,
                   double threshold);

  /// Immutable view of the current generations, oldest -> newest. Never
  /// null (empty vector before the first promotion). Pointer inequality
  /// between two snapshots means the membership changed.
  Snapshot generations() const;

  /// Newest generation's model, or nullptr before the first promotion —
  /// the drift gate's incumbent.
  std::shared_ptr<const core::MaceDetector> Newest() const;

  size_t capacity() const { return capacity_; }
  size_t size() const { return generations()->size(); }
  bool full() const { return size() >= capacity_; }
  /// Versions assigned so far (== the next version minus one).
  uint64_t promotions() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  Snapshot snapshot_;
  uint64_t next_version_ = 1;
};

/// \brief Per-session fan-out of a stream across an ensemble's
/// generations (the core::StreamEnsemble the serve layer attaches to a
/// StreamingScorer).
///
/// Each generation gets a lane: its own StreamingScorer over the
/// generation's model, fed every observation the base pipeline consumes.
/// A lane opened at stream step b emits its score for stream step s >= b
/// exactly when total consumption reaches s + window — the same condition
/// under which the base scorer finalizes s — so by the time OnEmit(s) is
/// called, every lane opened at or before s either has s's score at the
/// front of its queue or abstains (opened too late / still filling).
/// Verdicts therefore need no cross-thread waiting: the whole binding
/// runs on the session's thread, only the snapshot fetch touches the
/// shared ensemble.
class EnsembleBinding : public core::StreamEnsemble {
 public:
  /// `ensemble` and `policy` are borrowed (the hooks provider outlives
  /// every session).
  EnsembleBinding(const ModelEnsemble* ensemble,
                  const ConsensusPolicy* policy);

  void OnObservation(const std::vector<double>& row) override;
  void OnObservations(
      const std::vector<std::vector<double>>& rows) override;
  core::StepVerdict OnEmit(size_t step, double base_score) override;

  /// Lanes currently scoring (<= ensemble size; for tests/monitoring).
  size_t active_lanes() const { return lanes_.size(); }

 private:
  struct Lane {
    uint64_t version = 0;
    double threshold = 0.0;
    /// Keeps the generation's model alive across an eviction while this
    /// lane still scores against it (promotion must not tear a session).
    std::shared_ptr<const core::MaceDetector> model;
    std::unique_ptr<core::StreamingScorer> scorer;
    /// Stream step the front of `ready` belongs to.
    size_t next_step = 0;
    std::deque<double> ready;
  };

  /// Reconciles lanes with the current ensemble snapshot: drops lanes of
  /// evicted generations, opens lanes (starting at the current stream
  /// step) for new ones. Cheap no-op while the snapshot pointer is
  /// unchanged.
  void SyncLanes();

  const ModelEnsemble* ensemble_;
  const ConsensusPolicy* policy_;
  ModelEnsemble::Snapshot seen_;
  std::vector<Lane> lanes_;
  size_t consumed_ = 0;
};

}  // namespace mace::online

#endif  // MACE_ONLINE_ENSEMBLE_H_
