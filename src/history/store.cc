#include "history/store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mace::history {
namespace {

/// First index in [first, last) of `ring` (logical order, starting at
/// `head`) whose timestamp is >= `t` — lower_bound over the wrapped ring
/// without materializing it.
size_t LowerBoundLogical(const std::vector<Record>& ring, size_t head,
                         size_t count, int64_t t) {
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const Record& r = ring[(head + mid) % ring.size()];
    if (r.timestamp < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t UpperBoundLogical(const std::vector<Record>& ring, size_t head,
                         size_t count, int64_t t) {
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const Record& r = ring[(head + mid) % ring.size()];
    if (r.timestamp <= t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

HistoryStore::HistoryStore(HistoryConfig config) : config_(config) {
  MACE_CHECK(config_.capacity_per_tenant >= 1)
      << "history capacity_per_tenant must be >= 1";
  MACE_CHECK(std::isfinite(config_.anomaly_threshold))
      << "history anomaly_threshold must be finite";
  obs::MetricsRegistry& metrics = obs::Metrics();
  appends_counter_ = metrics.GetCounter(
      "mace_history_appends_total",
      "Records appended to the anomaly history store");
  anomalies_counter_ = metrics.GetCounter(
      "mace_history_anomalies_total",
      "Appended records whose score exceeded the tenant threshold");
  evicted_counter_ = metrics.GetCounter(
      "mace_history_evicted_total",
      "Records evicted because a tenant ring buffer was full");
  skipped_counter_ = metrics.GetCounter(
      "mace_history_skipped_total",
      "Appends dropped because the score was non-finite");
  tenants_counter_ = metrics.GetCounter(
      "mace_history_tenants_total",
      "Tenants interned into the anomaly history store");
  append_latency_ = metrics.GetHistogram(
      "mace_history_append_seconds",
      "Latency of one history append (ring write under the tenant lock)");
}

HistoryStore::TenantId HistoryStore::Intern(std::string_view tenant) {
  const std::string key(tenant);
  {
    std::shared_lock<std::shared_mutex> lock(tenants_mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mu_);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const TenantId id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(
      std::make_unique<Tenant>(key, config_.anomaly_threshold));
  ids_.emplace(key, id);
  tenants_counter_->Increment();
  return id;
}

HistoryStore::Tenant& HistoryStore::TenantFor(TenantId id) const {
  std::shared_lock<std::shared_mutex> lock(tenants_mu_);
  MACE_CHECK(id < tenants_.size()) << "unknown history tenant id " << id;
  return *tenants_[id];
}

void HistoryStore::SetThreshold(TenantId id, double threshold) {
  MACE_CHECK(std::isfinite(threshold))
      << "history threshold must be finite";
  Tenant& tenant = TenantFor(id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  tenant.threshold = threshold;
}

double HistoryStore::threshold(TenantId id) const {
  Tenant& tenant = TenantFor(id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  return tenant.threshold;
}

uint64_t HistoryStore::appended(TenantId id) const {
  Tenant& tenant = TenantFor(id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  return tenant.appended;
}

int64_t HistoryStore::next_timestamp(TenantId id) const {
  Tenant& tenant = TenantFor(id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  if (tenant.ring.empty()) return 0;
  // Timestamps are non-decreasing, so the newest slot holds the maximum.
  const size_t newest =
      (tenant.head + tenant.ring.size() - 1) % tenant.ring.size();
  const int64_t last = tenant.ring[newest].timestamp;
  return last == std::numeric_limits<int64_t>::max() ? last : last + 1;
}

void HistoryStore::Append(TenantId id, int64_t timestamp, double score) {
  AppendImpl(id, timestamp, score, /*forced_bit=*/nullptr);
}

void HistoryStore::Append(TenantId id, int64_t timestamp, double score,
                          bool anomaly) {
  AppendImpl(id, timestamp, score, &anomaly);
}

void HistoryStore::AppendImpl(TenantId id, int64_t timestamp, double score,
                              const bool* forced_bit) {
  if (!std::isfinite(score)) {
    skipped_counter_->Increment();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  Tenant& tenant = TenantFor(id);
  bool anomaly;
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(tenant.mu);
    anomaly = forced_bit != nullptr ? *forced_bit : score > tenant.threshold;
    Record record;
    record.timestamp = timestamp;
    record.score = static_cast<float>(score);
    record.anomaly = anomaly ? 1 : 0;
    if (tenant.ring.size() < config_.capacity_per_tenant) {
      tenant.ring.push_back(record);
    } else {
      tenant.ring[tenant.head] = record;
      tenant.head = (tenant.head + 1) % tenant.ring.size();
      evicted = true;
    }
    ++tenant.appended;
  }
  appends_counter_->Increment();
  if (anomaly) anomalies_counter_->Increment();
  if (evicted) evicted_counter_->Increment();
  append_latency_->Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
}

size_t HistoryStore::NumTenants() const {
  std::shared_lock<std::shared_mutex> lock(tenants_mu_);
  return tenants_.size();
}

std::string HistoryStore::TenantName(size_t index) const {
  // Tenant::name is const after construction, so no tenant lock needed.
  return TenantFor(static_cast<TenantId>(index)).name;
}

double HistoryStore::TenantThreshold(size_t index) const {
  return threshold(static_cast<TenantId>(index));
}

void HistoryStore::VisitRange(
    size_t index, int64_t t0, int64_t t1,
    const std::function<void(RecordSpan)>& fn) const {
  if (t1 < t0) return;
  Tenant& tenant = TenantFor(static_cast<TenantId>(index));
  std::lock_guard<std::mutex> lock(tenant.mu);
  const std::vector<Record>& ring = tenant.ring;
  const size_t count = ring.size();
  if (count == 0) return;
  const size_t head = count < config_.capacity_per_tenant ? 0 : tenant.head;
  const size_t first = LowerBoundLogical(ring, head, count, t0);
  const size_t last = UpperBoundLogical(ring, head, count, t1);
  if (first >= last) return;
  // Logical range [first, last) maps to one or two physical spans.
  const size_t begin = (head + first) % count;
  const size_t n = last - first;
  const size_t tail = std::min(n, count - begin);
  fn(RecordSpan{ring.data() + begin, tail});
  if (tail < n) fn(RecordSpan{ring.data(), n - tail});
}

}  // namespace mace::history
