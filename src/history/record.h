#ifndef MACE_HISTORY_RECORD_H_
#define MACE_HISTORY_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>

namespace mace::history {

/// \brief One scored step of one tenant: when it was scored, what the
/// score was, and whether it crossed the tenant's anomaly threshold at
/// append time (the netdata "anomaly bit" — cheap to rank and correlate
/// without re-deciding thresholds at query time).
///
/// The layout is the on-disk snapshot record layout: 16 bytes, explicit
/// padding, trivially copyable, so a ring buffer flushes to a snapshot
/// (and a snapshot maps back) without any per-record re-encoding.
struct Record {
  int64_t timestamp = 0;  ///< appender-defined; stream step index here
  float score = 0.0f;
  uint8_t anomaly = 0;         ///< 1 iff score > tenant threshold
  uint8_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(Record) == 16, "snapshot record layout is 16 bytes");
static_assert(std::is_trivially_copyable_v<Record>,
              "records memcpy into snapshots");

/// Contiguous run of time-ordered records.
struct RecordSpan {
  const Record* data = nullptr;
  size_t size = 0;
};

/// \brief Read-side interface over per-tenant anomaly history — the live
/// HistoryStore and an opened SnapshotReader both implement it, so every
/// query (top-K, rate series, correlation) runs unchanged against the
/// in-memory fleet or an offline snapshot file.
class HistorySource {
 public:
  virtual ~HistorySource() = default;

  virtual size_t NumTenants() const = 0;
  virtual std::string TenantName(size_t index) const = 0;
  virtual double TenantThreshold(size_t index) const = 0;

  /// Invokes `fn` with at most two spans that together hold every record
  /// of tenant `index` whose timestamp lies in [t0, t1], oldest first
  /// (two when a live ring buffer has wrapped). Spans may point into
  /// storage that is only locked for the duration of the call — consume,
  /// do not retain.
  virtual void VisitRange(
      size_t index, int64_t t0, int64_t t1,
      const std::function<void(RecordSpan)>& fn) const = 0;
};

}  // namespace mace::history

#endif  // MACE_HISTORY_RECORD_H_
