#include "history/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define MACE_HISTORY_HAS_MMAP 1
#endif

#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mace::history {
namespace {

// The format stores native little-endian fields and raw Record structs;
// the layout asserts make a silent struct change a compile error instead
// of a corrupt file.
static_assert(std::endian::native == std::endian::little,
              "MHSNAPv1 snapshots are little-endian");
static_assert(offsetof(Record, timestamp) == 0 &&
                  offsetof(Record, score) == 8 &&
                  offsetof(Record, anomaly) == 12,
              "Record layout is the on-disk layout");

constexpr size_t kCrcOffset = 20;  ///< CRC covers [24, end)
constexpr size_t kCrcCoverStart = 24;
constexpr uint32_t kMaxTenants = 1u << 24;
constexpr uint32_t kMaxNameLength = 4096;

void PutBytes(std::vector<uint8_t>* out, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + size);
}
template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  PutBytes(out, &value, sizeof(value));
}

template <typename T>
T Read(const uint8_t* data, size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(value));
  return value;
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("history snapshot: " + what);
}

obs::Histogram* SnapshotLatency(const char* op) {
  return obs::Metrics().GetHistogram(
      "mace_history_snapshot_seconds",
      "Latency of history snapshot operations, by op", {{"op", op}});
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  return common::Crc32(data, size);
}

Status WriteSnapshot(const HistorySource& source, const std::string& path,
                     double default_threshold) {
  obs::ScopedSpan span("history_snapshot_write", SnapshotLatency("write"));
  const size_t num_tenants = source.NumTenants();
  if (num_tenants > kMaxTenants) {
    return Status::InvalidArgument(
        "history snapshot: too many tenants to snapshot (" +
        std::to_string(num_tenants) + ")");
  }

  // Capture every tenant's retained range first, so the index (which
  // precedes the records on disk) sees final counts even while the live
  // store keeps appending.
  std::vector<std::vector<Record>> captured(num_tenants);
  for (size_t i = 0; i < num_tenants; ++i) {
    source.VisitRange(i, std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max(),
                      [&](RecordSpan s) {
                        captured[i].insert(captured[i].end(), s.data,
                                           s.data + s.size);
                      });
  }

  std::vector<uint8_t> index;
  uint64_t total_records = 0;
  for (size_t i = 0; i < num_tenants; ++i) {
    const std::string name = source.TenantName(i);
    if (name.size() > kMaxNameLength) {
      return Status::InvalidArgument(
          "history snapshot: tenant name too long (" +
          std::to_string(name.size()) + " bytes)");
    }
    Put<uint32_t>(&index, static_cast<uint32_t>(name.size()));
    PutBytes(&index, name.data(), name.size());
    Put<double>(&index, source.TenantThreshold(i));
    Put<uint64_t>(&index, captured[i].size());
    Put<uint64_t>(&index, total_records);
    total_records += captured[i].size();
  }

  const size_t records_offset =
      (kSnapshotHeaderSize + index.size() + 15) & ~size_t{15};

  std::vector<uint8_t> file;
  file.reserve(records_offset + total_records * sizeof(Record));
  PutBytes(&file, kSnapshotMagic, sizeof(kSnapshotMagic));
  Put<uint32_t>(&file, kSnapshotVersion);
  Put<uint32_t>(&file, static_cast<uint32_t>(sizeof(Record)));
  Put<uint32_t>(&file, static_cast<uint32_t>(num_tenants));
  Put<uint32_t>(&file, 0);  // CRC patched below
  Put<uint64_t>(&file, total_records);
  Put<uint64_t>(&file, records_offset);
  Put<double>(&file, default_threshold);
  file.resize(kSnapshotHeaderSize, 0);  // reserved tail of the header
  PutBytes(&file, index.data(), index.size());
  file.resize(records_offset, 0);  // alignment padding
  for (const std::vector<Record>& records : captured) {
    PutBytes(&file, records.data(), records.size() * sizeof(Record));
  }
  const uint32_t crc =
      Crc32(file.data() + kCrcCoverStart, file.size() - kCrcCoverStart);
  std::memcpy(file.data() + kCrcOffset, &crc, sizeof(crc));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  out.flush();
  if (!out.good()) {
    return Status::IoError("short write to '" + path + "'");
  }
  obs::Metrics()
      .GetCounter("mace_history_snapshot_bytes_total",
                  "Snapshot bytes written, by op", {{"op", "write"}})
      ->Increment(file.size());
  return Status::OK();
}

SnapshotReader::~SnapshotReader() {
#ifdef MACE_HISTORY_HAS_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_size_);
#endif
}

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept {
  *this = std::move(other);
}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this == &other) return *this;
#ifdef MACE_HISTORY_HAS_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_size_);
#endif
  map_addr_ = other.map_addr_;
  map_size_ = other.map_size_;
  other.map_addr_ = nullptr;
  other.map_size_ = 0;
  owned_ = std::move(other.owned_);
  data_ = other.data_;
  size_ = other.size_;
  records_ = other.records_;
  total_records_ = other.total_records_;
  default_threshold_ = other.default_threshold_;
  tenants_ = std::move(other.tenants_);
  return *this;
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  obs::ScopedSpan span("history_snapshot_open", SnapshotLatency("open"));
  SnapshotReader reader;
#ifdef MACE_HISTORY_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open history snapshot '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat history snapshot '" + path + "'");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      reader.map_addr_ = addr;
      reader.map_size_ = size;
      reader.data_ = static_cast<const uint8_t*>(addr);
      reader.size_ = size;
    }
  }
  ::close(fd);
#endif
  if (reader.data_ == nullptr) {
    // No mmap (or zero-length file): buffered read.
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      return Status::IoError("cannot open history snapshot '" + path + "'");
    }
    reader.owned_.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    reader.data_ = reader.owned_.data();
    reader.size_ = reader.owned_.size();
  }
  MACE_RETURN_IF_ERROR(reader.Parse());
  obs::Metrics()
      .GetCounter("mace_history_snapshot_bytes_total",
                  "Snapshot bytes written, by op", {{"op", "open"}})
      ->Increment(reader.size_);
  return reader;
}

Result<SnapshotReader> SnapshotReader::FromBuffer(
    std::vector<uint8_t> bytes) {
  SnapshotReader reader;
  reader.owned_ = std::move(bytes);
  reader.data_ = reader.owned_.data();
  reader.size_ = reader.owned_.size();
  MACE_RETURN_IF_ERROR(reader.Parse());
  return reader;
}

Status SnapshotReader::Parse() {
  if (size_ < kSnapshotHeaderSize) {
    return Corrupt("truncated header (" + std::to_string(size_) +
                   " bytes, need " + std::to_string(kSnapshotHeaderSize) +
                   ")");
  }
  if (std::memcmp(data_, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt("bad magic (not an MHSNAPv1 file)");
  }
  const uint32_t version = Read<uint32_t>(data_, 8);
  if (version != kSnapshotVersion) {
    return Corrupt("unsupported version " + std::to_string(version) +
                   " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  const uint32_t record_size = Read<uint32_t>(data_, 12);
  if (record_size != sizeof(Record)) {
    return Corrupt("record size " + std::to_string(record_size) +
                   " does not match the " +
                   std::to_string(sizeof(Record)) + "-byte format");
  }
  const uint32_t tenant_count = Read<uint32_t>(data_, 16);
  if (tenant_count > kMaxTenants) {
    return Corrupt("implausible tenant count " +
                   std::to_string(tenant_count));
  }
  const uint32_t stored_crc = Read<uint32_t>(data_, kCrcOffset);
  const uint32_t computed_crc =
      Crc32(data_ + kCrcCoverStart, size_ - kCrcCoverStart);
  if (stored_crc != computed_crc) {
    return Corrupt("checksum mismatch (stored " +
                   std::to_string(stored_crc) + ", computed " +
                   std::to_string(computed_crc) + ")");
  }
  total_records_ = Read<uint64_t>(data_, 24);
  const uint64_t records_offset = Read<uint64_t>(data_, 32);
  default_threshold_ = Read<double>(data_, 40);
  if (records_offset < kSnapshotHeaderSize || records_offset > size_ ||
      records_offset % alignof(Record) != 0) {
    return Corrupt("invalid records offset " +
                   std::to_string(records_offset));
  }
  // Validate the declared count against the section size without
  // multiplying: `total_records_ * sizeof(Record)` wraps mod 2^64 for a
  // crafted count (e.g. 2^60 * 16 == 0), which would pass an equality
  // check and let the ordering walk below run off the mapped buffer.
  const uint64_t record_bytes = size_ - records_offset;
  if (record_bytes % sizeof(Record) != 0 ||
      record_bytes / sizeof(Record) != total_records_) {
    return Corrupt(
        "record section size mismatch (" + std::to_string(record_bytes) +
        " bytes for " + std::to_string(total_records_) +
        " declared records)");
  }

  // Walk the index; every tenant's records must be laid out sequentially.
  size_t cursor = kSnapshotHeaderSize;
  uint64_t running_start = 0;
  tenants_.clear();
  tenants_.reserve(tenant_count);
  for (uint32_t i = 0; i < tenant_count; ++i) {
    const std::string where = "index entry " + std::to_string(i);
    if (cursor + sizeof(uint32_t) > records_offset) {
      return Corrupt("truncated " + where);
    }
    const uint32_t name_len = Read<uint32_t>(data_, cursor);
    cursor += sizeof(uint32_t);
    if (name_len > kMaxNameLength) {
      return Corrupt(where + ": implausible tenant name length " +
                     std::to_string(name_len));
    }
    if (cursor + name_len + 24 > records_offset) {
      return Corrupt("truncated " + where);
    }
    TenantEntry entry;
    entry.name.assign(reinterpret_cast<const char*>(data_ + cursor),
                      name_len);
    cursor += name_len;
    entry.threshold = Read<double>(data_, cursor);
    entry.record_count = Read<uint64_t>(data_, cursor + 8);
    entry.record_start = Read<uint64_t>(data_, cursor + 16);
    cursor += 24;
    if (entry.record_start != running_start) {
      return Corrupt(where + " ('" + entry.name +
                     "'): records not laid out sequentially (start " +
                     std::to_string(entry.record_start) + ", expected " +
                     std::to_string(running_start) + ")");
    }
    if (entry.record_count > total_records_ - running_start) {
      return Corrupt(where + " ('" + entry.name + "'): record count " +
                     std::to_string(entry.record_count) +
                     " exceeds the file's remaining " +
                     std::to_string(total_records_ - running_start));
    }
    running_start += entry.record_count;
    tenants_.push_back(std::move(entry));
  }
  if (running_start != total_records_) {
    return Corrupt("index covers " + std::to_string(running_start) +
                   " records but the file declares " +
                   std::to_string(total_records_));
  }

  records_ = reinterpret_cast<const Record*>(data_ + records_offset);
  for (const TenantEntry& entry : tenants_) {
    const Record* r = records_ + entry.record_start;
    for (uint64_t j = 1; j < entry.record_count; ++j) {
      if (r[j].timestamp < r[j - 1].timestamp) {
        return Corrupt("tenant '" + entry.name +
                       "': records not time-ordered at position " +
                       std::to_string(j));
      }
    }
  }
  return Status::OK();
}

RecordSpan SnapshotReader::Records(size_t index) const {
  const TenantEntry& entry = tenants_[index];
  return RecordSpan{records_ + entry.record_start, entry.record_count};
}

size_t SnapshotReader::NumTenants() const { return tenants_.size(); }

std::string SnapshotReader::TenantName(size_t index) const {
  return tenants_[index].name;
}

double SnapshotReader::TenantThreshold(size_t index) const {
  return tenants_[index].threshold;
}

void SnapshotReader::VisitRange(
    size_t index, int64_t t0, int64_t t1,
    const std::function<void(RecordSpan)>& fn) const {
  if (t1 < t0) return;
  const RecordSpan all = Records(index);
  const Record* first =
      std::lower_bound(all.data, all.data + all.size, t0,
                       [](const Record& r, int64_t t) {
                         return r.timestamp < t;
                       });
  const Record* last =
      std::upper_bound(first, all.data + all.size, t1,
                       [](int64_t t, const Record& r) {
                         return t < r.timestamp;
                       });
  if (first < last) {
    fn(RecordSpan{first, static_cast<size_t>(last - first)});
  }
}

}  // namespace mace::history
