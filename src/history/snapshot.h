#ifndef MACE_HISTORY_SNAPSHOT_H_
#define MACE_HISTORY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "history/record.h"

namespace mace::history {

/// CRC-32 (IEEE 802.3, reflected) — the snapshot checksum.
uint32_t Crc32(const void* data, size_t size);

/// \brief Immutable on-disk anomaly-history snapshot (format MHSNAPv1).
///
/// Layout (little-endian, fixed 64-byte header):
///   [ 0..8)   magic "MHSNAPv1"
///   [ 8..12)  u32 version (1)
///   [12..16)  u32 record size (16)
///   [16..20)  u32 tenant count
///   [20..24)  u32 CRC-32 of every byte from offset 24 to end of file
///   [24..32)  u64 total record count
///   [32..40)  u64 records section offset (16-aligned)
///   [40..48)  f64 default anomaly threshold
///   [48..64)  reserved (zero)
/// Tenant index at 64: per tenant
///   u32 name length, name bytes, f64 threshold, u64 record count,
///   u64 record start (record index into the records section).
/// Records section at the stated offset: per-tenant contiguous,
/// time-ordered runs of 16-byte Records in index order.
///
/// The record layout equals the in-memory history::Record, so snapshots
/// round-trip bit-identically and an mmap'ed file is queried in place
/// (no per-record decode).
inline constexpr char kSnapshotMagic[8] = {'M', 'H', 'S', 'N',
                                           'A', 'P', 'v', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderSize = 64;

/// Writes everything `source` currently holds (each tenant's full
/// retained range) as a snapshot file at `path`. Per-tenant contents are
/// consistent; tenants appended to concurrently are captured one at a
/// time.
Status WriteSnapshot(const HistorySource& source, const std::string& path,
                     double default_threshold = 0.0);

/// \brief Read-side of the snapshot format: validates the header, CRC,
/// index, and record ordering, then serves queries directly over the
/// mapped (or owned) bytes through the HistorySource interface.
///
/// Every malformation is a descriptive Status naming what failed — a
/// corrupt snapshot can never abort the process (fuzzed surface, see
/// tests/fuzz/fuzz_history_snapshot.cc).
class SnapshotReader : public HistorySource {
 public:
  /// Opens `path` via mmap (falling back to a buffered read when mapping
  /// fails) and validates it.
  static Result<SnapshotReader> Open(const std::string& path);
  /// Validates an in-memory image (fuzzing and tests).
  static Result<SnapshotReader> FromBuffer(std::vector<uint8_t> bytes);

  SnapshotReader(SnapshotReader&&) noexcept;
  SnapshotReader& operator=(SnapshotReader&&) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;
  ~SnapshotReader() override;

  double default_threshold() const { return default_threshold_; }
  uint64_t total_records() const { return total_records_; }

  /// All records of tenant `index`, oldest first (zero-copy).
  RecordSpan Records(size_t index) const;

  // HistorySource:
  size_t NumTenants() const override;
  std::string TenantName(size_t index) const override;
  double TenantThreshold(size_t index) const override;
  void VisitRange(size_t index, int64_t t0, int64_t t1,
                  const std::function<void(RecordSpan)>& fn) const override;

 private:
  struct TenantEntry {
    std::string name;
    double threshold = 0.0;
    uint64_t record_start = 0;
    uint64_t record_count = 0;
  };

  SnapshotReader() = default;
  /// Validates `data_`/`size_` and fills the index.
  Status Parse();

  /// mmap region when opened from a file (munmap'ed in the destructor);
  /// empty when the bytes are owned.
  void* map_addr_ = nullptr;
  size_t map_size_ = 0;
  std::vector<uint8_t> owned_;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  const Record* records_ = nullptr;
  uint64_t total_records_ = 0;
  double default_threshold_ = 0.0;
  std::vector<TenantEntry> tenants_;
};

}  // namespace mace::history

#endif  // MACE_HISTORY_SNAPSHOT_H_
