#include "history/query.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mace::history {
namespace {

constexpr int64_t kMaxBuckets = int64_t{1} << 20;

/// Query instrumentation: one counter + latency histogram per query kind.
struct QueryInstruments {
  obs::Counter* count;
  obs::Histogram* latency;
};
QueryInstruments Instruments(const char* query) {
  obs::MetricsRegistry& metrics = obs::Metrics();
  return QueryInstruments{
      metrics.GetCounter("mace_history_queries_total",
                         "History queries served, by query kind",
                         {{"query", query}}),
      metrics.GetHistogram("mace_history_query_seconds",
                           "History query latency, by query kind",
                           {{"query", query}})};
}

/// Number of windows spanned by [t0, t1] at `width`, or an error when the
/// range/width is unusable. Shared by the bucketed queries.
Result<int64_t> WindowCount(int64_t t0, int64_t t1, int64_t width,
                            const char* what) {
  if (width <= 0) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be positive, got " +
                                   std::to_string(width));
  }
  if (t1 < t0) {
    return Status::InvalidArgument(
        "time range is inverted: [" + std::to_string(t0) + ", " +
        std::to_string(t1) + "]");
  }
  // (t1 - t0) can overflow int64 when the caller passes the full axis;
  // compute in unsigned space, and bound-check before the +1 (span/width
  // can itself be UINT64_MAX, which +1 would wrap to zero windows).
  const uint64_t span = static_cast<uint64_t>(t1) - static_cast<uint64_t>(t0);
  const uint64_t full = span / static_cast<uint64_t>(width);
  if (full >= static_cast<uint64_t>(kMaxBuckets)) {
    return Status::InvalidArgument(
        "range spans over " + std::to_string(full) + " windows of width " +
        std::to_string(width) + "; the limit is " +
        std::to_string(kMaxBuckets) + " (widen the window or narrow the range)");
  }
  return static_cast<int64_t>(full + 1);
}

uint64_t WindowIndex(int64_t timestamp, int64_t t0, int64_t width) {
  return (static_cast<uint64_t>(timestamp) - static_cast<uint64_t>(t0)) /
         static_cast<uint64_t>(width);
}

struct Bitset {
  std::vector<uint64_t> words;
  uint64_t popcount = 0;

  explicit Bitset(size_t bits) : words((bits + 63) / 64, 0) {}
  void Set(uint64_t i) {
    uint64_t& w = words[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (!(w & mask)) {
      w |= mask;
      ++popcount;
    }
  }
};

uint64_t IntersectCount(const Bitset& a, const Bitset& b) {
  uint64_t n = 0;
  for (size_t i = 0; i < a.words.size(); ++i) {
    n += static_cast<uint64_t>(std::popcount(a.words[i] & b.words[i]));
  }
  return n;
}

/// Union-find over tenant slots for clustering correlated pairs.
size_t FindRoot(std::vector<size_t>& parent, size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

}  // namespace

std::vector<TenantRank> TopTenants(const HistorySource& source, int64_t t0,
                                   int64_t t1, size_t k) {
  static const QueryInstruments instruments = Instruments("top");
  obs::ScopedSpan span("history_query_top", instruments.latency);
  instruments.count->Increment();

  std::vector<TenantRank> ranks;
  const size_t num_tenants = source.NumTenants();
  for (size_t i = 0; i < num_tenants; ++i) {
    const double threshold = source.TenantThreshold(i);
    TenantRank rank;
    double excess_sum = 0.0;
    source.VisitRange(i, t0, t1, [&](RecordSpan s) {
      rank.records += s.size;
      for (size_t j = 0; j < s.size; ++j) {
        if (s.data[j].anomaly) {
          ++rank.anomalies;
          // Live stores never hold non-finite scores, but a snapshot is
          // untrusted bytes — keep one bad float from poisoning the rank.
          const double excess =
              static_cast<double>(s.data[j].score) - threshold;
          if (std::isfinite(excess)) excess_sum += excess;
        }
      }
    });
    if (rank.records == 0) continue;
    rank.tenant = source.TenantName(i);
    rank.anomaly_rate =
        static_cast<double>(rank.anomalies) / static_cast<double>(rank.records);
    if (rank.anomalies > 0) {
      rank.mean_excess =
          std::max(0.0, excess_sum / static_cast<double>(rank.anomalies));
    }
    rank.severity = rank.anomaly_rate * rank.mean_excess;
    ranks.push_back(std::move(rank));
  }

  const auto better = [](const TenantRank& a, const TenantRank& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    if (a.anomalies != b.anomalies) return a.anomalies > b.anomalies;
    return a.tenant < b.tenant;
  };
  if (ranks.size() > k) {
    std::partial_sort(ranks.begin(), ranks.begin() + k, ranks.end(), better);
    ranks.resize(k);
  } else {
    std::sort(ranks.begin(), ranks.end(), better);
  }
  return ranks;
}

Result<std::vector<RateBucket>> AnomalyRateSeries(const HistorySource& source,
                                                  std::string_view tenant,
                                                  int64_t t0, int64_t t1,
                                                  int64_t bucket_width) {
  static const QueryInstruments instruments = Instruments("rate");
  obs::ScopedSpan span("history_query_rate", instruments.latency);
  instruments.count->Increment();

  MACE_ASSIGN_OR_RETURN(const int64_t num_buckets,
                        WindowCount(t0, t1, bucket_width, "bucket width"));
  const size_t num_tenants = source.NumTenants();
  size_t index = num_tenants;
  for (size_t i = 0; i < num_tenants; ++i) {
    if (source.TenantName(i) == tenant) {
      index = i;
      break;
    }
  }
  if (index == num_tenants) {
    return Status::NotFound("unknown history tenant '" + std::string(tenant) +
                            "'");
  }

  std::vector<RateBucket> buckets(static_cast<size_t>(num_buckets));
  for (size_t b = 0; b < buckets.size(); ++b) {
    // Unsigned arithmetic: b * bucket_width (and the add) can exceed
    // int64 for extreme accepted ranges (e.g. the full time axis at a
    // 2^62 width), which would be signed-overflow UB.
    buckets[b].start = static_cast<int64_t>(
        static_cast<uint64_t>(t0) +
        static_cast<uint64_t>(b) * static_cast<uint64_t>(bucket_width));
  }
  source.VisitRange(index, t0, t1, [&](RecordSpan s) {
    for (size_t j = 0; j < s.size; ++j) {
      RateBucket& bucket =
          buckets[WindowIndex(s.data[j].timestamp, t0, bucket_width)];
      ++bucket.records;
      if (s.data[j].anomaly) ++bucket.anomalies;
    }
  });
  for (RateBucket& bucket : buckets) {
    if (bucket.records > 0) {
      bucket.rate = static_cast<double>(bucket.anomalies) /
                    static_cast<double>(bucket.records);
    }
  }
  return buckets;
}

Result<CorrelationReport> CorrelateAnomalies(
    const HistorySource& source, int64_t t0, int64_t t1,
    const CorrelationOptions& options) {
  static const QueryInstruments instruments = Instruments("correlate");
  obs::ScopedSpan span("history_query_correlate", instruments.latency);
  instruments.count->Increment();

  MACE_ASSIGN_OR_RETURN(
      const int64_t num_windows,
      WindowCount(t0, t1, options.window_width, "window width"));
  if (options.max_tenants == 0) {
    return Status::InvalidArgument("max_tenants must be positive");
  }
  if (!(options.min_jaccard >= 0.0) || options.min_jaccard > 1.0) {
    return Status::InvalidArgument("min_jaccard must be in [0, 1], got " +
                                   std::to_string(options.min_jaccard));
  }

  // Project every tenant's anomalies onto the shared window axis.
  struct Participant {
    size_t source_index;
    Bitset windows;
  };
  std::vector<Participant> participants;
  const size_t num_tenants = source.NumTenants();
  for (size_t i = 0; i < num_tenants; ++i) {
    Bitset bits(static_cast<size_t>(num_windows));
    source.VisitRange(i, t0, t1, [&](RecordSpan s) {
      for (size_t j = 0; j < s.size; ++j) {
        if (s.data[j].anomaly) {
          bits.Set(WindowIndex(s.data[j].timestamp, t0, options.window_width));
        }
      }
    });
    if (bits.popcount > 0) {
      participants.push_back(Participant{i, std::move(bits)});
    }
  }

  CorrelationReport report;
  report.tenants_considered = participants.size();
  if (participants.size() > options.max_tenants) {
    report.truncated = true;
    // Keep the most anomalous tenants (stable on source order for ties).
    std::stable_sort(participants.begin(), participants.end(),
                     [](const Participant& a, const Participant& b) {
                       return a.windows.popcount > b.windows.popcount;
                     });
    participants.erase(
        participants.begin() + static_cast<ptrdiff_t>(options.max_tenants),
        participants.end());
  }

  std::vector<std::string> names(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    names[i] = source.TenantName(participants[i].source_index);
  }

  std::vector<size_t> parent(participants.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  for (size_t i = 0; i < participants.size(); ++i) {
    for (size_t j = i + 1; j < participants.size(); ++j) {
      const uint64_t both =
          IntersectCount(participants[i].windows, participants[j].windows);
      const uint64_t either = participants[i].windows.popcount +
                              participants[j].windows.popcount - both;
      const double jaccard =
          either == 0 ? 0.0
                      : static_cast<double>(both) / static_cast<double>(either);
      if (jaccard >= options.min_jaccard && both > 0) {
        report.pairs.push_back(CorrelatedPair{names[i], names[j], jaccard,
                                              both});
        parent[FindRoot(parent, i)] = FindRoot(parent, j);
      }
    }
  }
  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const CorrelatedPair& a, const CorrelatedPair& b) {
              if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
              if (a.a != b.a) return a.a < b.a;
              return a.b < b.b;
            });

  // Components of size >= 2 become clusters.
  std::vector<std::vector<std::string>> by_root(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    by_root[FindRoot(parent, i)].push_back(names[i]);
  }
  for (std::vector<std::string>& members : by_root) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    report.clusters.push_back(CorrelationCluster{std::move(members)});
  }
  std::sort(report.clusters.begin(), report.clusters.end(),
            [](const CorrelationCluster& a, const CorrelationCluster& b) {
              if (a.tenants.size() != b.tenants.size()) {
                return a.tenants.size() > b.tenants.size();
              }
              return a.tenants.front() < b.tenants.front();
            });
  return report;
}

}  // namespace mace::history
