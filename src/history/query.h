#ifndef MACE_HISTORY_QUERY_H_
#define MACE_HISTORY_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "history/record.h"

namespace mace::history {

/// \brief One row of a fleet ranking: how anomalous a tenant was over a
/// time range, with the ingredients of the score exposed so a UI can
/// explain the ordering.
struct TenantRank {
  std::string tenant;
  /// anomaly_rate * mean_excess — a tenant ranks high when it is both
  /// frequently anomalous and far over its threshold (the Anomaly
  /// Advisor shape: rate alone over-ranks noisy tenants, excess alone
  /// over-ranks single spikes).
  double severity = 0.0;
  double anomaly_rate = 0.0;  ///< anomalies / records in range
  double mean_excess = 0.0;   ///< mean (score - threshold) over anomalies
  uint64_t records = 0;
  uint64_t anomalies = 0;
};

/// Top `k` tenants in [t0, t1] by severity (ties: more anomalies first,
/// then name). Tenants with no records in range are omitted.
std::vector<TenantRank> TopTenants(const HistorySource& source, int64_t t0,
                                   int64_t t1, size_t k);

/// One bucket of a windowed anomaly-rate series.
struct RateBucket {
  int64_t start = 0;  ///< inclusive; bucket covers [start, start + width)
  uint64_t records = 0;
  uint64_t anomalies = 0;
  double rate = 0.0;  ///< anomalies / records, 0 for empty buckets
};

/// Anomaly rate of `tenant` over [t0, t1] in fixed-width buckets.
/// Returns every bucket (including empty ones) so the series plots with
/// gaps visible. Errors: unknown tenant (NotFound), non-positive width or
/// inverted/oversized range (InvalidArgument).
Result<std::vector<RateBucket>> AnomalyRateSeries(const HistorySource& source,
                                                  std::string_view tenant,
                                                  int64_t t0, int64_t t1,
                                                  int64_t bucket_width);

struct CorrelationOptions {
  /// Width of the alignment windows: two tenants co-occur when they are
  /// both anomalous inside the same [t0 + i*w, t0 + (i+1)*w) window.
  int64_t window_width = 16;
  /// Minimum Jaccard similarity for a pair to be reported.
  double min_jaccard = 0.5;
  /// At most this many tenants participate (the most anomalous ones win;
  /// pairwise work is quadratic). `truncated` reports when the cap hit.
  size_t max_tenants = 256;
};

struct CorrelatedPair {
  std::string a;
  std::string b;
  double jaccard = 0.0;       ///< |A ∩ B| / |A ∪ B| of anomalous windows
  uint64_t co_windows = 0;    ///< windows where both were anomalous
};

struct CorrelationCluster {
  std::vector<std::string> tenants;  ///< sorted by name
};

struct CorrelationReport {
  /// Pairs with jaccard >= min_jaccard, strongest first.
  std::vector<CorrelatedPair> pairs;
  /// Connected components (>= 2 tenants) of the pair graph, largest
  /// first — tenants whose anomalies move together, e.g. a shared-cause
  /// incident across services.
  std::vector<CorrelationCluster> clusters;
  size_t tenants_considered = 0;  ///< tenants with >= 1 anomalous window
  bool truncated = false;         ///< max_tenants cap was applied
};

/// Cross-tenant anomaly correlation over [t0, t1]: aligns every tenant's
/// anomaly bits onto shared windows and reports tenant pairs whose
/// anomalous windows overlap (Jaccard), clustered into components.
Result<CorrelationReport> CorrelateAnomalies(const HistorySource& source,
                                             int64_t t0, int64_t t1,
                                             const CorrelationOptions& options);

}  // namespace mace::history

#endif  // MACE_HISTORY_QUERY_H_
