#ifndef MACE_HISTORY_STORE_H_
#define MACE_HISTORY_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "history/record.h"
#include "obs/metrics.h"

namespace mace::history {

struct HistoryConfig {
  /// Ring capacity per tenant, in records (16 bytes each). The newest
  /// `capacity_per_tenant` records are kept; older ones are evicted.
  size_t capacity_per_tenant = 1024;
  /// Default anomaly threshold: a record's anomaly bit is set when its
  /// score strictly exceeds the tenant's threshold at append time.
  /// Overridable per tenant via SetThreshold.
  double anomaly_threshold = 3.0;
};

/// \brief Fleet-wide anomaly history: one compact ring buffer of
/// (timestamp, score, anomaly bit) records per tenant, O(1) append.
///
/// Written inline by every scoring surface (StreamingScorer sessions,
/// and through them the serve frontend's score path) and read by the
/// query engine (history/query.h) — the netdata model of storing an
/// anomaly bit next to every metric so thousands of tenants can be
/// ranked and correlated in real time.
///
/// Concurrency: Intern/SetThreshold take a registry lock; Append and
/// VisitRange take only the target tenant's mutex, so appends from
/// different serve shards never contend with each other. Per-tenant
/// record order is the append order (serve pins each tenant to one
/// shard, so that order is the stream order). Timestamps are
/// appender-defined and must be non-decreasing per tenant — the scoring
/// surfaces use the emitted step index, offset by next_timestamp() at
/// attach time so a tenant's history stays monotonic across sessions.
///
/// Non-finite scores are never stored (they would poison severity
/// aggregation); they are counted on mace_history_skipped_total instead.
class HistoryStore : public HistorySource {
 public:
  using TenantId = uint32_t;

  explicit HistoryStore(HistoryConfig config);

  /// Returns the id for `tenant`, registering it (with the default
  /// threshold) on first use. Ids are dense and stable for the store's
  /// lifetime.
  TenantId Intern(std::string_view tenant);

  /// Per-tenant threshold override; applies to subsequent appends only
  /// (already-stored bits are immutable history).
  void SetThreshold(TenantId id, double threshold);
  double threshold(TenantId id) const;

  /// Appends one record; evicts the oldest when the ring is full. The
  /// anomaly bit is decided against the tenant's live threshold.
  void Append(TenantId id, int64_t timestamp, double score);
  /// Same, but the caller supplies the anomaly bit — the online-learning
  /// path, where the bit is a model-ensemble consensus vote rather than a
  /// single-threshold comparison (the stored score stays the base model's,
  /// so severity aggregation remains comparable across tenants).
  void Append(TenantId id, int64_t timestamp, double score, bool anomaly);

  const HistoryConfig& config() const { return config_; }
  /// Records appended to tenant `id` over its lifetime (>= stored count).
  uint64_t appended(TenantId id) const;
  /// One past tenant `id`'s newest stored timestamp (0 when empty,
  /// saturating at INT64_MAX): the smallest base a step-indexed appender
  /// can use to keep the tenant's timestamps non-decreasing when it
  /// re-attaches after a session recycle. (`appended()` is not a safe
  /// base: it undercounts streams whose non-finite scores were skipped.)
  int64_t next_timestamp(TenantId id) const;

  // HistorySource:
  size_t NumTenants() const override;
  std::string TenantName(size_t index) const override;
  double TenantThreshold(size_t index) const override;
  void VisitRange(size_t index, int64_t t0, int64_t t1,
                  const std::function<void(RecordSpan)>& fn) const override;

 private:
  struct Tenant {
    explicit Tenant(std::string tenant_name, double tenant_threshold)
        : name(std::move(tenant_name)), threshold(tenant_threshold) {}
    const std::string name;
    mutable std::mutex mu;
    // All fields below are guarded by mu.
    double threshold;
    /// Ring storage: grows to capacity, then wraps. Logical order is
    /// ring[head], ring[head+1], ... modulo ring.size().
    std::vector<Record> ring;
    size_t head = 0;
    uint64_t appended = 0;
  };

  /// Tenant for `id`; the returned reference is stable (tenants are
  /// never destroyed while the store lives).
  Tenant& TenantFor(TenantId id) const;

  /// Shared append body; `forced_bit` overrides the threshold comparison.
  void AppendImpl(TenantId id, int64_t timestamp, double score,
                  const bool* forced_bit);

  const HistoryConfig config_;

  /// Guards the tenant table itself (growth on Intern); individual
  /// tenant state is guarded by the per-tenant mutex.
  mutable std::shared_mutex tenants_mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unordered_map<std::string, TenantId> ids_;

  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* anomalies_counter_ = nullptr;
  obs::Counter* evicted_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;
  obs::Counter* tenants_counter_ = nullptr;
  obs::Histogram* append_latency_ = nullptr;
};

}  // namespace mace::history

#endif  // MACE_HISTORY_STORE_H_
