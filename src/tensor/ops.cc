#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/math_utils.h"
#include "tensor/tensor.h"

namespace mace::tensor {

using internal::Node;

namespace {

constexpr double kLogFloor = 1e-12;

using internal::MakeInferenceNode;

/// Builds an op node over `parents`; `backward` is installed only when some
/// parent participates in differentiation. Callers return through
/// MakeInferenceNode *before* constructing the backward closure when
/// GradModeEnabled() is false, so inference pays for neither the closure's
/// captures nor the parent edges (see NoGradGuard).
Tensor MakeOp(const char* name, Shape shape, std::vector<double> values,
              std::vector<std::shared_ptr<Node>> parents,
              std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->op_name = name;
  node->shape = std::move(shape);
  node->values = std::move(values);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) {
    node->backward = std::move(backward);
    node->EnsureGrad();
  }
  return Tensor::FromNode(std::move(node));
}

/// Returns the element count of `shape` when its elements tile the output
/// as one contiguous repeating block — i.e. `shape`, right-aligned and with
/// leading 1s stripped, equals the trailing dims of `out_shape`. The offset
/// of output element i into such an operand is then simply i mod block, so
/// the hot broadcast cases (bias rows [N] under [B, N], per-column markers)
/// skip the per-element BroadcastOffset division chain. Returns 0 when the
/// shape does not tile.
Index SuffixTileSize(const Shape& shape, const Shape& out_shape) {
  size_t lead = 0;
  while (lead < shape.size() && shape[lead] == 1) ++lead;
  const size_t rank = shape.size() - lead;
  if (rank > out_shape.size()) return 0;
  Index block = 1;
  for (size_t i = 0; i < rank; ++i) {
    if (shape[lead + i] != out_shape[out_shape.size() - rank + i]) return 0;
    block *= shape[lead + i];
  }
  return block;
}

/// Generic broadcasting binary elementwise op.
///
/// `fwd(x, y)` computes the value; `dfdx(x, y)` / `dfdy(x, y)` the partials.
template <typename Fwd, typename DfDx, typename DfDy>
Tensor BinaryElementwise(const char* name, const Tensor& a, const Tensor& b,
                         Fwd fwd, DfDx dfdx, DfDy dfdy) {
  MACE_CHECK(a.defined() && b.defined());
  Shape out_shape;
  MACE_CHECK(BroadcastShapes(a.shape(), b.shape(), &out_shape))
      << name << ": cannot broadcast " << ShapeToString(a.shape()) << " and "
      << ShapeToString(b.shape());

  const std::vector<Index> out_strides = RowMajorStrides(out_shape);
  const std::vector<Index> a_strides =
      MakeBroadcastStrides(a.shape(), out_shape);
  const std::vector<Index> b_strides =
      MakeBroadcastStrides(b.shape(), out_shape);
  const Index n = NumElements(out_shape);
  const bool trivial = SameShape(a.shape(), b.shape());

  std::vector<double> values = AcquireScratchBuffer(static_cast<size_t>(n));
  const std::vector<double>& av = a.data();
  const std::vector<double>& bv = b.data();
  if (trivial) {
    for (Index i = 0; i < n; ++i) {
      values[i] = fwd(av[i], bv[i]);
    }
  } else if (SameShape(a.shape(), out_shape) &&
             SuffixTileSize(b.shape(), out_shape) > 0) {
    // b tiles the output contiguously: nested loops visit the same output
    // elements in the same ascending order, so results are bit-identical
    // to the BroadcastOffset path below.
    const Index tile = SuffixTileSize(b.shape(), out_shape);
    for (Index base = 0; base < n; base += tile) {
      for (Index j = 0; j < tile; ++j) {
        values[base + j] = fwd(av[base + j], bv[j]);
      }
    }
  } else if (SameShape(b.shape(), out_shape) &&
             SuffixTileSize(a.shape(), out_shape) > 0) {
    const Index tile = SuffixTileSize(a.shape(), out_shape);
    for (Index base = 0; base < n; base += tile) {
      for (Index j = 0; j < tile; ++j) {
        values[base + j] = fwd(av[j], bv[base + j]);
      }
    }
  } else {
    for (Index i = 0; i < n; ++i) {
      const Index ia = BroadcastOffset(i, out_strides, a_strides, out_shape);
      const Index ib = BroadcastOffset(i, out_strides, b_strides, out_shape);
      values[i] = fwd(av[ia], bv[ib]);
    }
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode(name, std::move(out_shape), std::move(values));
  }

  auto an = a.node();
  auto bn = b.node();
  auto backward = [an, bn, out_strides, a_strides, b_strides, out_shape, n,
                   trivial, dfdx, dfdy](Node& self) {
    an->EnsureGrad();
    bn->EnsureGrad();
    const std::vector<double>& av = an->values;
    const std::vector<double>& bv = bn->values;
    for (Index i = 0; i < n; ++i) {
      const Index ia =
          trivial ? i : BroadcastOffset(i, out_strides, a_strides, out_shape);
      const Index ib =
          trivial ? i : BroadcastOffset(i, out_strides, b_strides, out_shape);
      const double g = self.grad[static_cast<size_t>(i)];
      if (an->requires_grad) {
        an->grad[static_cast<size_t>(ia)] += g * dfdx(av[ia], bv[ib]);
      }
      if (bn->requires_grad) {
        bn->grad[static_cast<size_t>(ib)] += g * dfdy(av[ia], bv[ib]);
      }
    }
  };
  return MakeOp(name, std::move(out_shape), std::move(values), {an, bn},
                std::move(backward));
}

/// Generic unary elementwise op; partial is a function of the input value.
template <typename Fwd, typename Df>
Tensor UnaryElementwise(const char* name, const Tensor& a, Fwd fwd, Df df) {
  MACE_CHECK(a.defined());
  const std::vector<double>& av = a.data();
  std::vector<double> values = AcquireScratchBuffer(av.size());
  for (size_t i = 0; i < av.size(); ++i) values[i] = fwd(av[i]);
  if (!GradModeEnabled()) {
    return MakeInferenceNode(name, a.shape(), std::move(values));
  }
  auto an = a.node();
  auto backward = [an, df](Node& self) {
    an->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      an->grad[i] += self.grad[i] * df(an->values[i]);
    }
  };
  return MakeOp(name, a.shape(), std::move(values), {an},
                std::move(backward));
}

}  // namespace

// ---------------------------------------------------------------------------
// Binary elementwise
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      "add", a, b, [](double x, double y) { return x + y; },
      [](double, double) { return 1.0; }, [](double, double) { return 1.0; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      "sub", a, b, [](double x, double y) { return x - y; },
      [](double, double) { return 1.0; },
      [](double, double) { return -1.0; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      "mul", a, b, [](double x, double y) { return x * y; },
      [](double, double y) { return y; }, [](double x, double) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      "div", a, b, [](double x, double y) { return x / y; },
      [](double, double y) { return 1.0 / y; },
      [](double x, double y) { return -x / (y * y); });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      "maximum", a, b, [](double x, double y) { return x >= y ? x : y; },
      [](double x, double y) { return x >= y ? 1.0 : 0.0; },
      [](double x, double y) { return x >= y ? 0.0 : 1.0; });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      "minimum", a, b, [](double x, double y) { return x <= y ? x : y; },
      [](double x, double y) { return x <= y ? 1.0 : 0.0; },
      [](double x, double y) { return x <= y ? 0.0 : 1.0; });
}

// ---------------------------------------------------------------------------
// Scalar / unary
// ---------------------------------------------------------------------------

Tensor AddScalar(const Tensor& a, double s) {
  return UnaryElementwise(
      "add_scalar", a, [s](double x) { return x + s; },
      [](double) { return 1.0; });
}

Tensor MulScalar(const Tensor& a, double s) {
  return UnaryElementwise(
      "mul_scalar", a, [s](double x) { return x * s; },
      [s](double) { return s; });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0); }

Tensor Relu(const Tensor& a) {
  return UnaryElementwise(
      "relu", a, [](double x) { return x > 0 ? x : 0.0; },
      [](double x) { return x > 0 ? 1.0 : 0.0; });
}

Tensor Tanh(const Tensor& a) {
  return UnaryElementwise(
      "tanh", a, [](double x) { return std::tanh(x); },
      [](double x) {
        const double t = std::tanh(x);
        return 1.0 - t * t;
      });
}

Tensor Sigmoid(const Tensor& a) {
  auto sig = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  return UnaryElementwise("sigmoid", a, sig, [sig](double x) {
    const double s = sig(x);
    return s * (1.0 - s);
  });
}

Tensor Exp(const Tensor& a) {
  return UnaryElementwise(
      "exp", a, [](double x) { return std::exp(x); },
      [](double x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return UnaryElementwise(
      "log", a, [](double x) { return std::log(std::max(x, kLogFloor)); },
      [](double x) { return 1.0 / std::max(x, kLogFloor); });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryElementwise(
      "sqrt", a, [](double x) { return std::sqrt(std::max(x, 0.0)); },
      [](double x) { return 0.5 / std::sqrt(std::max(x, kLogFloor)); });
}

Tensor Abs(const Tensor& a) {
  return UnaryElementwise(
      "abs", a, [](double x) { return std::fabs(x); },
      [](double x) { return x >= 0 ? 1.0 : -1.0; });
}

Tensor Square(const Tensor& a) {
  return UnaryElementwise(
      "square", a, [](double x) { return x * x; },
      [](double x) { return 2.0 * x; });
}

Tensor Pow(const Tensor& a, double p) {
  return UnaryElementwise(
      "pow", a, [p](double x) { return std::pow(x, p); },
      [p](double x) { return p * std::pow(x, p - 1.0); });
}

Tensor SignedPow(const Tensor& a, double p) {
  // d/dx sign(x)|x|^p = p |x|^(p-1); finite at 0 for p >= 1.
  // Forward delegates to the scalar mace::SignedPow so the tensor op and
  // the scalar pipeline stages share one definition (and its fast path
  // for integer exponents).
  return UnaryElementwise(
      "signed_pow", a, [p](double x) { return mace::SignedPow(x, p); },
      [p](double x) {
        const double ax = std::fabs(x);
        if (ax < kLogFloor) return p >= 1.0 ? 0.0 : 0.0;
        return p * std::pow(ax, p - 1.0);
      });
}

Tensor SignedRoot(const Tensor& a, double p) {
  // sign(x)|x|^(1/p); the true derivative (1/p)|x|^(1/p - 1) diverges at 0,
  // which would dominate (and after clipping, drown) every other gradient
  // in a dualistic autoencoder, so it is capped — the standard stabilizer
  // for fractional-power activations.
  const double inv = 1.0 / p;
  const double max_derivative = 10.0;
  return UnaryElementwise(
      "signed_root", a,
      [p](double x) { return mace::SignedRoot(x, p); },
      [inv, max_derivative](double x) {
        const double d = inv * std::pow(std::fabs(x), inv - 1.0);
        return std::isfinite(d) ? std::min(d, max_derivative)
                                : max_derivative;
      });
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

Tensor Reshape(const Tensor& a, Shape shape) {
  MACE_CHECK(a.defined());
  MACE_CHECK(NumElements(shape) == a.numel())
      << "reshape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);
  if (!GradModeEnabled()) {
    std::vector<double> values = AcquireScratchBuffer(a.data().size());
    std::copy(a.data().begin(), a.data().end(), values.begin());
    return MakeInferenceNode("reshape", std::move(shape), std::move(values));
  }
  auto an = a.node();
  auto backward = [an](Node& self) {
    an->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      an->grad[i] += self.grad[i];
    }
  };
  return MakeOp("reshape", std::move(shape), a.data(), {an},
                std::move(backward));
}

Tensor Transpose(const Tensor& a) {
  MACE_CHECK(a.ndim() == 2) << "Transpose expects rank 2, got "
                            << ShapeToString(a.shape());
  const Index rows = a.dim(0);
  const Index cols = a.dim(1);
  std::vector<double> values =
      AcquireScratchBuffer(static_cast<size_t>(rows * cols));
  const std::vector<double>& av = a.data();
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      values[static_cast<size_t>(c * rows + r)] =
          av[static_cast<size_t>(r * cols + c)];
    }
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode("transpose", Shape{cols, rows},
                             std::move(values));
  }
  auto an = a.node();
  auto backward = [an, rows, cols](Node& self) {
    an->EnsureGrad();
    for (Index r = 0; r < rows; ++r) {
      for (Index c = 0; c < cols; ++c) {
        an->grad[static_cast<size_t>(r * cols + c)] +=
            self.grad[static_cast<size_t>(c * rows + r)];
      }
    }
  };
  return MakeOp("transpose", Shape{cols, rows}, std::move(values), {an},
                std::move(backward));
}

Tensor Slice(const Tensor& a, int axis, Index start, Index end) {
  MACE_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  if (axis < 0) axis += static_cast<int>(in_shape.size());
  MACE_CHECK(axis >= 0 && axis < static_cast<int>(in_shape.size()));
  MACE_CHECK(start >= 0 && start <= end && end <= in_shape[axis])
      << "slice [" << start << ", " << end << ") on axis " << axis << " of "
      << ShapeToString(in_shape);

  Shape out_shape = in_shape;
  out_shape[axis] = end - start;

  // Treat the tensor as [outer, axis_len, inner].
  Index outer = 1, inner = 1;
  for (int i = 0; i < axis; ++i) outer *= in_shape[i];
  for (size_t i = axis + 1; i < in_shape.size(); ++i) inner *= in_shape[i];
  const Index axis_len = in_shape[axis];
  const Index out_axis = end - start;

  std::vector<double> values =
      AcquireScratchBuffer(static_cast<size_t>(outer * out_axis * inner));
  const std::vector<double>& av = a.data();
  if (inner == 1) {
    // Last-axis slice: the j elements of each outer row are contiguous,
    // so copy them in one block instead of one element at a time.
    for (Index o = 0; o < outer; ++o) {
      const double* src = av.data() + (o * axis_len + start);
      std::copy(src, src + out_axis, values.data() + o * out_axis);
    }
  } else {
    for (Index o = 0; o < outer; ++o) {
      for (Index j = 0; j < out_axis; ++j) {
        const double* src = av.data() + ((o * axis_len + start + j) * inner);
        double* dst = values.data() + ((o * out_axis + j) * inner);
        std::copy(src, src + inner, dst);
      }
    }
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode("slice", std::move(out_shape),
                             std::move(values));
  }
  auto an = a.node();
  auto backward = [an, outer, inner, axis_len, out_axis, start](Node& self) {
    an->EnsureGrad();
    for (Index o = 0; o < outer; ++o) {
      for (Index j = 0; j < out_axis; ++j) {
        const double* g = self.grad.data() + ((o * out_axis + j) * inner);
        double* dst =
            an->grad.data() + ((o * axis_len + start + j) * inner);
        for (Index i = 0; i < inner; ++i) dst[i] += g[i];
      }
    }
  };
  return MakeOp("slice", std::move(out_shape), std::move(values), {an},
                std::move(backward));
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  MACE_CHECK(!parts.empty()) << "Concat of zero tensors";
  const Shape& first = parts[0].shape();
  int ax = axis < 0 ? axis + static_cast<int>(first.size()) : axis;
  MACE_CHECK(ax >= 0 && ax < static_cast<int>(first.size()));

  Index total_axis = 0;
  for (const Tensor& t : parts) {
    MACE_CHECK(t.ndim() == static_cast<int>(first.size()));
    for (int i = 0; i < t.ndim(); ++i) {
      if (i != ax) {
        MACE_CHECK(t.dim(i) == first[static_cast<size_t>(i)])
            << "concat shape mismatch on axis " << i;
      }
    }
    total_axis += t.dim(ax);
  }
  Shape out_shape = first;
  out_shape[static_cast<size_t>(ax)] = total_axis;

  Index outer = 1, inner = 1;
  for (int i = 0; i < ax; ++i) outer *= out_shape[i];
  for (size_t i = ax + 1; i < out_shape.size(); ++i) inner *= out_shape[i];

  std::vector<double> values =
      AcquireScratchBuffer(static_cast<size_t>(NumElements(out_shape)));
  std::vector<Index> part_axis(parts.size());
  Index written = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const Index pa = parts[p].dim(ax);
    part_axis[p] = pa;
    const std::vector<double>& pv = parts[p].data();
    for (Index o = 0; o < outer; ++o) {
      const double* src = pv.data() + o * pa * inner;
      double* dst = values.data() + ((o * total_axis + written) * inner);
      std::copy(src, src + pa * inner, dst);
    }
    written += pa;
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode("concat", std::move(out_shape),
                             std::move(values));
  }
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(parts.size());
  for (const Tensor& part : parts) parents.push_back(part.node());

  auto backward = [outer, inner, total_axis, part_axis](Node& self) {
    Index offset = 0;
    for (size_t p = 0; p < self.parents.size(); ++p) {
      Node* parent = self.parents[p].get();
      const Index pa = part_axis[p];
      if (parent->requires_grad) {
        parent->EnsureGrad();
        for (Index o = 0; o < outer; ++o) {
          const double* g =
              self.grad.data() + ((o * total_axis + offset) * inner);
          double* dst = parent->grad.data() + o * pa * inner;
          for (Index i = 0; i < pa * inner; ++i) dst[i] += g[i];
        }
      }
      offset += pa;
    }
  };
  return MakeOp("concat", std::move(out_shape), std::move(values),
                std::move(parents), std::move(backward));
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  MACE_CHECK(a.defined());
  double total = 0.0;
  for (double v : a.data()) total += v;
  if (!GradModeEnabled()) {
    return MakeInferenceNode("sum", Shape{}, {total});
  }
  auto an = a.node();
  auto backward = [an](Node& self) {
    an->EnsureGrad();
    const double g = self.grad[0];
    for (double& gv : an->grad) gv += g;
  };
  return MakeOp("sum", Shape{}, {total}, {an}, std::move(backward));
}

Tensor Mean(const Tensor& a) {
  MACE_CHECK(a.defined());
  const Index n = a.numel();
  MACE_CHECK(n > 0);
  return MulScalar(Sum(a), 1.0 / static_cast<double>(n));
}

Tensor SumAxis(const Tensor& a, int axis) {
  MACE_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  if (axis < 0) axis += static_cast<int>(in_shape.size());
  MACE_CHECK(axis >= 0 && axis < static_cast<int>(in_shape.size()));

  Index outer = 1, inner = 1;
  for (int i = 0; i < axis; ++i) outer *= in_shape[i];
  for (size_t i = axis + 1; i < in_shape.size(); ++i) inner *= in_shape[i];
  const Index axis_len = in_shape[axis];

  Shape out_shape;
  for (size_t i = 0; i < in_shape.size(); ++i) {
    if (static_cast<int>(i) != axis) out_shape.push_back(in_shape[i]);
  }

  std::vector<double> values =
      AcquireScratchBuffer(static_cast<size_t>(outer * inner),
                           /*zero_fill=*/true);
  const std::vector<double>& av = a.data();
  for (Index o = 0; o < outer; ++o) {
    for (Index j = 0; j < axis_len; ++j) {
      const double* src = av.data() + ((o * axis_len + j) * inner);
      double* dst = values.data() + o * inner;
      for (Index i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode("sum_axis", std::move(out_shape),
                             std::move(values));
  }
  auto an = a.node();
  auto backward = [an, outer, inner, axis_len](Node& self) {
    an->EnsureGrad();
    for (Index o = 0; o < outer; ++o) {
      const double* g = self.grad.data() + o * inner;
      for (Index j = 0; j < axis_len; ++j) {
        double* dst = an->grad.data() + ((o * axis_len + j) * inner);
        for (Index i = 0; i < inner; ++i) dst[i] += g[i];
      }
    }
  };
  return MakeOp("sum_axis", std::move(out_shape), std::move(values), {an},
                std::move(backward));
}

// ---------------------------------------------------------------------------
// Linear algebra / NN primitives
// ---------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MACE_CHECK(a.ndim() == 2 && b.ndim() == 2)
      << "MatMul expects rank-2 operands, got " << ShapeToString(a.shape())
      << " x " << ShapeToString(b.shape());
  const Index m = a.dim(0), k = a.dim(1), k2 = b.dim(0), n = b.dim(1);
  MACE_CHECK(k == k2) << "MatMul inner dims " << k << " vs " << k2;

  std::vector<double> values =
      AcquireScratchBuffer(static_cast<size_t>(m * n), /*zero_fill=*/true);
  const std::vector<double>& av = a.data();
  const std::vector<double>& bv = b.data();
  // __restrict lets the inner j-loop vectorize without runtime alias
  // checks; the per-element accumulation order (kk ascending) is
  // unchanged, so results are bit-identical to the scalar loop.
  for (Index i = 0; i < m; ++i) {
    for (Index kk = 0; kk < k; ++kk) {
      const double aik = av[static_cast<size_t>(i * k + kk)];
      if (aik == 0.0) continue;
      const double* __restrict brow = bv.data() + kk * n;
      double* __restrict orow = values.data() + i * n;
      for (Index j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode("matmul", Shape{m, n}, std::move(values));
  }
  auto an = a.node();
  auto bn = b.node();
  auto backward = [an, bn, m, k, n](Node& self) {
    const std::vector<double>& av = an->values;
    const std::vector<double>& bv = bn->values;
    if (an->requires_grad) {
      an->EnsureGrad();
      // dA = dC * B^T
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < n; ++j) {
          const double g = self.grad[static_cast<size_t>(i * n + j)];
          if (g == 0.0) continue;
          const double* brow = bv.data();  // B[kk][j]
          for (Index kk = 0; kk < k; ++kk) {
            an->grad[static_cast<size_t>(i * k + kk)] +=
                g * brow[kk * n + j];
          }
        }
      }
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      // dB = A^T * dC
      for (Index kk = 0; kk < k; ++kk) {
        for (Index i = 0; i < m; ++i) {
          const double aik = av[static_cast<size_t>(i * k + kk)];
          if (aik == 0.0) continue;
          const double* grow = self.grad.data() + i * n;
          double* brow = bn->grad.data() + kk * n;
          for (Index j = 0; j < n; ++j) brow[j] += aik * grow[j];
        }
      }
    }
  };
  return MakeOp("matmul", Shape{m, n}, std::move(values), {an, bn},
                std::move(backward));
}

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              Index stride) {
  MACE_CHECK(input.ndim() == 3)
      << "Conv1d input must be [N, C, L], got "
      << ShapeToString(input.shape());
  MACE_CHECK(weight.ndim() == 3)
      << "Conv1d weight must be [F, C, K], got "
      << ShapeToString(weight.shape());
  MACE_CHECK(stride >= 1);
  const Index batch = input.dim(0);
  const Index channels = input.dim(1);
  const Index length = input.dim(2);
  const Index filters = weight.dim(0);
  const Index kernel = weight.dim(2);
  MACE_CHECK(weight.dim(1) == channels)
      << "Conv1d channel mismatch: input " << channels << ", weight "
      << weight.dim(1);
  MACE_CHECK(length >= kernel)
      << "Conv1d input length " << length << " < kernel " << kernel;
  const Index out_len = (length - kernel) / stride + 1;

  const bool has_bias = bias.defined();
  if (has_bias) {
    MACE_CHECK(bias.ndim() == 1 && bias.dim(0) == filters)
        << "Conv1d bias must be [F]";
  }

  std::vector<double> values = AcquireScratchBuffer(
      static_cast<size_t>(batch * filters * out_len), /*zero_fill=*/true);
  const std::vector<double>& xv = input.data();
  const std::vector<double>& wv = weight.data();
  for (Index b = 0; b < batch; ++b) {
    for (Index f = 0; f < filters; ++f) {
      double* out = values.data() + (b * filters + f) * out_len;
      if (has_bias) {
        const double bf = bias.data()[static_cast<size_t>(f)];
        for (Index t = 0; t < out_len; ++t) out[t] = bf;
      }
      if (kernel == 1 && stride == 1) {
        // Pointwise conv (the frequency-characterization layers): each
        // channel contributes w_c * x_c[t]; interchanging the c and t
        // loops turns the body into vectorizable axpys while keeping the
        // c-ascending accumulation order of the generic loop below, so
        // outputs are bit-identical.
        for (Index c = 0; c < channels; ++c) {
          const double wc = wv[static_cast<size_t>(f * channels + c)];
          const double* __restrict x = xv.data() + (b * channels + c) * length;
          double* __restrict o = out;
          for (Index t = 0; t < out_len; ++t) o[t] += wc * x[t];
        }
        continue;
      }
      for (Index c = 0; c < channels; ++c) {
        const double* x = xv.data() + (b * channels + c) * length;
        const double* w = wv.data() + (f * channels + c) * kernel;
        for (Index t = 0; t < out_len; ++t) {
          const double* xw = x + t * stride;
          double acc = 0.0;
          for (Index j = 0; j < kernel; ++j) acc += w[j] * xw[j];
          out[t] += acc;
        }
      }
    }
  }

  if (!GradModeEnabled()) {
    return MakeInferenceNode("conv1d", Shape{batch, filters, out_len},
                             std::move(values));
  }
  auto xn = input.node();
  auto wn = weight.node();
  std::vector<std::shared_ptr<Node>> parents = {xn, wn};
  std::shared_ptr<Node> bn = has_bias ? bias.node() : nullptr;
  if (has_bias) parents.push_back(bn);

  auto backward = [xn, wn, bn, batch, channels, length, filters, kernel,
                   out_len, stride](Node& self) {
    const std::vector<double>& xv = xn->values;
    const std::vector<double>& wv = wn->values;
    if (xn->requires_grad) xn->EnsureGrad();
    if (wn->requires_grad) wn->EnsureGrad();
    if (bn && bn->requires_grad) bn->EnsureGrad();
    for (Index b = 0; b < batch; ++b) {
      for (Index f = 0; f < filters; ++f) {
        const double* g = self.grad.data() + (b * filters + f) * out_len;
        if (bn && bn->requires_grad) {
          double acc = 0.0;
          for (Index t = 0; t < out_len; ++t) acc += g[t];
          bn->grad[static_cast<size_t>(f)] += acc;
        }
        for (Index c = 0; c < channels; ++c) {
          const double* x = xv.data() + (b * channels + c) * length;
          const double* w = wv.data() + (f * channels + c) * kernel;
          double* dx = xn->requires_grad
                           ? xn->grad.data() + (b * channels + c) * length
                           : nullptr;
          double* dw = wn->requires_grad
                           ? wn->grad.data() + (f * channels + c) * kernel
                           : nullptr;
          for (Index t = 0; t < out_len; ++t) {
            const double gt = g[t];
            if (gt == 0.0) continue;
            const Index base = t * stride;
            for (Index j = 0; j < kernel; ++j) {
              if (dx) dx[base + j] += gt * w[j];
              if (dw) dw[j] += gt * x[base + j];
            }
          }
        }
      }
    }
  };
  return MakeOp("conv1d", Shape{batch, filters, out_len}, std::move(values),
                std::move(parents), std::move(backward));
}

Tensor Softmax(const Tensor& a) {
  MACE_CHECK(a.defined() && a.ndim() >= 1);
  const Shape& shape = a.shape();
  const Index cols = shape.back();
  const Index rows = a.numel() / cols;
  std::vector<double> values = AcquireScratchBuffer(a.data().size());
  const std::vector<double>& av = a.data();
  for (Index r = 0; r < rows; ++r) {
    const double* x = av.data() + r * cols;
    double* y = values.data() + r * cols;
    double max_val = x[0];
    for (Index c = 1; c < cols; ++c) max_val = std::max(max_val, x[c]);
    double total = 0.0;
    for (Index c = 0; c < cols; ++c) {
      y[c] = std::exp(x[c] - max_val);
      total += y[c];
    }
    for (Index c = 0; c < cols; ++c) y[c] /= total;
  }
  if (!GradModeEnabled()) {
    return MakeInferenceNode("softmax", shape, std::move(values));
  }
  auto an = a.node();
  // Capture the forward output for the backward pass.
  auto out = values;
  auto backward = [an, out, rows, cols](Node& self) {
    an->EnsureGrad();
    for (Index r = 0; r < rows; ++r) {
      const double* y = out.data() + r * cols;
      const double* g = self.grad.data() + r * cols;
      double dot = 0.0;
      for (Index c = 0; c < cols; ++c) dot += g[c] * y[c];
      double* dx = an->grad.data() + r * cols;
      for (Index c = 0; c < cols; ++c) dx[c] += y[c] * (g[c] - dot);
    }
  };
  return MakeOp("softmax", shape, std::move(values), {an},
                std::move(backward));
}

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  MACE_CHECK(SameShape(prediction.shape(), target.shape()))
      << "MseLoss shapes " << ShapeToString(prediction.shape()) << " vs "
      << ShapeToString(target.shape());
  return Mean(Square(Sub(prediction, target)));
}

}  // namespace mace::tensor
