#ifndef MACE_TENSOR_TENSOR_H_
#define MACE_TENSOR_TENSOR_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace mace::tensor {

namespace internal {

/// One node of the autograd graph: a value buffer, an optional gradient
/// buffer, and the backward closure that scatters this node's gradient
/// into its parents.
struct Node {
  Shape shape;
  std::vector<double> values;
  std::vector<double> grad;  // sized iff requires_grad
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;
  const char* op_name = "leaf";

  void EnsureGrad() {
    if (requires_grad && grad.size() != values.size()) {
      grad.assign(values.size(), 0.0);
    }
  }
};

}  // namespace internal

// -- Inference mode --------------------------------------------------------

/// True when the calling thread records autograd graphs (the default).
/// Under an active NoGradGuard every op skips node parents, backward
/// closures and gradient buffers: forward values are bit-identical, but
/// the result is a detached constant and intermediate buffers recycle
/// through a thread-local pool instead of being retained by the graph.
bool GradModeEnabled();

/// \brief RAII scope that disables autograd recording on this thread.
///
/// Nests (each guard restores the mode it found) and is strictly
/// thread-local: guards on one thread never affect another. The standard
/// wrapper for inference hot paths (scoring, serving):
///
///   tensor::NoGradGuard no_grad;
///   model.Forward(...);  // same values, no graph, pooled buffers
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// \brief A value buffer of size `n` recycled from the calling thread's
/// inference-mode buffer pool (plain allocation when grad mode is on or
/// the pool is empty). Contents are unspecified unless `zero_fill`.
///
/// Feed the result to Tensor::FromVector / an op: buffers of tensors
/// built in inference mode return to the pool when the tensor dies, so a
/// loop that scores one window per iteration does O(1) amortized heap
/// allocations.
std::vector<double> AcquireScratchBuffer(size_t n, bool zero_fill = false);

/// \brief Hands a buffer back to the calling thread's inference-mode pool
/// without routing it through a tensor (dropped when the pool is full or
/// torn down). For code that borrows pool buffers as raw scratch — the
/// fused scoring kernel amortizes one block across a whole window batch
/// this way — rather than as tensor storage.
void ReleaseScratchBuffer(std::vector<double>&& buffer);

/// \brief Dense, row-major, double-precision tensor with reverse-mode
/// automatic differentiation.
///
/// Tensor is a cheap shared handle (like torch::Tensor): copies alias the
/// same storage and graph node. Operations on tensors build an autograd
/// graph; calling Backward() on a scalar result populates grad() on every
/// leaf created with requires_grad = true.
class Tensor {
 public:
  /// An undefined tensor; defined() is false.
  Tensor() = default;

  // -- Factories --------------------------------------------------------

  static Tensor Zeros(Shape shape, bool requires_grad = false);
  static Tensor Ones(Shape shape, bool requires_grad = false);
  static Tensor Full(Shape shape, double value, bool requires_grad = false);
  /// A 0-d tensor holding `value`.
  static Tensor Scalar(double value, bool requires_grad = false);
  /// Takes ownership of `values`; NumElements(shape) must match.
  static Tensor FromVector(std::vector<double> values, Shape shape,
                           bool requires_grad = false);
  /// 1-D tensor from values.
  static Tensor FromVector(std::vector<double> values,
                           bool requires_grad = false);
  static Tensor RandomUniform(Shape shape, Rng* rng, double lo, double hi,
                              bool requires_grad = false);
  static Tensor RandomGaussian(Shape shape, Rng* rng, double mean,
                               double stddev, bool requires_grad = false);

  // -- Introspection ----------------------------------------------------

  bool defined() const { return node_ != nullptr; }
  const Shape& shape() const;
  int ndim() const { return static_cast<int>(shape().size()); }
  Index dim(int axis) const;
  Index numel() const;
  bool requires_grad() const;

  /// Raw row-major value buffer.
  const std::vector<double>& data() const;
  std::vector<double>& mutable_data();
  /// Gradient buffer (empty unless requires_grad and Backward() has run).
  const std::vector<double>& grad() const;
  /// Writable gradient buffer of a requires_grad leaf, sized like data().
  ///
  /// This is the hand-off point of the data-parallel trainer: backward
  /// closures accumulate into this buffer with plain `+=` (no atomics), so
  /// two threads may never run Backward() over graphs sharing a
  /// requires_grad leaf. Give each training thread its own parameter
  /// replica and merge the replicas' buffers afterwards
  /// (nn::TreeReduceGradSlots) — accumulation stays race-free and the
  /// merge order stays deterministic.
  std::vector<double>& mutable_grad();

  /// Value of a 0-d/1-element tensor.
  double item() const;
  /// Element access by multi-dimensional index.
  double at(std::initializer_list<Index> indices) const;
  void set(std::initializer_list<Index> indices, double value);

  std::string ToString() const;

  // -- Autograd ---------------------------------------------------------

  /// A new leaf tensor sharing no graph history (values are copied).
  Tensor Detach() const;
  /// Clears this tensor's gradient buffer to zero.
  void ZeroGrad();
  /// Reverse-mode differentiation from this scalar tensor.
  void Backward();

  /// Internal: the graph node (for op implementations).
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Tensor FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

namespace internal {
/// Builds a graph-free op result whose buffer recycles through the
/// inference-mode pool (for op implementations; see NoGradGuard).
Tensor MakeInferenceNode(const char* name, Shape shape,
                         std::vector<double> values);
}  // namespace internal

// -- Elementwise binary ops (broadcasting) -------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// Elementwise max; gradient flows to the larger operand (ties: to `a`).
Tensor Maximum(const Tensor& a, const Tensor& b);
/// Elementwise min; gradient flows to the smaller operand (ties: to `a`).
Tensor Minimum(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }

// -- Scalar ops -----------------------------------------------------------

Tensor AddScalar(const Tensor& a, double s);
Tensor MulScalar(const Tensor& a, double s);
Tensor Neg(const Tensor& a);
inline Tensor operator+(const Tensor& a, double s) { return AddScalar(a, s); }
inline Tensor operator-(const Tensor& a, double s) { return AddScalar(a, -s); }
inline Tensor operator*(const Tensor& a, double s) { return MulScalar(a, s); }
inline Tensor operator/(const Tensor& a, double s) {
  return MulScalar(a, 1.0 / s);
}
inline Tensor operator-(const Tensor& a) { return Neg(a); }

// -- Unary ops ------------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped below at 1e-12 for stability.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
/// Elementwise x^p (x must be >= 0 when p is non-integral).
Tensor Pow(const Tensor& a, double p);
/// Sign-preserving power sign(x)|x|^p — equals x^p for odd integer p.
/// This is the primitive behind the dualistic convolution.
Tensor SignedPow(const Tensor& a, double p);
/// Sign-preserving root sign(x)|x|^(1/p).
Tensor SignedRoot(const Tensor& a, double p);

// -- Shape ops --------------------------------------------------------------

Tensor Reshape(const Tensor& a, Shape shape);
/// 2-D transpose.
Tensor Transpose(const Tensor& a);
/// Sub-range [start, end) along `axis` (contiguous copy).
Tensor Slice(const Tensor& a, int axis, Index start, Index end);
/// Concatenation along `axis`; all other extents must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

// -- Reductions ---------------------------------------------------------------

/// Sum over all elements (0-d result).
Tensor Sum(const Tensor& a);
/// Mean over all elements (0-d result).
Tensor Mean(const Tensor& a);
/// Sum along one axis (axis removed from the shape).
Tensor SumAxis(const Tensor& a, int axis);

// -- Linear algebra / NN primitives ----------------------------------------

/// 2-D matrix product: [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// \brief 1-D convolution (cross-correlation), no padding.
///
/// \param input  [N, C_in, L]
/// \param weight [C_out, C_in, K]
/// \param bias   [C_out] or an undefined tensor for no bias
/// \param stride >= 1
/// \return [N, C_out, (L - K) / stride + 1]
Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              Index stride);

/// Softmax along the last axis.
Tensor Softmax(const Tensor& a);

/// Mean squared error between same-shape tensors (0-d result).
Tensor MseLoss(const Tensor& prediction, const Tensor& target);

}  // namespace mace::tensor

#endif  // MACE_TENSOR_TENSOR_H_
