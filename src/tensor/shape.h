#ifndef MACE_TENSOR_SHAPE_H_
#define MACE_TENSOR_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mace::tensor {

/// Index/extent type for tensor dimensions.
using Index = int64_t;

/// A tensor shape: the extent of each dimension. Empty shape = scalar.
using Shape = std::vector<Index>;

/// Total number of elements (1 for a scalar shape).
Index NumElements(const Shape& shape);

/// Row-major (C-order) strides for a shape.
std::vector<Index> RowMajorStrides(const Shape& shape);

/// True when the two shapes are identical.
bool SameShape(const Shape& a, const Shape& b);

/// "[2, 3, 4]" rendering for diagnostics.
std::string ShapeToString(const Shape& shape);

/// \brief NumPy-style broadcast of two shapes.
///
/// Returns true and writes the broadcast shape on success; dimensions are
/// compatible when equal or when either is 1 (missing leading dimensions
/// are treated as 1).
bool BroadcastShapes(const Shape& a, const Shape& b, Shape* out);

/// \brief Maps a flat index in the broadcast output to a flat index in an
/// operand of shape `shape` (with broadcast dimensions pinned to 0).
///
/// `out_strides` are the row-major strides of the broadcast shape and
/// `operand_strides_padded` must be pre-padded/zeroed to the output rank
/// (stride 0 on broadcast dimensions) by MakeBroadcastStrides.
Index BroadcastOffset(Index flat, const std::vector<Index>& out_strides,
                      const std::vector<Index>& operand_strides_padded,
                      const Shape& out_shape);

/// \brief Strides of `operand` aligned to the broadcast output rank, with
/// zero stride on every dimension that the operand broadcasts over.
std::vector<Index> MakeBroadcastStrides(const Shape& operand,
                                        const Shape& out);

}  // namespace mace::tensor

#endif  // MACE_TENSOR_SHAPE_H_
