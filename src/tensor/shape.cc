#include "tensor/shape.h"

#include <sstream>

#include "common/check.h"

namespace mace::tensor {

Index NumElements(const Shape& shape) {
  Index n = 1;
  for (Index d : shape) {
    MACE_CHECK(d >= 0) << "negative dimension in " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::vector<Index> RowMajorStrides(const Shape& shape) {
  std::vector<Index> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

bool BroadcastShapes(const Shape& a, const Shape& b, Shape* out) {
  const size_t rank = a.size() > b.size() ? a.size() : b.size();
  out->assign(rank, 1);
  for (size_t i = 0; i < rank; ++i) {
    const Index da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const Index db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da == db || da == 1 || db == 1) {
      (*out)[i] = da > db ? da : db;
    } else {
      return false;
    }
  }
  return true;
}

std::vector<Index> MakeBroadcastStrides(const Shape& operand,
                                        const Shape& out) {
  const std::vector<Index> own = RowMajorStrides(operand);
  std::vector<Index> padded(out.size(), 0);
  const size_t offset = out.size() - operand.size();
  for (size_t i = 0; i < operand.size(); ++i) {
    padded[offset + i] = operand[i] == 1 ? 0 : own[i];
  }
  return padded;
}

Index BroadcastOffset(Index flat, const std::vector<Index>& out_strides,
                      const std::vector<Index>& operand_strides_padded,
                      const Shape& out_shape) {
  Index offset = 0;
  for (size_t i = 0; i < out_shape.size(); ++i) {
    const Index coord = (flat / out_strides[i]) % out_shape[i];
    offset += coord * operand_strides_padded[i];
  }
  return offset;
}

}  // namespace mace::tensor
