#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace mace::tensor {

using internal::Node;

namespace {

// -- Inference mode ---------------------------------------------------------

thread_local bool t_grad_enabled = true;

/// Free list of value buffers for inference-mode nodes. `t_buffer_pool`
/// is a raw pointer registered/unregistered by the pool's own lifetime so
/// a node destroyed during thread teardown (after the pool's destructor
/// ran) degrades to a plain free instead of touching a dead object.
struct BufferPool {
  /// Bounds pool memory; 64 buffers comfortably covers the deepest
  /// per-window op chain of MaceModel::Forward.
  static constexpr size_t kMaxBuffers = 64;
  std::vector<std::vector<double>> free_buffers;

  BufferPool();
  ~BufferPool();
};

thread_local BufferPool* t_buffer_pool = nullptr;

BufferPool::BufferPool() { t_buffer_pool = this; }
BufferPool::~BufferPool() { t_buffer_pool = nullptr; }

BufferPool* PoolForAcquire() {
  static thread_local BufferPool pool;
  return t_buffer_pool;
}

void ReleaseToPool(std::vector<double>&& buffer) {
  BufferPool* pool = t_buffer_pool;
  if (pool != nullptr && pool->free_buffers.size() < BufferPool::kMaxBuffers) {
    pool->free_buffers.push_back(std::move(buffer));
  }
}

std::shared_ptr<Node> MakeLeaf(Shape shape, std::vector<double> values,
                               bool requires_grad) {
  MACE_CHECK(static_cast<Index>(values.size()) == NumElements(shape))
      << "values size " << values.size() << " vs shape "
      << ShapeToString(shape);
  if (!t_grad_enabled && !requires_grad) {
    // Inference-mode leaf: its buffer recycles through the pool on death.
    auto node = std::shared_ptr<Node>(new Node, [](Node* n) {
      ReleaseToPool(std::move(n->values));
      delete n;
    });
    node->shape = std::move(shape);
    node->values = std::move(values);
    return node;
  }
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->values = std::move(values);
  node->requires_grad = requires_grad;
  node->EnsureGrad();
  return node;
}

}  // namespace

bool GradModeEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

std::vector<double> AcquireScratchBuffer(size_t n, bool zero_fill) {
  if (!t_grad_enabled) {
    BufferPool* pool = PoolForAcquire();
    if (pool != nullptr && !pool->free_buffers.empty()) {
      std::vector<double> buffer = std::move(pool->free_buffers.back());
      pool->free_buffers.pop_back();
      if (zero_fill) {
        buffer.assign(n, 0.0);
      } else {
        buffer.resize(n);
      }
      return buffer;
    }
  }
  return zero_fill ? std::vector<double>(n, 0.0) : std::vector<double>(n);
}

void ReleaseScratchBuffer(std::vector<double>&& buffer) {
  ReleaseToPool(std::move(buffer));
}

namespace internal {

Tensor MakeInferenceNode(const char* name, Shape shape,
                         std::vector<double> values) {
  auto node = std::shared_ptr<Node>(new Node, [](Node* n) {
    ReleaseToPool(std::move(n->values));
    delete n;
  });
  node->op_name = name;
  node->shape = std::move(shape);
  node->values = std::move(values);
  return Tensor::FromNode(std::move(node));
}

}  // namespace internal

Tensor Tensor::FromNode(std::shared_ptr<Node> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  const Index n = NumElements(shape);
  return FromNode(MakeLeaf(std::move(shape),
                           std::vector<double>(static_cast<size_t>(n), 0.0),
                           requires_grad));
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0, requires_grad);
}

Tensor Tensor::Full(Shape shape, double value, bool requires_grad) {
  const Index n = NumElements(shape);
  return FromNode(MakeLeaf(std::move(shape),
                           std::vector<double>(static_cast<size_t>(n), value),
                           requires_grad));
}

Tensor Tensor::Scalar(double value, bool requires_grad) {
  return FromNode(MakeLeaf(Shape{}, std::vector<double>{value},
                           requires_grad));
}

Tensor Tensor::FromVector(std::vector<double> values, Shape shape,
                          bool requires_grad) {
  return FromNode(MakeLeaf(std::move(shape), std::move(values),
                           requires_grad));
}

Tensor Tensor::FromVector(std::vector<double> values, bool requires_grad) {
  const Index n = static_cast<Index>(values.size());
  return FromNode(MakeLeaf(Shape{n}, std::move(values), requires_grad));
}

Tensor Tensor::RandomUniform(Shape shape, Rng* rng, double lo, double hi,
                             bool requires_grad) {
  MACE_CHECK(rng != nullptr);
  const Index n = NumElements(shape);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = rng->Uniform(lo, hi);
  return FromNode(MakeLeaf(std::move(shape), std::move(values),
                           requires_grad));
}

Tensor Tensor::RandomGaussian(Shape shape, Rng* rng, double mean,
                              double stddev, bool requires_grad) {
  MACE_CHECK(rng != nullptr);
  const Index n = NumElements(shape);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = rng->Gaussian(mean, stddev);
  return FromNode(MakeLeaf(std::move(shape), std::move(values),
                           requires_grad));
}

const Shape& Tensor::shape() const {
  MACE_CHECK(defined());
  return node_->shape;
}

Index Tensor::dim(int axis) const {
  const Shape& s = shape();
  if (axis < 0) axis += static_cast<int>(s.size());
  MACE_CHECK(axis >= 0 && axis < static_cast<int>(s.size()))
      << "axis " << axis << " out of range for " << ShapeToString(s);
  return s[static_cast<size_t>(axis)];
}

Index Tensor::numel() const { return NumElements(shape()); }

bool Tensor::requires_grad() const {
  MACE_CHECK(defined());
  return node_->requires_grad;
}

const std::vector<double>& Tensor::data() const {
  MACE_CHECK(defined());
  return node_->values;
}

std::vector<double>& Tensor::mutable_data() {
  MACE_CHECK(defined());
  return node_->values;
}

const std::vector<double>& Tensor::grad() const {
  MACE_CHECK(defined());
  return node_->grad;
}

std::vector<double>& Tensor::mutable_grad() {
  MACE_CHECK(defined());
  MACE_CHECK(node_->requires_grad)
      << "mutable_grad() on a tensor that does not require gradients";
  node_->EnsureGrad();
  return node_->grad;
}

double Tensor::item() const {
  MACE_CHECK(numel() == 1) << "item() on tensor of " << numel()
                           << " elements";
  return node_->values[0];
}

double Tensor::at(std::initializer_list<Index> indices) const {
  const Shape& s = shape();
  MACE_CHECK(indices.size() == s.size())
      << indices.size() << " indices for rank " << s.size();
  const std::vector<Index> strides = RowMajorStrides(s);
  Index flat = 0;
  size_t i = 0;
  for (Index idx : indices) {
    MACE_CHECK(idx >= 0 && idx < s[i])
        << "index " << idx << " out of range for dim " << i << " of "
        << ShapeToString(s);
    flat += idx * strides[i];
    ++i;
  }
  return node_->values[static_cast<size_t>(flat)];
}

void Tensor::set(std::initializer_list<Index> indices, double value) {
  const Shape& s = shape();
  MACE_CHECK(indices.size() == s.size());
  const std::vector<Index> strides = RowMajorStrides(s);
  Index flat = 0;
  size_t i = 0;
  for (Index idx : indices) {
    MACE_CHECK(idx >= 0 && idx < s[i]);
    flat += idx * strides[i];
    ++i;
  }
  node_->values[static_cast<size_t>(flat)] = value;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape()) << " [";
  const size_t n = node_->values.size();
  const size_t shown = std::min<size_t>(n, 8);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << node_->values[i];
  }
  if (shown < n) out << ", ...";
  out << "]";
  return out.str();
}

Tensor Tensor::Detach() const {
  MACE_CHECK(defined());
  return FromNode(MakeLeaf(node_->shape, node_->values, false));
}

void Tensor::ZeroGrad() {
  MACE_CHECK(defined());
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0);
}

void Tensor::Backward() {
  MACE_CHECK(defined());
  MACE_CHECK(numel() == 1) << "Backward() requires a scalar output";
  MACE_CHECK(node_->requires_grad)
      << "Backward() on a graph with no differentiable leaves";

  // Iterative post-order DFS for a topological ordering.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Node* parent = node->parents[child].get();
      ++child;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  for (Node* n : order) n->EnsureGrad();
  node_->grad[0] = 1.0;
  // `order` is post-order (parents before the output), so walk it backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward(**it);
  }
}

}  // namespace mace::tensor
