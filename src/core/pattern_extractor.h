#ifndef MACE_CORE_PATTERN_EXTRACTOR_H_
#define MACE_CORE_PATTERN_EXTRACTOR_H_

#include <vector>

#include "common/result.h"
#include "ts/time_series.h"

namespace mace::core {

/// \brief A service's normal-pattern subspace: the selected Fourier base
/// indices (one-sided, 0..window/2) plus their incidence counts.
struct PatternSubspace {
  std::vector<int> bases;
  std::vector<int64_t> incidence;  ///< top-k appearance counts, same order
};

/// \brief Options for the preprocessing base selection (Section IV-C).
struct PatternExtractorOptions {
  int window = 40;
  int stride = 8;
  /// Number of bases kept for the subspace (paper's m).
  int num_bases = 12;
  /// How many strongest signals are counted per window (paper's k;
  /// defaults to num_bases when <= 0).
  int strongest_per_window = 0;
  /// Exclude the DC bin: z-scored windows carry no level information and
  /// leaving DC out lets level-shift anomalies fall outside the subspace.
  bool skip_dc = true;
};

/// \brief Extracts the normal-pattern subspace of one service: across all
/// training windows and features, counts how often each Fourier base ranks
/// among the strongest signals, then keeps the top `num_bases` by
/// incidence. Returns an error when the series is shorter than one window.
Result<PatternSubspace> ExtractPattern(const ts::TimeSeries& train,
                                       const PatternExtractorOptions& options);

}  // namespace mace::core

#endif  // MACE_CORE_PATTERN_EXTRACTOR_H_
