#ifndef MACE_CORE_STREAMING_H_
#define MACE_CORE_STREAMING_H_

#include <chrono>
#include <deque>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/detector.h"
#include "core/online_hooks.h"
#include "history/store.h"
#include "obs/metrics.h"
#include "ts/sanitize.h"

namespace mace::core {

/// \brief Online scoring for one service over a fitted ServingModel (any
/// detector variant) — the paper's C2 deployment mode (heavy traffic,
/// real time).
///
/// Feed one observation per step with Push(); whenever a full window is
/// available (every `score_stride` steps) the window is scored, and a
/// step's score is emitted once no future window can still cover it, i.e.
/// with a fixed latency of `window` steps. Scores combine overlapping
/// windows with the same min-reduction as offline MaceDetector::Score, so
/// a long stream converges to the same per-step scores as batch scoring
/// of its interior.
///
/// Non-finite observations follow a ts::NonFinitePolicy (default: the
/// detector's): kReject fails the Push with the pipeline untouched;
/// kImpute replaces each non-finite value with the feature's last finite
/// observation (or the fitted mean before any) and scores normally;
/// kPropagate imputes the same way so the model never sees NaN, but every
/// window holding a contaminated step skips the model and folds NaN — a
/// step's emitted score is NaN iff any window covering it was contaminated
/// (sticky through the min-reduction), matching batch Score's kPropagate.
class StreamingScorer {
 public:
  /// Per-stream accounting of what the non-finite policy did.
  struct IngestStats {
    size_t contaminated_steps = 0;  ///< observations with >= 1 non-finite
    size_t values_imputed = 0;      ///< individual values replaced
  };

  /// \param detector fitted detector (must outlive the scorer)
  /// \param service_index service whose scaler/subspace to use
  /// \param policy non-finite handling; defaults to the detector config's
  static Result<StreamingScorer> Create(
      const ServingModel* detector, int service_index,
      std::optional<ts::NonFinitePolicy> policy = std::nullopt);

  /// Appends one observation (size = feature count) and returns the scores
  /// finalized by this step: empty until the pipeline fills, then exactly
  /// one score per step, `window` steps behind the input.
  Result<std::vector<double>> Push(const std::vector<double>& observation);

  /// Pushes a run of observations at once, scoring every window that
  /// falls due through one batched ScoreWindowBatch call (the serve
  /// micro-batch fast path). Returns the scores each observation would
  /// have finalized, in order: element i equals what Push(observations[i])
  /// would have returned, including emit-latency accounting. If any
  /// observation fails validation the whole call fails and the pipeline
  /// state is untouched.
  Result<std::vector<std::vector<double>>> PushMany(
      const std::vector<std::vector<double>>& observations);

  /// Flushes the tail: scores one final window ending at the last
  /// observation (if available) and finalizes every remaining step.
  std::vector<double> Finish();

  /// Reinitializes the pipeline in place — as if freshly Created for the
  /// same detector and service — so a session registry can recycle a
  /// scorer for a new stream without reallocating its instruments.
  /// Pending (un-Finished) tail state is discarded.
  void Reset();

  /// Steps consumed so far.
  size_t steps_consumed() const { return steps_consumed_; }
  /// Index of the next step whose score will be emitted.
  size_t next_emitted_step() const { return next_emit_; }
  /// Scores emitted so far (Push and Finish combined).
  size_t scores_emitted() const { return scores_emitted_; }

  /// Switches the non-finite policy mid-stream. Resets the imputation
  /// carry-forward state (not the scoring pipeline).
  void set_non_finite_policy(ts::NonFinitePolicy policy) {
    sanitizer_.set_policy(policy);
  }
  ts::NonFinitePolicy non_finite_policy() const {
    return sanitizer_.policy();
  }
  const IngestStats& ingest_stats() const { return ingest_stats_; }

  /// Mirrors every subsequently emitted score into `history` under
  /// `tenant` (timestamp = `timestamp_base` + the emitted step index),
  /// setting the anomaly bit against the tenant's live threshold.
  /// `history` must outlive the scorer or be detached first; Reset()
  /// detaches, so a recycled session never writes into the previous
  /// tenant's history. Because the store requires non-decreasing
  /// timestamps per tenant, a caller re-attaching a tenant that already
  /// holds records (e.g. a serve session re-created after eviction, whose
  /// step index restarts at 0) must pass a base at least the tenant's
  /// newest stored timestamp — `HistoryStore::next_timestamp(tenant)` is
  /// exactly that plus one.
  void AttachHistory(history::HistoryStore* history,
                     history::HistoryStore::TenantId tenant,
                     int64_t timestamp_base = 0) {
    history_ = history;
    history_tenant_ = tenant;
    history_base_ = timestamp_base;
  }
  void DetachHistory() { history_ = nullptr; }
  bool history_attached() const { return history_ != nullptr; }

  /// Attaches the online-learning hooks of this stream (both optional,
  /// not owned): `sink` receives every consumed observation (raw,
  /// sanitized — the rolling refit buffer feed), `ensemble` additionally
  /// gets asked for a consensus verdict per emitted step, and when it
  /// votes, the anomaly bit written into the attached history store is
  /// the consensus bit (the stored score stays the base model's; under
  /// kPropagate a NaN base score keeps its skip-the-record semantics).
  /// Like AttachHistory, Reset() detaches — a recycled session must never
  /// feed the previous stream's buffer or vote with its ensemble.
  void AttachOnline(ObservationSink* sink, StreamEnsemble* ensemble) {
    sink_ = sink;
    ensemble_ = ensemble;
  }
  void DetachOnline() {
    sink_ = nullptr;
    ensemble_ = nullptr;
  }
  bool online_attached() const {
    return sink_ != nullptr || ensemble_ != nullptr;
  }

 private:
  StreamingScorer(const ServingModel* detector, int service_index,
                  ts::NonFinitePolicy policy);

  /// Folds one window-step error into the pending min-combine state with
  /// the sticky-NaN rule: an uncovered slot takes the error; a NaN slot
  /// stays NaN; a NaN error or a smaller error overwrites.
  void FoldError(size_t offset, double err);
  /// Scores the current buffer tail window and folds the per-step errors
  /// into the pending min-combine state. A window holding a contaminated
  /// step (kPropagate) skips the model and folds NaN for every step.
  void ScoreTailWindow();
  /// Pops every pending step that can no longer be covered.
  std::vector<double> EmitFinalized(size_t safe_before);
  /// Same, but latency accounting uses `steps_at_emit` instead of the
  /// live step count (PushMany emits retroactively per observation).
  std::vector<double> EmitFinalized(size_t safe_before,
                                    size_t steps_at_emit);

  const ServingModel* detector_;
  int service_index_;
  int window_ = 0;
  int stride_ = 0;

  /// Scaled observations of the last `window_` steps.
  std::deque<std::vector<double>> buffer_;
  /// Parallel to buffer_: whether that step held a non-finite value
  /// (meaningful under kPropagate, where it NaN-poisons its windows).
  std::deque<bool> contaminated_;
  /// Pending per-step minima, front = step `next_emit_`.
  std::deque<double> pending_;
  std::deque<bool> covered_;
  ts::ObservationSanitizer sanitizer_;
  IngestStats ingest_stats_;
  size_t steps_consumed_ = 0;
  size_t next_emit_ = 0;
  size_t last_scored_end_ = 0;  ///< end step (exclusive) of the last window

  /// Optional anomaly-history sink (not owned); see AttachHistory.
  history::HistoryStore* history_ = nullptr;
  history::HistoryStore::TenantId history_tenant_ = 0;
  int64_t history_base_ = 0;

  /// Optional online-learning hooks (not owned); see AttachOnline.
  ObservationSink* sink_ = nullptr;
  StreamEnsemble* ensemble_ = nullptr;

  // Observability: instruments are resolved once per scorer (labeled by
  // service), so the per-step path touches only atomics.
  size_t scores_emitted_ = 0;
  std::chrono::steady_clock::time_point created_at_;
  obs::Counter* steps_counter_ = nullptr;
  obs::Counter* emitted_counter_ = nullptr;
  obs::Histogram* emit_latency_steps_ = nullptr;
  obs::Gauge* scores_per_second_ = nullptr;
};

}  // namespace mace::core

#endif  // MACE_CORE_STREAMING_H_
