#include "core/streaming.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"

namespace mace::core {

StreamingScorer::StreamingScorer(const ServingModel* detector,
                                 int service_index,
                                 ts::NonFinitePolicy policy)
    : detector_(detector),
      service_index_(service_index),
      window_(detector->window()),
      stride_(detector->score_stride()),
      // The fitted means are the imputation fallback before any finite
      // observation: a mean z-scores to exactly 0, the series' neutral
      // level.
      sanitizer_(policy, detector->ImputationFallback(service_index)),
      created_at_(std::chrono::steady_clock::now()) {
  obs::MetricsRegistry& metrics = obs::Metrics();
  const obs::Labels labels = {{"service", std::to_string(service_index)}};
  steps_counter_ = metrics.GetCounter(
      "mace_stream_steps_total", "Observations consumed by Push, by service",
      labels);
  emitted_counter_ = metrics.GetCounter(
      "mace_stream_scores_emitted_total",
      "Finalized scores emitted by Push/Finish, by service", labels);
  emit_latency_steps_ = metrics.GetHistogram(
      "mace_stream_emit_latency_steps",
      "Steps between an observation arriving and its score being emitted",
      labels, obs::StepBuckets());
  scores_per_second_ = metrics.GetGauge(
      "mace_stream_scores_per_second",
      "Emitted-score throughput since the scorer was created, by service",
      labels);
}

Result<StreamingScorer> StreamingScorer::Create(
    const ServingModel* detector, int service_index,
    std::optional<ts::NonFinitePolicy> policy) {
  if (detector == nullptr) {
    return Status::InvalidArgument("detector must not be null");
  }
  if (!detector->fitted()) {
    return Status::FailedPrecondition("detector is not fitted");
  }
  if (service_index < 0 || service_index >= detector->num_services()) {
    return Status::OutOfRange("unknown service index");
  }
  return StreamingScorer(detector, service_index,
                         policy.value_or(detector->non_finite_policy()));
}

void StreamingScorer::FoldError(size_t offset, double err) {
  if (!covered_[offset]) {
    pending_[offset] = err;
    covered_[offset] = true;
    return;
  }
  if (std::isnan(pending_[offset])) return;  // sticky: NaN never un-taints
  if (std::isnan(err) || err < pending_[offset]) pending_[offset] = err;
}

void StreamingScorer::ScoreTailWindow() {
  const size_t start = steps_consumed_ - static_cast<size_t>(window_);
  bool window_contaminated = false;
  for (const bool c : contaminated_) window_contaminated |= c;
  if (window_contaminated) {
    // kPropagate: the window's score is meaningless, so skip the model
    // and fold NaN for every step it covers.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (size_t j = 0; j < static_cast<size_t>(window_); ++j) {
      const size_t step = start + j;
      if (step < next_emit_) continue;
      const size_t offset = step - next_emit_;
      MACE_CHECK(offset < pending_.size());
      FoldError(offset, nan);
    }
    last_scored_end_ = steps_consumed_;
    return;
  }
  std::vector<std::vector<double>> window(buffer_.begin(), buffer_.end());
  Result<std::vector<double>> errors =
      detector_->ScoreWindow(service_index_, window);
  MACE_CHECK_OK(errors.status());
  for (size_t j = 0; j < errors->size(); ++j) {
    const size_t step = start + j;
    if (step < next_emit_) continue;  // already emitted (Finish tail only)
    const size_t offset = step - next_emit_;
    MACE_CHECK(offset < pending_.size());
    FoldError(offset, (*errors)[j]);
  }
  last_scored_end_ = steps_consumed_;
}

std::vector<double> StreamingScorer::EmitFinalized(size_t safe_before) {
  return EmitFinalized(safe_before, steps_consumed_);
}

std::vector<double> StreamingScorer::EmitFinalized(size_t safe_before,
                                                   size_t steps_at_emit) {
  std::vector<double> emitted;
  while (next_emit_ < safe_before && !pending_.empty()) {
    emitted.push_back(covered_.front() ? pending_.front() : 0.0);
    // The ensemble is consulted on every emit even without a history
    // sink: OnEmit also drains the per-generation score queues, which
    // must stay in lockstep with the base pipeline.
    StepVerdict verdict;
    if (ensemble_ != nullptr) {
      verdict = ensemble_->OnEmit(next_emit_, emitted.back());
    }
    if (history_ != nullptr) {
      const int64_t timestamp =
          history_base_ + static_cast<int64_t>(next_emit_);
      // A voting ensemble supplies the consensus anomaly bit; the stored
      // score stays the base model's. A NaN base score keeps its
      // skip-the-record semantics (Append's non-finite guard) either way.
      if (verdict.voted) {
        history_->Append(history_tenant_, timestamp, emitted.back(),
                         verdict.anomaly);
      } else {
        history_->Append(history_tenant_, timestamp, emitted.back());
      }
    }
    pending_.pop_front();
    covered_.pop_front();
    // Emit latency of this score: steps consumed after its own step before
    // it became final (0 when the consuming Push emits it immediately).
    emit_latency_steps_->Observe(
        static_cast<double>(steps_at_emit - next_emit_ - 1));
    ++next_emit_;
  }
  if (!emitted.empty()) {
    scores_emitted_ += emitted.size();
    emitted_counter_->Increment(emitted.size());
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - created_at_)
                               .count();
    if (elapsed > 0) {
      scores_per_second_->Set(static_cast<double>(scores_emitted_) /
                              elapsed);
    }
  }
  return emitted;
}

Result<std::vector<double>> StreamingScorer::Push(
    const std::vector<double>& observation) {
  // Sanitize before scaling: a kReject failure leaves the pipeline (and
  // the sanitizer's carry-forward state) untouched, and the other
  // policies guarantee the scaler and the model only ever see finite
  // values.
  std::vector<double> row = observation;
  MACE_ASSIGN_OR_RETURN(ts::ObservationSanitizer::Outcome outcome,
                        sanitizer_.Apply(&row));
  MACE_ASSIGN_OR_RETURN(std::vector<double> scaled,
                        detector_->ScaleObservation(service_index_, row));
  if (outcome.contaminated) {
    ++ingest_stats_.contaminated_steps;
    ingest_stats_.values_imputed += outcome.values_imputed;
  }
  buffer_.push_back(std::move(scaled));
  contaminated_.push_back(
      outcome.contaminated &&
      sanitizer_.policy() == ts::NonFinitePolicy::kPropagate);
  if (buffer_.size() > static_cast<size_t>(window_)) {
    buffer_.pop_front();
    contaminated_.pop_front();
  }
  ++steps_consumed_;
  steps_counter_->Increment();
  pending_.push_back(std::numeric_limits<double>::infinity());
  covered_.push_back(false);
  // Online hooks see the raw sanitized row (finite, pre-scaling): each
  // model generation scales with its own fitted scaler, and the refit
  // buffer must train on unscaled data.
  if (sink_ != nullptr) sink_->OnObservation(row, outcome.contaminated);
  if (ensemble_ != nullptr) ensemble_->OnObservation(row);

  if (buffer_.size() == static_cast<size_t>(window_) &&
      (steps_consumed_ - static_cast<size_t>(window_)) %
              static_cast<size_t>(stride_) ==
          0) {
    ScoreTailWindow();
  }
  // A step is final once every window that can contain it has been seen.
  const size_t safe_before =
      steps_consumed_ >= static_cast<size_t>(window_)
          ? steps_consumed_ - static_cast<size_t>(window_) + 1
          : 0;
  return EmitFinalized(safe_before);
}

Result<std::vector<std::vector<double>>> StreamingScorer::PushMany(
    const std::vector<std::vector<double>>& observations) {
  // Sanitize and scale everything on a clone of the sanitizer before
  // mutating state, so an invalid observation fails the whole call with
  // the pipeline AND the imputation carry-forward untouched (the caller
  // can then replay per item to locate it).
  ts::ObservationSanitizer sanitizer = sanitizer_;
  IngestStats ingest = ingest_stats_;
  const bool keep_raw = sink_ != nullptr || ensemble_ != nullptr;
  std::vector<std::vector<double>> scaled;
  std::vector<bool> row_contaminated;
  std::vector<std::vector<double>> raw;       // sanitized rows for hooks
  std::vector<uint8_t> raw_contaminated;      // any-policy contamination
  scaled.reserve(observations.size());
  row_contaminated.reserve(observations.size());
  if (keep_raw) {
    raw.reserve(observations.size());
    raw_contaminated.reserve(observations.size());
  }
  for (const std::vector<double>& observation : observations) {
    std::vector<double> row = observation;
    MACE_ASSIGN_OR_RETURN(ts::ObservationSanitizer::Outcome outcome,
                          sanitizer.Apply(&row));
    MACE_ASSIGN_OR_RETURN(std::vector<double> out,
                          detector_->ScaleObservation(service_index_, row));
    scaled.push_back(std::move(out));
    row_contaminated.push_back(
        outcome.contaminated &&
        sanitizer.policy() == ts::NonFinitePolicy::kPropagate);
    if (outcome.contaminated) {
      ++ingest.contaminated_steps;
      ingest.values_imputed += outcome.values_imputed;
    }
    if (keep_raw) {
      raw.push_back(std::move(row));
      raw_contaminated.push_back(outcome.contaminated ? 1 : 0);
    }
  }
  sanitizer_ = std::move(sanitizer);
  ingest_stats_ = ingest;
  // Hooks fire only after the all-or-nothing validation above committed,
  // and before the retroactive emits below so the generation lanes have
  // consumed every observation a verdict may be asked for.
  if (sink_ != nullptr) {
    for (size_t i = 0; i < raw.size(); ++i) {
      sink_->OnObservation(raw[i], raw_contaminated[i] != 0);
    }
  }
  if (ensemble_ != nullptr) ensemble_->OnObservations(raw);

  // Consume every observation, snapshotting each clean window that falls
  // due at a stride boundary for one batched scoring pass; contaminated
  // due windows (kPropagate) skip the model and fold NaN below.
  std::vector<std::vector<std::vector<double>>> due_windows;
  std::vector<size_t> due_starts;
  std::vector<size_t> nan_starts;
  for (size_t i = 0; i < scaled.size(); ++i) {
    buffer_.push_back(std::move(scaled[i]));
    contaminated_.push_back(row_contaminated[i]);
    if (buffer_.size() > static_cast<size_t>(window_)) {
      buffer_.pop_front();
      contaminated_.pop_front();
    }
    ++steps_consumed_;
    pending_.push_back(std::numeric_limits<double>::infinity());
    covered_.push_back(false);
    if (buffer_.size() == static_cast<size_t>(window_) &&
        (steps_consumed_ - static_cast<size_t>(window_)) %
                static_cast<size_t>(stride_) ==
            0) {
      bool window_contaminated = false;
      for (const bool c : contaminated_) window_contaminated |= c;
      const size_t start = steps_consumed_ - static_cast<size_t>(window_);
      if (window_contaminated) {
        nan_starts.push_back(start);
      } else {
        due_windows.emplace_back(buffer_.begin(), buffer_.end());
        due_starts.push_back(start);
      }
      last_scored_end_ = steps_consumed_;
    }
  }
  if (!observations.empty()) steps_counter_->Increment(observations.size());

  // Batched scoring and fold. Deferring every fold until after all
  // pushes is equivalent to the sequential interleaving: a window scored
  // at push j never covers a step that push i < j already finalized
  // (its coverage starts past i's safe_before), and the sticky-NaN
  // min-fold itself is order-independent.
  if (!due_windows.empty()) {
    Result<std::vector<std::vector<double>>> batch =
        detector_->ScoreWindowBatch(service_index_, due_windows);
    MACE_CHECK_OK(batch.status());
    for (size_t w = 0; w < due_windows.size(); ++w) {
      const std::vector<double>& errors = (*batch)[w];
      const size_t start = due_starts[w];
      for (size_t j = 0; j < errors.size(); ++j) {
        const size_t step = start + j;
        if (step < next_emit_) continue;
        const size_t offset = step - next_emit_;
        MACE_CHECK(offset < pending_.size());
        FoldError(offset, errors[j]);
      }
    }
  }
  if (!nan_starts.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (const size_t start : nan_starts) {
      for (size_t j = 0; j < static_cast<size_t>(window_); ++j) {
        const size_t step = start + j;
        if (step < next_emit_) continue;
        const size_t offset = step - next_emit_;
        MACE_CHECK(offset < pending_.size());
        FoldError(offset, nan);
      }
    }
  }

  // Emit per observation with the step count that push saw, so results
  // and the emit-latency histogram match sequential Push calls.
  std::vector<std::vector<double>> results(observations.size());
  const size_t first_steps = steps_consumed_ - observations.size();
  for (size_t i = 0; i < observations.size(); ++i) {
    const size_t steps_at_emit = first_steps + i + 1;
    const size_t safe_before =
        steps_at_emit >= static_cast<size_t>(window_)
            ? steps_at_emit - static_cast<size_t>(window_) + 1
            : 0;
    results[i] = EmitFinalized(safe_before, steps_at_emit);
  }
  return results;
}

void StreamingScorer::Reset() {
  buffer_.clear();
  contaminated_.clear();
  pending_.clear();
  covered_.clear();
  sanitizer_.Reset();
  ingest_stats_ = IngestStats{};
  steps_consumed_ = 0;
  next_emit_ = 0;
  last_scored_end_ = 0;
  scores_emitted_ = 0;
  history_ = nullptr;  // the next stream may belong to a different tenant
  history_base_ = 0;
  // Same contract for the online hooks: a recycled session must neither
  // feed the previous stream's rolling refit buffer nor vote with its
  // ensemble (stale rows would leak into the next refit's snapshot).
  sink_ = nullptr;
  ensemble_ = nullptr;
  created_at_ = std::chrono::steady_clock::now();
  // The throughput gauge is cumulative-per-stream: a recycled session
  // must not report the previous tenant's rate until its first emit.
  scores_per_second_->Set(0.0);
}

std::vector<double> StreamingScorer::Finish() {
  if (buffer_.size() < static_cast<size_t>(window_)) {
    // Stream shorter than one window: nothing can be scored.
    pending_.clear();
    covered_.clear();
    return {};
  }
  if (last_scored_end_ != steps_consumed_) {
    ScoreTailWindow();  // the batch scorer's tail window
  }
  return EmitFinalized(steps_consumed_);
}

}  // namespace mace::core
