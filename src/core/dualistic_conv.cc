#include "core/dualistic_conv.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/math_utils.h"

namespace mace::core {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Core of DualisticConvolve writing into caller-provided storage; the
/// scoring hot loop runs stage 1 through here without touching the
/// allocator (the `terms` power table is thread-local).
void ConvolveInto(const double* signal, size_t n, int kernel, int stride,
                  double gamma, double sigma, DualisticMode mode,
                  double* out, size_t out_len) {
  // Peak: the signed power mean, which approaches the dominant (largest
  // magnitude) element as gamma grows. Valley: the shift-conjugated form
  // C - Peak(C - x) with C above the data range, which approaches the
  // minimum — equivalent to the paper's negative gamma (a reciprocal power
  // mean) but finite for data that crosses zero.
  double shift = 0.0;
  if (mode == DualisticMode::kValley) {
    double max_abs = 0.0;
    for (size_t t = 0; t < n; ++t) {
      max_abs = std::max(max_abs, std::fabs(signal[t]));
    }
    shift = max_abs + 1.0;
  }
  const double alpha = 1.0 / static_cast<double>(kernel);
  // Each signal element appears in up to `kernel` overlapping positions;
  // hoisting its term out of the sliding loop drops the pow count by that
  // factor. The per-term value and the left-to-right summation order are
  // unchanged, so the output is bit-identical to the nested form.
  thread_local std::vector<double> terms;
  terms.resize(n);
  for (size_t t = 0; t < n; ++t) {
    terms[t] = alpha * SignedPow(shift - signal[t], gamma) / sigma;
  }
  for (size_t i = 0; i < out_len; ++i) {
    double acc = 0.0;
    for (int j = 0; j < kernel; ++j) {
      acc += terms[i * stride + static_cast<size_t>(j)];
    }
    const double rooted = SignedRoot(acc * sigma, gamma);
    // Peak (shift = 0): SignedPow(-x) = -x^gamma for odd gamma, so
    // shift - rooted = +PowerMean(x). Valley: C - PowerMean(C - x).
    out[i] = shift - rooted;
  }
}

}  // namespace

std::vector<double> DualisticConvolve(const std::vector<double>& signal,
                                      int kernel, int stride, double gamma,
                                      double sigma, DualisticMode mode) {
  MACE_CHECK(kernel >= 1 && stride >= 1);
  MACE_CHECK(gamma >= 1.0) << "gamma magnitude must be >= 1";
  MACE_CHECK(sigma > 0.0);
  MACE_CHECK(signal.size() >= static_cast<size_t>(kernel));
  const size_t out_len = (signal.size() - kernel) / stride + 1;
  std::vector<double> out(out_len);
  ConvolveInto(signal.data(), signal.size(), kernel, stride, gamma, sigma,
               mode, out.data(), out_len);
  return out;
}

void DualisticAmplifyInto(const double* signal, size_t n, int kernel,
                          double gamma, double sigma, double* out) {
  MACE_CHECK(kernel >= 1 && kernel % 2 == 1)
      << "amplification kernel must be odd for symmetric padding";
  MACE_CHECK(n >= 1);
  const int half = kernel / 2;
  // Edge-replication padding keeps the output aligned with the input.
  thread_local std::vector<double> padded, peak, valley;
  padded.resize(n + 2 * static_cast<size_t>(half));
  for (size_t i = 0; i < padded.size(); ++i) {
    const int64_t src = static_cast<int64_t>(i) - half;
    const int64_t clamped =
        src < 0 ? 0
                : (src >= static_cast<int64_t>(n)
                       ? static_cast<int64_t>(n) - 1
                       : src);
    padded[i] = signal[static_cast<size_t>(clamped)];
  }
  peak.resize(n);
  valley.resize(n);
  ConvolveInto(padded.data(), padded.size(), kernel, /*stride=*/1, gamma,
               sigma, DualisticMode::kPeak, peak.data(), n);
  ConvolveInto(padded.data(), padded.size(), kernel, /*stride=*/1, gamma,
               sigma, DualisticMode::kValley, valley.data(), n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = 0.5 * (peak[i] + valley[i]);
  }
}

std::vector<double> DualisticAmplify(const std::vector<double>& signal,
                                     int kernel, double gamma, double sigma) {
  std::vector<double> out(signal.size());
  DualisticAmplifyInto(signal.data(), signal.size(), kernel, gamma, sigma,
                       out.data());
  return out;
}

DualisticConvLayer::DualisticConvLayer(int in_channels, int out_channels,
                                       int kernel, int stride, double gamma,
                                       double sigma, DualisticMode mode,
                                       Rng* rng)
    : kernel_(kernel),
      stride_(stride),
      gamma_(gamma),
      sigma_(sigma),
      mode_(mode) {
  MACE_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
             stride > 0);
  MACE_CHECK(gamma >= 1.0 && sigma > 0.0);
  MACE_CHECK(rng != nullptr);
  // Near-averaging initialization: the analysis in Theorem 1 assumes a
  // summation kernel; training then adapts it.
  const double base = 1.0 / static_cast<double>(in_channels * kernel);
  std::vector<double> w(static_cast<size_t>(out_channels) * in_channels *
                        kernel);
  for (double& v : w) v = base * rng->Uniform(0.8, 1.2);
  weight_ = Tensor::FromVector(
      std::move(w), Shape{out_channels, in_channels, kernel},
      /*requires_grad=*/true);
}

Tensor DualisticConvLayer::Forward(const Tensor& input) {
  if (mode_ == DualisticMode::kPeak) {
    Tensor powered =
        MulScalar(tensor::SignedPow(input, gamma_), 1.0 / sigma_);
    Tensor conv = tensor::Conv1d(powered, weight_, Tensor(), stride_);
    return tensor::SignedRoot(MulScalar(conv, sigma_), gamma_);
  }
  // Valley: C - Peak(C - x) with C a per-forward constant above the data
  // range (detached), a numerically safe soft-min (see DualisticConvolve).
  double max_abs = 0.0;
  for (double v : input.data()) max_abs = std::max(max_abs, std::fabs(v));
  const double shift = max_abs + 1.0;
  Tensor flipped = AddScalar(Neg(input), shift);  // C - x > 0
  Tensor powered =
      MulScalar(tensor::SignedPow(flipped, gamma_), 1.0 / sigma_);
  Tensor conv = tensor::Conv1d(powered, weight_, Tensor(), stride_);
  Tensor rooted = tensor::SignedRoot(MulScalar(conv, sigma_), gamma_);
  return AddScalar(Neg(rooted), shift);
}

Tensor DualisticConvLayer::ForwardBatched(const Tensor& input) {
  MACE_CHECK(input.ndim() == 3) << "ForwardBatched expects [B, C, L]";
  // Peak mode is already per-entry: every op treats batch entries
  // independently, so the stacked pass equals B stacked Forward passes.
  if (mode_ == DualisticMode::kPeak) return Forward(input);

  // Valley: Forward's shift is the max-abs of its whole input, which for
  // a stacked tensor would couple the entries. Compute it per entry —
  // the same double each window's own Forward would use — and apply it
  // through constant tensors: `shift - x` equals `(-x) + shift` exactly
  // (one rounding of the same IEEE addition), so scores stay
  // bit-identical to the per-window path.
  const tensor::Index batch = input.dim(0);
  const size_t entry = static_cast<size_t>(input.numel()) /
                       static_cast<size_t>(batch);
  const std::vector<double>& data = input.data();
  std::vector<double> shifts(static_cast<size_t>(batch));
  std::vector<double> shift_in =
      tensor::AcquireScratchBuffer(data.size());
  for (tensor::Index b = 0; b < batch; ++b) {
    double max_abs = 0.0;
    const double* base = data.data() + static_cast<size_t>(b) * entry;
    for (size_t i = 0; i < entry; ++i) {
      max_abs = std::max(max_abs, std::fabs(base[i]));
    }
    shifts[static_cast<size_t>(b)] = max_abs + 1.0;
    std::fill(shift_in.begin() + static_cast<int64_t>(b * entry),
              shift_in.begin() + static_cast<int64_t>((b + 1) * entry),
              shifts[static_cast<size_t>(b)]);
  }
  Tensor shift_in_t =
      Tensor::FromVector(std::move(shift_in), input.shape());
  Tensor flipped = Sub(shift_in_t, input);  // C - x > 0 per entry
  Tensor powered =
      MulScalar(tensor::SignedPow(flipped, gamma_), 1.0 / sigma_);
  Tensor conv = tensor::Conv1d(powered, weight_, Tensor(), stride_);
  Tensor rooted = tensor::SignedRoot(MulScalar(conv, sigma_), gamma_);
  const size_t out_entry = static_cast<size_t>(rooted.numel()) /
                           static_cast<size_t>(batch);
  std::vector<double> shift_out = tensor::AcquireScratchBuffer(
      static_cast<size_t>(rooted.numel()));
  for (tensor::Index b = 0; b < batch; ++b) {
    std::fill(shift_out.begin() + static_cast<int64_t>(b) *
                                      static_cast<int64_t>(out_entry),
              shift_out.begin() + static_cast<int64_t>(b + 1) *
                                      static_cast<int64_t>(out_entry),
              shifts[static_cast<size_t>(b)]);
  }
  Tensor shift_out_t =
      Tensor::FromVector(std::move(shift_out), rooted.shape());
  return Sub(shift_out_t, rooted);  // C - PowerMean(C - x) per entry
}

std::vector<Tensor> DualisticConvLayer::Parameters() const {
  return {weight_};
}

}  // namespace mace::core
