#include "core/dualistic_conv.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace mace::core {

using tensor::Shape;
using tensor::Tensor;

std::vector<double> DualisticConvolve(const std::vector<double>& signal,
                                      int kernel, int stride, double gamma,
                                      double sigma, DualisticMode mode) {
  MACE_CHECK(kernel >= 1 && stride >= 1);
  MACE_CHECK(gamma >= 1.0) << "gamma magnitude must be >= 1";
  MACE_CHECK(sigma > 0.0);
  MACE_CHECK(signal.size() >= static_cast<size_t>(kernel));
  // Peak: the signed power mean, which approaches the dominant (largest
  // magnitude) element as gamma grows. Valley: the shift-conjugated form
  // C - Peak(C - x) with C above the data range, which approaches the
  // minimum — equivalent to the paper's negative gamma (a reciprocal power
  // mean) but finite for data that crosses zero.
  double shift = 0.0;
  if (mode == DualisticMode::kValley) {
    double max_abs = 0.0;
    for (double v : signal) max_abs = std::max(max_abs, std::fabs(v));
    shift = max_abs + 1.0;
  }
  const size_t out_len = (signal.size() - kernel) / stride + 1;
  std::vector<double> out(out_len);
  const double alpha = 1.0 / static_cast<double>(kernel);
  for (size_t i = 0; i < out_len; ++i) {
    double acc = 0.0;
    for (int j = 0; j < kernel; ++j) {
      acc += alpha * SignedPow(shift - signal[i * stride + j], gamma) / sigma;
    }
    const double rooted = SignedRoot(acc * sigma, gamma);
    // Peak (shift = 0): SignedPow(-x) = -x^gamma for odd gamma, so
    // shift - rooted = +PowerMean(x). Valley: C - PowerMean(C - x).
    out[i] = shift - rooted;
  }
  return out;
}

std::vector<double> DualisticAmplify(const std::vector<double>& signal,
                                     int kernel, double gamma, double sigma) {
  MACE_CHECK(kernel >= 1 && kernel % 2 == 1)
      << "amplification kernel must be odd for symmetric padding";
  const int half = kernel / 2;
  // Edge-replication padding keeps the output aligned with the input.
  std::vector<double> padded(signal.size() + 2 * half);
  for (size_t i = 0; i < padded.size(); ++i) {
    const int64_t src = static_cast<int64_t>(i) - half;
    const int64_t clamped =
        src < 0 ? 0
                : (src >= static_cast<int64_t>(signal.size())
                       ? static_cast<int64_t>(signal.size()) - 1
                       : src);
    padded[i] = signal[static_cast<size_t>(clamped)];
  }
  const std::vector<double> peak = DualisticConvolve(
      padded, kernel, /*stride=*/1, gamma, sigma, DualisticMode::kPeak);
  const std::vector<double> valley = DualisticConvolve(
      padded, kernel, /*stride=*/1, gamma, sigma, DualisticMode::kValley);
  MACE_CHECK(peak.size() == signal.size());
  std::vector<double> out(signal.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = 0.5 * (peak[i] + valley[i]);
  }
  return out;
}

DualisticConvLayer::DualisticConvLayer(int in_channels, int out_channels,
                                       int kernel, int stride, double gamma,
                                       double sigma, DualisticMode mode,
                                       Rng* rng)
    : kernel_(kernel),
      stride_(stride),
      gamma_(gamma),
      sigma_(sigma),
      mode_(mode) {
  MACE_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
             stride > 0);
  MACE_CHECK(gamma >= 1.0 && sigma > 0.0);
  MACE_CHECK(rng != nullptr);
  // Near-averaging initialization: the analysis in Theorem 1 assumes a
  // summation kernel; training then adapts it.
  const double base = 1.0 / static_cast<double>(in_channels * kernel);
  std::vector<double> w(static_cast<size_t>(out_channels) * in_channels *
                        kernel);
  for (double& v : w) v = base * rng->Uniform(0.8, 1.2);
  weight_ = Tensor::FromVector(
      std::move(w), Shape{out_channels, in_channels, kernel},
      /*requires_grad=*/true);
}

Tensor DualisticConvLayer::Forward(const Tensor& input) {
  if (mode_ == DualisticMode::kPeak) {
    Tensor powered =
        MulScalar(tensor::SignedPow(input, gamma_), 1.0 / sigma_);
    Tensor conv = tensor::Conv1d(powered, weight_, Tensor(), stride_);
    return tensor::SignedRoot(MulScalar(conv, sigma_), gamma_);
  }
  // Valley: C - Peak(C - x) with C a per-forward constant above the data
  // range (detached), a numerically safe soft-min (see DualisticConvolve).
  double max_abs = 0.0;
  for (double v : input.data()) max_abs = std::max(max_abs, std::fabs(v));
  const double shift = max_abs + 1.0;
  Tensor flipped = AddScalar(Neg(input), shift);  // C - x > 0
  Tensor powered =
      MulScalar(tensor::SignedPow(flipped, gamma_), 1.0 / sigma_);
  Tensor conv = tensor::Conv1d(powered, weight_, Tensor(), stride_);
  Tensor rooted = tensor::SignedRoot(MulScalar(conv, sigma_), gamma_);
  return AddScalar(Neg(rooted), shift);
}

std::vector<Tensor> DualisticConvLayer::Parameters() const {
  return {weight_};
}

}  // namespace mace::core
