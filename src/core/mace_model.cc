#include "core/mace_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fft/context_aware_dft.h"
#include "obs/trace.h"

namespace mace::core {

using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

namespace {

/// Latency histograms of the learnable pipeline stages (stages 2-4 of
/// Fig 2; stage 1 is timed at its call sites in MaceDetector). Resolved
/// once — the per-window hot path only touches the cached pointers.
struct ForwardStageHistograms {
  obs::Histogram* context_dft;
  obs::Histogram* freq_characterization;
  obs::Histogram* autoencoder;
};

const ForwardStageHistograms& StageHistograms() {
  static const ForwardStageHistograms histograms = [] {
    auto h = [](const char* stage) {
      return obs::Metrics().GetHistogram(
          "mace_stage_latency_seconds",
          "Wall-clock latency of one pipeline stage over one window",
          {{"stage", stage}});
    };
    return ForwardStageHistograms{h("context_dft"),
                                  h("freq_characterization"),
                                  h("autoencoder")};
  }();
  return histograms;
}

}  // namespace

ServiceTransforms MakeServiceTransforms(int window,
                                        const std::vector<int>& bases) {
  fft::ContextAwareDft dft(window, bases);
  ServiceTransforms transforms;
  // Packed row-major panels straight from the DFT (same doubles the old
  // Transpose().Detach() produced, without building transpose ops): the
  // layout MatMul consumes and the fused kernel's panel packing re-pads.
  const int k = dft.num_bases();
  transforms.forward_t = tensor::Tensor::FromVector(
      dft.ForwardTransposedPanel(), tensor::Shape{window, 2 * k});
  transforms.inverse_t = tensor::Tensor::FromVector(
      dft.InverseTransposedPanel(), tensor::Shape{2 * k, window});
  transforms.marker_sin.resize(static_cast<size_t>(k));
  transforms.marker_cos.resize(static_cast<size_t>(k));
  for (int b = 0; b < k; ++b) {
    const double omega = dft.FrequencyOf(b);
    transforms.marker_sin[static_cast<size_t>(b)] = std::sin(omega);
    transforms.marker_cos[static_cast<size_t>(b)] = std::cos(omega);
  }
  return transforms;
}

MaceModel::MaceModel(const MaceConfig& config, int num_features,
                     int num_coeff_columns, Rng* rng)
    : config_(config),
      num_features_(num_features),
      num_coeff_columns_(num_coeff_columns) {
  MACE_CHECK(num_features > 0 && num_coeff_columns > 0);
  MACE_CHECK(num_coeff_columns % 2 == 0) << "coefficient columns must pair";
  MACE_CHECK(rng != nullptr);
  MACE_CHECK(num_coeff_columns / 2 >= config.freq_kernel)
      << "freq_kernel " << config.freq_kernel << " exceeds amplitude "
      << "columns " << num_coeff_columns / 2;

  const bool use_char = config_.use_freq_characterization &&
                        config_.use_pattern_extraction;
  if (use_char) {
    char_conv1_ = std::make_shared<nn::Conv1dLayer>(
        3, config_.characterization_channels, /*kernel=*/1, /*stride=*/1,
        rng);
    char_conv2_ = std::make_shared<nn::Conv1dLayer>(
        config_.characterization_channels, 1, /*kernel=*/1, /*stride=*/1,
        rng);
  }

  // The autoencoder runs on the k amplitude columns (the paper's analysis
  // is on amplitude spectra; phases pass through from the input).
  const int amp_columns = num_coeff_columns / 2;
  const int kernel = config_.freq_kernel;
  const int stride = config_.freq_kernel;
  const int compressed = (amp_columns - kernel) / stride + 1;
  latent_elements_ = config_.hidden_channels * compressed;

  if (config_.use_dualistic_freq) {
    encoder_peak_ = std::make_shared<DualisticConvLayer>(
        num_features, config_.hidden_channels, kernel, stride,
        config_.gamma_f, config_.sigma_f, DualisticMode::kPeak, rng);
    encoder_valley_ = std::make_shared<DualisticConvLayer>(
        num_features, config_.hidden_channels, kernel, stride,
        config_.gamma_f, config_.sigma_f, DualisticMode::kValley, rng);
  } else {
    // Ablation: vanilla convolution (the gamma = 1 degenerate case).
    encoder_peak_ = std::make_shared<nn::Conv1dLayer>(
        num_features, config_.hidden_channels, kernel, stride, rng);
    encoder_valley_ = std::make_shared<nn::Conv1dLayer>(
        num_features, config_.hidden_channels, kernel, stride, rng);
  }
  // Two-layer decoders: reconstructing a service's amplitude template from
  // the pooled latent is a nonlinear lookup when one model serves many
  // normal patterns.
  const int decoder_hidden = 2 * latent_elements_;
  auto make_decoder = [&](void) {
    auto seq = std::make_shared<nn::Sequential>();
    seq->Add(std::make_shared<nn::Linear>(latent_elements_, decoder_hidden,
                                          rng));
    seq->Add(std::make_shared<nn::Activation>(nn::ActivationKind::kTanh));
    seq->Add(std::make_shared<nn::Linear>(decoder_hidden,
                                          num_features * amp_columns, rng));
    return seq;
  };
  decoder_peak_ = make_decoder();
  decoder_valley_ = make_decoder();
}

MaceModel::Output MaceModel::Forward(const ServiceTransforms& service,
                                     const Tensor& amplified_window,
                                     bool want_step_errors) {
  MACE_CHECK(amplified_window.ndim() == 2 &&
             amplified_window.dim(0) == num_features_)
      << "window must be [m, T]";
  const Index m = num_features_;
  const Index cols = num_coeff_columns_;
  MACE_CHECK(service.forward_t.dim(1) == cols)
      << "service transform has " << service.forward_t.dim(1)
      << " columns, model expects " << cols;

  const ForwardStageHistograms& stages = StageHistograms();
  obs::StageTimer stage_timer;

  // Stage 2: context-aware DFT.
  Tensor coeffs = MatMul(amplified_window, service.forward_t);  // [m, 2k]
  const Index k = cols / 2;
  Tensor re = Slice(coeffs, /*axis=*/1, 0, k);   // [m, k]
  Tensor im = Slice(coeffs, /*axis=*/1, k, cols);
  // Amplitudes (the paper's A_i); epsilon keeps sqrt gradients finite.
  Tensor amp = Sqrt(
      AddScalar(Add(Square(re), Square(im)), kSpectrumEpsilon));  // [m, k]

  // Unit phase vectors, detached: the autoencoder reconstructs the
  // amplitude spectrum, phases pass through from the input (Fig 4). The
  // denominator is the amplitude itself (same epsilon, same operand
  // order) so amp * unit_phase == (re, im) to within an ulp.
  std::vector<double> unit_re =
      tensor::AcquireScratchBuffer(static_cast<size_t>(m * k));
  std::vector<double> unit_im =
      tensor::AcquireScratchBuffer(static_cast<size_t>(m * k));
  {
    const std::vector<double>& cv = coeffs.data();
    for (Index f = 0; f < m; ++f) {
      for (Index c = 0; c < k; ++c) {
        const double r = cv[static_cast<size_t>(f * cols + c)];
        const double i = cv[static_cast<size_t>(f * cols + k + c)];
        const double a = std::sqrt(r * r + i * i + kSpectrumEpsilon);
        unit_re[static_cast<size_t>(f * k + c)] = r / a;
        unit_im[static_cast<size_t>(f * k + c)] = i / a;
      }
    }
  }
  Tensor phase_re =
      Tensor::FromVector(std::move(unit_re), Shape{m, k});
  Tensor phase_im =
      Tensor::FromVector(std::move(unit_im), Shape{m, k});

  stage_timer.Mark(stages.context_dft);

  // Frequency characterization (residual per-frequency gating).
  Tensor rep = amp;
  if (char_conv1_) {
    const Index flat = m * k;
    std::vector<double> markers =
        tensor::AcquireScratchBuffer(static_cast<size_t>(2 * flat));
    for (Index f = 0; f < m; ++f) {
      for (Index c = 0; c < k; ++c) {
        markers[static_cast<size_t>(f * k + c)] =
            service.marker_sin[static_cast<size_t>(c)];
        markers[static_cast<size_t>(flat + f * k + c)] =
            service.marker_cos[static_cast<size_t>(c)];
      }
    }
    Tensor marker_tensor =
        Tensor::FromVector(std::move(markers), Shape{2, flat});
    Tensor stacked = tensor::Concat(
        {Reshape(amp, Shape{1, flat}), marker_tensor}, /*axis=*/0);
    Tensor charted = char_conv2_->Forward(
        Tanh(char_conv1_->Forward(Reshape(stacked, Shape{1, 3, flat}))));
    rep = Add(amp, Reshape(charted, Shape{m, k}));
  }
  stage_timer.Mark(stages.freq_characterization);

  // Stage 3: dualistic-convolution autoencoder over amplitudes, two
  // branches (peak keeps maxima, valley keeps minima — Fig 4(a)).
  Tensor rep3 = Reshape(rep, Shape{1, m, k});
  Tensor latent_peak =
      Reshape(encoder_peak_->Forward(rep3), Shape{1, latent_elements_});
  Tensor latent_valley =
      Reshape(encoder_valley_->Forward(rep3), Shape{1, latent_elements_});
  Tensor amp_peak =
      Reshape(decoder_peak_->Forward(latent_peak), Shape{m, k});
  Tensor amp_valley =
      Reshape(decoder_valley_->Forward(latent_valley), Shape{m, k});

  // Stage 4: reattach phases, context-aware IDFT, per-slot branch max.
  Tensor rec_peak = tensor::Concat(
      {Mul(amp_peak, phase_re), Mul(amp_peak, phase_im)}, /*axis=*/1);
  Tensor rec_valley = tensor::Concat(
      {Mul(amp_valley, phase_re), Mul(amp_valley, phase_im)}, /*axis=*/1);
  Tensor time_peak = MatMul(rec_peak, service.inverse_t);      // [m, T]
  Tensor time_valley = MatMul(rec_valley, service.inverse_t);  // [m, T]
  Tensor err_peak = Square(Sub(time_peak, amplified_window));
  Tensor err_valley = Square(Sub(time_valley, amplified_window));
  Tensor err = Maximum(err_peak, err_valley);  // [m, T]

  Output output;
  {
    double sp = 0.0, sv = 0.0;
    for (double v : err_peak.data()) sp += v;
    for (double v : err_valley.data()) sv += v;
    output.mean_err_peak = sp / static_cast<double>(err_peak.numel());
    output.mean_err_valley = sv / static_cast<double>(err_valley.numel());
  }
  // Training drives both branches (each must learn to reconstruct
  // normality); scoring uses the stage-4 per-slot max below.
  output.loss =
      MulScalar(Add(tensor::Mean(err_peak), tensor::Mean(err_valley)), 0.5);
  if (want_step_errors) {
    const Index window = amplified_window.dim(1);
    output.step_errors.assign(static_cast<size_t>(window), 0.0);
    const std::vector<double>& ev = err.data();
    for (Index t = 0; t < window; ++t) {
      double acc = 0.0;
      for (Index f = 0; f < m; ++f) {
        acc += ev[static_cast<size_t>(f * window + t)];
      }
      output.step_errors[static_cast<size_t>(t)] =
          acc / static_cast<double>(m);
    }
  }
  stage_timer.Mark(stages.autoencoder);
  return output;
}

MaceModel::BatchOutput MaceModel::ForwardBatch(
    const ServiceTransforms& service,
    const std::vector<Tensor>& amplified_windows, bool want_step_errors,
    bool want_loss) {
  MACE_CHECK(!amplified_windows.empty()) << "ForwardBatch of zero windows";
  const Index batch = static_cast<Index>(amplified_windows.size());
  const Index m = num_features_;
  const Index cols = num_coeff_columns_;
  const Index window = amplified_windows.front().dim(1);
  for (const Tensor& w : amplified_windows) {
    MACE_CHECK(w.ndim() == 2 && w.dim(0) == m && w.dim(1) == window)
        << "every window must be [m, T]";
  }
  MACE_CHECK(service.forward_t.dim(1) == cols)
      << "service transform has " << service.forward_t.dim(1)
      << " columns, model expects " << cols;

  const ForwardStageHistograms& stages = StageHistograms();
  obs::StageTimer stage_timer;

  // Stage 2, batched: stack to [B*m, T] and run one context-aware DFT.
  // Each output row depends only on the matching input row, so every
  // window's coefficients match its per-window MatMul bit for bit.
  Tensor stacked_windows = tensor::Concat(amplified_windows, /*axis=*/0);
  Tensor coeffs = MatMul(stacked_windows, service.forward_t);  // [B*m, 2k]
  const Index k = cols / 2;
  const Index rows = batch * m;
  Tensor re = Slice(coeffs, /*axis=*/1, 0, k);  // [B*m, k]
  Tensor im = Slice(coeffs, /*axis=*/1, k, cols);
  Tensor amp = Sqrt(
      AddScalar(Add(Square(re), Square(im)), kSpectrumEpsilon));

  std::vector<double> unit_re =
      tensor::AcquireScratchBuffer(static_cast<size_t>(rows * k));
  std::vector<double> unit_im =
      tensor::AcquireScratchBuffer(static_cast<size_t>(rows * k));
  {
    const std::vector<double>& cv = coeffs.data();
    for (Index f = 0; f < rows; ++f) {
      for (Index c = 0; c < k; ++c) {
        const double r = cv[static_cast<size_t>(f * cols + c)];
        const double i = cv[static_cast<size_t>(f * cols + k + c)];
        const double a = std::sqrt(r * r + i * i + kSpectrumEpsilon);
        unit_re[static_cast<size_t>(f * k + c)] = r / a;
        unit_im[static_cast<size_t>(f * k + c)] = i / a;
      }
    }
  }
  Tensor phase_re =
      Tensor::FromVector(std::move(unit_re), Shape{rows, k});
  Tensor phase_im =
      Tensor::FromVector(std::move(unit_im), Shape{rows, k});

  stage_timer.Mark(stages.context_dft);

  // Frequency characterization over [B, 3, m*k]: Conv1d treats batch
  // entries independently, so each window sees the per-window arithmetic.
  Tensor rep = amp;
  if (char_conv1_) {
    const Index flat = m * k;
    std::vector<double> stacked_channels =
        tensor::AcquireScratchBuffer(static_cast<size_t>(batch * 3 * flat));
    const std::vector<double>& ampv = amp.data();
    for (Index b = 0; b < batch; ++b) {
      double* base = stacked_channels.data() + b * 3 * flat;
      const double* amp_b = ampv.data() + b * flat;
      std::copy(amp_b, amp_b + flat, base);
      double* sin_ch = base + flat;
      double* cos_ch = base + 2 * flat;
      for (Index f = 0; f < m; ++f) {
        for (Index c = 0; c < k; ++c) {
          sin_ch[f * k + c] = service.marker_sin[static_cast<size_t>(c)];
          cos_ch[f * k + c] = service.marker_cos[static_cast<size_t>(c)];
        }
      }
    }
    Tensor stacked = Tensor::FromVector(std::move(stacked_channels),
                                        Shape{batch, 3, flat});
    Tensor charted =
        char_conv2_->Forward(Tanh(char_conv1_->Forward(stacked)));
    rep = Add(amp, Reshape(charted, Shape{rows, k}));
  }
  stage_timer.Mark(stages.freq_characterization);

  // Stage 3, batched: elementwise ops, Conv1d batch entries, MatMul rows
  // and the broadcast bias add are all per-entry independent. The one
  // cross-entry coupling would be the dualistic valley shift (max-abs of
  // the whole encoder input), which ForwardBatched computes per entry —
  // each window sees exactly its own Forward pass, bit for bit.
  Tensor rep3 = Reshape(rep, Shape{batch, m, k});
  auto encode = [&](nn::Module* encoder) {
    if (auto* dualistic = dynamic_cast<DualisticConvLayer*>(encoder)) {
      return dualistic->ForwardBatched(rep3);
    }
    return encoder->Forward(rep3);  // plain Conv1d batches natively
  };
  Tensor latent_peak = Reshape(encode(encoder_peak_.get()),
                               Shape{batch, latent_elements_});
  Tensor latent_valley = Reshape(encode(encoder_valley_.get()),
                                 Shape{batch, latent_elements_});
  Tensor amp_peak =
      Reshape(decoder_peak_->Forward(latent_peak), Shape{rows, k});
  Tensor amp_valley =
      Reshape(decoder_valley_->Forward(latent_valley), Shape{rows, k});

  // Stage 4, batched: phase reattach, one IDFT matmul, per-slot max.
  Tensor rec_peak = tensor::Concat(
      {Mul(amp_peak, phase_re), Mul(amp_peak, phase_im)}, /*axis=*/1);
  Tensor rec_valley = tensor::Concat(
      {Mul(amp_valley, phase_re), Mul(amp_valley, phase_im)}, /*axis=*/1);
  Tensor time_peak = MatMul(rec_peak, service.inverse_t);      // [B*m, T]
  Tensor time_valley = MatMul(rec_valley, service.inverse_t);  // [B*m, T]
  Tensor err_peak = Square(Sub(time_peak, stacked_windows));
  Tensor err_valley = Square(Sub(time_valley, stacked_windows));

  BatchOutput output;
  if (want_loss) {
    // Mean over the stacked [B*m, T] error is 1/B of the sum of the B
    // per-window means (same m*T denominator), so scaling by
    // 0.5 * B yields the SUM of per-window Forward losses — and for
    // B = 1 the scalar is exactly 0.5, making the loss (value and
    // gradient) bit-identical to the per-window path.
    output.loss = MulScalar(
        Add(tensor::Mean(err_peak), tensor::Mean(err_valley)),
        0.5 * static_cast<double>(batch));
  }
  if (want_step_errors) {
    Tensor err = Maximum(err_peak, err_valley);  // [B*m, T]
    output.step_errors.assign(
        static_cast<size_t>(batch),
        std::vector<double>(static_cast<size_t>(window), 0.0));
    const std::vector<double>& ev = err.data();
    for (Index b = 0; b < batch; ++b) {
      std::vector<double>& errors_b =
          output.step_errors[static_cast<size_t>(b)];
      for (Index t = 0; t < window; ++t) {
        double acc = 0.0;
        for (Index f = 0; f < m; ++f) {
          acc += ev[static_cast<size_t>((b * m + f) * window + t)];
        }
        errors_b[static_cast<size_t>(t)] = acc / static_cast<double>(m);
      }
    }
  }
  stage_timer.Mark(stages.autoencoder);
  return output;
}

void MaceModel::CopyParametersFrom(const MaceModel& other) {
  std::vector<Tensor> dst = Parameters();
  const std::vector<Tensor> src = other.Parameters();
  MACE_CHECK(dst.size() == src.size())
      << "replica holds " << dst.size() << " parameters, master "
      << src.size();
  for (size_t p = 0; p < dst.size(); ++p) {
    const std::vector<double>& values = src[p].data();
    std::vector<double>& mine = dst[p].mutable_data();
    MACE_CHECK(mine.size() == values.size())
        << "parameter " << p << " shape mismatch between replicas";
    std::copy(values.begin(), values.end(), mine.begin());
  }
}

std::vector<Tensor> MaceModel::Parameters() const {
  std::vector<Tensor> params;
  auto append = [&params](const std::vector<Tensor>& more) {
    for (const Tensor& t : more) params.push_back(t);
  };
  if (char_conv1_) {
    append(char_conv1_->Parameters());
    append(char_conv2_->Parameters());
  }
  append(encoder_peak_->Parameters());
  append(encoder_valley_->Parameters());
  append(decoder_peak_->Parameters());
  append(decoder_valley_->Parameters());
  return params;
}

int64_t MaceModel::ParameterCount() const {
  int64_t total = 0;
  for (const Tensor& p : Parameters()) total += p.numel();
  return total;
}

int64_t MaceModel::PeakActivationElements() const {
  const int64_t coeff = static_cast<int64_t>(num_features_) *
                        num_coeff_columns_;
  // coefficients + characterization stack + two branches of latents,
  // reconstructions and time-domain errors.
  return 4 * coeff + 2 * latent_elements_ + 4 * coeff;
}

}  // namespace mace::core
