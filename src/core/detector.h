#ifndef MACE_CORE_DETECTOR_H_
#define MACE_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ts/time_series.h"

namespace mace::core {

/// \brief Abstract multivariate time-series anomaly detector.
///
/// A detector is trained on the train splits of one or more services.
/// Training on several services at once is the paper's "unified model"
/// setting; constructing one detector per service is the "tailored" one —
/// the same interface serves both.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Trains on the given services' train splits.
  virtual Status Fit(const std::vector<ts::ServiceData>& services) = 0;

  /// Per-step anomaly scores (higher = more anomalous) for a test series
  /// belonging to service `service_index` of the fitted set.
  virtual Result<std::vector<double>> Score(
      int service_index, const ts::TimeSeries& test) = 0;

  /// Scores a service that was NOT part of Fit: per-service preprocessing
  /// (scalers, subspaces) may use the service's train split, but learned
  /// weights stay frozen — the Table VIII transfer protocol.
  virtual Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) = 0;

  virtual std::string name() const = 0;

  /// Number of trainable scalars (0 for non-parametric detectors).
  virtual int64_t ParameterCount() const { return 0; }

  /// Rough upper bound on live activation elements in one forward pass,
  /// for the Fig 6(a) memory estimate.
  virtual int64_t PeakActivationElements() const { return 0; }
};

/// How overlapping windows' errors combine into one per-step score.
enum class ScoreReduction {
  kMean,  ///< average over covering windows (pointwise reconstructors)
  kMin    ///< minimum over covering windows — localizes spectral errors:
          ///< a normal step near an anomaly is covered by at least one
          ///< clean window, while a truly anomalous step scores high in
          ///< every window that contains it
};

/// \brief Accumulates per-window, per-step errors into a per-step score
/// series across overlapping windows.
class ScoreAccumulator {
 public:
  explicit ScoreAccumulator(size_t series_length,
                            ScoreReduction reduction = ScoreReduction::kMean)
      : reduction_(reduction),
        sums_(series_length, 0.0),
        mins_(series_length, 0.0),
        counts_(series_length, 0.0) {}

  /// Adds `errors` (one per window step) for the window at `start`.
  void Add(size_t start, const std::vector<double>& errors) {
    for (size_t t = 0; t < errors.size(); ++t) {
      if (start + t >= sums_.size()) break;
      sums_[start + t] += errors[t];
      if (counts_[start + t] == 0.0 || errors[t] < mins_[start + t]) {
        mins_[start + t] = errors[t];
      }
      counts_[start + t] += 1.0;
    }
  }

  /// Final per-step scores; steps never covered get the mean score.
  std::vector<double> Finalize() const;

 private:
  ScoreReduction reduction_;
  std::vector<double> sums_;
  std::vector<double> mins_;
  std::vector<double> counts_;
};

}  // namespace mace::core

#endif  // MACE_CORE_DETECTOR_H_
