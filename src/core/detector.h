#ifndef MACE_CORE_DETECTOR_H_
#define MACE_CORE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ts/sanitize.h"
#include "ts/time_series.h"

namespace mace::core {

/// \brief Abstract multivariate time-series anomaly detector.
///
/// A detector is trained on the train splits of one or more services.
/// Training on several services at once is the paper's "unified model"
/// setting; constructing one detector per service is the "tailored" one —
/// the same interface serves both.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Trains on the given services' train splits.
  virtual Status Fit(const std::vector<ts::ServiceData>& services) = 0;

  /// Per-step anomaly scores (higher = more anomalous) for a test series
  /// belonging to service `service_index` of the fitted set.
  virtual Result<std::vector<double>> Score(
      int service_index, const ts::TimeSeries& test) = 0;

  /// Scores a service that was NOT part of Fit: per-service preprocessing
  /// (scalers, subspaces) may use the service's train split, but learned
  /// weights stay frozen — the Table VIII transfer protocol.
  virtual Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) = 0;

  virtual std::string name() const = 0;

  /// Number of trainable scalars (0 for non-parametric detectors).
  virtual int64_t ParameterCount() const { return 0; }

  /// Rough upper bound on live activation elements in one forward pass,
  /// for the Fig 6(a) memory estimate.
  virtual int64_t PeakActivationElements() const { return 0; }
};

/// \brief The window-level scoring surface the serving stack (streaming
/// scorer, session registry, model provider, serve frontend, scale-out
/// backends) is generic over.
///
/// A ServingModel is a fitted detector variant able to score one window of
/// already-scaled rows at a time. MaceDetector implements it directly;
/// channel::ChannelAwareDetector is the second implementation — the serve
/// path treats both uniformly, so a hot Swap can change the detector
/// VARIANT, not just its weights. All services of one model share a
/// feature count, window and stride (they are one deployment artifact).
///
/// Implementations must be usable concurrently from multiple threads once
/// fitted: every method here is const and must not mutate observable
/// state.
class ServingModel {
 public:
  virtual ~ServingModel() = default;

  /// Variant name ("MACE", "ChannelAware", ...), for diagnostics.
  virtual std::string name() const = 0;
  /// True once the model can score (Fit committed or Load succeeded).
  virtual bool fitted() const = 0;
  virtual int window() const = 0;
  virtual int score_stride() const = 0;
  /// Feature count shared by every fitted service.
  virtual int num_features() const = 0;
  /// Number of services this model can score (valid indices are
  /// [0, num_services())).
  virtual int num_services() const = 0;
  /// Default non-finite policy for sessions opened on this model.
  virtual ts::NonFinitePolicy non_finite_policy() const = 0;
  /// Imputation fallback row of one service (typically the fitted means,
  /// which scale to exactly 0) — what a streaming sanitizer substitutes
  /// for a feature that was never observed finite.
  virtual std::vector<double> ImputationFallback(int service_index) const = 0;

  /// Applies the service's fitted scaler to one raw observation row.
  virtual Result<std::vector<double>> ScaleObservation(
      int service_index, const std::vector<double>& row) const = 0;
  /// Scores one window given as scaled rows [window][features]: returns
  /// the per-step errors. Rows must be fully finite — policy-aware
  /// surfaces sanitize upstream.
  virtual Result<std::vector<double>> ScoreWindow(
      int service_index,
      const std::vector<std::vector<double>>& scaled_rows) const = 0;
  /// Scores B windows at once, bit-identical to B ScoreWindow calls.
  virtual Result<std::vector<std::vector<double>>> ScoreWindowBatch(
      int service_index,
      const std::vector<std::vector<std::vector<double>>>& windows) const = 0;

  /// Zero-shot onboarding: returns a COPY of this model extended with one
  /// more service whose per-service preprocessing (scaler, subspace,
  /// fusion statistics, ...) is computed from `train` while every learned
  /// weight stays frozen — the ScoreUnseen transfer protocol turned into
  /// a servable artifact. The new service's index is the copy's
  /// num_services() - 1; `this` is untouched, so a serve frontend can
  /// Swap the copy in while live sessions drain on the original.
  virtual Result<std::shared_ptr<const ServingModel>> OnboardService(
      const ts::TimeSeries& train) const = 0;

  /// Serializes the fitted model to `path` in the variant's own format
  /// (channel::LoadServingModel sniffs the magic to dispatch loads).
  virtual Status Save(const std::string& path) const = 0;
};

/// How overlapping windows' errors combine into one per-step score.
enum class ScoreReduction {
  kMean,  ///< average over covering windows (pointwise reconstructors)
  kMin    ///< minimum over covering windows — localizes spectral errors:
          ///< a normal step near an anomaly is covered by at least one
          ///< clean window, while a truly anomalous step scores high in
          ///< every window that contains it
};

/// \brief Accumulates per-window, per-step errors into a per-step score
/// series across overlapping windows.
class ScoreAccumulator {
 public:
  explicit ScoreAccumulator(size_t series_length,
                            ScoreReduction reduction = ScoreReduction::kMean)
      : reduction_(reduction),
        sums_(series_length, 0.0),
        mins_(series_length, 0.0),
        counts_(series_length, 0.0) {}

  /// Adds `errors` (one per window step) for the window at `start`.
  void Add(size_t start, const std::vector<double>& errors) {
    for (size_t t = 0; t < errors.size(); ++t) {
      if (start + t >= sums_.size()) break;
      sums_[start + t] += errors[t];
      if (counts_[start + t] == 0.0 || errors[t] < mins_[start + t]) {
        mins_[start + t] = errors[t];
      }
      counts_[start + t] += 1.0;
    }
  }

  /// Final per-step scores; steps never covered get the mean score.
  std::vector<double> Finalize() const;

 private:
  ScoreReduction reduction_;
  std::vector<double> sums_;
  std::vector<double> mins_;
  std::vector<double> counts_;
};

}  // namespace mace::core

#endif  // MACE_CORE_DETECTOR_H_
