#include "core/fused_plan_builder.h"

#include "common/check.h"

namespace mace::core {

kernel::FusedModelPlan BuildFusedModelPlan(const MaceConfig& config,
                                           int num_features,
                                           int num_coeff_columns,
                                           const MaceModel& model) {
  kernel::FusedModelPlan plan;
  plan.features = num_features;
  plan.window = config.window;
  MACE_CHECK(num_coeff_columns > 0 && num_coeff_columns % 2 == 0);
  plan.num_bases = num_coeff_columns / 2;

  plan.amplify = config.use_dualistic_time;
  plan.time_kernel = config.time_kernel;
  plan.gamma_t = config.gamma_t;
  plan.sigma_t = config.sigma_t;

  plan.spectrum_epsilon = MaceModel::kSpectrumEpsilon;

  plan.has_char =
      config.use_freq_characterization && config.use_pattern_extraction;
  plan.char_channels = plan.has_char ? config.characterization_channels : 0;

  plan.dualistic_encoders = config.use_dualistic_freq;
  plan.gamma_f = config.gamma_f;
  plan.sigma_f = config.sigma_f;
  plan.inv_sigma_f = 1.0 / config.sigma_f;
  plan.freq_kernel = config.freq_kernel;
  plan.freq_stride = config.freq_kernel;
  plan.hidden_channels = config.hidden_channels;
  plan.compressed =
      (plan.num_bases - plan.freq_kernel) / plan.freq_stride + 1;
  plan.latent = plan.hidden_channels * plan.compressed;
  plan.decoder_hidden = 2 * plan.latent;

  // Parameters() order is the same contract serialization relies on:
  // characterization convs (if present), encoders peak/valley, decoders
  // peak/valley.
  const std::vector<tensor::Tensor> params = model.Parameters();
  size_t idx = 0;
  auto next = [&params, &idx]() -> const std::vector<double>& {
    MACE_CHECK(idx < params.size())
        << "fused plan builder ran past the parameter list";
    return params[idx++].data();
  };
  if (plan.has_char) {
    plan.char_w1 = next();  // [C, 3, 1]
    plan.char_b1 = next();  // [C]
    plan.char_w2 = next();  // [1, C, 1]
    const std::vector<double>& b2 = next();
    MACE_CHECK(b2.size() == 1);
    plan.char_b2 = b2[0];
  }
  plan.peak.enc_w = next();
  if (!plan.dualistic_encoders) plan.peak.enc_b = next();
  plan.valley.enc_w = next();
  if (!plan.dualistic_encoders) plan.valley.enc_b = next();
  for (kernel::FusedModelPlan::Branch* branch :
       {&plan.peak, &plan.valley}) {
    branch->dec_w1 = next();
    branch->dec_b1 = next();
    branch->dec_w2 = next();
    branch->dec_b2 = next();
  }
  MACE_CHECK(idx == params.size())
      << "fused plan builder consumed " << idx << " of " << params.size()
      << " parameters";

  kernel::FinalizeModelPlan(&plan);
  return plan;
}

kernel::FusedServicePlan BuildFusedServicePlan(
    const kernel::FusedModelPlan& model_plan,
    const ServiceTransforms& transforms) {
  kernel::FusedServicePlan plan;
  MACE_CHECK(transforms.forward_t.ndim() == 2 &&
             transforms.forward_t.dim(0) == model_plan.window &&
             transforms.forward_t.dim(1) == 2 * model_plan.num_bases);
  plan.forward = transforms.forward_t.data();
  plan.inverse = transforms.inverse_t.data();
  plan.marker_sin = transforms.marker_sin;
  plan.marker_cos = transforms.marker_cos;
  kernel::FinalizeServicePlan(model_plan, &plan);
  return plan;
}

}  // namespace mace::core
