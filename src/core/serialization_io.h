#ifndef MACE_CORE_SERIALIZATION_IO_H_
#define MACE_CORE_SERIALIZATION_IO_H_

/// Shared primitives of the line-oriented model file formats (MACEv1,
/// MCHANv1): count-prefixed double vectors written at full precision, read
/// back under an allocation cap, with every failure naming the file and
/// the section that broke. Both serializers build on these so a corrupt or
/// hostile artifact fails the same way regardless of variant.

#include <ostream>
#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include "common/result.h"

namespace mace::core::io {

/// Ceiling on any element count a model file can declare (features,
/// services, vector lengths). Far above anything a real fit produces, low
/// enough that a hostile count cannot drive a multi-gigabyte allocation.
inline constexpr size_t kMaxFileCount = 1 << 20;

/// Every Load failure names the file and the section that broke, so an
/// operator staring at a failed hot reload knows whether the artifact is
/// truncated, of a foreign format, or from an incompatible build.
inline Status Corrupt(const std::string& path, const std::string& reason) {
  return Status::InvalidArgument("corrupt model file '" + path +
                                 "': " + reason);
}

inline void WriteVector(std::ostream& out, const std::vector<double>& values) {
  out << values.size();
  out.precision(17);
  for (double v : values) out << ' ' << v;
  out << '\n';
}

inline Result<std::vector<double>> ReadVector(std::istream& in,
                                              const std::string& path,
                                              const std::string& what) {
  size_t count = 0;
  if (!(in >> count)) {
    return Corrupt(path, "missing element count of " + what +
                             (in.eof() ? " (file truncated)" : ""));
  }
  if (count > kMaxFileCount) {
    // An absurd declared count is an attack or corruption either way;
    // refuse it before it sizes an allocation.
    std::ostringstream reason;
    reason << what << " declares " << count << " values (limit "
           << kMaxFileCount << ")";
    return Corrupt(path, reason.str());
  }
  std::vector<double> values;
  values.reserve(count);
  double v = 0.0;
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> v)) {
      std::ostringstream reason;
      reason << what << " holds " << i << " of " << count << " values";
      if (in.eof()) reason << " (file truncated)";
      return Corrupt(path, reason.str());
    }
    values.push_back(v);
  }
  return values;
}

}  // namespace mace::core::io

#endif  // MACE_CORE_SERIALIZATION_IO_H_
