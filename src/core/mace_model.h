#ifndef MACE_CORE_MACE_MODEL_H_
#define MACE_CORE_MACE_MODEL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/dualistic_conv.h"
#include "core/mace_config.h"
#include "nn/layers.h"
#include "tensor/tensor.h"

namespace mace::core {

/// \brief Per-service fixed (non-learned) transforms: the context-aware
/// DFT/IDFT matrices and the frequency markers of the selected bases.
struct ServiceTransforms {
  /// F^T, shape [T, 2k]: MatMul(x[m, T], forward_t) -> coefficients [m, 2k].
  tensor::Tensor forward_t;
  /// G^T, shape [2k, T]: MatMul(c[m, 2k], inverse_t) -> time series [m, T].
  tensor::Tensor inverse_t;
  /// sin/cos of each coefficient column's base frequency, shape [2k].
  std::vector<double> marker_sin;
  std::vector<double> marker_cos;
};

/// \brief The learnable MACE network, shared across all services of a
/// unified model (stages 2-4 of Fig 2; stage 1 is input preprocessing).
///
/// Pipeline per window (already stage-1-amplified) x~ [m, T]:
///   coefficients  c  = x~ F^T                      (context-aware DFT)
///   representation r = c + FreqChar(c, markers)    (3-channel conv, residual)
///   branch b in {peak, valley}:
///     latent_b  = DualisticConv_b(r)               (stride = kernel)
///     c^_b      = Decoder_b(latent_b)
///     x^_b      = c^_b G^T                         (context-aware IDFT)
///     err_b     = (x^_b - x~)^2                    [m, T]
///   loss = mean(max(err_peak, err_valley))         (stage-4 max selection)
class MaceModel {
 public:
  /// \param num_features      m, feature channels per window
  /// \param num_coeff_columns 2k, coefficient columns after the DFT
  MaceModel(const MaceConfig& config, int num_features,
            int num_coeff_columns, Rng* rng);

  /// Result of one forward pass.
  struct Output {
    tensor::Tensor loss;  ///< scalar, differentiable
    /// Per-step reconstruction error (feature-mean of the branch max);
    /// filled when `want_step_errors`.
    std::vector<double> step_errors;
    /// Mean error of each branch (diagnostics).
    double mean_err_peak = 0.0;
    double mean_err_valley = 0.0;
  };

  /// Runs stages 2-4 on a stage-1-amplified window [m, T].
  Output Forward(const ServiceTransforms& service,
                 const tensor::Tensor& amplified_window,
                 bool want_step_errors);

  std::vector<tensor::Tensor> Parameters() const;
  int64_t ParameterCount() const;
  int64_t PeakActivationElements() const;

 private:
  MaceConfig config_;
  int num_features_;
  int num_coeff_columns_;

  // Frequency characterization: Conv(3 -> C, k=1) -> tanh -> Conv(C -> 1).
  std::shared_ptr<nn::Conv1dLayer> char_conv1_;
  std::shared_ptr<nn::Conv1dLayer> char_conv2_;

  // Stage-3 branches.
  std::shared_ptr<nn::Module> encoder_peak_;
  std::shared_ptr<nn::Module> encoder_valley_;
  std::shared_ptr<nn::Sequential> decoder_peak_;
  std::shared_ptr<nn::Sequential> decoder_valley_;
  int latent_elements_ = 0;  ///< hidden_channels * compressed length
};

/// Builds the fixed transforms of one service from its selected bases.
ServiceTransforms MakeServiceTransforms(int window,
                                        const std::vector<int>& bases);

}  // namespace mace::core

#endif  // MACE_CORE_MACE_MODEL_H_
