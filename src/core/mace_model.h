#ifndef MACE_CORE_MACE_MODEL_H_
#define MACE_CORE_MACE_MODEL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/dualistic_conv.h"
#include "core/mace_config.h"
#include "nn/layers.h"
#include "tensor/tensor.h"

namespace mace::core {

/// \brief Per-service fixed (non-learned) transforms: the context-aware
/// DFT/IDFT matrices and the frequency markers of the selected bases.
struct ServiceTransforms {
  /// F^T, shape [T, 2k]: MatMul(x[m, T], forward_t) -> coefficients [m, 2k].
  tensor::Tensor forward_t;
  /// G^T, shape [2k, T]: MatMul(c[m, 2k], inverse_t) -> time series [m, T].
  tensor::Tensor inverse_t;
  /// sin/cos of each coefficient column's base frequency, shape [2k].
  std::vector<double> marker_sin;
  std::vector<double> marker_cos;
};

/// \brief The learnable MACE network, shared across all services of a
/// unified model (stages 2-4 of Fig 2; stage 1 is input preprocessing).
///
/// Pipeline per window (already stage-1-amplified) x~ [m, T]:
///   coefficients  c  = x~ F^T                      (context-aware DFT)
///   representation r = c + FreqChar(c, markers)    (3-channel conv, residual)
///   branch b in {peak, valley}:
///     latent_b  = DualisticConv_b(r)               (stride = kernel)
///     c^_b      = Decoder_b(latent_b)
///     x^_b      = c^_b G^T                         (context-aware IDFT)
///     err_b     = (x^_b - x~)^2                    [m, T]
///   loss = mean(max(err_peak, err_valley))         (stage-4 max selection)
class MaceModel {
 public:
  /// \param num_features      m, feature channels per window
  /// \param num_coeff_columns 2k, coefficient columns after the DFT
  MaceModel(const MaceConfig& config, int num_features,
            int num_coeff_columns, Rng* rng);

  /// Epsilon under the sqrt of both the amplitude spectrum and the
  /// unit-phase denominator. Sharing one epsilon makes the two sqrt
  /// arguments bit-identical, so amp * unit_phase reconstructs (re, im)
  /// to within an ulp even for near-zero coefficients (dead bases).
  static constexpr double kSpectrumEpsilon = 1e-8;

  /// Result of one forward pass.
  struct Output {
    tensor::Tensor loss;  ///< scalar, differentiable
    /// Per-step reconstruction error (feature-mean of the branch max);
    /// filled when `want_step_errors`.
    std::vector<double> step_errors;
    /// Mean error of each branch (diagnostics).
    double mean_err_peak = 0.0;
    double mean_err_valley = 0.0;
  };

  /// Runs stages 2-4 on a stage-1-amplified window [m, T].
  Output Forward(const ServiceTransforms& service,
                 const tensor::Tensor& amplified_window,
                 bool want_step_errors);

  /// Result of a batched forward pass over B windows.
  struct BatchOutput {
    /// step_errors[b][t]: feature-mean branch-max error of window b at
    /// step t — bit-identical to Forward(window_b).step_errors. Filled
    /// when `want_step_errors`.
    std::vector<std::vector<double>> step_errors;
    /// Differentiable SUM of the B per-window training losses (each
    /// 0.5 * (mean err_peak + mean err_valley) over that window). A sum,
    /// not a mean, so a minibatch split into shards reduces by gradient
    /// addition and the caller rescales once by 1/batch. Filled when
    /// `want_loss`; for B = 1 it is bit-identical to Forward().loss.
    tensor::Tensor loss;
  };

  /// \brief Runs stages 2-4 on B stage-1-amplified windows [m, T] at once.
  ///
  /// The context-DFT and IDFT matmuls (stages 2 and 4) run as single
  /// [B*m, T] x [T, 2k] products over the stacked windows, and the
  /// stage-3 autoencoder runs stacked as [B, m, k] with the dualistic
  /// valley shift computed per batch entry
  /// (DualisticConvLayer::ForwardBatched). Step errors stay bit-identical
  /// to per-window Forward calls: MatMul rows, Conv1d batch entries and
  /// pointwise ops are each computed independently per window in the same
  /// arithmetic order, and the per-entry shift is the same double each
  /// window's own pass would use.
  ///
  /// In grad mode (no tensor::NoGradGuard) the stacked ops build autograd
  /// edges like Forward does, so one Backward() on `loss` replaces B
  /// per-window backward passes — the training fast path. Phases stay
  /// detached constants in both modes.
  BatchOutput ForwardBatch(
      const ServiceTransforms& service,
      const std::vector<tensor::Tensor>& amplified_windows,
      bool want_step_errors = true, bool want_loss = false);

  std::vector<tensor::Tensor> Parameters() const;
  int64_t ParameterCount() const;
  int64_t PeakActivationElements() const;

  /// \brief Overwrites this model's parameter values with `other`'s
  /// (gradient buffers and architecture are untouched; the two models
  /// must share a construction signature).
  ///
  /// This is how data-parallel worker replicas resynchronize with the
  /// master between optimizer steps: replicas are built once with a
  /// throwaway Rng, then track the master by value copy, so their forward
  /// passes are bit-identical to the master's while their gradient
  /// buffers stay thread-private.
  void CopyParametersFrom(const MaceModel& other);

 private:
  MaceConfig config_;
  int num_features_;
  int num_coeff_columns_;

  // Frequency characterization: Conv(3 -> C, k=1) -> tanh -> Conv(C -> 1).
  std::shared_ptr<nn::Conv1dLayer> char_conv1_;
  std::shared_ptr<nn::Conv1dLayer> char_conv2_;

  // Stage-3 branches.
  std::shared_ptr<nn::Module> encoder_peak_;
  std::shared_ptr<nn::Module> encoder_valley_;
  std::shared_ptr<nn::Sequential> decoder_peak_;
  std::shared_ptr<nn::Sequential> decoder_valley_;
  int latent_elements_ = 0;  ///< hidden_channels * compressed length
};

/// Builds the fixed transforms of one service from its selected bases.
ServiceTransforms MakeServiceTransforms(int window,
                                        const std::vector<int>& bases);

}  // namespace mace::core

#endif  // MACE_CORE_MACE_MODEL_H_
