#ifndef MACE_CORE_DUALISTIC_CONV_H_
#define MACE_CORE_DUALISTIC_CONV_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace mace::core {

/// Which deviation direction a dualistic convolution emphasizes.
enum class DualisticMode {
  kPeak,   ///< emphasizes upward deviations (paper: gamma >= 3)
  kValley  ///< emphasizes downward deviations (paper: gamma <= -3)
};

/// \brief Fixed-kernel dualistic convolution of a 1-D signal (Eq. 2):
///
///   DualisticConv(x) = (Conv(x^gamma / sigma, s))^(1/gamma)
///
/// with an averaging kernel alpha_i = 1/kernel. Powers are sign-preserving
/// (exact for the paper's odd gamma). Valley convolution is realized as
/// -Peak(-x), which emphasizes downward deviations symmetrically and stays
/// finite near zero (see DESIGN.md). Output length (n - kernel)/stride + 1.
std::vector<double> DualisticConvolve(const std::vector<double>& signal,
                                      int kernel, int stride, double gamma,
                                      double sigma, DualisticMode mode);

/// \brief Stage-1 anomaly amplification: stride-1 peak and valley
/// convolutions with edge-replication padding (output length == input
/// length), averaged elementwise — "amplify anomalies" in the time domain.
std::vector<double> DualisticAmplify(const std::vector<double>& signal,
                                     int kernel, double gamma, double sigma);

/// Allocation-free form of DualisticAmplify for the scoring hot loop:
/// amplifies `signal[0..n)` into `out[0..n)` using thread-local scratch.
/// Same arithmetic in the same order as DualisticAmplify (which wraps it),
/// so the two are bit-identical.
void DualisticAmplifyInto(const double* signal, size_t n, int kernel,
                          double gamma, double sigma, double* out);

/// \brief Learnable dualistic convolution layer over [N, C, L] inputs:
///
///   y = (Conv1d(sign(x)|x|^gamma / sigma, W, stride))^(1/gamma)
///
/// Replaces the vanilla convolution of the autoencoder (stage 3). With
/// stride == kernel in the frequency domain it acts as the soft max/min
/// pooling of Fig 4(a). Kernels initialize near the averaging kernel.
class DualisticConvLayer : public nn::Module {
 public:
  DualisticConvLayer(int in_channels, int out_channels, int kernel,
                     int stride, double gamma, double sigma,
                     DualisticMode mode, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;

  /// Forward over `[B, C, L]` where each batch entry must see exactly the
  /// values its own `Forward([1, C, L])` pass would produce. Elementwise
  /// ops and Conv1d treat batch entries independently, so only the valley
  /// mode differs from Forward: its shift is computed per entry (not over
  /// the stacked tensor) and applied via `shift - x`, which is
  /// bit-identical to Forward's `(-x) + shift`.
  tensor::Tensor ForwardBatched(const tensor::Tensor& input);

  std::vector<tensor::Tensor> Parameters() const override;
  std::string name() const override { return "DualisticConv"; }

  double gamma() const { return gamma_; }
  DualisticMode mode() const { return mode_; }

 private:
  int kernel_;
  int stride_;
  double gamma_;
  double sigma_;
  DualisticMode mode_;
  tensor::Tensor weight_;  // [out, in, kernel]
};

}  // namespace mace::core

#endif  // MACE_CORE_DUALISTIC_CONV_H_
