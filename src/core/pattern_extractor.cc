#include "core/pattern_extractor.h"

#include <algorithm>

#include "fft/fft.h"
#include "fft/spectrum.h"
#include "obs/metrics.h"

namespace mace::core {

Result<PatternSubspace> ExtractPattern(
    const ts::TimeSeries& train, const PatternExtractorOptions& options) {
  if (options.window < 2 || options.stride < 1 || options.num_bases < 1) {
    return Status::InvalidArgument("invalid pattern extractor options");
  }
  if (train.length() < static_cast<size_t>(options.window)) {
    return Status::InvalidArgument("training series shorter than window");
  }
  const int strongest = options.strongest_per_window > 0
                            ? options.strongest_per_window
                            : options.num_bases;

  // incidence[j] counts how often base j is among the `strongest` largest
  // amplitudes of a (window, feature) spectrum.
  std::vector<int64_t> incidence(
      static_cast<size_t>(options.window / 2 + 1), 0);
  // Tie-break by accumulated amplitude so deterministic inputs produce
  // deterministic subspaces.
  std::vector<double> energy(incidence.size(), 0.0);

  const int m = train.num_features();
  std::vector<double> window_values(static_cast<size_t>(options.window));
  for (size_t start = 0;
       start + static_cast<size_t>(options.window) <= train.length();
       start += static_cast<size_t>(options.stride)) {
    for (int f = 0; f < m; ++f) {
      for (int t = 0; t < options.window; ++t) {
        window_values[static_cast<size_t>(t)] =
            train.value(start + static_cast<size_t>(t), f);
      }
      const std::vector<double> amps =
          fft::AmplitudeSpectrum(window_values);
      const std::vector<int> top =
          fft::TopKIndices(amps, strongest, options.skip_dc);
      for (int idx : top) {
        ++incidence[static_cast<size_t>(idx)];
        energy[static_cast<size_t>(idx)] += amps[static_cast<size_t>(idx)];
      }
    }
  }

  std::vector<int> order;
  for (size_t j = options.skip_dc ? 1 : 0; j < incidence.size(); ++j) {
    order.push_back(static_cast<int>(j));
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const size_t ia = static_cast<size_t>(a);
    const size_t ib = static_cast<size_t>(b);
    if (incidence[ia] != incidence[ib]) return incidence[ia] > incidence[ib];
    return energy[ia] > energy[ib];
  });
  if (static_cast<int>(order.size()) > options.num_bases) {
    order.resize(static_cast<size_t>(options.num_bases));
  }

  PatternSubspace subspace;
  subspace.bases = order;
  subspace.incidence.reserve(order.size());
  for (int j : order) {
    subspace.incidence.push_back(incidence[static_cast<size_t>(j)]);
  }

  // Observability: how many bases the subspace kept and what fraction of
  // the strongest-signal amplitude mass they retain — low retention means
  // num_bases is starving the reconstruction.
  double total_energy = 0.0;
  double retained_energy = 0.0;
  for (size_t j = options.skip_dc ? 1 : 0; j < energy.size(); ++j) {
    total_energy += energy[j];
  }
  for (int j : subspace.bases) {
    retained_energy += energy[static_cast<size_t>(j)];
  }
  obs::MetricsRegistry& metrics = obs::Metrics();
  metrics.GetCounter("mace_pattern_extractions_total",
                     "Subspace extractions performed")
      ->Increment();
  metrics.GetGauge("mace_pattern_bases_selected",
                   "Bases kept by the last subspace extraction")
      ->Set(static_cast<double>(subspace.bases.size()));
  if (total_energy > 0) {
    metrics
        .GetHistogram("mace_pattern_energy_retained_ratio",
                      "Share of strongest-signal amplitude mass retained "
                      "by the selected bases, per extraction",
                      {}, obs::RatioBuckets())
        ->Observe(retained_energy / total_energy);
  }
  return subspace;
}

}  // namespace mace::core
