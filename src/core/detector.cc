#include "core/detector.h"

namespace mace::core {

std::vector<double> ScoreAccumulator::Finalize() const {
  std::vector<double> scores(sums_.size(), 0.0);
  double covered_sum = 0.0;
  double covered_count = 0.0;
  for (size_t t = 0; t < sums_.size(); ++t) {
    if (counts_[t] > 0.0) {
      scores[t] = reduction_ == ScoreReduction::kMin ? mins_[t]
                                                     : sums_[t] / counts_[t];
      covered_sum += scores[t];
      covered_count += 1.0;
    }
  }
  const double fallback =
      covered_count > 0.0 ? covered_sum / covered_count : 0.0;
  for (size_t t = 0; t < sums_.size(); ++t) {
    if (counts_[t] == 0.0) scores[t] = fallback;
  }
  return scores;
}

}  // namespace mace::core
