#ifndef MACE_CORE_MACE_CONFIG_H_
#define MACE_CORE_MACE_CONFIG_H_

#include <cstdint>

#include "ts/sanitize.h"

namespace mace::core {

/// \brief Hyperparameters of MACE (Table IV of the paper plus the ablation
/// switches of Table IX).
struct MaceConfig {
  // -- Windowing ---------------------------------------------------------
  int window = 40;        ///< sliding-window length T (paper: 40)
  int train_stride = 8;   ///< stride between training windows
  int score_stride = 5;   ///< stride between scoring windows

  // -- Pattern extraction (Section IV-C) ----------------------------------
  /// Subspace size m: number of Fourier bases kept per service. The paper
  /// uses 20 with window 40; with a one-sided spectrum (21 bins) that is
  /// nearly the full spectrum, so this reproduction defaults to 12 and
  /// sweeps 2..20 in the Fig 6(f) bench.
  int num_bases = 18;
  /// Strongest signals counted per window (paper's k; 0 = num_bases).
  int strongest_per_window = 0;

  // -- Dualistic convolution (Section IV-B) --------------------------------
  double gamma_t = 3.0;  ///< time-domain power (paper: 11-13)
  double sigma_t = 5.0;  ///< time-domain scaling
  double gamma_f = 7.0;  ///< frequency-domain power (paper: 7-13)
  double sigma_f = 5.0;  ///< frequency-domain scaling
  int time_kernel = 3;   ///< stage-1 kernel length (paper: 5)
  int freq_kernel = 4;   ///< stage-3 kernel; stride equals kernel

  // -- Model / training ----------------------------------------------------
  int hidden_channels = 8;       ///< encoder output channels
  int characterization_channels = 4;  ///< width of the 3-channel conv
  int epochs = 8;
  double learning_rate = 1e-3;   ///< paper: 0.001
  double grad_clip = 5.0;
  uint64_t seed = 42;
  /// Windows per training minibatch: one Adam step per minibatch on the
  /// mean of the windows' losses. 1 = the per-window SGD loop of earlier
  /// versions, bit for bit. Larger batches change the gradient-noise
  /// schedule like in any minibatch trainer, but stay deterministic for a
  /// fixed seed: windows split into fixed-size shards (a pure function of
  /// the minibatch, never of fit_threads) whose gradients merge through a
  /// fixed-pairing tree reduction.
  int batch_size = 1;
  /// Worker threads for Fit: minibatch gradient shards and per-service
  /// preprocessing fan out across one pool; 1 = sequential. Any value
  /// reproduces fit_threads=1 epoch losses and weights bit for bit under
  /// the same seed (see DESIGN.md "Parallel training").
  int fit_threads = 1;
  /// Worker threads for scoring. Frequency-domain windows carry no
  /// temporal dependency (the paper's S2), so inference parallelizes
  /// per window; 1 = sequential.
  int score_threads = 1;
  /// Windows stacked per scoring forward (the batched DFT/IDFT fast
  /// path); 1 = per-window forwards. Scores are bit-identical either way.
  int score_batch = 8;
  /// Score under tensor::NoGradGuard: same values, no autograd graph.
  bool score_no_grad = true;
  /// What Fit/Score/streaming do with non-finite (NaN/Inf) input values
  /// (ts/sanitize.h). A runtime knob, not part of the model: it is NOT
  /// serialized (the MACEv1 format is unchanged) and Load leaves it at
  /// the default — set it again after Load if a lossy policy is wanted.
  /// Fit treats kPropagate as kReject: training cannot skip windows
  /// without changing the minibatch schedule, so contaminated training
  /// data must be rejected or imputed, never silently propagated.
  ts::NonFinitePolicy non_finite_policy = ts::NonFinitePolicy::kReject;
  /// Anomaly-history defaults for scorers that attach a HistoryStore
  /// (streaming sessions, the serve frontend, the CLI's --history-out).
  /// Runtime knobs like non_finite_policy: NOT serialized, Load leaves
  /// them at the defaults. `anomaly_threshold` sets a record's anomaly
  /// bit when its score strictly exceeds it (overridable per tenant);
  /// `history_capacity` is the per-tenant ring size in records.
  double anomaly_threshold = 3.0;
  int history_capacity = 1024;

  // -- Ablation switches (Table IX) -----------------------------------------
  /// false: replace context-aware DFT/IDFT with the vanilla full spectrum.
  bool use_context_aware_dft = true;
  /// false: standard convolution in the autoencoder (gamma_f -> 1).
  bool use_dualistic_freq = true;
  /// false: skip stage-1 time-domain amplification.
  bool use_dualistic_time = true;
  /// false: skip the frequency characterization module.
  bool use_freq_characterization = true;
  /// false: remove the whole pattern extraction mechanism (vanilla DFT and
  /// no frequency characterization).
  bool use_pattern_extraction = true;
};

}  // namespace mace::core

#endif  // MACE_CORE_MACE_CONFIG_H_
