#ifndef MACE_CORE_FUSED_PLAN_BUILDER_H_
#define MACE_CORE_FUSED_PLAN_BUILDER_H_

#include "core/mace_config.h"
#include "core/mace_model.h"
#include "kernel/fused_plan.h"

namespace mace::core {

/// \brief Packs a fitted model's learned weights (via Parameters(), whose
/// order is the serialization contract) and config-derived dimensions into
/// a finalized kernel::FusedModelPlan. Called at model-commit time (Fit,
/// Load) — never on the scoring hot path.
kernel::FusedModelPlan BuildFusedModelPlan(const MaceConfig& config,
                                           int num_features,
                                           int num_coeff_columns,
                                           const MaceModel& model);

/// Packs one service's fixed transforms into a finalized
/// kernel::FusedServicePlan (the DFT/IDFT panels are already row-major —
/// the copies here only re-pad).
kernel::FusedServicePlan BuildFusedServicePlan(
    const kernel::FusedModelPlan& model_plan,
    const ServiceTransforms& transforms);

}  // namespace mace::core

#endif  // MACE_CORE_FUSED_PLAN_BUILDER_H_
