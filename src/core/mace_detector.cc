#include "core/mace_detector.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/fused_plan_builder.h"
#include "kernel/fused_kernel.h"
#include "nn/grad_reduce.h"
#include "obs/trace.h"

namespace mace::core {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Stage-1 latency shares the family of the model's inner stages so one
/// histogram family covers the whole 4-stage pipeline.
obs::Histogram* Stage1Histogram() {
  static obs::Histogram* histogram = obs::Metrics().GetHistogram(
      "mace_stage_latency_seconds",
      "Wall-clock latency of one pipeline stage over one window",
      {{"stage", "dualistic_time"}});
  return histogram;
}

obs::Counter* WindowsScoredCounter(const std::string& service_label) {
  return obs::Metrics().GetCounter(
      "mace_windows_scored_total", "Windows scored, by service",
      {{"service", service_label}});
}

/// Registry lookups take a mutex; ScoreWindow runs once per streaming
/// stride, so its counter is memoized per thread (instrument pointers are
/// process-stable, and indices are small and dense).
obs::Counter* CachedWindowsScoredCounter(int service_index) {
  thread_local std::vector<obs::Counter*> cache;
  const auto slot = static_cast<size_t>(service_index);
  if (slot >= cache.size()) cache.resize(slot + 1, nullptr);
  if (cache[slot] == nullptr) {
    cache[slot] = WindowsScoredCounter(std::to_string(service_index));
  }
  return cache[slot];
}

/// Windows per gradient shard. A minibatch splits into ceil(B / 32)
/// contiguous shards — a pure function of the minibatch, NEVER of
/// fit_threads — so the shard boundaries, each shard's single-threaded
/// arithmetic, and the fixed-pairing tree reduction over shard slots are
/// identical for every thread count: fit_threads=N reproduces
/// fit_threads=1 bit for bit. 32 balances stacked-forward efficiency
/// (bigger shards amortize graph and optimizer overhead, see
/// bench_fit_parallel) against scheduling granularity (a minibatch must
/// yield at least `fit_threads` shards to occupy every worker).
constexpr size_t kFitShardWindows = 32;

/// A series readied for scoring under a non-finite policy: the values the
/// model sees (always fully finite) plus, under kPropagate, the per-step
/// contamination mask the scores are NaN-masked with afterwards.
struct SanitizedSeries {
  ts::TimeSeries series;
  std::vector<uint8_t> contaminated;  // empty when clean or not propagating
};

Result<SanitizedSeries> SanitizeForScoring(const ts::TimeSeries& series,
                                           ts::NonFinitePolicy policy,
                                           const std::string& what) {
  SanitizedSeries out{series, {}};
  const ts::NonFiniteValue bad = ts::FindNonFinite(series);
  if (!bad.found) return out;
  switch (policy) {
    case ts::NonFinitePolicy::kReject:
      return Status::InvalidArgument(
          what + " holds non-finite value " + ts::DescribeNonFinite(bad) +
          " (non-finite policy 'reject')");
    case ts::NonFinitePolicy::kImpute: {
      Result<ts::TimeSeries> imputed =
          ts::SanitizeSeries(series, ts::NonFinitePolicy::kImpute);
      if (!imputed.ok()) {
        return Status::InvalidArgument(what + ": " +
                                       imputed.status().message());
      }
      out.series = std::move(imputed).value();
      return out;
    }
    case ts::NonFinitePolicy::kPropagate: {
      ts::SanitizeStats stats;
      Result<ts::TimeSeries> tagged =
          ts::SanitizeSeries(series, ts::NonFinitePolicy::kPropagate, &stats,
                             &out.contaminated);
      if (!tagged.ok()) return tagged.status();
      // The model itself must never see NaN (a single one poisons whole
      // DFT columns): score an imputed copy and NaN-mask the steps of
      // contaminated windows afterwards — bit-identical to skipping those
      // windows, since the mask discards whatever they computed.
      Result<ts::TimeSeries> imputed =
          ts::SanitizeSeries(series, ts::NonFinitePolicy::kImpute);
      if (imputed.ok()) {
        out.series = std::move(imputed).value();
      } else {
        // A feature with no finite values leaves nothing to impute from;
        // then every step is contaminated and every score masks to NaN, so
        // the placeholder values are unobservable — zero-fill just keeps
        // the arithmetic finite.
        std::vector<std::vector<double>> values = series.values();
        for (std::vector<double>& row : values) {
          for (double& v : row) {
            if (!std::isfinite(v)) v = 0.0;
          }
        }
        out.series = ts::TimeSeries(std::move(values), series.labels());
      }
      return out;
    }
  }
  return Status::Internal("unreachable non-finite policy");
}

/// kPropagate post-mask: a step's score becomes NaN iff any scheduled
/// window covering it holds a contaminated step (the sticky-NaN rule the
/// streaming scorer implements by skipping contaminated windows).
void MaskPropagatedScores(const std::vector<size_t>& starts, size_t window,
                          const std::vector<uint8_t>& contaminated,
                          std::vector<double>* scores) {
  std::vector<size_t> prefix(contaminated.size() + 1, 0);
  for (size_t i = 0; i < contaminated.size(); ++i) {
    prefix[i + 1] = prefix[i] + (contaminated[i] != 0 ? 1 : 0);
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const size_t start : starts) {
    if (prefix[start + window] - prefix[start] == 0) continue;
    for (size_t t = start; t < start + window; ++t) (*scores)[t] = nan;
  }
}

}  // namespace

MaceDetector::MaceDetector(MaceConfig config) : config_(config) {
  const Status valid = ValidateConfig(config_);
  MACE_CHECK(valid.ok()) << valid.message();
}

Status MaceDetector::ValidateConfig(const MaceConfig& config) {
  // The upper bounds below are untrusted-input armor, not tuning advice:
  // Load() feeds file-supplied configs through this validator, and the
  // caps keep a corrupt field from driving transform matrices ([2k, T] ~
  // window^2 doubles per service) or model tensors into multi-gigabyte
  // allocations before any later consistency check can fire.
  if (config.window < 4 || config.window > 1024) {
    return Status::InvalidArgument("window must be in [4, 1024], got " +
                                   std::to_string(config.window));
  }
  if (config.num_bases < 1 || config.num_bases > config.window / 2) {
    return Status::InvalidArgument(
        "num_bases must be in [1, window/2] = [1, " +
        std::to_string(config.window / 2) + "], got " +
        std::to_string(config.num_bases));
  }
  if (config.train_stride < 1) {
    return Status::InvalidArgument(
        "train_stride must be >= 1 (a zero stride never advances the "
        "training window), got " + std::to_string(config.train_stride));
  }
  if (config.score_stride < 1) {
    return Status::InvalidArgument(
        "score_stride must be >= 1 (a zero stride never advances the "
        "scoring window), got " + std::to_string(config.score_stride));
  }
  if (config.score_stride > config.window) {
    return Status::InvalidArgument(
        "score_stride must be <= window so consecutive scoring windows "
        "leave no step uncovered, got stride " +
        std::to_string(config.score_stride) + " with window " +
        std::to_string(config.window));
  }
  if (config.time_kernel < 1 || config.time_kernel % 2 == 0) {
    return Status::InvalidArgument(
        "time_kernel must be odd and >= 1 (stage-1 amplification centers "
        "the kernel on each step), got " +
        std::to_string(config.time_kernel));
  }
  if (config.time_kernel > 2 * config.window + 1) {
    return Status::InvalidArgument(
        "time_kernel must be <= 2*window+1 (a longer kernel already "
        "covers the whole window from every center), got " +
        std::to_string(config.time_kernel) + " with window " +
        std::to_string(config.window));
  }
  if (config.freq_kernel < 1 || config.freq_kernel > config.window) {
    return Status::InvalidArgument(
        "freq_kernel must be in [1, window] (the spectrum holds at most "
        "window coefficient columns), got " +
        std::to_string(config.freq_kernel));
  }
  if (config.hidden_channels < 1 || config.hidden_channels > 4096) {
    return Status::InvalidArgument(
        "hidden_channels must be in [1, 4096], got " +
        std::to_string(config.hidden_channels));
  }
  if (config.characterization_channels < 1 ||
      config.characterization_channels > 4096) {
    return Status::InvalidArgument(
        "characterization_channels must be in [1, 4096], got " +
        std::to_string(config.characterization_channels));
  }
  if (config.epochs < 1 || config.epochs > 1000000) {
    return Status::InvalidArgument(
        "epochs must be in [1, 1000000], got " +
        std::to_string(config.epochs));
  }
  if (!std::isfinite(config.learning_rate) || config.learning_rate <= 0.0) {
    return Status::InvalidArgument(
        "learning_rate must be finite and > 0, got " +
        std::to_string(config.learning_rate));
  }
  if (!std::isfinite(config.grad_clip) || config.grad_clip < 0.0) {
    return Status::InvalidArgument(
        "grad_clip must be finite and >= 0 (0 disables clipping), got " +
        std::to_string(config.grad_clip));
  }
  for (const auto& [name, value] :
       {std::pair<const char*, double>{"gamma_t", config.gamma_t},
        {"sigma_t", config.sigma_t},
        {"gamma_f", config.gamma_f},
        {"sigma_f", config.sigma_f}}) {
    if (!std::isfinite(value) || value <= 0.0) {
      return Status::InvalidArgument(
          std::string(name) + " must be finite and > 0, got " +
          std::to_string(value));
    }
  }
  if (config.score_threads < 1) {
    return Status::InvalidArgument("score_threads must be >= 1, got " +
                                   std::to_string(config.score_threads));
  }
  if (config.score_batch < 1) {
    return Status::InvalidArgument("score_batch must be >= 1, got " +
                                   std::to_string(config.score_batch));
  }
  if (config.fit_threads < 1) {
    return Status::InvalidArgument(
        "fit_threads must be >= 1 (the training pool includes the calling "
        "thread), got " + std::to_string(config.fit_threads));
  }
  if (!std::isfinite(config.anomaly_threshold) ||
      config.anomaly_threshold < 0.0) {
    return Status::InvalidArgument(
        "anomaly_threshold must be finite and >= 0 (scores are "
        "non-negative reconstruction errors), got " +
        std::to_string(config.anomaly_threshold));
  }
  if (config.history_capacity < 1 ||
      config.history_capacity > (1 << 24)) {
    return Status::InvalidArgument(
        "history_capacity must be in [1, 16777216] records per tenant, "
        "got " + std::to_string(config.history_capacity));
  }
  if (config.batch_size < 1) {
    return Status::InvalidArgument(
        "batch_size must be >= 1 (windows per training minibatch; 1 is the "
        "per-window SGD loop), got " + std::to_string(config.batch_size));
  }
  return Status::OK();
}

Result<std::vector<int>> MaceDetector::SelectBases(
    const ts::TimeSeries& scaled_train) const {
  const bool context_aware =
      config_.use_context_aware_dft && config_.use_pattern_extraction;
  if (!context_aware) {
    // Vanilla DFT ablation: the full one-sided spectrum (DC excluded, as
    // z-scored windows carry no level information in training data).
    std::vector<int> bases;
    for (int j = 1; j <= config_.window / 2; ++j) bases.push_back(j);
    return bases;
  }
  PatternExtractorOptions options;
  options.window = config_.window;
  options.stride = config_.train_stride;
  options.num_bases = config_.num_bases;
  options.strongest_per_window = config_.strongest_per_window;
  MACE_ASSIGN_OR_RETURN(PatternSubspace subspace,
                        ExtractPattern(scaled_train, options));
  // Keep base order deterministic for the shared network: sort ascending
  // so column b always means "b-th lowest selected frequency".
  std::sort(subspace.bases.begin(), subspace.bases.end());
  return subspace.bases;
}

Tensor MaceDetector::AmplifyWindow(const Tensor& window) const {
  if (!config_.use_dualistic_time) return window;
  obs::StageTimer stage_timer;
  const auto m = static_cast<size_t>(window.dim(0));
  const auto t_len = static_cast<size_t>(window.dim(1));
  std::vector<double> out = tensor::AcquireScratchBuffer(m * t_len);
  const std::vector<double>& data = window.data();
  // Rows of [m, T] are contiguous, so each feature amplifies straight from
  // the window into the output with no per-feature copies or allocations.
  for (size_t f = 0; f < m; ++f) {
    DualisticAmplifyInto(data.data() + f * t_len, t_len, config_.time_kernel,
                         config_.gamma_t, config_.sigma_t,
                         out.data() + f * t_len);
  }
  stage_timer.Mark(Stage1Histogram());
  return Tensor::FromVector(std::move(out),
                            Shape{window.dim(0), window.dim(1)});
}

ts::TimeSeries MaceDetector::AmplifySeries(const ts::TimeSeries& series) const {
  if (!config_.use_dualistic_time) return series;
  const int m = series.num_features();
  std::vector<std::vector<double>> values(series.length(),
                                          std::vector<double>(m));
  for (int f = 0; f < m; ++f) {
    const std::vector<double> amplified = DualisticAmplify(
        series.Feature(f), config_.time_kernel, config_.gamma_t,
        config_.sigma_t);
    for (size_t t = 0; t < series.length(); ++t) {
      values[t][static_cast<size_t>(f)] = amplified[t];
    }
  }
  return ts::TimeSeries(std::move(values), series.labels());
}

Status MaceDetector::Fit(const std::vector<ts::ServiceData>& services) {
  // One private pool drives both phases: per-service preprocessing fans
  // out over services, training fans out over gradient shards.
  WorkerPool pool(config_.fit_threads);
  return Fit(services, &pool, WorkerPool::TaskPriority::kNormal);
}

Status MaceDetector::Fit(const std::vector<ts::ServiceData>& services,
                         WorkerPool* pool,
                         WorkerPool::TaskPriority priority) {
  MACE_CHECK(pool != nullptr);
  obs::MetricsRegistry& metrics = obs::Metrics();
  obs::ScopedSpan fit_span(
      "MaceDetector::Fit",
      metrics.GetHistogram("mace_fit_seconds",
                           "Wall-clock duration of one Fit call"));
  metrics.GetCounter("mace_fit_total", "Fit calls")->Increment();
  if (services.empty()) {
    return Status::InvalidArgument("Fit requires at least one service");
  }
  const int num_features = services.front().train.num_features();
  for (const ts::ServiceData& s : services) {
    if (s.train.num_features() != num_features) {
      return Status::InvalidArgument(
          "all services must share the feature count");
    }
    if (s.train.length() < static_cast<size_t>(config_.window)) {
      return Status::InvalidArgument("service '" + s.name +
                                     "' train split shorter than window");
    }
  }

  // Non-finite gate: one NaN in a train split would poison the scaler
  // moments, the subspace spectra and every Adam moment with no error
  // anywhere, so contamination is resolved here — before any state
  // mutation, preserving the commit-at-end guarantee below. kPropagate
  // degrades to kReject for training (see MaceConfig::non_finite_policy).
  std::vector<ts::ServiceData> sanitized_storage;
  const std::vector<ts::ServiceData>* input = &services;
  for (size_t si = 0; si < services.size(); ++si) {
    const ts::NonFiniteValue bad = ts::FindNonFinite(services[si].train);
    if (!bad.found) continue;
    if (config_.non_finite_policy == ts::NonFinitePolicy::kImpute) {
      if (sanitized_storage.empty()) sanitized_storage = services;
      Result<ts::TimeSeries> imputed = ts::SanitizeSeries(
          services[si].train, ts::NonFinitePolicy::kImpute);
      if (!imputed.ok()) {
        return Status::InvalidArgument("service '" + services[si].name +
                                       "': " + imputed.status().message());
      }
      sanitized_storage[si].train = std::move(imputed).value();
      input = &sanitized_storage;
      continue;
    }
    const bool propagate =
        config_.non_finite_policy == ts::NonFinitePolicy::kPropagate;
    return Status::InvalidArgument(
        "service '" + services[si].name +
        "' train split holds non-finite value " + ts::DescribeNonFinite(bad) +
        (propagate
             ? " (non-finite policy 'propagate' degrades to 'reject' for "
               "training: sanitize upstream or use 'impute')"
             : " (non-finite policy 'reject')"));
  }

  // All fitted state builds in locals and commits to members only at the
  // end, so any error return leaves the detector exactly as it was —
  // previously fitted detectors keep scoring, unfitted ones stay unfitted.
  std::vector<double> epoch_losses;

  metrics.GetGauge("mace_fit_pool_threads",
                   "Worker threads of the training pool (fit_threads)")
      ->Set(pool->threads());

  // Preprocessing: per-service scaling, subspace extraction, transforms,
  // and stage-1-amplified training windows. Services are independent —
  // each task writes only its own index — and errors land in per-service
  // status slots replayed in service order below, so the surfaced error
  // does not depend on scheduling.
  const size_t num_services = services.size();
  std::vector<ts::StandardScaler> scalers(num_services);
  std::vector<PatternSubspace> subspaces(num_services);
  std::vector<ServiceTransforms> transforms(num_services);
  std::vector<std::vector<Tensor>> amplified(num_services);  // [svc][win]
  std::vector<Status> service_status(num_services, Status::OK());
  std::vector<int> columns(num_services, -1);
  pool->ParallelFor(num_services, priority, [&](size_t si, int /*worker*/) {
    const ts::ServiceData& service = (*input)[si];
    obs::ScopedSpan subspace_span(
        "MaceDetector::SubspaceExtraction",
        metrics.GetHistogram(
            "mace_subspace_extraction_seconds",
            "Per-service preprocessing: scaling, Fourier subspace "
            "selection and training-window amplification",
            {{"service", std::to_string(si)}}));
    ts::StandardScaler scaler;
    scaler.Fit(service.train);
    const ts::TimeSeries scaled = scaler.Transform(service.train);
    // Bases are selected on the stage-1-amplified signal — the signal the
    // autoencoder actually reconstructs.
    Result<std::vector<int>> bases = SelectBases(AmplifySeries(scaled));
    if (!bases.ok()) {
      service_status[si] = bases.status();
      return;
    }
    columns[si] = 2 * static_cast<int>(bases->size());
    transforms[si] = MakeServiceTransforms(config_.window, *bases);
    subspaces[si].bases = std::move(*bases);
    scalers[si] = std::move(scaler);

    Result<ts::WindowBatch> batch =
        ts::MakeWindows(scaled, config_.window, config_.train_stride);
    if (!batch.ok()) {
      service_status[si] = batch.status();
      return;
    }
    std::vector<Tensor> windows;
    windows.reserve(batch->windows.size());
    for (const Tensor& w : batch->windows) {
      windows.push_back(AmplifyWindow(w));
    }
    amplified[si] = std::move(windows);
  });
  int coeff_columns = -1;
  for (size_t si = 0; si < num_services; ++si) {
    if (!service_status[si].ok()) return service_status[si];
    if (coeff_columns < 0) coeff_columns = columns[si];
    if (columns[si] != coeff_columns) {
      return Status::Internal("inconsistent subspace sizes across services");
    }
  }
  if (coeff_columns / 2 < config_.freq_kernel) {
    // The autoencoder convolves the k amplitude columns (half the
    // coefficient columns) and Conv1d CHECK-aborts when its input is
    // shorter than the kernel, so surface the config/subspace mismatch
    // as a Status here.
    return Status::InvalidArgument(
        "freq_kernel " + std::to_string(config_.freq_kernel) +
        " exceeds the " + std::to_string(coeff_columns / 2) +
        " amplitude columns of the extracted subspace (lower freq_kernel "
        "or raise num_bases)");
  }

  Rng rng(config_.seed);
  auto model = std::make_unique<MaceModel>(config_, num_features,
                                           coeff_columns, &rng);
  nn::Adam optimizer(model->Parameters(), config_.learning_rate);
  std::vector<Tensor> master_params = model->Parameters();

  // Unified training across all services' windows.
  std::vector<std::pair<size_t, size_t>> order;
  for (size_t s = 0; s < amplified.size(); ++s) {
    for (size_t w = 0; w < amplified[s].size(); ++w) order.emplace_back(s, w);
  }
  if (order.empty()) {
    return Status::InvalidArgument("no training windows");
  }

  // Data-parallel minibatch loop (DESIGN.md "Parallel training"). Each
  // minibatch splits into fixed kFitShardWindows-window shards; a shard
  // runs one grad-mode ForwardBatch + Backward on its worker's private
  // replica, captures the gradients into the shard's slot, and the slots
  // tree-reduce in fixed pairing order before one Adam step on the
  // master. batch_size=1 therefore degenerates to exactly the historical
  // per-window SGD loop (same per-step graph, loss and update, bit for
  // bit), and any fit_threads value reproduces the same epoch losses.
  const size_t batch_size =
      std::min<size_t>(static_cast<size_t>(config_.batch_size), order.size());
  const size_t max_shards =
      (batch_size + kFitShardWindows - 1) / kFitShardWindows;
  const bool sequential = pool->threads() == 1;
  // Replicas are per worker thread, not per shard: Backward() accumulates
  // into replica grad buffers, which must be thread-private. A one-thread
  // pool trains straight on the master model — no replicas, no value
  // syncs — and still routes gradients through the same capture/reduce
  // path, so its arithmetic matches the threaded runs exactly.
  std::vector<std::unique_ptr<MaceModel>> replicas;
  std::vector<std::vector<Tensor>> replica_params;
  std::vector<uint64_t> replica_version;
  uint64_t master_version = 1;
  if (!sequential) {
    Rng replica_rng(config_.seed);  // throwaway: values resync from master
    replicas.resize(static_cast<size_t>(pool->threads()));
    replica_params.resize(replicas.size());
    replica_version.assign(replicas.size(), 0);
    for (size_t t = 0; t < replicas.size(); ++t) {
      replicas[t] = std::make_unique<MaceModel>(config_, num_features,
                                                coeff_columns, &replica_rng);
      replica_params[t] = replicas[t]->Parameters();
    }
  }
  std::vector<nn::GradSlot> shard_slots(max_shards,
                                        nn::MakeGradSlot(master_params));
  std::vector<double> shard_losses(max_shards, 0.0);
  std::vector<double> worker_busy(static_cast<size_t>(pool->threads()), 0.0);

  obs::Histogram* epoch_seconds = metrics.GetHistogram(
      "mace_fit_epoch_seconds", "Wall-clock duration of one training epoch");
  obs::Gauge* last_loss = metrics.GetGauge(
      "mace_fit_last_loss", "Mean training loss of the last epoch");
  obs::Counter* train_windows = metrics.GetCounter(
      "mace_train_windows_total", "Training windows processed");
  obs::Counter* minibatches = metrics.GetCounter(
      "mace_fit_minibatches_total",
      "Training minibatches processed (one Adam step each)");
  obs::Histogram* shard_seconds = metrics.GetHistogram(
      "mace_fit_shard_seconds",
      "Forward+backward wall time of one gradient shard");
  obs::Histogram* reduce_seconds = metrics.GetHistogram(
      "mace_fit_reduce_seconds",
      "Tree reduction, gradient load, clip and Adam step wall time of one "
      "minibatch");
  obs::Histogram* sync_seconds = metrics.GetHistogram(
      "mace_fit_sync_seconds",
      "Replica parameter resynchronization wall time (per replica sync)");
  obs::Histogram* fit_busy = metrics.GetHistogram(
      "mace_fit_worker_busy_seconds",
      "Busy time of one training worker across one epoch");
  obs::Histogram* fit_utilization = metrics.GetHistogram(
      "mace_fit_worker_utilization_ratio",
      "Worker busy time over epoch wall time, per worker per epoch", {},
      obs::RatioBuckets());

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("MaceDetector::FitEpoch", epoch_seconds);
    const auto epoch_begin = std::chrono::steady_clock::now();
    std::fill(worker_busy.begin(), worker_busy.end(), 0.0);
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t begin = 0; begin < order.size(); begin += batch_size) {
      const size_t minibatch = std::min(batch_size, order.size() - begin);
      const size_t shards =
          (minibatch + kFitShardWindows - 1) / kFitShardWindows;
      pool->ParallelFor(shards, priority, [&](size_t shard, int worker) {
        const auto task_begin = std::chrono::steady_clock::now();
        MaceModel* shard_model = model.get();
        std::vector<Tensor>* params = &master_params;
        if (!sequential) {
          shard_model = replicas[static_cast<size_t>(worker)].get();
          params = &replica_params[static_cast<size_t>(worker)];
          if (replica_version[static_cast<size_t>(worker)] !=
              master_version) {
            obs::StageTimer sync_timer;
            shard_model->CopyParametersFrom(*model);
            replica_version[static_cast<size_t>(worker)] = master_version;
            sync_timer.Mark(sync_seconds);
          }
        }
        for (Tensor& p : *params) p.ZeroGrad();
        const size_t shard_begin = begin + shard * kFitShardWindows;
        const size_t shard_end =
            std::min(begin + minibatch, shard_begin + kFitShardWindows);
        // A shuffled shard can mix services; ForwardBatch stacks windows
        // sharing one transform, so group by ascending service index with
        // windows in shard order — a pure function of the shard content,
        // keeping the backward accumulation order fixed.
        double shard_loss = 0.0;
        std::vector<Tensor> group;
        for (size_t si = 0; si < num_services; ++si) {
          group.clear();
          for (size_t i = shard_begin; i < shard_end; ++i) {
            if (order[i].first == si) {
              group.push_back(amplified[si][order[i].second]);
            }
          }
          if (group.empty()) continue;
          MaceModel::BatchOutput out =
              shard_model->ForwardBatch(transforms[si], group,
                                        /*want_step_errors=*/false,
                                        /*want_loss=*/true);
          shard_loss += out.loss.item();
          out.loss.Backward();
        }
        nn::CaptureGradients(*params, &shard_slots[shard]);
        shard_losses[shard] = shard_loss;
        const double busy =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - task_begin)
                .count();
        shard_seconds->Observe(busy);
        worker_busy[static_cast<size_t>(worker)] += busy;
      });
      {
        obs::StageTimer reduce_timer;
        nn::TreeReduceGradSlots(&shard_slots, shards);
        // Summed shard losses become the minibatch mean here, in one
        // place: gradients scale by 1/minibatch before clip + step.
        optimizer.LoadGradients(shard_slots[0],
                                1.0 / static_cast<double>(minibatch));
        optimizer.ClipGradNorm(config_.grad_clip);
        optimizer.Step();
        ++master_version;
        reduce_timer.Mark(reduce_seconds);
      }
      // Shard losses sum in ascending shard order — with batch_size=1
      // this replays the historical one-loss-per-window accumulation.
      for (size_t shard = 0; shard < shards; ++shard) {
        epoch_loss += shard_losses[shard];
      }
      minibatches->Increment();
    }
    epoch_losses.push_back(epoch_loss / static_cast<double>(order.size()));
    train_windows->Increment(order.size());
    last_loss->Set(epoch_losses.back());
    obs::RecordPoolUtilization(
        fit_busy, fit_utilization, worker_busy,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_begin)
            .count());
    MACE_LOG(kDebug) << "MACE epoch " << epoch << " loss "
                     << epoch_losses.back();
  }

  num_features_ = num_features;
  scalers_ = std::move(scalers);
  subspaces_ = std::move(subspaces);
  transforms_ = std::move(transforms);
  model_ = std::move(model);
  epoch_losses_ = std::move(epoch_losses);
  RebuildFusedPlans();
  return Status::OK();
}

void MaceDetector::RebuildFusedPlans() {
  fused_model_ = kernel::FusedModelPlan();
  fused_services_.clear();
  if (model_ == nullptr || transforms_.empty()) return;
  const int cols = static_cast<int>(transforms_.front().forward_t.dim(1));
  fused_model_ = BuildFusedModelPlan(config_, num_features_, cols, *model_);
  fused_services_.reserve(transforms_.size());
  for (const ServiceTransforms& transforms : transforms_) {
    fused_services_.push_back(BuildFusedServicePlan(fused_model_, transforms));
  }
}

std::vector<size_t> MaceDetector::ScoreWindowStarts(size_t length) const {
  const auto window = static_cast<size_t>(config_.window);
  std::vector<size_t> starts;
  for (size_t start = 0; start + window <= length;
       start += static_cast<size_t>(config_.score_stride)) {
    starts.push_back(start);
  }
  // Cover the tail so every step gets at least one window.
  if (length >= window &&
      (starts.empty() || starts.back() + window < length)) {
    starts.push_back(length - window);
  }
  return starts;
}

std::vector<double> MaceDetector::ScoreScaled(
    const ServiceTransforms& transforms,
    const kernel::FusedServicePlan* fused_service,
    const ts::TimeSeries& scaled_test,
    const std::string& service_label) const {
  obs::MetricsRegistry& metrics = obs::Metrics();
  obs::ScopedSpan score_span(
      "MaceDetector::Score",
      metrics.GetHistogram("mace_score_seconds",
                           "Wall-clock duration of one batch Score call"));
  ScoreAccumulator accumulator(scaled_test.length(),
                               ScoreReduction::kMin);
  const std::vector<size_t> starts = ScoreWindowStarts(scaled_test.length());
  // Frequency-domain windows are independent (no recurrence), so scoring
  // parallelizes per window: each worker runs Forward (read-only on the
  // learned weights) over a strided share of the windows.
  const int threads =
      std::max(1, std::min<int>(config_.score_threads,
                                static_cast<int>(starts.size())));
  metrics.GetGauge("mace_score_pool_threads",
                   "Worker threads used by the last batch Score call")
      ->Set(threads);
  WindowsScoredCounter(service_label)->Increment(starts.size());
  std::vector<std::vector<std::vector<double>>> errors(
      static_cast<size_t>(threads));
  std::vector<double> busy_seconds(static_cast<size_t>(threads), 0.0);
  auto worker = [&](int id) {
    const auto begin = std::chrono::steady_clock::now();
    // Inference fast path: no autograd graph, and windows stack into
    // batched DFT/IDFT matmuls. Either switch is bit-identical to the
    // per-window grad-mode forward; errors push in stride order so the
    // accumulation below maps slots the same way regardless of batching.
    std::optional<tensor::NoGradGuard> no_grad;
    if (config_.score_no_grad) no_grad.emplace();
    const size_t batch_size =
        static_cast<size_t>(std::max(1, config_.score_batch));
    std::vector<size_t> mine;
    for (size_t i = static_cast<size_t>(id); i < starts.size();
         i += static_cast<size_t>(threads)) {
      mine.push_back(i);
    }
    if (fused_service != nullptr) {
      // Fused kernel path: gather each batch group's scaled windows (the
      // kernel applies stage 1 itself) into one contiguous feature-major
      // buffer and run all four stages in a single call per group. The
      // kernel never builds tensors, so no NoGradGuard is needed.
      const auto window = static_cast<size_t>(config_.window);
      const auto m = static_cast<size_t>(num_features_);
      std::vector<double> buf =
          tensor::AcquireScratchBuffer(batch_size * m * window);
      std::vector<double> errs =
          tensor::AcquireScratchBuffer(batch_size * window);
      for (size_t pos = 0; pos < mine.size();) {
        const size_t count = std::min(batch_size, mine.size() - pos);
        for (size_t j = 0; j < count; ++j) {
          const size_t start = starts[mine[pos + j]];
          double* w = buf.data() + j * m * window;
          for (size_t f = 0; f < m; ++f) {
            for (size_t t = 0; t < window; ++t) {
              w[f * window + t] =
                  scaled_test.value(start + t, static_cast<int>(f));
            }
          }
        }
        kernel::ScoreWindows(fused_model_, *fused_service, buf.data(),
                             static_cast<int>(count), errs.data(),
                             kernel_backend_);
        for (size_t j = 0; j < count; ++j) {
          errors[static_cast<size_t>(id)].emplace_back(
              errs.begin() + static_cast<ptrdiff_t>(j * window),
              errs.begin() + static_cast<ptrdiff_t>((j + 1) * window));
        }
        pos += count;
      }
      tensor::ReleaseScratchBuffer(std::move(errs));
      tensor::ReleaseScratchBuffer(std::move(buf));
      busy_seconds[static_cast<size_t>(id)] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      return;
    }
    for (size_t pos = 0; pos < mine.size();) {
      const size_t count = std::min(batch_size, mine.size() - pos);
      if (batch_size == 1) {
        Tensor w =
            ts::WindowToTensor(scaled_test, starts[mine[pos]], config_.window);
        MaceModel::Output out = model_->Forward(transforms, AmplifyWindow(w),
                                                /*want_step_errors=*/true);
        errors[static_cast<size_t>(id)].push_back(
            std::move(out.step_errors));
      } else {
        std::vector<Tensor> windows;
        windows.reserve(count);
        for (size_t j = 0; j < count; ++j) {
          Tensor w = ts::WindowToTensor(scaled_test, starts[mine[pos + j]],
                                        config_.window);
          windows.push_back(AmplifyWindow(w));
        }
        MaceModel::BatchOutput out = model_->ForwardBatch(transforms, windows);
        for (std::vector<double>& step_errors : out.step_errors) {
          errors[static_cast<size_t>(id)].push_back(std::move(step_errors));
        }
      }
      pos += count;
    }
    busy_seconds[static_cast<size_t>(id)] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
  };
  const auto pool_begin = std::chrono::steady_clock::now();
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
  // Per-thread utilization of the scoring pool: each worker's busy time
  // over the pool's wall time; a skewed distribution means stragglers.
  const double pool_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pool_begin)
          .count();
  obs::RecordPoolUtilization(
      metrics.GetHistogram(
          "mace_score_worker_busy_seconds",
          "Busy time of one scoring worker in one batch Score call"),
      metrics.GetHistogram(
          "mace_score_worker_utilization_ratio",
          "Worker busy time over pool wall time, per worker per Score call",
          {}, obs::RatioBuckets()),
      busy_seconds, pool_wall);
  for (int t = 0; t < threads; ++t) {
    size_t slot = 0;
    for (size_t i = static_cast<size_t>(t); i < starts.size();
         i += static_cast<size_t>(threads), ++slot) {
      accumulator.Add(starts[i], errors[static_cast<size_t>(t)][slot]);
    }
  }
  return accumulator.Finalize();
}

Result<std::vector<double>> MaceDetector::ScoreWindow(
    int service_index,
    const std::vector<std::vector<double>>& scaled_rows) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("ScoreWindow before Fit");
  }
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= transforms_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (scaled_rows.size() != static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument("window must hold exactly " +
                                   std::to_string(config_.window) +
                                   " rows");
  }
  std::optional<tensor::NoGradGuard> no_grad;
  if (config_.score_no_grad) no_grad.emplace();
  const auto m = static_cast<size_t>(num_features_);
  std::vector<double> data =
      tensor::AcquireScratchBuffer(m * scaled_rows.size());
  for (size_t t = 0; t < scaled_rows.size(); ++t) {
    if (scaled_rows[t].size() != m) {
      return Status::InvalidArgument("row feature count mismatch");
    }
    for (size_t f = 0; f < m; ++f) {
      if (!std::isfinite(scaled_rows[t][f])) {
        return Status::InvalidArgument(
            "window row " + std::to_string(t) + " feature " +
            std::to_string(f) + " holds non-finite value; sanitize upstream "
            "(ts/sanitize.h) before ScoreWindow");
      }
      data[f * scaled_rows.size() + t] = scaled_rows[t][f];
    }
  }
  static obs::Histogram* window_seconds = obs::Metrics().GetHistogram(
      "mace_score_window_seconds",
      "Wall-clock latency of one single-window ScoreWindow call "
      "(streaming path)");
  obs::ScopedSpan window_span("MaceDetector::ScoreWindow", window_seconds);
  CachedWindowsScoredCounter(service_index)->Increment();
  if (UseFusedEngine()) {
    std::vector<double> step_errors(static_cast<size_t>(config_.window));
    kernel::ScoreWindows(fused_model_,
                         fused_services_[static_cast<size_t>(service_index)],
                         data.data(), /*batch=*/1, step_errors.data(),
                         kernel_backend_);
    tensor::ReleaseScratchBuffer(std::move(data));
    return step_errors;
  }
  Tensor window = Tensor::FromVector(
      std::move(data), Shape{num_features_, config_.window});
  MaceModel::Output out =
      model_->Forward(transforms_[static_cast<size_t>(service_index)],
                      AmplifyWindow(window), /*want_step_errors=*/true);
  return out.step_errors;
}

Result<std::vector<std::vector<double>>> MaceDetector::ScoreWindowBatch(
    int service_index,
    const std::vector<std::vector<std::vector<double>>>& windows) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("ScoreWindowBatch before Fit");
  }
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= transforms_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (windows.empty()) {
    return std::vector<std::vector<double>>{};
  }
  std::optional<tensor::NoGradGuard> no_grad;
  if (config_.score_no_grad) no_grad.emplace();
  const auto m = static_cast<size_t>(num_features_);
  const auto window = static_cast<size_t>(config_.window);
  if (UseFusedEngine()) {
    // One contiguous [batch][features][window] gather, one kernel call.
    std::vector<double> data =
        tensor::AcquireScratchBuffer(windows.size() * m * window);
    for (size_t wi = 0; wi < windows.size(); ++wi) {
      const std::vector<std::vector<double>>& scaled_rows = windows[wi];
      if (scaled_rows.size() != window) {
        return Status::InvalidArgument("window must hold exactly " +
                                       std::to_string(config_.window) +
                                       " rows");
      }
      double* w = data.data() + wi * m * window;
      for (size_t t = 0; t < window; ++t) {
        if (scaled_rows[t].size() != m) {
          return Status::InvalidArgument("row feature count mismatch");
        }
        const double* row = scaled_rows[t].data();
        for (size_t f = 0; f < m; ++f) {
          w[f * window + t] = row[f];
        }
      }
    }
    // Finite gate over the packed block: a branch-free sum-based sweep on
    // contiguous memory; the offending (window, row, feature) is only
    // re-located on the cold rejection path.
    {
      // Every term is +/-0.0 for finite inputs and NaN otherwise, so the
      // four independent accumulator chains (which keep the sweep off the
      // serial FP-add latency) cannot change the verdict.
      double p0 = 0.0;
      double p1 = 0.0;
      double p2 = 0.0;
      double p3 = 0.0;
      const size_t n_total = windows.size() * m * window;
      size_t i = 0;
      for (; i + 4 <= n_total; i += 4) {
        p0 += data[i] * 0.0;
        p1 += data[i + 1] * 0.0;
        p2 += data[i + 2] * 0.0;
        p3 += data[i + 3] * 0.0;
      }
      for (; i < n_total; ++i) p0 += data[i] * 0.0;
      const double probe = p0 + p1 + p2 + p3;
      if (!(probe == 0.0)) {
        for (size_t wi = 0; wi < windows.size(); ++wi) {
          for (size_t f = 0; f < m; ++f) {
            for (size_t t = 0; t < window; ++t) {
              if (!std::isfinite(data[wi * m * window + f * window + t])) {
                return Status::InvalidArgument(
                    "window " + std::to_string(wi) + " row " +
                    std::to_string(t) + " feature " + std::to_string(f) +
                    " holds non-finite value; sanitize upstream "
                    "(ts/sanitize.h) before ScoreWindowBatch");
              }
            }
          }
        }
      }
    }
    static obs::Histogram* fused_batch_seconds = obs::Metrics().GetHistogram(
        "mace_score_window_batch_seconds",
        "Wall-clock latency of one ScoreWindowBatch call (batched "
        "streaming/serving path)");
    obs::ScopedSpan fused_batch_span("MaceDetector::ScoreWindowBatch",
                                     fused_batch_seconds);
    CachedWindowsScoredCounter(service_index)->Increment(windows.size());
    std::vector<double> errs =
        tensor::AcquireScratchBuffer(windows.size() * window);
    kernel::ScoreWindows(fused_model_,
                         fused_services_[static_cast<size_t>(service_index)],
                         data.data(), static_cast<int>(windows.size()),
                         errs.data(), kernel_backend_);
    std::vector<std::vector<double>> out(windows.size());
    for (size_t wi = 0; wi < windows.size(); ++wi) {
      out[wi].assign(errs.begin() + static_cast<ptrdiff_t>(wi * window),
                     errs.begin() + static_cast<ptrdiff_t>((wi + 1) * window));
    }
    tensor::ReleaseScratchBuffer(std::move(errs));
    tensor::ReleaseScratchBuffer(std::move(data));
    return out;
  }
  std::vector<Tensor> amplified;
  amplified.reserve(windows.size());
  for (const std::vector<std::vector<double>>& scaled_rows : windows) {
    if (scaled_rows.size() != window) {
      return Status::InvalidArgument("window must hold exactly " +
                                     std::to_string(config_.window) +
                                     " rows");
    }
    std::vector<double> data =
        tensor::AcquireScratchBuffer(m * scaled_rows.size());
    const size_t wi = amplified.size();
    for (size_t t = 0; t < scaled_rows.size(); ++t) {
      if (scaled_rows[t].size() != m) {
        return Status::InvalidArgument("row feature count mismatch");
      }
      for (size_t f = 0; f < m; ++f) {
        if (!std::isfinite(scaled_rows[t][f])) {
          return Status::InvalidArgument(
              "window " + std::to_string(wi) + " row " + std::to_string(t) +
              " feature " + std::to_string(f) +
              " holds non-finite value; sanitize upstream (ts/sanitize.h) "
              "before ScoreWindowBatch");
        }
        data[f * scaled_rows.size() + t] = scaled_rows[t][f];
      }
    }
    amplified.push_back(AmplifyWindow(Tensor::FromVector(
        std::move(data), Shape{num_features_, config_.window})));
  }
  static obs::Histogram* batch_seconds = obs::Metrics().GetHistogram(
      "mace_score_window_batch_seconds",
      "Wall-clock latency of one ScoreWindowBatch call (batched "
      "streaming/serving path)");
  obs::ScopedSpan batch_span("MaceDetector::ScoreWindowBatch",
                             batch_seconds);
  CachedWindowsScoredCounter(service_index)->Increment(windows.size());
  MaceModel::BatchOutput out = model_->ForwardBatch(
      transforms_[static_cast<size_t>(service_index)], amplified);
  return std::move(out.step_errors);
}

Result<std::vector<double>> MaceDetector::ScaleObservation(
    int service_index, const std::vector<double>& row) const {
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= scalers_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  const ts::StandardScaler& scaler =
      scalers_[static_cast<size_t>(service_index)];
  if (row.size() != scaler.means().size()) {
    return Status::InvalidArgument("observation feature count mismatch");
  }
  std::vector<double> scaled(row.size());
  for (size_t f = 0; f < row.size(); ++f) {
    scaled[f] = (row[f] - scaler.means()[f]) / scaler.stddevs()[f];
  }
  return scaled;
}

Result<std::vector<double>> MaceDetector::Score(int service_index,
                                                const ts::TimeSeries& test) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("Score before Fit");
  }
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= transforms_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (test.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument("test series shorter than window");
  }
  MACE_ASSIGN_OR_RETURN(
      SanitizedSeries sanitized,
      SanitizeForScoring(test, config_.non_finite_policy, "test series"));
  const ts::TimeSeries scaled =
      scalers_[static_cast<size_t>(service_index)].Transform(sanitized.series);
  std::vector<double> scores = ScoreScaled(
      transforms_[static_cast<size_t>(service_index)],
      UseFusedEngine() ? &fused_services_[static_cast<size_t>(service_index)]
                       : nullptr,
      scaled, std::to_string(service_index));
  if (!sanitized.contaminated.empty()) {
    MaskPropagatedScores(ScoreWindowStarts(scaled.length()),
                         static_cast<size_t>(config_.window),
                         sanitized.contaminated, &scores);
  }
  return scores;
}

Result<std::vector<double>> MaceDetector::ScoreUnseen(
    const ts::ServiceData& service) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("ScoreUnseen before Fit");
  }
  // Validate both splits up front: a mismatched-width row would otherwise
  // index past the scaler moments, and a too-short split would silently
  // produce an all-mean score vector (no window ever scored).
  if (service.train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service train split has " +
        std::to_string(service.train.num_features()) +
        " features, the fitted model expects " +
        std::to_string(num_features_));
  }
  if (service.test.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service test split has " +
        std::to_string(service.test.num_features()) +
        " features, the fitted model expects " +
        std::to_string(num_features_));
  }
  if (service.train.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument(
        "unseen service train split (" +
        std::to_string(service.train.length()) +
        " steps) is shorter than the window (" +
        std::to_string(config_.window) + ")");
  }
  if (service.test.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument(
        "unseen service test split (" +
        std::to_string(service.test.length()) +
        " steps) is shorter than the window (" +
        std::to_string(config_.window) + ")");
  }
  // The train split feeds the scaler moments and the subspace spectra, so
  // it cannot propagate: kImpute imputes, anything else rejects.
  std::optional<ts::TimeSeries> imputed_train;
  const ts::TimeSeries* train = &service.train;
  const ts::NonFiniteValue bad = ts::FindNonFinite(service.train);
  if (bad.found) {
    if (config_.non_finite_policy != ts::NonFinitePolicy::kImpute) {
      const bool propagate =
          config_.non_finite_policy == ts::NonFinitePolicy::kPropagate;
      return Status::InvalidArgument(
          "unseen service train split holds non-finite value " +
          ts::DescribeNonFinite(bad) +
          (propagate
               ? " (non-finite policy 'propagate' degrades to 'reject' for "
                 "subspace extraction: sanitize upstream or use 'impute')"
               : " (non-finite policy 'reject')"));
    }
    Result<ts::TimeSeries> imputed =
        ts::SanitizeSeries(service.train, ts::NonFinitePolicy::kImpute);
    if (!imputed.ok()) {
      return Status::InvalidArgument("unseen service train split: " +
                                     imputed.status().message());
    }
    imputed_train = std::move(imputed).value();
    train = &*imputed_train;
  }
  ts::StandardScaler scaler;
  scaler.Fit(*train);
  const ts::TimeSeries scaled_train = scaler.Transform(*train);
  MACE_ASSIGN_OR_RETURN(std::vector<int> bases,
                        SelectBases(AmplifySeries(scaled_train)));
  if (2 * static_cast<int>(bases.size()) !=
      static_cast<int>(transforms_.front().forward_t.dim(1))) {
    return Status::InvalidArgument(
        "unseen service subspace size differs from the trained model");
  }
  const ServiceTransforms transforms =
      MakeServiceTransforms(config_.window, bases);
  // The unseen service's transforms are ad hoc, so its fused panels are
  // packed here rather than at commit time.
  kernel::FusedServicePlan unseen_plan;
  if (UseFusedEngine()) {
    unseen_plan = BuildFusedServicePlan(fused_model_, transforms);
  }
  MACE_ASSIGN_OR_RETURN(SanitizedSeries sanitized,
                        SanitizeForScoring(service.test,
                                           config_.non_finite_policy,
                                           "unseen service test split"));
  std::vector<double> scores =
      ScoreScaled(transforms, unseen_plan.valid ? &unseen_plan : nullptr,
                  scaler.Transform(sanitized.series), "unseen");
  if (!sanitized.contaminated.empty()) {
    MaskPropagatedScores(ScoreWindowStarts(service.test.length()),
                         static_cast<size_t>(config_.window),
                         sanitized.contaminated, &scores);
  }
  return scores;
}

Result<std::shared_ptr<const ServingModel>> MaceDetector::OnboardService(
    const ts::TimeSeries& train) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("OnboardService before Fit");
  }
  if (train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "onboarding train split has " + std::to_string(train.num_features()) +
        " features, the fitted model expects " + std::to_string(num_features_));
  }
  if (train.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument(
        "onboarding train split (" + std::to_string(train.length()) +
        " steps) is shorter than the window (" + std::to_string(config_.window) +
        ")");
  }
  // Same contract as ScoreUnseen: the train split feeds scaler moments and
  // subspace spectra, so non-finite values impute under kImpute and reject
  // under everything else.
  std::optional<ts::TimeSeries> imputed_train;
  const ts::TimeSeries* clean = &train;
  const ts::NonFiniteValue bad = ts::FindNonFinite(train);
  if (bad.found) {
    if (config_.non_finite_policy != ts::NonFinitePolicy::kImpute) {
      const bool propagate =
          config_.non_finite_policy == ts::NonFinitePolicy::kPropagate;
      return Status::InvalidArgument(
          "onboarding train split holds non-finite value " +
          ts::DescribeNonFinite(bad) +
          (propagate
               ? " (non-finite policy 'propagate' degrades to 'reject' for "
                 "subspace extraction: sanitize upstream or use 'impute')"
               : " (non-finite policy 'reject')"));
    }
    Result<ts::TimeSeries> imputed =
        ts::SanitizeSeries(train, ts::NonFinitePolicy::kImpute);
    if (!imputed.ok()) {
      return Status::InvalidArgument("onboarding train split: " +
                                     imputed.status().message());
    }
    imputed_train = std::move(imputed).value();
    clean = &*imputed_train;
  }
  ts::StandardScaler scaler;
  scaler.Fit(*clean);
  const ts::TimeSeries scaled_train = scaler.Transform(*clean);
  MACE_ASSIGN_OR_RETURN(std::vector<int> bases,
                        SelectBases(AmplifySeries(scaled_train)));
  const int coeff_columns =
      static_cast<int>(transforms_.front().forward_t.dim(1));
  if (2 * static_cast<int>(bases.size()) != coeff_columns) {
    return Status::InvalidArgument(
        "onboarding service subspace size differs from the trained model");
  }

  // Deep-copy into a fresh detector and append the new service's
  // preprocessing. The learned network is cloned weight-for-weight; `this`
  // is untouched, so live sessions keep scoring on the original while a
  // frontend swaps the copy in.
  auto copy = std::make_shared<MaceDetector>(config_);
  copy->num_features_ = num_features_;
  copy->scalers_ = scalers_;
  copy->subspaces_ = subspaces_;
  copy->transforms_ = transforms_;
  copy->epoch_losses_ = epoch_losses_;
  copy->score_engine_ = score_engine_;
  copy->kernel_backend_ = kernel_backend_;
  Rng rng(config_.seed);
  copy->model_ = std::make_unique<MaceModel>(config_, num_features_,
                                             coeff_columns, &rng);
  copy->model_->CopyParametersFrom(*model_);
  copy->scalers_.push_back(std::move(scaler));
  PatternSubspace subspace;
  subspace.bases = bases;
  copy->subspaces_.push_back(std::move(subspace));
  copy->transforms_.push_back(MakeServiceTransforms(config_.window, bases));
  copy->RebuildFusedPlans();
  return std::shared_ptr<const ServingModel>(std::move(copy));
}

int64_t MaceDetector::ParameterCount() const {
  return model_ ? model_->ParameterCount() : 0;
}

int64_t MaceDetector::PeakActivationElements() const {
  return model_ ? model_->PeakActivationElements() : 0;
}

}  // namespace mace::core
