// Save/Load of a fitted MaceDetector: a line-oriented text format holding
// the config, each service's preprocessing state (scaler moments and
// selected bases) and the learned parameter values in Parameters() order
// (deterministic given the config).

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/mace_detector.h"

namespace mace::core {
namespace {

constexpr char kMagic[] = "MACEv1";

void WriteVector(std::ostream& out, const std::vector<double>& values) {
  out << values.size();
  out.precision(17);
  for (double v : values) out << ' ' << v;
  out << '\n';
}

Result<std::vector<double>> ReadVector(std::istream& in) {
  size_t count = 0;
  if (!(in >> count)) {
    return Status::InvalidArgument("corrupt model file: missing count");
  }
  std::vector<double> values(count);
  for (double& v : values) {
    if (!(in >> v)) {
      return Status::InvalidArgument("corrupt model file: short vector");
    }
  }
  return values;
}

}  // namespace

Status MaceDetector::Save(const std::string& path) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("Save before Fit");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "'");
  out << kMagic << '\n';
  out.precision(17);
  out << config_.window << ' ' << config_.train_stride << ' '
      << config_.score_stride << ' ' << config_.num_bases << ' '
      << config_.strongest_per_window << ' ' << config_.gamma_t << ' '
      << config_.sigma_t << ' ' << config_.gamma_f << ' '
      << config_.sigma_f << ' ' << config_.time_kernel << ' '
      << config_.freq_kernel << ' ' << config_.hidden_channels << ' '
      << config_.characterization_channels << ' ' << config_.epochs << ' '
      << config_.learning_rate << ' ' << config_.grad_clip << ' '
      << config_.seed << ' ' << config_.use_context_aware_dft << ' '
      << config_.use_dualistic_freq << ' ' << config_.use_dualistic_time
      << ' ' << config_.use_freq_characterization << ' '
      << config_.use_pattern_extraction << '\n';
  out << num_features_ << ' ' << scalers_.size() << '\n';
  for (size_t s = 0; s < scalers_.size(); ++s) {
    WriteVector(out, scalers_[s].means());
    WriteVector(out, scalers_[s].stddevs());
    out << subspaces_[s].bases.size();
    for (int b : subspaces_[s].bases) out << ' ' << b;
    out << '\n';
  }
  const std::vector<tensor::Tensor> params = model_->Parameters();
  out << params.size() << '\n';
  for (const tensor::Tensor& p : params) WriteVector(out, p.data());
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

Result<MaceDetector> MaceDetector::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a MACE model");
  }
  MaceConfig config;
  in >> config.window >> config.train_stride >> config.score_stride >>
      config.num_bases >> config.strongest_per_window >> config.gamma_t >>
      config.sigma_t >> config.gamma_f >> config.sigma_f >>
      config.time_kernel >> config.freq_kernel >> config.hidden_channels >>
      config.characterization_channels >> config.epochs >>
      config.learning_rate >> config.grad_clip >> config.seed >>
      config.use_context_aware_dft >> config.use_dualistic_freq >>
      config.use_dualistic_time >> config.use_freq_characterization >>
      config.use_pattern_extraction;
  if (!in) return Status::InvalidArgument("corrupt model file: config");

  MaceDetector detector(config);
  size_t num_services = 0;
  in >> detector.num_features_ >> num_services;
  if (!in || detector.num_features_ <= 0) {
    return Status::InvalidArgument("corrupt model file: header");
  }
  int coeff_columns = -1;
  for (size_t s = 0; s < num_services; ++s) {
    MACE_ASSIGN_OR_RETURN(std::vector<double> means, ReadVector(in));
    MACE_ASSIGN_OR_RETURN(std::vector<double> stddevs, ReadVector(in));
    ts::StandardScaler scaler =
        ts::StandardScaler::FromMoments(std::move(means),
                                        std::move(stddevs));
    size_t num_bases = 0;
    if (!(in >> num_bases)) {
      return Status::InvalidArgument("corrupt model file: bases");
    }
    PatternSubspace subspace;
    subspace.bases.resize(num_bases);
    for (int& b : subspace.bases) {
      if (!(in >> b)) {
        return Status::InvalidArgument("corrupt model file: base index");
      }
    }
    coeff_columns = 2 * static_cast<int>(num_bases);
    detector.transforms_.push_back(
        MakeServiceTransforms(config.window, subspace.bases));
    detector.subspaces_.push_back(std::move(subspace));
    detector.scalers_.push_back(std::move(scaler));
  }
  if (coeff_columns <= 0) {
    return Status::InvalidArgument("model file holds no services");
  }

  Rng rng(config.seed);
  detector.model_ = std::make_unique<MaceModel>(
      config, detector.num_features_, coeff_columns, &rng);
  std::vector<tensor::Tensor> params = detector.model_->Parameters();
  size_t param_tensors = 0;
  if (!(in >> param_tensors) || param_tensors != params.size()) {
    return Status::InvalidArgument(
        "corrupt model file: parameter tensor count mismatch");
  }
  for (tensor::Tensor& p : params) {
    MACE_ASSIGN_OR_RETURN(std::vector<double> values, ReadVector(in));
    if (values.size() != p.data().size()) {
      return Status::InvalidArgument(
          "corrupt model file: parameter size mismatch");
    }
    p.mutable_data() = std::move(values);
  }
  return detector;
}

}  // namespace mace::core
