// Save/Load of a fitted MaceDetector: a line-oriented text format holding
// the config, each service's preprocessing state (scaler moments and
// selected bases) and the learned parameter values in Parameters() order
// (deterministic given the config).

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/mace_detector.h"
#include "core/serialization_io.h"

namespace mace::core {
namespace {

constexpr char kMagic[] = "MACEv1";

using io::Corrupt;
using io::ReadVector;
using io::WriteVector;

}  // namespace

Status MaceDetector::Save(const std::string& path) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("Save before Fit");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "'");
  out << kMagic << '\n';
  out.precision(17);
  out << config_.window << ' ' << config_.train_stride << ' '
      << config_.score_stride << ' ' << config_.num_bases << ' '
      << config_.strongest_per_window << ' ' << config_.gamma_t << ' '
      << config_.sigma_t << ' ' << config_.gamma_f << ' '
      << config_.sigma_f << ' ' << config_.time_kernel << ' '
      << config_.freq_kernel << ' ' << config_.hidden_channels << ' '
      << config_.characterization_channels << ' ' << config_.epochs << ' '
      << config_.learning_rate << ' ' << config_.grad_clip << ' '
      << config_.seed << ' ' << config_.use_context_aware_dft << ' '
      << config_.use_dualistic_freq << ' ' << config_.use_dualistic_time
      << ' ' << config_.use_freq_characterization << ' '
      << config_.use_pattern_extraction << '\n';
  out << num_features_ << ' ' << scalers_.size() << '\n';
  for (size_t s = 0; s < scalers_.size(); ++s) {
    WriteVector(out, scalers_[s].means());
    WriteVector(out, scalers_[s].stddevs());
    out << subspaces_[s].bases.size();
    for (int b : subspaces_[s].bases) out << ' ' << b;
    out << '\n';
  }
  const std::vector<tensor::Tensor> params = model_->Parameters();
  out << params.size() << '\n';
  for (const tensor::Tensor& p : params) WriteVector(out, p.data());
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

Result<MaceDetector> MaceDetector::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    return Status::InvalidArgument(
        "'" + path + "' is not a MACE model (magic '" + magic +
        "', expected '" + kMagic + "')");
  }
  MaceConfig config;
  in >> config.window >> config.train_stride >> config.score_stride >>
      config.num_bases >> config.strongest_per_window >> config.gamma_t >>
      config.sigma_t >> config.gamma_f >> config.sigma_f >>
      config.time_kernel >> config.freq_kernel >> config.hidden_channels >>
      config.characterization_channels >> config.epochs >>
      config.learning_rate >> config.grad_clip >> config.seed >>
      config.use_context_aware_dft >> config.use_dualistic_freq >>
      config.use_dualistic_time >> config.use_freq_characterization >>
      config.use_pattern_extraction;
  if (!in) {
    return Corrupt(path, std::string("unreadable config block") +
                             (in.eof() ? " (file truncated)" : ""));
  }
  // Pre-validate before constructing: the constructor CHECK-aborts on a
  // bad config, but a corrupt file should surface as a Status.
  const Status config_valid = MaceDetector::ValidateConfig(config);
  if (!config_valid.ok()) {
    return Corrupt(path, "invalid config: " + config_valid.message());
  }

  MaceDetector detector(config);
  size_t num_services = 0;
  in >> detector.num_features_ >> num_services;
  if (!in || detector.num_features_ <= 0) {
    return Corrupt(path, "unreadable feature/service header");
  }
  // Caps mirror ValidateConfig's untrusted-input armor: a hostile header
  // must not size allocations or loop bounds.
  if (detector.num_features_ > 4096) {
    return Corrupt(path, "declares " +
                             std::to_string(detector.num_features_) +
                             " features (limit 4096)");
  }
  if (num_services == 0) {
    return Corrupt(path, "holds no services");
  }
  if (num_services > 4096) {
    return Corrupt(path, "declares " + std::to_string(num_services) +
                             " services (limit 4096)");
  }
  const auto num_features = static_cast<size_t>(detector.num_features_);
  int coeff_columns = -1;
  for (size_t s = 0; s < num_services; ++s) {
    const std::string which = "service " + std::to_string(s);
    MACE_ASSIGN_OR_RETURN(
        std::vector<double> means,
        ReadVector(in, path, which + " scaler means"));
    MACE_ASSIGN_OR_RETURN(
        std::vector<double> stddevs,
        ReadVector(in, path, which + " scaler stddevs"));
    // Validate the moments before FromMoments, which CHECK-aborts on what
    // a Status should report: a fitted scaler always has one finite mean
    // and one positive finite stddev per feature.
    if (means.size() != num_features || stddevs.size() != num_features) {
      std::ostringstream reason;
      reason << which << " scaler holds " << means.size() << " means and "
             << stddevs.size() << " stddevs for " << num_features
             << " features";
      return Corrupt(path, reason.str());
    }
    for (size_t f = 0; f < num_features; ++f) {
      if (!std::isfinite(means[f]) || !std::isfinite(stddevs[f]) ||
          stddevs[f] <= 0.0) {
        return Corrupt(path, which + " scaler moments for feature " +
                                 std::to_string(f) +
                                 " are non-finite or non-positive");
      }
    }
    ts::StandardScaler scaler =
        ts::StandardScaler::FromMoments(std::move(means),
                                        std::move(stddevs));
    size_t num_bases = 0;
    if (!(in >> num_bases)) {
      return Corrupt(path, "missing base count of " + which);
    }
    if (num_bases < 1 ||
        num_bases > static_cast<size_t>(config.window) / 2) {
      std::ostringstream reason;
      reason << which << " declares " << num_bases
             << " bases, expected [1, window/2] = [1, "
             << config.window / 2 << "]";
      return Corrupt(path, reason.str());
    }
    if (coeff_columns >= 0 &&
        coeff_columns != 2 * static_cast<int>(num_bases)) {
      return Corrupt(path,
                     which + " subspace size differs from service 0 "
                     "(all services must share the coefficient width)");
    }
    PatternSubspace subspace;
    subspace.bases.resize(num_bases);
    for (size_t b = 0; b < num_bases; ++b) {
      if (!(in >> subspace.bases[b])) {
        std::ostringstream reason;
        reason << which << " subspace holds " << b << " of " << num_bases
               << " base indices";
        if (in.eof()) reason << " (file truncated)";
        return Corrupt(path, reason.str());
      }
      if (subspace.bases[b] < 0 || subspace.bases[b] > config.window / 2) {
        std::ostringstream reason;
        reason << which << " base " << b << " is frequency index "
               << subspace.bases[b] << ", outside [0, window/2] = [0, "
               << config.window / 2 << "]";
        return Corrupt(path, reason.str());
      }
    }
    coeff_columns = 2 * static_cast<int>(num_bases);
    detector.transforms_.push_back(
        MakeServiceTransforms(config.window, subspace.bases));
    detector.subspaces_.push_back(std::move(subspace));
    detector.scalers_.push_back(std::move(scaler));
  }
  if (coeff_columns / 2 < config.freq_kernel) {
    // The model convolves the amplitude half of the coefficient columns;
    // Conv1d CHECK-aborts when its input is shorter than the kernel.
    std::ostringstream reason;
    reason << "freq_kernel " << config.freq_kernel << " exceeds the "
           << coeff_columns / 2 << " amplitude columns of the subspace";
    return Corrupt(path, reason.str());
  }

  Rng rng(config.seed);
  detector.model_ = std::make_unique<MaceModel>(
      config, detector.num_features_, coeff_columns, &rng);
  std::vector<tensor::Tensor> params = detector.model_->Parameters();
  size_t param_tensors = 0;
  if (!(in >> param_tensors)) {
    return Corrupt(path, std::string("missing parameter tensor count") +
                             (in.eof() ? " (file truncated)" : ""));
  }
  if (param_tensors != params.size()) {
    std::ostringstream reason;
    reason << "declares " << param_tensors << " parameter tensors, this "
           << "build's architecture expects " << params.size();
    return Corrupt(path, reason.str());
  }
  for (size_t i = 0; i < params.size(); ++i) {
    MACE_ASSIGN_OR_RETURN(
        std::vector<double> values,
        ReadVector(in, path, "parameter tensor " + std::to_string(i)));
    if (values.size() != params[i].data().size()) {
      std::ostringstream reason;
      reason << "parameter tensor " << i << " holds " << values.size()
             << " values, expected " << params[i].data().size();
      return Corrupt(path, reason.str());
    }
    params[i].mutable_data() = std::move(values);
  }
  // Fused kernel plans are derived state, not serialized: repack them from
  // the restored weights so the loaded detector scores fused immediately.
  detector.RebuildFusedPlans();
  return detector;
}

}  // namespace mace::core
