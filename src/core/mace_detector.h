#ifndef MACE_CORE_MACE_DETECTOR_H_
#define MACE_CORE_MACE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/detector.h"
#include "core/mace_config.h"
#include "core/mace_model.h"
#include "core/pattern_extractor.h"
#include "kernel/fused_plan.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"

namespace mace::core {

/// \brief The MACE anomaly detector: one unified learnable model plus
/// per-service normal-pattern subspaces.
///
/// Fit() extracts a Fourier subspace per service (preprocessing), then
/// trains the shared network on all services' windows. Score() uses the
/// service's own subspace; ScoreUnseen() extracts a subspace for a service
/// that was never trained on — no retraining — which is what gives MACE
/// its transfer behaviour (Table VIII).
class MaceDetector : public Detector, public ServingModel {
 public:
  explicit MaceDetector(MaceConfig config = MaceConfig());

  /// Validates windowing / stride / kernel / capacity settings (window in
  /// [4, 1024], num_bases in [1, window/2], strides >= 1, score_stride <=
  /// window, time_kernel odd, channel counts in [1, 4096], finite
  /// positive dualistic parameters, ...). The bounds double as
  /// untrusted-input armor: Load() pre-validates a file's config against
  /// them and surfaces violations as a Corrupt status, so a corrupt or
  /// hostile model file cannot drive allocations or CHECK-aborts from
  /// absurd dimensions. The constructor CHECK-fails on a violation.
  static Status ValidateConfig(const MaceConfig& config);

  /// Fit rejects non-finite training data under the configured
  /// non_finite_policy — kReject (and kPropagate, which degrades to
  /// kReject for training; see MaceConfig) return a descriptive error
  /// before any state mutation, kImpute trains on the sanitized copy.
  Status Fit(const std::vector<ts::ServiceData>& services) override;
  /// Same fit, but fans the parallel phases (per-service preprocessing
  /// and gradient shards) out on a caller-supplied shared pool at
  /// `priority` instead of a private pool of `fit_threads` workers — the
  /// online-refit path, where kLow rounds must not starve the serving
  /// threads sharing the machine. Results depend on the pool only through
  /// its thread count (the replica count), exactly as the private-pool
  /// overload depends on fit_threads: a refit is bit-deterministic for
  /// fixed inputs, seed and pool size, at either priority.
  Status Fit(const std::vector<ts::ServiceData>& services, WorkerPool* pool,
             WorkerPool::TaskPriority priority);
  Result<std::vector<double>> Score(int service_index,
                                    const ts::TimeSeries& test) override;
  std::string name() const override { return "MACE"; }
  int64_t ParameterCount() const override;
  int64_t PeakActivationElements() const override;

  /// Scores a service outside the fitted set: per-service preprocessing
  /// (scaler + subspace) is computed from its train split, the learned
  /// network stays frozen.
  Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) override;

  /// Scores one window given as scaled rows [window][features] (streaming
  /// path; see core/streaming.h): returns the per-step reconstruction
  /// errors of the stage-4 branch max. Rows must be fully finite — the
  /// policy-aware surfaces (StreamingScorer, Score) sanitize upstream;
  /// this low-level entry rejects non-finite input outright so NaN can
  /// never reach the DFT.
  Result<std::vector<double>> ScoreWindow(
      int service_index,
      const std::vector<std::vector<double>>& scaled_rows) const override;
  /// Scores B windows at once through the batched DFT/IDFT fast path:
  /// returns one per-step error vector per window, in input order,
  /// bit-identical to B ScoreWindow calls.
  Result<std::vector<std::vector<double>>> ScoreWindowBatch(
      int service_index,
      const std::vector<std::vector<std::vector<double>>>& windows)
      const override;
  /// Applies the service's fitted scaler to one raw observation row.
  Result<std::vector<double>> ScaleObservation(
      int service_index, const std::vector<double>& row) const override;

  // ServingModel surface (core/detector.h).
  bool fitted() const override { return model_ != nullptr; }
  int window() const override { return config_.window; }
  int score_stride() const override { return config_.score_stride; }
  int num_features() const override { return num_features_; }
  int num_services() const override {
    return static_cast<int>(subspaces_.size());
  }
  std::vector<double> ImputationFallback(int service_index) const override {
    return scalers_[static_cast<size_t>(service_index)].means();
  }
  /// ScoreUnseen's preprocessing (scaler fit + base selection from the
  /// train split, learned network frozen) captured into a servable copy
  /// with one more service — zero-shot tenant onboarding for the serve
  /// frontend.
  Result<std::shared_ptr<const ServingModel>> OnboardService(
      const ts::TimeSeries& train) const override;

  /// Serializes the fitted detector — config, per-service preprocessing
  /// (scalers + subspaces) and learned weights — to a text file.
  Status Save(const std::string& path) const override;
  /// Restores a detector saved by Save(); ready to Score immediately.
  static Result<MaceDetector> Load(const std::string& path);

  const MaceConfig& config() const { return config_; }
  /// Subspaces extracted by the last Fit (one per service).
  const std::vector<PatternSubspace>& subspaces() const { return subspaces_; }
  /// Per-service fitted scalers (means double as the streaming imputation
  /// fallback: a mean imputes to exactly 0 after z-scoring).
  const std::vector<ts::StandardScaler>& scalers() const { return scalers_; }
  /// Mean training loss of each epoch of the last Fit.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

  /// Non-finite input policy for subsequent Fit/Score/streaming calls.
  /// The policy is runtime state, not serialized model state — call this
  /// after Load() to opt a restored model into a lossy policy.
  void set_non_finite_policy(ts::NonFinitePolicy policy) {
    config_.non_finite_policy = policy;
  }
  ts::NonFinitePolicy non_finite_policy() const override {
    return config_.non_finite_policy;
  }

  /// Start offsets of the scoring windows over a series of `length`
  /// (stride-spaced plus one tail window) — the schedule Score and the
  /// kPropagate NaN-mask share, exposed for tests.
  std::vector<size_t> ScoreWindowStarts(size_t length) const;

  /// Which implementation executes inference scoring. Both produce the
  /// per-step errors of the same pipeline; kFused runs the hand-fused
  /// per-service kernel (src/kernel/), kOpGraph the original tensor op
  /// graph — kept as the reference the fused path is pinned against
  /// (tests/score_fastpath_test.cc) and as an escape hatch. Runtime
  /// state, not serialized.
  enum class ScoreEngine {
    kFused,    ///< fused scalar/SIMD kernel (default)
    kOpGraph,  ///< tensor op graph reference path
  };
  void set_score_engine(ScoreEngine engine) { score_engine_ = engine; }
  ScoreEngine score_engine() const { return score_engine_; }
  /// Which arm of the fused kernel runs (ignored under kOpGraph).
  /// kScalar is bit-identical to the op graph; kAuto/kSimd use AVX2/FMA
  /// when available (pinned-tolerance equivalent).
  void set_kernel_backend(kernel::Backend backend) {
    kernel_backend_ = backend;
  }
  kernel::Backend kernel_backend() const { return kernel_backend_; }

 private:
  /// Selected bases for one service (extracted or full-spectrum ablation).
  Result<std::vector<int>> SelectBases(const ts::TimeSeries& scaled_train)
      const;
  /// Stage 1: per-feature dualistic amplification of a window tensor.
  tensor::Tensor AmplifyWindow(const tensor::Tensor& window) const;
  /// Stage 1 applied to a whole series (for pattern extraction, so the
  /// subspace is selected on the same signal the model reconstructs).
  ts::TimeSeries AmplifySeries(const ts::TimeSeries& series) const;
  /// Scores a scaled test series against given transforms. `service_label`
  /// tags the obs counters/histograms (service index, or "unseen").
  /// `fused_service` is the transforms' fused panel plan, or nullptr to
  /// force the op-graph path for this call.
  std::vector<double> ScoreScaled(const ServiceTransforms& transforms,
                                  const kernel::FusedServicePlan* fused_service,
                                  const ts::TimeSeries& scaled_test,
                                  const std::string& service_label) const;
  /// Rebuilds the fused kernel plans from the committed model_ /
  /// transforms_ (Fit commit, Load). Clears them when no model is loaded.
  void RebuildFusedPlans();
  /// True when fused scoring is selected and the plans are built.
  bool UseFusedEngine() const {
    return score_engine_ == ScoreEngine::kFused && fused_model_.valid;
  }

  MaceConfig config_;
  int num_features_ = 0;
  std::vector<ts::StandardScaler> scalers_;
  std::vector<PatternSubspace> subspaces_;
  std::vector<ServiceTransforms> transforms_;
  std::unique_ptr<MaceModel> model_;
  std::vector<double> epoch_losses_;

  // Fused-kernel state, derived from model_/transforms_ at commit time
  // (never serialized; Load rebuilds it).
  kernel::FusedModelPlan fused_model_;
  std::vector<kernel::FusedServicePlan> fused_services_;
  ScoreEngine score_engine_ = ScoreEngine::kFused;
  kernel::Backend kernel_backend_ = kernel::Backend::kAuto;
};

}  // namespace mace::core

#endif  // MACE_CORE_MACE_DETECTOR_H_
