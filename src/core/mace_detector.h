#ifndef MACE_CORE_MACE_DETECTOR_H_
#define MACE_CORE_MACE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/mace_config.h"
#include "core/mace_model.h"
#include "core/pattern_extractor.h"
#include "nn/optimizer.h"
#include "ts/scaler.h"

namespace mace::core {

/// \brief The MACE anomaly detector: one unified learnable model plus
/// per-service normal-pattern subspaces.
///
/// Fit() extracts a Fourier subspace per service (preprocessing), then
/// trains the shared network on all services' windows. Score() uses the
/// service's own subspace; ScoreUnseen() extracts a subspace for a service
/// that was never trained on — no retraining — which is what gives MACE
/// its transfer behaviour (Table VIII).
class MaceDetector : public Detector {
 public:
  explicit MaceDetector(MaceConfig config = MaceConfig());

  /// Validates windowing / stride / kernel settings (window >= 4,
  /// num_bases in [1, window/2], strides >= 1, score_stride <= window,
  /// time_kernel odd, ...). The constructor CHECK-fails on a violation;
  /// Load() pre-validates and surfaces the message as a Corrupt status.
  static Status ValidateConfig(const MaceConfig& config);

  Status Fit(const std::vector<ts::ServiceData>& services) override;
  Result<std::vector<double>> Score(int service_index,
                                    const ts::TimeSeries& test) override;
  std::string name() const override { return "MACE"; }
  int64_t ParameterCount() const override;
  int64_t PeakActivationElements() const override;

  /// Scores a service outside the fitted set: per-service preprocessing
  /// (scaler + subspace) is computed from its train split, the learned
  /// network stays frozen.
  Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) override;

  /// Scores one window given as scaled rows [window][features] (streaming
  /// path; see core/streaming.h): returns the per-step reconstruction
  /// errors of the stage-4 branch max.
  Result<std::vector<double>> ScoreWindow(
      int service_index,
      const std::vector<std::vector<double>>& scaled_rows) const;
  /// Scores B windows at once through the batched DFT/IDFT fast path:
  /// returns one per-step error vector per window, in input order,
  /// bit-identical to B ScoreWindow calls.
  Result<std::vector<std::vector<double>>> ScoreWindowBatch(
      int service_index,
      const std::vector<std::vector<std::vector<double>>>& windows) const;
  /// Applies the service's fitted scaler to one raw observation row.
  Result<std::vector<double>> ScaleObservation(
      int service_index, const std::vector<double>& row) const;

  /// Serializes the fitted detector — config, per-service preprocessing
  /// (scalers + subspaces) and learned weights — to a text file.
  Status Save(const std::string& path) const;
  /// Restores a detector saved by Save(); ready to Score immediately.
  static Result<MaceDetector> Load(const std::string& path);

  const MaceConfig& config() const { return config_; }
  /// Subspaces extracted by the last Fit (one per service).
  const std::vector<PatternSubspace>& subspaces() const { return subspaces_; }
  /// Mean training loss of each epoch of the last Fit.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

 private:
  /// Selected bases for one service (extracted or full-spectrum ablation).
  Result<std::vector<int>> SelectBases(const ts::TimeSeries& scaled_train)
      const;
  /// Stage 1: per-feature dualistic amplification of a window tensor.
  tensor::Tensor AmplifyWindow(const tensor::Tensor& window) const;
  /// Stage 1 applied to a whole series (for pattern extraction, so the
  /// subspace is selected on the same signal the model reconstructs).
  ts::TimeSeries AmplifySeries(const ts::TimeSeries& series) const;
  /// Scores a scaled test series against given transforms. `service_label`
  /// tags the obs counters/histograms (service index, or "unseen").
  std::vector<double> ScoreScaled(const ServiceTransforms& transforms,
                                  const ts::TimeSeries& scaled_test,
                                  const std::string& service_label) const;

  MaceConfig config_;
  int num_features_ = 0;
  std::vector<ts::StandardScaler> scalers_;
  std::vector<PatternSubspace> subspaces_;
  std::vector<ServiceTransforms> transforms_;
  std::unique_ptr<MaceModel> model_;
  std::vector<double> epoch_losses_;
};

}  // namespace mace::core

#endif  // MACE_CORE_MACE_DETECTOR_H_
