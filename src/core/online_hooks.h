#ifndef MACE_CORE_ONLINE_HOOKS_H_
#define MACE_CORE_ONLINE_HOOKS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace mace::core {

/// \brief Interfaces the online-learning subsystem (src/online/) plugs
/// into the scoring surfaces through, mirroring how AttachHistory feeds
/// the history store: core and serve depend only on these hooks, the
/// rolling buffers / model ensembles / refit scheduler live behind them.

/// Sink for the raw observations a stream consumes — the feed of a
/// rolling refit buffer. Rows arrive post-sanitation (always fully
/// finite: kImpute/kPropagate rows carry the imputed values), with
/// `contaminated` marking rows whose values a lossy policy repaired, so
/// the buffer can account for training-data quality per policy. Called
/// inline from the scorer's step path; implementations must be cheap and,
/// when snapshotted from another thread (a background refit), internally
/// synchronized.
class ObservationSink {
 public:
  virtual ~ObservationSink() = default;
  virtual void OnObservation(const std::vector<double>& row,
                             bool contaminated) = 0;
};

/// Consensus verdict of a model ensemble for one emitted step.
struct StepVerdict {
  /// True when at least one warmed-up generation scored the step; false
  /// while the ensemble is empty or every lane is still filling its
  /// window pipeline (the scorer then falls back to single-model
  /// semantics for the step).
  bool voted = false;
  /// Consensus-combined score in units of the generations' calibrated
  /// thresholds (> 1 means the consensus rule fires). Diagnostic; the
  /// history record keeps the base model's score.
  double score = 0.0;
  /// The consensus anomaly bit (valid when `voted`).
  bool anomaly = false;
};

/// \brief Streaming fan-out across a model ensemble: the scorer forwards
/// every consumed observation (so generation lanes advance in lockstep
/// with the base pipeline) and asks for a verdict whenever it emits a
/// finalized step. Implementations are bound to one session and called
/// only from that session's thread.
class StreamEnsemble {
 public:
  virtual ~StreamEnsemble() = default;
  /// One consumed observation (raw, sanitized to finite).
  virtual void OnObservation(const std::vector<double>& row) = 0;
  /// Batched variant (the PushMany fast path); default loops.
  virtual void OnObservations(const std::vector<std::vector<double>>& rows) {
    for (const std::vector<double>& row : rows) OnObservation(row);
  }
  /// Verdict for emitted step `step` whose base-model score is
  /// `base_score`. Must be called exactly once per emitted step in step
  /// order — it also drains the per-generation score queues.
  virtual StepVerdict OnEmit(size_t step, double base_score) = 0;
};

/// Per-stream online-learning attachments, as handed out by Bind().
struct StreamBinding {
  /// Rolling refit buffer (owned by the hooks provider, which outlives
  /// every session; the same stream re-binds to the same buffer).
  ObservationSink* sink = nullptr;
  /// Ensemble fan-out state (owned by the session: lanes hold per-stream
  /// pipeline state and die with it).
  std::unique_ptr<StreamEnsemble> ensemble;
};

/// \brief Factory the serve layer calls when a session opens: one binding
/// per stream key ("<tenant>/<service>"). Implementations must be
/// thread-safe — shards bind concurrently.
class OnlineHooks {
 public:
  virtual ~OnlineHooks() = default;
  virtual StreamBinding Bind(const std::string& key, int num_features) = 0;
};

}  // namespace mace::core

#endif  // MACE_CORE_ONLINE_HOOKS_H_
