#include "eval/roc.h"

#include <algorithm>
#include <numeric>

namespace mace::eval {

Result<RankingQuality> ComputeRanking(const std::vector<double>& scores,
                                      const std::vector<uint8_t>& labels) {
  if (scores.empty() || scores.size() != labels.size()) {
    return Status::InvalidArgument(
        "ComputeRanking needs equal-size non-empty scores/labels");
  }
  int64_t positives = 0;
  for (uint8_t l : labels) positives += l != 0;
  const int64_t negatives = static_cast<int64_t>(labels.size()) - positives;
  if (positives == 0 || negatives == 0) {
    return Status::InvalidArgument(
        "ComputeRanking needs both classes present");
  }

  // Sort indices by descending score; sweep thresholds.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });

  RankingQuality quality;
  int64_t tp = 0, fp = 0;
  double prev_fpr = 0.0, prev_tpr = 0.0, prev_recall = 0.0;
  double prev_precision = 1.0;
  size_t i = 0;
  while (i < order.size()) {
    // Consume all ties at this score so curve points are well defined.
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]] != 0) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    const double tpr = static_cast<double>(tp) / positives;
    const double fpr = static_cast<double>(fp) / negatives;
    const double recall = tpr;
    const double precision =
        static_cast<double>(tp) / static_cast<double>(tp + fp);
    quality.auroc += 0.5 * (tpr + prev_tpr) * (fpr - prev_fpr);
    quality.auprc += 0.5 * (precision + prev_precision) *
                     (recall - prev_recall);
    quality.roc.push_back(RocPoint{score, tpr, fpr});
    prev_tpr = tpr;
    prev_fpr = fpr;
    prev_recall = recall;
    prev_precision = precision;
  }
  return quality;
}

double RecallAtFalsePositiveRate(const RankingQuality& quality,
                                 double max_fpr) {
  double best = 0.0;
  for (const RocPoint& point : quality.roc) {
    if (point.false_positive_rate <= max_fpr) {
      best = std::max(best, point.true_positive_rate);
    }
  }
  return best;
}

}  // namespace mace::eval
