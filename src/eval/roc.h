#ifndef MACE_EVAL_ROC_H_
#define MACE_EVAL_ROC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mace::eval {

/// \brief One operating point of a score-ranked classifier.
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
};

/// \brief Threshold-free ranking quality of anomaly scores.
struct RankingQuality {
  double auroc = 0.0;   ///< area under the ROC curve
  double auprc = 0.0;   ///< area under the precision-recall curve
  std::vector<RocPoint> roc;  ///< curve points, descending threshold
};

/// \brief Computes AUROC/AUPRC of per-step scores against 0/1 labels.
/// Requires at least one positive and one negative label.
Result<RankingQuality> ComputeRanking(const std::vector<double>& scores,
                                      const std::vector<uint8_t>& labels);

/// \brief Largest recall (TPR) reachable at a false-positive rate of at
/// most `max_fpr`, read off the ROC curve. 0.0 when no operating point
/// satisfies the budget (the curve's first point already overshoots it).
/// Matched-FP-rate comparisons between detectors use this: fix the FP
/// budget, compare what each detector catches.
double RecallAtFalsePositiveRate(const RankingQuality& quality,
                                 double max_fpr);

}  // namespace mace::eval

#endif  // MACE_EVAL_ROC_H_
