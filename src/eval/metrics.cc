#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace mace::eval {

PrMetrics FromConfusion(const Confusion& c) {
  PrMetrics m;
  if (c.tp + c.fp > 0) {
    m.precision =
        static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fp);
  }
  if (c.tp + c.fn > 0) {
    m.recall = static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn);
  }
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

Confusion Confuse(const std::vector<uint8_t>& predictions,
                  const std::vector<uint8_t>& labels) {
  MACE_CHECK(predictions.size() == labels.size());
  Confusion c;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool p = predictions[i] != 0;
    const bool l = labels[i] != 0;
    if (p && l) {
      ++c.tp;
    } else if (p && !l) {
      ++c.fp;
    } else if (!p && l) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

std::vector<uint8_t> PointAdjust(const std::vector<uint8_t>& predictions,
                                 const std::vector<uint8_t>& labels) {
  MACE_CHECK(predictions.size() == labels.size());
  std::vector<uint8_t> adjusted = predictions;
  const size_t n = labels.size();
  size_t i = 0;
  while (i < n) {
    if (labels[i] == 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < n && labels[j] != 0) ++j;
    bool hit = false;
    for (size_t t = i; t < j; ++t) {
      if (predictions[t] != 0) {
        hit = true;
        break;
      }
    }
    if (hit) {
      for (size_t t = i; t < j; ++t) adjusted[t] = 1;
    }
    i = j;
  }
  return adjusted;
}

PrMetrics EvaluateAtThreshold(const std::vector<double>& scores,
                              const std::vector<uint8_t>& labels,
                              double threshold, bool point_adjust) {
  MACE_CHECK(scores.size() == labels.size());
  std::vector<uint8_t> pred(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    pred[i] = scores[i] > threshold ? 1 : 0;
  }
  if (point_adjust) pred = PointAdjust(pred, labels);
  return FromConfusion(Confuse(pred, labels));
}

Result<ThresholdResult> BestF1Threshold(const std::vector<double>& scores,
                                        const std::vector<uint8_t>& labels,
                                        bool point_adjust,
                                        int num_candidates) {
  if (scores.empty() || scores.size() != labels.size()) {
    return Status::InvalidArgument(
        "BestF1Threshold needs equal-size non-empty scores/labels");
  }
  if (num_candidates < 2) {
    return Status::InvalidArgument("need >= 2 candidate thresholds");
  }
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());

  ThresholdResult best;
  best.threshold = sorted.back() + 1.0;  // predict-nothing fallback
  best.metrics = EvaluateAtThreshold(scores, labels, best.threshold,
                                     point_adjust);
  for (int i = 0; i < num_candidates; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(num_candidates);
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    // Thresholds sit just below each candidate score so that the candidate
    // itself is predicted anomalous.
    const double threshold =
        sorted[idx] - 1e-12 * (1.0 + std::fabs(sorted[idx]));
    const PrMetrics m =
        EvaluateAtThreshold(scores, labels, threshold, point_adjust);
    if (m.f1 > best.metrics.f1) {
      best.threshold = threshold;
      best.metrics = m;
    }
  }
  return best;
}

PrMetrics MacroAverage(const std::vector<PrMetrics>& per_service) {
  PrMetrics avg;
  if (per_service.empty()) return avg;
  for (const PrMetrics& m : per_service) {
    avg.precision += m.precision;
    avg.recall += m.recall;
    avg.f1 += m.f1;
  }
  const double n = static_cast<double>(per_service.size());
  avg.precision /= n;
  avg.recall /= n;
  avg.f1 /= n;
  return avg;
}

}  // namespace mace::eval
