#ifndef MACE_EVAL_METRICS_H_
#define MACE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mace::eval {

/// \brief Binary confusion counts.
struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tn = 0;
};

/// \brief Precision / recall / F1 (Eq. 12-14 of the paper).
struct PrMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Derives precision/recall/F1 from counts (0 where undefined).
PrMetrics FromConfusion(const Confusion& confusion);

/// Confusion counts of per-step predictions vs labels (equal sizes).
Confusion Confuse(const std::vector<uint8_t>& predictions,
                  const std::vector<uint8_t>& labels);

/// \brief Point-adjust protocol (Xu et al., WWW'18; standard for
/// SMD/SMAP-style evaluation): when any step inside a contiguous true
/// anomaly segment is predicted, the whole segment counts as detected.
std::vector<uint8_t> PointAdjust(const std::vector<uint8_t>& predictions,
                                 const std::vector<uint8_t>& labels);

/// Metrics of thresholded scores at a fixed threshold.
PrMetrics EvaluateAtThreshold(const std::vector<double>& scores,
                              const std::vector<uint8_t>& labels,
                              double threshold, bool point_adjust = true);

/// \brief Result of a threshold sweep.
struct ThresholdResult {
  double threshold = 0.0;
  PrMetrics metrics;
};

/// \brief Best-F1 threshold search over score quantiles, the protocol used
/// by this line of papers for headline tables. `point_adjust` selects the
/// point-adjusted variant.
Result<ThresholdResult> BestF1Threshold(const std::vector<double>& scores,
                                        const std::vector<uint8_t>& labels,
                                        bool point_adjust = true,
                                        int num_candidates = 200);

/// Averages metrics across services (macro average, as in Tables V-VIII).
PrMetrics MacroAverage(const std::vector<PrMetrics>& per_service);

}  // namespace mace::eval

#endif  // MACE_EVAL_METRICS_H_
