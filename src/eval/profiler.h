#ifndef MACE_EVAL_PROFILER_H_
#define MACE_EVAL_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mace::eval {

/// \brief Wall-clock stopwatch for training/inference timing (Fig 6a).
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Resource footprint of one detector on one workload.
struct ResourceUsage {
  std::string method;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  int64_t parameter_count = 0;
  int64_t memory_bytes = 0;
};

/// \brief Estimated training memory of a model: parameters, gradients and
/// Adam moments (4 copies) plus an activation workspace proportional to
/// the largest activation volume.
int64_t EstimateTrainingMemoryBytes(int64_t parameter_count,
                                    int64_t peak_activation_elements);

/// Renders a usage table (method, train s, infer s, params, memory MB).
std::string FormatUsageTable(const std::vector<ResourceUsage>& rows);

}  // namespace mace::eval

#endif  // MACE_EVAL_PROFILER_H_
