#include "eval/profiler.h"

#include <cstdio>
#include <sstream>

namespace mace::eval {

int64_t EstimateTrainingMemoryBytes(int64_t parameter_count,
                                    int64_t peak_activation_elements) {
  constexpr int64_t kBytesPerScalar = 8;  // double precision
  // weights + grads + Adam m/v.
  const int64_t parameter_bytes = 4 * parameter_count * kBytesPerScalar;
  // forward activations + their gradients.
  const int64_t activation_bytes =
      2 * peak_activation_elements * kBytesPerScalar;
  return parameter_bytes + activation_bytes;
}

std::string FormatUsageTable(const std::vector<ResourceUsage>& rows) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s %12s %12s %10s %12s\n",
                "method", "train_s", "infer_s", "params", "memory_MB");
  out << line;
  for (const ResourceUsage& r : rows) {
    std::snprintf(line, sizeof(line), "%-22s %12.3f %12.4f %10lld %12.3f\n",
                  r.method.c_str(), r.train_seconds, r.infer_seconds,
                  static_cast<long long>(r.parameter_count),
                  static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0));
    out << line;
  }
  return out.str();
}

}  // namespace mace::eval
