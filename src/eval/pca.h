#ifndef MACE_EVAL_PCA_H_
#define MACE_EVAL_PCA_H_

#include <vector>

#include "common/result.h"

namespace mace::eval {

/// \brief Result of a principal-component projection.
struct PcaProjection {
  /// Projected points, one row per input row, `components` columns.
  std::vector<std::vector<double>> points;
  /// Variance explained by each kept component.
  std::vector<double> explained_variance;
};

/// \brief Projects rows of `data` onto the top principal components
/// (power iteration with deflation on the covariance matrix).
///
/// Used for the Fig 1(a) service-scatter visualization. Requires at least
/// 2 rows and `components` <= feature count.
Result<PcaProjection> Pca(const std::vector<std::vector<double>>& data,
                          int components, int max_iterations = 300);

}  // namespace mace::eval

#endif  // MACE_EVAL_PCA_H_
