#include "eval/pca.h"

#include <cmath>

#include "common/check.h"

namespace mace::eval {
namespace {

/// One power-iteration eigenpair of a symmetric matrix.
void PowerIteration(const std::vector<std::vector<double>>& matrix,
                    int max_iterations, std::vector<double>* eigenvector,
                    double* eigenvalue) {
  const size_t d = matrix.size();
  std::vector<double>& v = *eigenvector;
  v.assign(d, 1.0 / std::sqrt(static_cast<double>(d)));
  // Deterministic perturbation to avoid starting orthogonal to the top
  // eigenvector.
  for (size_t i = 0; i < d; ++i) v[i] += 1e-3 * static_cast<double>(i % 7);

  std::vector<double> next(d);
  double lambda = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    for (size_t i = 0; i < d; ++i) {
      double acc = 0.0;
      for (size_t j = 0; j < d; ++j) acc += matrix[i][j] * v[j];
      next[i] = acc;
    }
    double norm = 0.0;
    for (double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-15) {
      lambda = 0.0;
      break;
    }
    for (size_t i = 0; i < d; ++i) next[i] /= norm;
    v = next;
    // Rayleigh quotient.
    double new_lambda = 0.0;
    for (size_t i = 0; i < d; ++i) {
      double acc = 0.0;
      for (size_t j = 0; j < d; ++j) acc += matrix[i][j] * v[j];
      new_lambda += v[i] * acc;
    }
    if (std::fabs(new_lambda - lambda) < 1e-12 * (1.0 + std::fabs(lambda))) {
      lambda = new_lambda;
      break;
    }
    lambda = new_lambda;
  }
  *eigenvalue = lambda;
}

}  // namespace

Result<PcaProjection> Pca(const std::vector<std::vector<double>>& data,
                          int components, int max_iterations) {
  if (data.size() < 2) {
    return Status::InvalidArgument("PCA needs at least 2 rows");
  }
  const size_t d = data.front().size();
  if (components <= 0 || static_cast<size_t>(components) > d) {
    return Status::InvalidArgument("invalid component count");
  }
  for (const auto& row : data) {
    if (row.size() != d) {
      return Status::InvalidArgument("ragged PCA input");
    }
  }
  const size_t n = data.size();

  // Column means.
  std::vector<double> mean(d, 0.0);
  for (const auto& row : data) {
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);

  // Covariance matrix.
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& row : data) {
    for (size_t i = 0; i < d; ++i) {
      const double di = row[i] - mean[i];
      for (size_t j = i; j < d; ++j) {
        cov[i][j] += di * (row[j] - mean[j]);
      }
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov[i][j] /= static_cast<double>(n - 1);
      cov[j][i] = cov[i][j];
    }
  }

  PcaProjection projection;
  projection.points.assign(n, std::vector<double>(
                                  static_cast<size_t>(components), 0.0));
  std::vector<std::vector<double>> eigenvectors;
  for (int c = 0; c < components; ++c) {
    std::vector<double> v;
    double lambda = 0.0;
    PowerIteration(cov, max_iterations, &v, &lambda);
    projection.explained_variance.push_back(std::max(lambda, 0.0));
    eigenvectors.push_back(v);
    // Deflate: cov -= lambda v v^T.
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        cov[i][j] -= lambda * v[i] * v[j];
      }
    }
  }

  for (size_t r = 0; r < n; ++r) {
    for (int c = 0; c < components; ++c) {
      double acc = 0.0;
      for (size_t j = 0; j < d; ++j) {
        acc += (data[r][j] - mean[j]) * eigenvectors[static_cast<size_t>(c)][j];
      }
      projection.points[r][static_cast<size_t>(c)] = acc;
    }
  }
  return projection;
}

}  // namespace mace::eval
