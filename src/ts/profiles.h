#ifndef MACE_TS_PROFILES_H_
#define MACE_TS_PROFILES_H_

#include <string>

#include "common/rng.h"
#include "ts/generator.h"
#include "ts/time_series.h"

namespace mace::ts {

/// \brief Recipe for one synthetic benchmark dataset.
///
/// Profiles substitute for the paper's proprietary/unshipped datasets; the
/// knobs are matched to each dataset's published statistics (anomaly ratio,
/// normal-pattern diversity per Fig 5(a), point-anomaly share per Fig 5(b)).
struct DatasetProfile {
  std::string name;
  int num_services = 20;
  int num_features = 5;
  size_t train_length = 1200;
  size_t test_length = 800;
  double anomaly_ratio = 0.05;
  /// Share of anomaly events injected as point spikes.
  double point_fraction = 0.3;
  /// Length bounds of non-point anomaly segments.
  size_t min_segment = 8;
  size_t max_segment = 40;
  /// 0 = all services share one normal pattern; 1 = maximally diverse.
  double pattern_diversity = 0.5;
  /// Waveform families services draw from (empty = all four). SMAP-like
  /// telemetry is smooth; MC-like batch workloads are bursty.
  std::vector<WaveformKind> waveform_pool;
  double noise_stddev = 0.05;
  uint64_t seed = 1;
};

/// Server Machine Dataset stand-in: most diverse patterns, 4.16 % anomalies.
DatasetProfile SmdProfile();
/// JumpStarter J-D1 stand-in: moderately diverse, 5.25 % anomalies.
DatasetProfile Jd1Profile();
/// JumpStarter J-D2 stand-in: most similar patterns, 20.26 % anomalies.
DatasetProfile Jd2Profile();
/// SMAP stand-in: mostly point anomalies, 13.13 % anomalies.
DatasetProfile SmapProfile();
/// MC (cloud-provider) stand-in: substantial point anomalies, 3.6 %.
DatasetProfile McProfile();

/// All five profiles in paper order.
std::vector<DatasetProfile> AllProfiles();

/// Samples the normal pattern of service `service_index` under a profile's
/// diversity setting (deterministic given the profile seed).
NormalPattern SamplePattern(const DatasetProfile& profile, int service_index,
                            Rng* rng);

/// Generates the full dataset: per service a normal train split and a
/// labeled test split with injected anomalies.
Dataset GenerateDataset(const DatasetProfile& profile);

/// Convenience: services [group * size, (group+1) * size) of a dataset.
std::vector<ServiceData> ServiceGroup(const Dataset& dataset, int group,
                                      int group_size = 10);

}  // namespace mace::ts

#endif  // MACE_TS_PROFILES_H_
