#include "ts/profiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mace::ts {
namespace {

/// Blends a shared "anchor" draw with a per-service draw according to the
/// diversity knob: low diversity keeps every service near the anchor.
double Blend(double anchor, double individual, double diversity) {
  return anchor * (1.0 - diversity) + individual * diversity;
}

}  // namespace

DatasetProfile SmdProfile() {
  DatasetProfile p;
  p.name = "SMD";
  p.num_services = 20;
  p.num_features = 5;
  p.anomaly_ratio = 0.0416;
  p.point_fraction = 0.25;
  p.pattern_diversity = 0.95;
  p.seed = 0xA11CE;
  return p;
}

DatasetProfile Jd1Profile() {
  DatasetProfile p;
  p.name = "J-D1";
  p.num_services = 20;
  p.num_features = 6;
  p.anomaly_ratio = 0.0525;
  p.point_fraction = 0.30;
  p.pattern_diversity = 0.55;
  p.seed = 0xBEEF1;
  return p;
}

DatasetProfile Jd2Profile() {
  DatasetProfile p;
  p.name = "J-D2";
  p.num_services = 20;
  p.num_features = 6;
  p.anomaly_ratio = 0.2026;
  p.point_fraction = 0.20;
  p.pattern_diversity = 0.10;
  p.seed = 0xBEEF2;
  return p;
}

DatasetProfile SmapProfile() {
  DatasetProfile p;
  p.name = "SMAP";
  p.num_services = 20;
  p.num_features = 4;
  p.anomaly_ratio = 0.1313;
  p.waveform_pool = {WaveformKind::kSinusoid, WaveformKind::kSawtooth,
                     WaveformKind::kSquare};
  p.point_fraction = 0.45;
  p.min_segment = 12;
  p.max_segment = 48;
  p.pattern_diversity = 0.60;
  p.seed = 0x5A7;
  return p;
}

DatasetProfile McProfile() {
  DatasetProfile p;
  p.name = "MC";
  p.num_services = 20;
  p.num_features = 5;
  p.anomaly_ratio = 0.036;
  p.waveform_pool = {WaveformKind::kSinusoid, WaveformKind::kSquare,
                     WaveformKind::kSawtooth};
  p.point_fraction = 0.80;
  p.pattern_diversity = 0.50;
  p.seed = 0xC10D;
  return p;
}

std::vector<DatasetProfile> AllProfiles() {
  return {SmdProfile(), Jd1Profile(), Jd2Profile(), SmapProfile(),
          McProfile()};
}

NormalPattern SamplePattern(const DatasetProfile& profile, int service_index,
                            Rng* rng) {
  MACE_CHECK(rng != nullptr);
  const double diversity = profile.pattern_diversity;

  // Anchor draws are deterministic per dataset (not per service) so that
  // diversity -> 0 collapses all services onto one pattern.
  Rng anchor_rng(profile.seed * 7919 + 13);
  const double anchor_cycles = anchor_rng.Uniform(1.5, 4.5);
  const double anchor_amp = anchor_rng.Uniform(0.8, 1.4);
  std::vector<WaveformKind> pool = profile.waveform_pool;
  if (pool.empty()) {
    pool = {WaveformKind::kSinusoid, WaveformKind::kSquare,
            WaveformKind::kSawtooth, WaveformKind::kSpikyPeriodic};
  }
  const WaveformKind anchor_kind =
      pool[anchor_rng.UniformInt(pool.size())];

  NormalPattern pattern;
  // Cycles per 40-step window: the dominant Fourier base index. Diverse
  // datasets spread services across 1..10 cycles; similar datasets stay
  // near the anchor. Cycles are snapped near integers (service metrics are
  // sampled so that windows hold whole periods) with a small drift so each
  // spectral line concentrates in 1-2 bins.
  const double individual_cycles = rng->Uniform(1.0, 10.0);
  const double cycles = std::max(
      1.0, std::round(Blend(anchor_cycles, individual_cycles, diversity)) +
               rng->Uniform(-0.06, 0.06));
  pattern.period = 40.0 / cycles;

  if (rng->Uniform() < diversity) {
    pattern.kind = pool[rng->UniformInt(pool.size())];
  } else {
    pattern.kind = anchor_kind;
  }

  pattern.amplitude =
      Blend(anchor_amp, rng->Uniform(0.5, 2.0), diversity);
  pattern.level = Blend(0.0, rng->Uniform(-1.0, 1.0), diversity);
  pattern.trend_slope =
      diversity * rng->Uniform(-1.0, 1.0) * 1e-4;
  pattern.noise_stddev = profile.noise_stddev;

  // Rich harmonic content for the sinusoid family: real service metrics
  // carry several stable spectral lines, which is what makes a unified
  // low-capacity model blur across services.
  pattern.harmonic_weights = {1.0};
  if (pattern.kind == WaveformKind::kSinusoid) {
    const int extra = 1 + static_cast<int>(rng->UniformInt(3));  // 1-3
    for (int h = 0; h < extra; ++h) {
      pattern.harmonic_weights.push_back(rng->Uniform(0.15, 0.5));
    }
  }

  // A second independent spectral line, blended toward the anchor when the
  // dataset is homogeneous.
  const double anchor_secondary_cycles = anchor_rng.Uniform(5.0, 9.0);
  const double secondary_cycles = std::max(
      1.0, std::round(Blend(anchor_secondary_cycles,
                            rng->Uniform(2.0, 14.0), diversity)) +
               rng->Uniform(-0.06, 0.06));
  pattern.secondary_period = 40.0 / secondary_cycles;

  // Slow amplitude modulation: structured non-stationarity.
  pattern.am_depth = rng->Uniform(0.08, 0.18);
  pattern.am_period = rng->Uniform(4.0, 10.0) * 40.0;

  pattern.feature_weights.assign(
      static_cast<size_t>(profile.num_features), 1.0);
  pattern.feature_lags.assign(static_cast<size_t>(profile.num_features),
                              0.0);
  pattern.secondary_weights.assign(
      static_cast<size_t>(profile.num_features), 0.0);
  for (int f = 0; f < profile.num_features; ++f) {
    pattern.feature_weights[static_cast<size_t>(f)] =
        rng->Uniform(0.6, 1.2) * (rng->Bernoulli(0.15) ? -1.0 : 1.0);
    pattern.feature_lags[static_cast<size_t>(f)] =
        rng->Uniform(0.0, pattern.period * 0.25);
    pattern.secondary_weights[static_cast<size_t>(f)] =
        rng->Uniform(0.3, 0.8) * (rng->Bernoulli(0.3) ? -1.0 : 1.0);
  }
  (void)service_index;
  return pattern;
}

Dataset GenerateDataset(const DatasetProfile& profile) {
  MACE_CHECK(profile.num_services > 0 && profile.num_features > 0);
  Dataset dataset;
  dataset.name = profile.name;
  dataset.services.reserve(static_cast<size_t>(profile.num_services));

  AnomalyInjectionConfig inject;
  inject.anomaly_ratio = profile.anomaly_ratio;
  inject.point_fraction = profile.point_fraction;
  inject.min_segment = profile.min_segment;
  inject.max_segment = profile.max_segment;

  for (int s = 0; s < profile.num_services; ++s) {
    Rng rng(profile.seed + 1000003ULL * static_cast<uint64_t>(s + 1));
    const NormalPattern pattern = SamplePattern(profile, s, &rng);

    ServiceData service;
    service.name = profile.name + "-svc" + std::to_string(s);
    service.train =
        GenerateNormal(pattern, profile.train_length, /*t0=*/0, &rng);
    service.test = GenerateNormal(pattern, profile.test_length,
                                  /*t0=*/profile.train_length, &rng);
    InjectAnomalies(inject, pattern, &service.test, &rng);
    dataset.services.push_back(std::move(service));
  }
  return dataset;
}

std::vector<ServiceData> ServiceGroup(const Dataset& dataset, int group,
                                      int group_size) {
  MACE_CHECK(group >= 0 && group_size > 0);
  const size_t start = static_cast<size_t>(group) * group_size;
  MACE_CHECK(start < dataset.services.size())
      << "group " << group << " out of range";
  const size_t end =
      std::min(start + static_cast<size_t>(group_size),
               dataset.services.size());
  return std::vector<ServiceData>(dataset.services.begin() + start,
                                  dataset.services.begin() + end);
}

}  // namespace mace::ts
