#ifndef MACE_TS_SCALER_H_
#define MACE_TS_SCALER_H_

#include <vector>

#include "ts/time_series.h"

namespace mace::ts {

/// \brief Per-feature z-score normalization fitted on a training split.
class StandardScaler {
 public:
  /// Fits mean/stddev per feature; degenerate features get stddev 1.
  void Fit(const TimeSeries& series);

  /// Rebuilds a fitted scaler from stored moments (deserialization).
  static StandardScaler FromMoments(std::vector<double> means,
                                    std::vector<double> stddevs);

  /// Applies (x - mean) / stddev; labels pass through unchanged.
  TimeSeries Transform(const TimeSeries& series) const;

  /// Inverse map stddev * x + mean.
  TimeSeries InverseTransform(const TimeSeries& series) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// \brief Per-feature min-max scaling to [0, 1] fitted on a training split.
class MinMaxScaler {
 public:
  void Fit(const TimeSeries& series);
  TimeSeries Transform(const TimeSeries& series) const;

  bool fitted() const { return !mins_.empty(); }

 private:
  std::vector<double> mins_;
  std::vector<double> ranges_;
};

}  // namespace mace::ts

#endif  // MACE_TS_SCALER_H_
