#include "ts/scaler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mace::ts {

StandardScaler StandardScaler::FromMoments(std::vector<double> means,
                                           std::vector<double> stddevs) {
  MACE_CHECK(means.size() == stddevs.size() && !means.empty());
  for (double sd : stddevs) MACE_CHECK(sd > 0.0) << "stddev must be > 0";
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.stddevs_ = std::move(stddevs);
  return scaler;
}

void StandardScaler::Fit(const TimeSeries& series) {
  const int m = series.num_features();
  MACE_CHECK(m > 0 && series.length() > 0);
  means_.assign(static_cast<size_t>(m), 0.0);
  stddevs_.assign(static_cast<size_t>(m), 1.0);
  const double n = static_cast<double>(series.length());
  for (int f = 0; f < m; ++f) {
    double sum = 0.0;
    for (size_t t = 0; t < series.length(); ++t) sum += series.value(t, f);
    means_[static_cast<size_t>(f)] = sum / n;
  }
  for (int f = 0; f < m; ++f) {
    double acc = 0.0;
    const double mean = means_[static_cast<size_t>(f)];
    for (size_t t = 0; t < series.length(); ++t) {
      const double d = series.value(t, f) - mean;
      acc += d * d;
    }
    const double sd = std::sqrt(acc / n);
    stddevs_[static_cast<size_t>(f)] = sd > 1e-9 ? sd : 1.0;
  }
}

TimeSeries StandardScaler::Transform(const TimeSeries& series) const {
  MACE_CHECK(fitted());
  MACE_CHECK(series.num_features() == static_cast<int>(means_.size()));
  std::vector<std::vector<double>> values = series.values();
  for (auto& row : values) {
    for (size_t f = 0; f < row.size(); ++f) {
      row[f] = (row[f] - means_[f]) / stddevs_[f];
    }
  }
  return TimeSeries(std::move(values), series.labels());
}

TimeSeries StandardScaler::InverseTransform(const TimeSeries& series) const {
  MACE_CHECK(fitted());
  MACE_CHECK(series.num_features() == static_cast<int>(means_.size()));
  std::vector<std::vector<double>> values = series.values();
  for (auto& row : values) {
    for (size_t f = 0; f < row.size(); ++f) {
      row[f] = row[f] * stddevs_[f] + means_[f];
    }
  }
  return TimeSeries(std::move(values), series.labels());
}

void MinMaxScaler::Fit(const TimeSeries& series) {
  const int m = series.num_features();
  MACE_CHECK(m > 0 && series.length() > 0);
  mins_.assign(static_cast<size_t>(m),
               std::numeric_limits<double>::infinity());
  ranges_.assign(static_cast<size_t>(m), 1.0);
  std::vector<double> maxs(static_cast<size_t>(m),
                           -std::numeric_limits<double>::infinity());
  for (size_t t = 0; t < series.length(); ++t) {
    for (int f = 0; f < m; ++f) {
      mins_[static_cast<size_t>(f)] =
          std::min(mins_[static_cast<size_t>(f)], series.value(t, f));
      maxs[static_cast<size_t>(f)] =
          std::max(maxs[static_cast<size_t>(f)], series.value(t, f));
    }
  }
  for (int f = 0; f < m; ++f) {
    const double range =
        maxs[static_cast<size_t>(f)] - mins_[static_cast<size_t>(f)];
    ranges_[static_cast<size_t>(f)] = range > 1e-9 ? range : 1.0;
  }
}

TimeSeries MinMaxScaler::Transform(const TimeSeries& series) const {
  MACE_CHECK(fitted());
  MACE_CHECK(series.num_features() == static_cast<int>(mins_.size()));
  std::vector<std::vector<double>> values = series.values();
  for (auto& row : values) {
    for (size_t f = 0; f < row.size(); ++f) {
      row[f] = (row[f] - mins_[f]) / ranges_[f];
    }
  }
  return TimeSeries(std::move(values), series.labels());
}

}  // namespace mace::ts
