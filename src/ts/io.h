#ifndef MACE_TS_IO_H_
#define MACE_TS_IO_H_

#include <string>

#include "common/result.h"
#include "ts/time_series.h"

namespace mace::ts {

/// \brief Parses a time series from a CSV table: one row per step, one
/// column per feature. When `label_column` >= 0 that column holds 0/1
/// anomaly labels and is split out of the features.
Result<TimeSeries> TimeSeriesFromCsv(const std::string& path,
                                     int label_column = -1,
                                     bool has_header = true);

/// \brief Writes a time series as CSV (features f0..fN, plus a final
/// `label` column when the series is labeled).
Status TimeSeriesToCsv(const std::string& path, const TimeSeries& series);

/// \brief Loads one service from a directory laid out as
///   <dir>/train.csv           unlabeled training split
///   <dir>/test.csv            test split, last column = 0/1 label
/// The service name is taken from `name` (e.g., the directory basename).
Result<ServiceData> LoadServiceDir(const std::string& dir,
                                   const std::string& name);

/// \brief Saves a service into the LoadServiceDir layout (the directory
/// must already exist).
Status SaveServiceDir(const std::string& dir, const ServiceData& service);

}  // namespace mace::ts

#endif  // MACE_TS_IO_H_
