#ifndef MACE_TS_IO_H_
#define MACE_TS_IO_H_

#include <string>

#include "common/result.h"
#include "ts/sanitize.h"
#include "ts/time_series.h"

namespace mace::ts {

/// \brief Parses a time series from a CSV table: one row per step, one
/// column per feature. When `label_column` >= 0 that column holds 0/1
/// anomaly labels and is split out of the features.
///
/// `policy` decides what happens to literal nan/inf feature cells (they
/// parse as data, see common/csv.h): kReject errors naming the first one,
/// kImpute fills them (ts/sanitize.h), kPropagate loads them verbatim for
/// the scoring path to flag. Non-finite *label* cells are always an error.
Result<TimeSeries> TimeSeriesFromCsv(
    const std::string& path, int label_column = -1, bool has_header = true,
    NonFinitePolicy policy = NonFinitePolicy::kReject);

/// \brief Writes a time series as CSV (features f0..fN, plus a final
/// `label` column when the series is labeled).
Status TimeSeriesToCsv(const std::string& path, const TimeSeries& series);

/// \brief Loads one service from a directory laid out as
///   <dir>/train.csv           unlabeled training split
///   <dir>/test.csv            test split, last column = 0/1 label
/// The service name is taken from `name` (e.g., the directory basename).
/// `policy` applies to both splits' feature cells (see TimeSeriesFromCsv).
Result<ServiceData> LoadServiceDir(
    const std::string& dir, const std::string& name,
    NonFinitePolicy policy = NonFinitePolicy::kReject);

/// \brief Saves a service into the LoadServiceDir layout (the directory
/// must already exist).
Status SaveServiceDir(const std::string& dir, const ServiceData& service);

}  // namespace mace::ts

#endif  // MACE_TS_IO_H_
