#include "ts/time_series.h"

#include "common/check.h"

namespace mace::ts {

using tensor::Shape;
using tensor::Tensor;

TimeSeries::TimeSeries(std::vector<std::vector<double>> values,
                       std::vector<uint8_t> labels)
    : values_(std::move(values)), labels_(std::move(labels)) {
  if (!labels_.empty()) {
    MACE_CHECK(labels_.size() == values_.size())
        << "labels size " << labels_.size() << " vs values "
        << values_.size();
  }
  for (const auto& row : values_) {
    MACE_CHECK(row.size() == values_.front().size())
        << "ragged time series";
  }
}

double TimeSeries::AnomalyRatio() const {
  if (!has_labels() || values_.empty()) return 0.0;
  size_t count = 0;
  for (uint8_t l : labels_) count += l != 0;
  return static_cast<double>(count) / static_cast<double>(labels_.size());
}

std::vector<double> TimeSeries::Feature(int feature) const {
  MACE_CHECK(feature >= 0 && feature < num_features());
  std::vector<double> out(values_.size());
  for (size_t t = 0; t < values_.size(); ++t) {
    out[t] = values_[t][static_cast<size_t>(feature)];
  }
  return out;
}

TimeSeries TimeSeries::Slice(size_t start, size_t count) const {
  MACE_CHECK(start + count <= values_.size())
      << "slice [" << start << ", " << start + count << ") of series length "
      << values_.size();
  std::vector<std::vector<double>> values(values_.begin() + start,
                                          values_.begin() + start + count);
  std::vector<uint8_t> labels;
  if (has_labels()) {
    labels.assign(labels_.begin() + start, labels_.begin() + start + count);
  }
  return TimeSeries(std::move(values), std::move(labels));
}

Tensor WindowToTensor(const TimeSeries& series, size_t start, int window) {
  const int m = series.num_features();
  MACE_CHECK(start + static_cast<size_t>(window) <= series.length());
  std::vector<double> data(static_cast<size_t>(m) * window);
  for (int f = 0; f < m; ++f) {
    for (int t = 0; t < window; ++t) {
      data[static_cast<size_t>(f) * window + t] =
          series.value(start + static_cast<size_t>(t), f);
    }
  }
  return Tensor::FromVector(std::move(data), Shape{m, window});
}

Result<WindowBatch> MakeWindows(const TimeSeries& series, int window,
                                int stride) {
  if (window <= 0 || stride <= 0) {
    return Status::InvalidArgument("window and stride must be positive");
  }
  if (series.length() < static_cast<size_t>(window)) {
    return Status::InvalidArgument(
        "series of length " + std::to_string(series.length()) +
        " is shorter than window " + std::to_string(window));
  }
  WindowBatch batch;
  batch.window_length = window;
  for (size_t start = 0; start + window <= series.length();
       start += static_cast<size_t>(stride)) {
    batch.windows.push_back(WindowToTensor(series, start, window));
    batch.starts.push_back(start);
    uint8_t any = 0;
    if (series.has_labels()) {
      for (int t = 0; t < window; ++t) {
        if (series.is_anomaly(start + static_cast<size_t>(t))) {
          any = 1;
          break;
        }
      }
    }
    batch.any_anomaly.push_back(any);
  }
  return batch;
}

}  // namespace mace::ts
