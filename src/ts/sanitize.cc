#include "ts/sanitize.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mace::ts {
namespace {

/// "nan", "inf", "-inf" or the shortest round-trip decimal — error
/// messages must name the value without printf's locale quirks.
std::string FormatValue(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// Median of the finite values of one feature column (for leading gaps
/// that have no value to carry forward). Sorted-copy median: lower-middle
/// averaged with upper-middle for even counts, deterministic regardless
/// of input order.
double FiniteMedian(std::vector<double> finite) {
  std::sort(finite.begin(), finite.end());
  const size_t n = finite.size();
  if (n % 2 == 1) return finite[n / 2];
  return 0.5 * (finite[n / 2 - 1] + finite[n / 2]);
}

}  // namespace

const char* NonFinitePolicyName(NonFinitePolicy policy) {
  switch (policy) {
    case NonFinitePolicy::kReject:
      return "reject";
    case NonFinitePolicy::kImpute:
      return "impute";
    case NonFinitePolicy::kPropagate:
      return "propagate";
  }
  return "unknown";
}

Result<NonFinitePolicy> ParseNonFinitePolicy(const std::string& name) {
  if (name == "reject") return NonFinitePolicy::kReject;
  if (name == "impute") return NonFinitePolicy::kImpute;
  if (name == "propagate") return NonFinitePolicy::kPropagate;
  return Status::InvalidArgument(
      "unknown non-finite policy '" + name +
      "' (expected reject, impute, or propagate)");
}

NonFiniteValue FindNonFinite(const TimeSeries& series) {
  NonFiniteValue bad;
  const auto& values = series.values();
  for (size_t t = 0; t < values.size(); ++t) {
    for (size_t f = 0; f < values[t].size(); ++f) {
      if (!std::isfinite(values[t][f])) {
        bad.found = true;
        bad.step = t;
        bad.feature = static_cast<int>(f);
        bad.value = values[t][f];
        return bad;
      }
    }
  }
  return bad;
}

size_t CountNonFinite(const std::vector<double>& row) {
  size_t count = 0;
  for (double v : row) {
    if (!std::isfinite(v)) ++count;
  }
  return count;
}

std::string DescribeNonFinite(const NonFiniteValue& bad) {
  return FormatValue(bad.value) + " at step " + std::to_string(bad.step) +
         ", feature " + std::to_string(bad.feature);
}

Result<TimeSeries> SanitizeSeries(const TimeSeries& series,
                                  NonFinitePolicy policy,
                                  SanitizeStats* stats,
                                  std::vector<uint8_t>* contaminated_mask) {
  SanitizeStats local;
  std::vector<uint8_t> mask(series.length(), 0);
  const auto& values = series.values();
  for (size_t t = 0; t < values.size(); ++t) {
    if (CountNonFinite(values[t]) > 0) {
      mask[t] = 1;
      ++local.contaminated_steps;
    }
  }

  if (policy == NonFinitePolicy::kReject && local.contaminated_steps > 0) {
    return Status::InvalidArgument("series holds non-finite value " +
                                   DescribeNonFinite(FindNonFinite(series)) +
                                   " (non-finite policy 'reject')");
  }

  TimeSeries out = series;
  if (policy == NonFinitePolicy::kImpute && local.contaminated_steps > 0) {
    auto& rows = out.mutable_values();
    const int m = out.num_features();
    for (int f = 0; f < m; ++f) {
      const auto fi = static_cast<size_t>(f);
      std::vector<double> finite;
      finite.reserve(rows.size());
      for (const auto& row : rows) {
        if (std::isfinite(row[fi])) finite.push_back(row[fi]);
      }
      if (finite.empty()) {
        return Status::InvalidArgument(
            "feature " + std::to_string(f) +
            " holds no finite values to impute from "
            "(non-finite policy 'impute')");
      }
      if (finite.size() == rows.size()) continue;  // feature is clean
      // Carry the last finite value forward; leading gaps (nothing to
      // carry yet) take the feature's finite median.
      double last = FiniteMedian(std::move(finite));
      for (auto& row : rows) {
        if (std::isfinite(row[fi])) {
          last = row[fi];
        } else {
          row[fi] = last;
          ++local.values_imputed;
        }
      }
    }
  }

  if (stats != nullptr) *stats = local;
  if (contaminated_mask != nullptr) *contaminated_mask = std::move(mask);
  return out;
}

ObservationSanitizer::ObservationSanitizer(NonFinitePolicy policy,
                                           std::vector<double> fallback)
    : policy_(policy), fallback_(std::move(fallback)) {}

void ObservationSanitizer::Reset() { last_good_.clear(); }

void ObservationSanitizer::set_policy(NonFinitePolicy policy) {
  policy_ = policy;
  Reset();
}

Result<ObservationSanitizer::Outcome> ObservationSanitizer::Apply(
    std::vector<double>* row) {
  if (row->size() != fallback_.size()) {
    return Status::InvalidArgument("observation feature count mismatch");
  }
  Outcome outcome;
  for (size_t f = 0; f < row->size(); ++f) {
    if (std::isfinite((*row)[f])) continue;
    outcome.contaminated = true;
    if (policy_ == NonFinitePolicy::kReject) {
      NonFiniteValue bad;
      bad.found = true;
      bad.feature = static_cast<int>(f);
      bad.value = (*row)[f];
      return Status::InvalidArgument(
          "observation holds non-finite value " + FormatValue(bad.value) +
          " at feature " + std::to_string(bad.feature) +
          " (non-finite policy 'reject')");
    }
    (*row)[f] =
        last_good_.empty() ? fallback_[f] : last_good_[f];
    ++outcome.values_imputed;
  }
  // The (now fully finite) row becomes the carry-forward state — also
  // under kPropagate, so a later kImpute-style fill stays per-stream.
  last_good_ = *row;
  return outcome;
}

}  // namespace mace::ts
