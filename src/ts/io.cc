#include "ts/io.h"

#include <cmath>

#include "common/csv.h"

namespace mace::ts {

Result<TimeSeries> TimeSeriesFromCsv(const std::string& path,
                                     int label_column, bool has_header,
                                     NonFinitePolicy policy) {
  MACE_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, has_header));
  if (table.rows.empty()) {
    return Status::InvalidArgument("'" + path + "' holds no data rows");
  }
  const int cols = static_cast<int>(table.rows.front().size());
  if (label_column >= cols) {
    return Status::InvalidArgument("label column out of range");
  }
  const int resolved_label =
      label_column < 0 ? -1 : (label_column + cols) % cols;

  std::vector<std::vector<double>> values;
  std::vector<uint8_t> labels;
  values.reserve(table.rows.size());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const std::vector<double>& row = table.rows[r];
    std::vector<double> features;
    features.reserve(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      if (c == resolved_label) {
        const double l = row[static_cast<size_t>(c)];
        if (l != 0.0 && l != 1.0) {
          return Status::InvalidArgument(
              "row " + std::to_string(r) + ": label must be 0 or 1, got " +
              std::to_string(l));
        }
        labels.push_back(static_cast<uint8_t>(l));
      } else {
        features.push_back(row[static_cast<size_t>(c)]);
      }
    }
    if (features.empty()) {
      return Status::InvalidArgument("no feature columns");
    }
    values.push_back(std::move(features));
  }
  TimeSeries series(std::move(values), std::move(labels));
  Result<TimeSeries> sanitized = SanitizeSeries(series, policy);
  if (!sanitized.ok()) {
    // Prefix the file, so a multi-file load names the split that broke.
    return Status::InvalidArgument("'" + path +
                                   "': " + sanitized.status().message());
  }
  return std::move(sanitized).value();
}

Status TimeSeriesToCsv(const std::string& path, const TimeSeries& series) {
  CsvTable table;
  for (int f = 0; f < series.num_features(); ++f) {
    table.columns.push_back("f" + std::to_string(f));
  }
  if (series.has_labels()) table.columns.push_back("label");
  table.rows.reserve(series.length());
  for (size_t t = 0; t < series.length(); ++t) {
    std::vector<double> row = series.values()[t];
    if (series.has_labels()) {
      row.push_back(series.is_anomaly(t) ? 1.0 : 0.0);
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, table);
}

Result<ServiceData> LoadServiceDir(const std::string& dir,
                                   const std::string& name,
                                   NonFinitePolicy policy) {
  ServiceData service;
  service.name = name;
  MACE_ASSIGN_OR_RETURN(
      service.train,
      TimeSeriesFromCsv(dir + "/train.csv", -1, true, policy));
  // test.csv carries the 0/1 label in its last column.
  MACE_ASSIGN_OR_RETURN(CsvTable header_probe,
                        ReadCsvFile(dir + "/test.csv", true));
  if (header_probe.rows.empty()) {
    return Status::InvalidArgument("'" + dir + "/test.csv' is empty");
  }
  const int cols = static_cast<int>(header_probe.rows.front().size());
  MACE_ASSIGN_OR_RETURN(
      service.test,
      TimeSeriesFromCsv(dir + "/test.csv", cols - 1, true, policy));
  if (service.train.num_features() != service.test.num_features()) {
    return Status::InvalidArgument(
        "train/test feature counts differ in '" + dir + "'");
  }
  return service;
}

Status SaveServiceDir(const std::string& dir, const ServiceData& service) {
  MACE_RETURN_IF_ERROR(TimeSeriesToCsv(dir + "/train.csv", service.train));
  if (!service.test.has_labels()) {
    return Status::InvalidArgument(
        "service test split must be labeled for the directory layout");
  }
  return TimeSeriesToCsv(dir + "/test.csv", service.test);
}

}  // namespace mace::ts
