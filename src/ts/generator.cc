#include "ts/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mace::ts {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Latent seasonal driver at (continuous) step t for a pattern.
double LatentValue(const NormalPattern& p, double t) {
  double value = 0.0;
  switch (p.kind) {
    case WaveformKind::kSinusoid: {
      for (size_t h = 0; h < p.harmonic_weights.size(); ++h) {
        const double freq = static_cast<double>(h + 1) / p.period;
        value += p.harmonic_weights[h] * std::sin(kTwoPi * freq * t);
      }
      break;
    }
    case WaveformKind::kSquare: {
      // Band-limited square wave: odd harmonics 1/k.
      for (int k = 1; k <= 7; k += 2) {
        value += std::sin(kTwoPi * k * t / p.period) / k;
      }
      value *= 4.0 / std::numbers::pi;
      break;
    }
    case WaveformKind::kSawtooth: {
      // Band-limited sawtooth: harmonics (-1)^{k+1}/k.
      for (int k = 1; k <= 6; ++k) {
        value += (k % 2 == 1 ? 1.0 : -1.0) *
                 std::sin(kTwoPi * k * t / p.period) / k;
      }
      value *= 2.0 / std::numbers::pi;
      break;
    }
    case WaveformKind::kSpikyPeriodic: {
      // Narrow periodic bursts: a raised-cosine bump each period.
      // fmod keeps the sign of t, so wrap negative phases (reachable when
      // a feature lag exceeds t0) back into [0, 1) — otherwise every
      // negative step fails `phase < width` into the baseline branch one
      // period early, breaking periodicity across t = 0.
      double phase = std::fmod(t, p.period) / p.period;
      if (phase < 0.0) phase += 1.0;
      const double width = 0.08;
      if (phase < width) {
        value = 0.5 * (1.0 - std::cos(kTwoPi * phase / width));
      } else {
        value = 0.0;
      }
      value = 2.0 * value - 0.3;  // mostly-low baseline with tall bumps
      break;
    }
  }
  return value;
}

}  // namespace

const char* WaveformKindName(WaveformKind kind) {
  switch (kind) {
    case WaveformKind::kSinusoid:
      return "sinusoid";
    case WaveformKind::kSquare:
      return "square";
    case WaveformKind::kSawtooth:
      return "sawtooth";
    case WaveformKind::kSpikyPeriodic:
      return "spiky_periodic";
  }
  return "?";
}

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kPointSpike:
      return "point_spike";
    case AnomalyKind::kLevelShift:
      return "level_shift";
    case AnomalyKind::kAmplitudeBurst:
      return "amplitude_burst";
    case AnomalyKind::kFrequencyShift:
      return "frequency_shift";
    case AnomalyKind::kNoiseBurst:
      return "noise_burst";
  }
  return "?";
}

bool IsPointAnomaly(AnomalyKind kind) {
  return kind == AnomalyKind::kPointSpike;
}

TimeSeries GenerateNormal(const NormalPattern& pattern, size_t length,
                          size_t t0, Rng* rng) {
  MACE_CHECK(rng != nullptr);
  MACE_CHECK(!pattern.feature_weights.empty());
  MACE_CHECK(pattern.feature_weights.size() == pattern.feature_lags.size());
  MACE_CHECK(pattern.period >= 2.0) << "period too short";
  const size_t m = pattern.feature_weights.size();
  const bool has_secondary =
      pattern.secondary_weights.size() == m && pattern.secondary_period >= 2.0;
  std::vector<std::vector<double>> values(length, std::vector<double>(m));
  for (size_t t = 0; t < length; ++t) {
    const double step = static_cast<double>(t0 + t);
    const double envelope =
        1.0 + pattern.am_depth *
                  std::sin(kTwoPi * step / std::max(pattern.am_period, 4.0));
    for (size_t f = 0; f < m; ++f) {
      double latent =
          pattern.feature_weights[f] *
          LatentValue(pattern, step - pattern.feature_lags[f]);
      if (has_secondary) {
        latent += pattern.secondary_weights[f] *
                  std::sin(kTwoPi * (step - 2.0 * pattern.feature_lags[f]) /
                           pattern.secondary_period);
      }
      values[t][f] = pattern.level + pattern.amplitude * envelope * latent +
                     pattern.trend_slope * step +
                     rng->Gaussian(0.0, pattern.noise_stddev);
    }
  }
  return TimeSeries(std::move(values));
}

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone:
      return "none";
    case DriftKind::kTrendDrift:
      return "trend_drift";
    case DriftKind::kSeasonalityShift:
      return "seasonality_shift";
    case DriftKind::kAmplitudeDecay:
      return "amplitude_decay";
  }
  return "?";
}

TimeSeries GenerateDriftingNormal(const NormalPattern& pattern, size_t length,
                                  size_t t0, const DriftScenario& drift,
                                  Rng* rng) {
  if (drift.kind == DriftKind::kNone) {
    return GenerateNormal(pattern, length, t0, rng);
  }
  MACE_CHECK(rng != nullptr);
  MACE_CHECK(!pattern.feature_weights.empty());
  MACE_CHECK(pattern.feature_weights.size() == pattern.feature_lags.size());
  MACE_CHECK(pattern.period >= 2.0) << "period too short";
  MACE_CHECK(drift.magnitude > -1.0) << "drift magnitude must keep period > 0";
  const size_t m = pattern.feature_weights.size();
  const bool has_secondary =
      pattern.secondary_weights.size() == m && pattern.secondary_period >= 2.0;
  const double ramp = static_cast<double>(std::max<size_t>(1, drift.ramp));
  // Drifted seasonal clock: advances one nominal step per real step while
  // the instantaneous period equals the nominal one, proportionally
  // slower as the period stretches — so the waveform stays
  // phase-continuous through the onset and only its frequency migrates.
  double t_eff = static_cast<double>(t0);
  std::vector<std::vector<double>> values(length, std::vector<double>(m));
  for (size_t t = 0; t < length; ++t) {
    const double step = static_cast<double>(t0 + t);
    const double past =
        step <= static_cast<double>(drift.onset)
            ? 0.0
            : step - static_cast<double>(drift.onset);
    const double strength = std::min(1.0, past / ramp);
    const double envelope =
        1.0 + pattern.am_depth *
                  std::sin(kTwoPi * step / std::max(pattern.am_period, 4.0));
    double amplitude = pattern.amplitude;
    double level_offset = 0.0;
    if (drift.kind == DriftKind::kAmplitudeDecay) {
      amplitude *= std::max(0.05, 1.0 - drift.magnitude * strength);
    } else if (drift.kind == DriftKind::kTrendDrift) {
      // Uncapped: a trend keeps going. `magnitude` amplitudes per ramp.
      level_offset = drift.magnitude * pattern.amplitude * (past / ramp);
    }
    for (size_t f = 0; f < m; ++f) {
      double latent = pattern.feature_weights[f] *
                      LatentValue(pattern, t_eff - pattern.feature_lags[f]);
      if (has_secondary) {
        latent += pattern.secondary_weights[f] *
                  std::sin(kTwoPi * (t_eff - 2.0 * pattern.feature_lags[f]) /
                           pattern.secondary_period);
      }
      values[t][f] = pattern.level + level_offset +
                     amplitude * envelope * latent +
                     pattern.trend_slope * step +
                     rng->Gaussian(0.0, pattern.noise_stddev);
    }
    const double period_factor =
        drift.kind == DriftKind::kSeasonalityShift
            ? 1.0 + drift.magnitude * strength
            : 1.0;
    t_eff += 1.0 / period_factor;
  }
  return TimeSeries(std::move(values));
}

namespace {

/// Break strength at (series-relative) step t: 0 outside the break, 1 in
/// its core, ramping linearly over the edge steps.
double BreakStrength(size_t t, const ChannelBreakScenario& scenario) {
  if (scenario.length == 0 || t < scenario.start ||
      t >= scenario.start + scenario.length) {
    return 0.0;
  }
  const double ramp = static_cast<double>(
      std::max<size_t>(1, std::min(scenario.ramp, scenario.length / 2)));
  const double in = static_cast<double>(t - scenario.start) + 1.0;
  const double out =
      static_cast<double>(scenario.start + scenario.length - t);
  return std::min({1.0, in / ramp, out / ramp});
}

}  // namespace

TimeSeries GenerateCorrelatedChannelBreak(
    const NormalPattern& pattern, size_t length, size_t t0,
    const std::vector<ChannelBreakScenario>& breaks, Rng* rng) {
  MACE_CHECK(rng != nullptr);
  MACE_CHECK(!pattern.feature_weights.empty());
  MACE_CHECK(pattern.feature_weights.size() == pattern.feature_lags.size());
  MACE_CHECK(pattern.period >= 2.0) << "period too short";
  const size_t m = pattern.feature_weights.size();
  const bool has_secondary =
      pattern.secondary_weights.size() == m && pattern.secondary_period >= 2.0;
  std::vector<std::vector<double>> values(length, std::vector<double>(m));
  std::vector<uint8_t> labels(length, 0);
  for (size_t t = 0; t < length; ++t) {
    const double step = static_cast<double>(t0 + t);
    // Breaks are positioned in SERIES coordinates (t, not t0 + t), like
    // anomaly events, so a caller slices train/test phases with t0 while
    // placing breaks where they appear in the generated split.
    double shift = 0.0;
    for (const ChannelBreakScenario& scenario : breaks) {
      const double strength = BreakStrength(t, scenario);
      if (strength > 0.0) {
        labels[t] = 1;
        shift += strength * scenario.phase_shift * pattern.period;
      }
    }
    const double envelope =
        1.0 + pattern.am_depth *
                  std::sin(kTwoPi * step / std::max(pattern.am_period, 4.0));
    for (size_t f = 0; f < m; ++f) {
      // Channel 0 stays anchored; the others decohere by `shift` steps.
      const double clock =
          f == 0 ? step - pattern.feature_lags[f]
                 : step - pattern.feature_lags[f] - shift;
      double latent = pattern.feature_weights[f] * LatentValue(pattern, clock);
      if (has_secondary) {
        const double secondary_clock =
            f == 0 ? step - 2.0 * pattern.feature_lags[f]
                   : step - 2.0 * pattern.feature_lags[f] - shift;
        latent += pattern.secondary_weights[f] *
                  std::sin(kTwoPi * secondary_clock / pattern.secondary_period);
      }
      values[t][f] = pattern.level + pattern.amplitude * envelope * latent +
                     pattern.trend_slope * step +
                     rng->Gaussian(0.0, pattern.noise_stddev);
    }
  }
  return TimeSeries(std::move(values), std::move(labels));
}

std::vector<AnomalyEvent> InjectAnomalies(
    const AnomalyInjectionConfig& config, const NormalPattern& pattern,
    TimeSeries* series, Rng* rng) {
  MACE_CHECK(series != nullptr && rng != nullptr);
  MACE_CHECK(config.anomaly_ratio >= 0.0 && config.anomaly_ratio < 1.0);
  const size_t length = series->length();
  const size_t m = static_cast<size_t>(series->num_features());
  if (series->mutable_labels().empty()) {
    series->mutable_labels().assign(length, 0);
  }
  const auto target =
      static_cast<size_t>(config.anomaly_ratio * static_cast<double>(length));

  std::vector<AnomalyEvent> events;
  size_t labeled = 0;
  int attempts = 0;
  const int max_attempts = 10000;
  while (labeled < target && attempts++ < max_attempts) {
    AnomalyEvent event;
    const bool point = rng->Bernoulli(config.point_fraction);
    if (point) {
      event.kind = AnomalyKind::kPointSpike;
      event.length = 1 + rng->UniformInt(2);  // 1-2 steps
    } else {
      const int kinds[] = {1, 2, 3, 4};
      event.kind = static_cast<AnomalyKind>(
          kinds[rng->UniformInt(4)]);
      // Guard the size_t subtraction: max_segment < min_segment would
      // underflow into a near-2^64 span and UniformInt would then draw
      // absurd segment lengths. Degenerate configs collapse to
      // min_segment-length events.
      const size_t span = config.max_segment >= config.min_segment
                              ? config.max_segment - config.min_segment + 1
                              : 1;
      event.length = config.min_segment + rng->UniformInt(span);
    }
    event.length = std::min<size_t>(event.length,
                                    target - labeled + 2);
    if (event.length == 0 || event.length >= length) continue;
    event.start = rng->UniformInt(length - event.length);
    event.magnitude =
        rng->Uniform(config.min_magnitude, config.max_magnitude);
    if (event.kind == AnomalyKind::kPointSpike) {
      event.magnitude *= config.point_boost;
    }
    if (rng->Bernoulli(0.5)) event.magnitude = -event.magnitude;

    // Skip events that would touch (or crowd) an existing anomaly, so
    // ratios stay accurate and events remain separable.
    const size_t guard_lo =
        event.start > config.min_gap ? event.start - config.min_gap : 0;
    const size_t guard_hi = std::min(
        length, event.start + event.length + config.min_gap);
    bool overlaps = false;
    for (size_t t = guard_lo; t < guard_hi; ++t) {
      if (series->is_anomaly(t)) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;

    auto& values = series->mutable_values();
    const double scale = pattern.amplitude;
    const double alien_period =
        std::max(2.5, pattern.period / rng->Uniform(2.5, 5.0));
    for (size_t t = event.start; t < event.start + event.length; ++t) {
      series->mutable_labels()[t] = 1;
      const double local =
          static_cast<double>(t - event.start);
      for (size_t f = 0; f < m; ++f) {
        switch (event.kind) {
          case AnomalyKind::kPointSpike:
          case AnomalyKind::kLevelShift:
            values[t][f] += event.magnitude * scale;
            break;
          case AnomalyKind::kAmplitudeBurst: {
            // Inflate (or dampen, for negative magnitudes) the seasonal
            // part by a factor bounded away from 1 so every burst is a
            // real anomaly.
            const double factor =
                event.magnitude > 0
                    ? 1.0 + 0.6 * event.magnitude
                    : 1.0 / (1.0 + 0.6 * -event.magnitude);
            values[t][f] =
                pattern.level + factor * (values[t][f] - pattern.level);
            break;
          }
          case AnomalyKind::kFrequencyShift:
            values[t][f] += event.magnitude * scale * 0.8 *
                            std::sin(kTwoPi * local / alien_period);
            break;
          case AnomalyKind::kNoiseBurst:
            values[t][f] += rng->Gaussian(
                0.0, std::fabs(event.magnitude) * scale * 0.7);
            break;
        }
      }
    }
    labeled += event.length;
    events.push_back(event);
  }
  return events;
}

}  // namespace mace::ts
