#ifndef MACE_TS_TIME_SERIES_H_
#define MACE_TS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace mace::ts {

/// \brief A multivariate time series with optional per-step anomaly labels.
///
/// values[t][f] is feature f at step t. labels is empty (all-normal) or has
/// one 0/1 entry per step.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::vector<std::vector<double>> values,
             std::vector<uint8_t> labels = {});

  size_t length() const { return values_.size(); }
  int num_features() const {
    return values_.empty() ? 0 : static_cast<int>(values_.front().size());
  }
  bool has_labels() const { return !labels_.empty(); }

  const std::vector<std::vector<double>>& values() const { return values_; }
  std::vector<std::vector<double>>& mutable_values() { return values_; }
  const std::vector<uint8_t>& labels() const { return labels_; }
  std::vector<uint8_t>& mutable_labels() { return labels_; }

  double value(size_t t, int feature) const {
    return values_[t][static_cast<size_t>(feature)];
  }
  bool is_anomaly(size_t t) const {
    return has_labels() && labels_[t] != 0;
  }

  /// Fraction of labeled-anomalous steps (0 when unlabeled).
  double AnomalyRatio() const;

  /// One feature as a flat vector.
  std::vector<double> Feature(int feature) const;

  /// Sub-series [start, start+count).
  TimeSeries Slice(size_t start, size_t count) const;

 private:
  std::vector<std::vector<double>> values_;
  std::vector<uint8_t> labels_;
};

/// \brief One monitored service: a training split (assumed normal) and a
/// labeled test split, sharing a normal pattern.
struct ServiceData {
  std::string name;
  TimeSeries train;
  TimeSeries test;
};

/// \brief A named collection of services (one of the benchmark datasets).
struct Dataset {
  std::string name;
  std::vector<ServiceData> services;
};

/// \brief Windows cut from a series, each as a [features, window] tensor
/// (channels-first, ready for Conv1d), with per-window label metadata.
struct WindowBatch {
  std::vector<tensor::Tensor> windows;     ///< each [m, T]
  std::vector<size_t> starts;              ///< start step of each window
  std::vector<uint8_t> any_anomaly;        ///< 1 when a window overlaps an anomaly
  int window_length = 0;
};

/// \brief Cuts sliding windows of `window` steps every `stride` steps.
/// Returns an error when the series is shorter than one window.
Result<WindowBatch> MakeWindows(const TimeSeries& series, int window,
                                int stride);

/// Converts one window [start, start+window) to a [m, window] tensor.
tensor::Tensor WindowToTensor(const TimeSeries& series, size_t start,
                              int window);

}  // namespace mace::ts

#endif  // MACE_TS_TIME_SERIES_H_
