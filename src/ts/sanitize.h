#ifndef MACE_TS_SANITIZE_H_
#define MACE_TS_SANITIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ts/time_series.h"

namespace mace::ts {

/// \brief What an ingestion surface does with a non-finite (NaN/Inf)
/// value — the repo-wide data-integrity contract (DESIGN.md §11).
///
/// Untreated, one NaN observation poisons scaler statistics, the DFT and
/// every downstream score with no detection anywhere, so every path that
/// accepts external data (CSV ingestion, Fit, streaming Push, the serve
/// frontend) resolves one of these policies explicitly.
enum class NonFinitePolicy {
  /// Fail the call with a descriptive Status; no state is mutated. The
  /// default everywhere: contamination is an error until a caller opts
  /// into a lossy treatment.
  kReject,
  /// Replace each non-finite value deterministically: last finite value
  /// of the same feature (carry-forward), or — when the feature has no
  /// prior finite value — the per-feature median of its finite values
  /// (batch) / the configured fallback row (streaming).
  kImpute,
  /// Keep the model clean but surface the gap: contaminated steps score
  /// quiet-NaN and are flagged, finite steps score normally. Windows
  /// covering a contaminated step never reach the model.
  kPropagate,
};

/// "reject" / "impute" / "propagate".
const char* NonFinitePolicyName(NonFinitePolicy policy);

/// Inverse of NonFinitePolicyName; unknown names are InvalidArgument.
Result<NonFinitePolicy> ParseNonFinitePolicy(const std::string& name);

/// \brief Location of the first non-finite value of a scan (step-major,
/// then feature) — the coordinates every kReject error message names.
struct NonFiniteValue {
  bool found = false;
  size_t step = 0;
  int feature = 0;
  double value = 0.0;
};

/// First non-finite value in the series, or found == false.
NonFiniteValue FindNonFinite(const TimeSeries& series);

/// Number of non-finite values in one observation row.
size_t CountNonFinite(const std::vector<double>& row);

/// "nan at step 12, feature 3" — the fragment kReject errors embed.
std::string DescribeNonFinite(const NonFiniteValue& bad);

/// Counts reported by SanitizeSeries (all zero on clean input).
struct SanitizeStats {
  size_t contaminated_steps = 0;  ///< steps holding >= 1 non-finite value
  size_t values_imputed = 0;      ///< values replaced (kImpute only)
};

/// \brief Applies `policy` to a whole series (batch surfaces: CSV
/// ingestion, Fit, offline Score).
///
/// kReject: error naming the first offending value; kImpute: returns a
/// copy with every non-finite value replaced (carry-forward, per-feature
/// median for leading gaps; a feature with no finite value at all is an
/// error); kPropagate: returns the series untouched — the caller owns
/// NaN-masking its scores. `contaminated_mask`, when non-null, receives
/// one 0/1 entry per step (1 = the step held a non-finite value) under
/// every policy that returns; labels always pass through unchanged.
Result<TimeSeries> SanitizeSeries(
    const TimeSeries& series, NonFinitePolicy policy,
    SanitizeStats* stats = nullptr,
    std::vector<uint8_t>* contaminated_mask = nullptr);

/// \brief Streaming counterpart of SanitizeSeries: applies the policy to
/// one observation row at a time, carrying last-good state across calls.
///
/// The fallback row imputes features that were never observed finite
/// (streaming has no future to take a median from); StreamingScorer uses
/// the service's fitted scaler means, which z-score to exactly 0.
class ObservationSanitizer {
 public:
  /// Outcome of one Apply on a row that passed the policy.
  struct Outcome {
    bool contaminated = false;  ///< the row held >= 1 non-finite value
    size_t values_imputed = 0;  ///< values replaced in the row
  };

  ObservationSanitizer(NonFinitePolicy policy, std::vector<double> fallback);

  /// Applies the policy in place. kReject returns an error on a
  /// contaminated row (the row and the carry-forward state stay
  /// untouched); kImpute/kPropagate replace non-finite values so the
  /// returned row is always fully finite — under kPropagate the caller
  /// uses `contaminated` to NaN-mask downstream scores. A row of the
  /// wrong width is an error under every policy.
  Result<Outcome> Apply(std::vector<double>* row);

  /// Drops the carry-forward state (a recycled session must not impute
  /// from the previous stream's values).
  void Reset();

  NonFinitePolicy policy() const { return policy_; }
  /// Switches the policy and resets the carry-forward state.
  void set_policy(NonFinitePolicy policy);

 private:
  NonFinitePolicy policy_;
  std::vector<double> fallback_;
  std::vector<double> last_good_;
};

}  // namespace mace::ts

#endif  // MACE_TS_SANITIZE_H_
