#ifndef MACE_TS_GENERATOR_H_
#define MACE_TS_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "ts/time_series.h"

namespace mace::ts {

/// Waveform family of a service's normal pattern.
enum class WaveformKind {
  kSinusoid,     ///< smooth single/multi-harmonic seasonality
  kSquare,       ///< square-ish wave (odd-harmonic rich)
  kSawtooth,     ///< ramp/reset (all-harmonic rich)
  kSpikyPeriodic ///< periodic bursts over a low baseline
};

/// \brief Parameters of one service's normal pattern.
///
/// Features share the latent seasonal drivers with per-feature mixing
/// weights and phase lags, modelling correlated service metrics (CPU,
/// memory, QPS, ...).
struct NormalPattern {
  WaveformKind kind = WaveformKind::kSinusoid;
  /// Fundamental period in steps (the dominant Fourier base).
  double period = 24.0;
  /// Relative strengths of harmonics 1, 2, 3, ... of the fundamental.
  std::vector<double> harmonic_weights = {1.0};
  double level = 0.0;        ///< constant offset
  double amplitude = 1.0;    ///< overall seasonal amplitude
  double trend_slope = 0.0;  ///< linear drift per step
  double noise_stddev = 0.05;
  /// A second, independent sinusoidal driver (another stable spectral
  /// line); weight 0 disables it.
  double secondary_period = 17.0;
  /// Slow amplitude-modulation envelope 1 + depth * sin(2 pi t / period):
  /// structured non-stationarity that enlarges the normal manifold without
  /// moving the dominant Fourier bases.
  double am_depth = 0.0;
  double am_period = 400.0;
  /// Per-feature mixing weight and phase lag (size = feature count).
  std::vector<double> feature_weights = {1.0};
  std::vector<double> feature_lags = {0.0};
  /// Per-feature weight of the secondary driver (empty = all zero).
  std::vector<double> secondary_weights;
};

/// Kinds of injected anomalies.
enum class AnomalyKind {
  kPointSpike,    ///< 1-2 step spike, up or down
  kLevelShift,    ///< segment offset by a constant
  kAmplitudeBurst,///< segment with inflated seasonal amplitude
  kFrequencyShift,///< segment oscillating at an alien frequency
  kNoiseBurst     ///< segment with inflated noise
};

/// \brief One injected anomaly: [start, start + length) of a given kind.
struct AnomalyEvent {
  AnomalyKind kind = AnomalyKind::kPointSpike;
  size_t start = 0;
  size_t length = 1;
  double magnitude = 3.0;  ///< in units of pattern amplitude
};

/// \brief Plan controlling how anomalies are injected into a test split.
struct AnomalyInjectionConfig {
  double anomaly_ratio = 0.05;         ///< target fraction of anomalous steps
  double point_fraction = 0.3;         ///< fraction of events that are point spikes
  size_t min_segment = 8;              ///< min length of a non-point event
  size_t max_segment = 40;             ///< max length of a non-point event
  /// Minimum normal steps kept between two events, so labels stay crisp.
  size_t min_gap = 12;
  double min_magnitude = 0.5;
  double max_magnitude = 1.6;
  /// Point spikes are scaled by this extra factor (spikes in monitoring
  /// data are prominent; contextual anomalies are subtle).
  double point_boost = 2.0;
};

/// Generates `length` steps of the pure normal pattern (no anomalies),
/// starting at phase step `t0`.
TimeSeries GenerateNormal(const NormalPattern& pattern, size_t length,
                          size_t t0, Rng* rng);

/// How a stream's normality gradually migrates (concept drift, not
/// anomalies: every generated step is still labeled normal — a frozen
/// model trained before the onset sees rising scores, an online model
/// that keeps refitting should not).
enum class DriftKind {
  kNone,              ///< degenerates to GenerateNormal
  kTrendDrift,        ///< the level ramps away linearly after the onset
  kSeasonalityShift,  ///< the fundamental period stretches (phase-continuous)
  kAmplitudeDecay,    ///< the seasonal amplitude fades toward a floor
};

const char* DriftKindName(DriftKind kind);

/// \brief One gradual drift: nothing happens before `onset`, the effect
/// ramps linearly to full strength over `ramp` steps, then holds (trend
/// drift keeps growing — that is what a trend is).
struct DriftScenario {
  DriftKind kind = DriftKind::kNone;
  size_t onset = 0;
  size_t ramp = 512;
  /// Full-strength size, relative to the pattern: trend offset per `ramp`
  /// steps and amplitude change are `magnitude * amplitude`; the period
  /// stretches to `period * (1 + magnitude)`.
  double magnitude = 0.3;
};

/// GenerateNormal with a drift overlaid. The seasonality shift keeps the
/// waveform phase-continuous by accumulating cycles at the instantaneous
/// period (no jump at the onset — only the spectral line migrates).
/// Feature lags and the secondary driver follow the drifted clock.
TimeSeries GenerateDriftingNormal(const NormalPattern& pattern, size_t length,
                                  size_t t0, const DriftScenario& drift,
                                  Rng* rng);

/// \brief One cross-channel correlation break: during
/// [start, start + length) every channel EXCEPT channel 0 runs its
/// seasonal drivers at a phase-shifted clock while channel 0 stays
/// anchored. A time shift leaves each channel's amplitude spectrum
/// untouched — every marginal channel still looks perfectly normal to a
/// spectral detector — but the inter-channel correlation flips, which is
/// exactly the anomaly class the channel-aware variant exists for
/// (DESIGN.md §16).
struct ChannelBreakScenario {
  size_t start = 0;
  size_t length = 64;
  /// Phase shift at full strength, in fractions of the fundamental
  /// period (0.5 = anti-phase, flipping a positive correlation negative).
  double phase_shift = 0.5;
  /// Steps over which the shift ramps linearly in and out at the break
  /// edges, so the transition carries no step discontinuity (no spectral
  /// splatter a marginal detector could key on). Clamped to length/2.
  size_t ramp = 4;
};

/// GenerateNormal with cross-channel correlation breaks overlaid; every
/// step inside a break is labeled anomalous. Multi-feature patterns only
/// make sense here (with one feature there is no correlation to break —
/// the output is then plain GenerateNormal plus labels).
TimeSeries GenerateCorrelatedChannelBreak(
    const NormalPattern& pattern, size_t length, size_t t0,
    const std::vector<ChannelBreakScenario>& breaks, Rng* rng);

/// \brief Injects anomalies into `series` in place, labelling affected
/// steps; returns the injected events. The injector draws event kinds,
/// positions and magnitudes until the target step ratio is reached.
std::vector<AnomalyEvent> InjectAnomalies(
    const AnomalyInjectionConfig& config, const NormalPattern& pattern,
    TimeSeries* series, Rng* rng);

/// Human-readable names for diagnostics and Fig 5(b).
const char* WaveformKindName(WaveformKind kind);
const char* AnomalyKindName(AnomalyKind kind);

/// True for the kinds counted as "point anomalies" in Fig 5(b).
bool IsPointAnomaly(AnomalyKind kind);

}  // namespace mace::ts

#endif  // MACE_TS_GENERATOR_H_
