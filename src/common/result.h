#ifndef MACE_COMMON_RESULT_H_
#define MACE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace mace {

/// \brief Outcome of an operation that produces a value or fails.
///
/// Holds either a value of type T (status is OK) or a non-OK Status.
/// Accessing the value of an errored Result aborts; callers must check ok().
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from an error Status: `return Status::InvalidArgument(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError(status_, __FILE__, __LINE__);
    return *value_;
  }
  T& value() & {
    AbortIfError(status_, __FILE__, __LINE__);
    return *value_;
  }
  T&& value() && {
    AbortIfError(status_, __FILE__, __LINE__);
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define MACE_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto MACE_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!MACE_CONCAT_(_res_, __LINE__).ok())                \
    return MACE_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(MACE_CONCAT_(_res_, __LINE__)).value()

#define MACE_CONCAT_(a, b) MACE_CONCAT_IMPL_(a, b)
#define MACE_CONCAT_IMPL_(a, b) a##b

}  // namespace mace

#endif  // MACE_COMMON_RESULT_H_
