#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mace {

double DoubleFactorial(int n) {
  if (n <= 0) return 1.0;
  double out = 1.0;
  for (int k = n; k > 1; k -= 2) out *= k;
  return out;
}

double SignedPow(double x, double power) {
  const double ax = std::fabs(x);
  double magnitude;
  // Small integer exponents (the typical gamma_t / gamma_f range) via
  // exponentiation by squaring: ~4 multiplies instead of a libm pow call.
  // Every pipeline path funnels through this one function, so batched /
  // streaming / per-window scoring all see the same doubles.
  const int ip = static_cast<int>(power);
  if (power == static_cast<double>(ip) && ip >= 0 && ip <= 32) {
    magnitude = 1.0;
    double base = ax;
    for (int e = ip; e > 0; e >>= 1) {
      if (e & 1) magnitude *= base;
      base *= base;
    }
  } else {
    magnitude = std::pow(ax, power);
  }
  return x < 0 ? -magnitude : magnitude;
}

double SignedRoot(double x, double power) {
  // cbrt is a dedicated primitive several times cheaper than pow, and
  // gamma_t defaults to 3 so the stage-1 amplifier root hits this branch
  // on every element. As with SignedPow, every pipeline path funnels
  // through this one function, so batched / streaming / per-window
  // scoring all see the same doubles.
  const double ax = std::fabs(x);
  const double magnitude =
      power == 3.0 ? std::cbrt(ax) : std::pow(ax, 1.0 / power);
  return x < 0 ? -magnitude : magnitude;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

Result<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("Quantile of empty vector");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile must be in [0, 1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Result<double> CalibratedThreshold(std::vector<double> scores, double scale,
                                   double q) {
  MACE_ASSIGN_OR_RETURN(const double quantile,
                        Quantile(std::move(scores), q));
  return scale * quantile;
}

double GaussianPdf(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) /
         (stddev * std::sqrt(2.0 * std::numbers::pi));
}

Result<KernelDensity> KernelDensity::Fit(std::vector<double> samples,
                                         double bandwidth) {
  if (samples.empty()) {
    return Status::InvalidArgument("KernelDensity requires samples");
  }
  if (bandwidth <= 0.0) {
    // Silverman's rule of thumb.
    const double sigma = StdDev(samples);
    const double n = static_cast<double>(samples.size());
    bandwidth = 1.06 * (sigma > 1e-12 ? sigma : 1.0) * std::pow(n, -0.2);
  }
  return KernelDensity(std::move(samples), bandwidth);
}

double KernelDensity::Density(double x) const {
  double acc = 0.0;
  for (double s : samples_) acc += GaussianPdf(x, s, bandwidth_);
  return acc / static_cast<double>(samples_.size());
}

double KlDivergence(const KernelDensity& p, const KernelDensity& q,
                    int grid_points) {
  auto range_of = [](const KernelDensity& kde) {
    auto [lo, hi] = std::minmax_element(kde.samples().begin(),
                                        kde.samples().end());
    return std::pair<double, double>(*lo - 3.0 * kde.bandwidth(),
                                     *hi + 3.0 * kde.bandwidth());
  };
  auto [plo, phi] = range_of(p);
  auto [qlo, qhi] = range_of(q);
  const double lo = std::min(plo, qlo);
  const double hi = std::max(phi, qhi);
  if (!(hi > lo) || grid_points < 2) return 0.0;

  const double step = (hi - lo) / static_cast<double>(grid_points - 1);
  // Evaluate densities, renormalize on the grid, accumulate p log(p/q).
  std::vector<double> pd(grid_points), qd(grid_points);
  double psum = 0.0, qsum = 0.0;
  for (int i = 0; i < grid_points; ++i) {
    const double x = lo + step * i;
    pd[i] = p.Density(x);
    qd[i] = q.Density(x);
    psum += pd[i];
    qsum += qd[i];
  }
  double kl = 0.0;
  for (int i = 0; i < grid_points; ++i) {
    const double pi = pd[i] / psum;
    const double qi = std::max(qd[i] / qsum, 1e-12);
    if (pi > 1e-12) kl += pi * std::log(pi / qi);
  }
  return kl;
}

Result<GpdParams> FitGpd(std::vector<double> exceedances) {
  if (exceedances.size() < 2) {
    return Status::InvalidArgument("GPD fit requires >= 2 exceedances");
  }
  std::sort(exceedances.begin(), exceedances.end());
  const size_t n = exceedances.size();
  // Probability-weighted moments (Hosking & Wallis 1987):
  //   b0 = mean, b1 = sum_i ((i) / (n-1)) x_(i) / n   with i = 0..n-1.
  double b0 = 0.0, b1 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    b0 += exceedances[i];
    b1 += exceedances[i] * static_cast<double>(i) /
          static_cast<double>(n - 1);
  }
  b0 /= static_cast<double>(n);
  b1 /= static_cast<double>(n);
  const double denom = b0 - 2.0 * b1;
  GpdParams params;
  if (std::fabs(denom) < 1e-12) {
    // Degenerate: fall back to exponential tail (shape 0).
    params.shape = 0.0;
    params.scale = std::max(b0, 1e-12);
  } else {
    params.shape = 2.0 - b0 / denom;
    params.scale = 2.0 * b0 * b1 / denom;
    if (params.scale <= 1e-12) {
      params.shape = 0.0;
      params.scale = std::max(b0, 1e-12);
    }
  }
  return params;
}

Result<double> PotThreshold(const std::vector<double>& scores, double risk,
                            double initial_level) {
  if (scores.size() < 8) {
    return Status::InvalidArgument("POT requires at least 8 scores");
  }
  if (risk <= 0.0 || risk >= 1.0) {
    return Status::InvalidArgument("risk must be in (0, 1)");
  }
  MACE_ASSIGN_OR_RETURN(const double t,
                        Quantile(scores, initial_level));
  std::vector<double> exceedances;
  for (double s : scores) {
    if (s > t) exceedances.push_back(s - t);
  }
  const double n = static_cast<double>(scores.size());
  if (exceedances.size() < 2) {
    // Not enough tail mass: the initial level itself is the best estimate.
    return t;
  }
  const double nt = static_cast<double>(exceedances.size());
  MACE_ASSIGN_OR_RETURN(const GpdParams gpd, FitGpd(std::move(exceedances)));
  // z_q = t + (sigma/xi) * ((q n / N_t)^(-xi) - 1), xi != 0.
  const double ratio = risk * n / nt;
  if (std::fabs(gpd.shape) < 1e-9) {
    return t - gpd.scale * std::log(ratio);
  }
  return t + gpd.scale / gpd.shape * (std::pow(ratio, -gpd.shape) - 1.0);
}

}  // namespace mace
