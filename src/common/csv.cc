#include "common/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mace {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

Result<double> ParseCell(const std::string& cell, size_t line_no) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  // The full cell must be consumed, modulo trailing whitespace (strtod
  // already skips leading whitespace): "1.5abc" is an error, not 1.5.
  // strtod also accepts "nan"/"inf" spellings — those ARE the parsed
  // value; whether non-finite data is acceptable is the downstream
  // NonFinitePolicy's decision (ts/sanitize.h), not a parse error.
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (end == cell.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": cannot parse cell '" + cell + "'");
  }
  return value;
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text, bool has_header) {
  CsvTable table;
  std::stringstream ss(text);
  std::string line;
  size_t line_no = 0;
  size_t expected_cols = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);
    if (has_header && table.columns.empty() && table.rows.empty()) {
      table.columns = cells;
      expected_cols = cells.size();
      continue;
    }
    if (expected_cols == 0) expected_cols = cells.size();
    if (cells.size() != expected_cols) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(expected_cols) + " cells, got " +
          std::to_string(cells.size()));
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const std::string& cell : cells) {
      MACE_ASSIGN_OR_RETURN(const double value, ParseCell(cell, line_no));
      row.push_back(value);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), has_header);
}

std::string FormatCsv(const CsvTable& table) {
  std::ostringstream out;
  out.precision(17);
  if (!table.columns.empty()) {
    for (size_t i = 0; i < table.columns.size(); ++i) {
      if (i > 0) out << ',';
      out << table.columns[i];
    }
    out << '\n';
  }
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << FormatCsv(table);
  if (!out) {
    return Status::IoError("failed writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mace
