#ifndef MACE_COMMON_MATH_UTILS_H_
#define MACE_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace mace {

/// \brief Double factorial n!! = n (n-2) (n-4) ... (down to 1 or 2).
/// Defined as 1 for n <= 0 (matching the convention in Theorem 1).
double DoubleFactorial(int n);

/// \brief Sign-preserving odd power: sign(x) * |x|^power.
///
/// For odd integer powers this equals x^power exactly; the sign-preserving
/// form is what the dualistic convolution needs so that gradients and roots
/// stay real for negative inputs.
double SignedPow(double x, double power);

/// \brief Sign-preserving root: sign(x) * |x|^(1/power).
double SignedRoot(double x, double power);

/// Arithmetic mean; 0 for an empty span.
double Mean(const std::vector<double>& values);

/// Population variance; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& values);

double StdDev(const std::vector<double>& values);

/// Pearson correlation of two equally sized vectors; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// \brief Quantile with linear interpolation; q in [0, 1].
/// Returns an error for empty input or q outside [0, 1].
Result<double> Quantile(std::vector<double> values, double q);

/// \brief The fleet's contamination-robust alert threshold rule:
/// `scale` times the `q` quantile of a calibration score slice (default
/// 2 x P90). Anomalies inside the calibration slice inflate extreme-tail
/// estimates, so this anchors on a bulk quantile with a safety factor
/// instead of the raw POT tail — POT stays the right tool on clean
/// calibration data. Shared by the streaming monitor's per-tenant
/// calibration and the online trainer's per-generation consensus
/// thresholds. Errors for empty scores or q outside [0, 1].
Result<double> CalibratedThreshold(std::vector<double> scores,
                                   double scale = 2.0, double q = 0.90);

/// Standard normal probability density.
double GaussianPdf(double x, double mean = 0.0, double stddev = 1.0);

/// \brief Gaussian kernel density estimate over 1-D samples.
///
/// Bandwidth defaults to Silverman's rule of thumb when `bandwidth` <= 0.
class KernelDensity {
 public:
  /// Fits the estimator; returns an error for empty samples.
  static Result<KernelDensity> Fit(std::vector<double> samples,
                                   double bandwidth = -1.0);

  /// Density at `x` (always > 0 thanks to the Gaussian kernel).
  double Density(double x) const;

  double bandwidth() const { return bandwidth_; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  KernelDensity(std::vector<double> samples, double bandwidth)
      : samples_(std::move(samples)), bandwidth_(bandwidth) {}

  std::vector<double> samples_;
  double bandwidth_ = 1.0;
};

/// \brief KL divergence KL(p || q) between two KDEs, estimated by evaluating
/// both densities on an evenly spaced grid spanning both sample ranges.
double KlDivergence(const KernelDensity& p, const KernelDensity& q,
                    int grid_points = 256);

/// \brief Generalized Pareto distribution parameters fitted to exceedances.
struct GpdParams {
  double shape = 0.0;  ///< xi
  double scale = 1.0;  ///< sigma > 0
};

/// \brief Fits a GPD to positive exceedances via probability-weighted
/// moments (Hosking & Wallis). Returns an error for fewer than 2 samples.
Result<GpdParams> FitGpd(std::vector<double> exceedances);

/// \brief Peaks-over-threshold quantile estimate (the POT method used for
/// anomaly thresholding, after Siffer et al., KDD'17).
///
/// \param scores         raw anomaly scores (calibration set)
/// \param risk           target exceedance probability (e.g. 1e-3)
/// \param initial_level  quantile used to pick the initial threshold t
///                       (e.g. 0.98)
/// \return the estimated threshold z_q with P(score > z_q) ~= risk
Result<double> PotThreshold(const std::vector<double>& scores, double risk,
                            double initial_level = 0.98);

}  // namespace mace

#endif  // MACE_COMMON_MATH_UTILS_H_
