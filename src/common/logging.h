#ifndef MACE_COMMON_LOGGING_H_
#define MACE_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace mace {

/// \brief Severity of a log record.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; records below it are dropped.
///
/// The initial level comes from the `MACE_LOG_LEVEL` environment variable
/// ("debug" | "info" | "warning" | "error", or the numeric 0-3), read once
/// at first use; SetLogLevel overrides it afterwards.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
/// Parses a level name or digit; returns false on unknown input.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// \brief Records emitted (not filtered) so far at `level`. Fed by every
/// LogMessage destructor; the obs registry exports these as the
/// `mace_log_records_total` counter family so warning/error rates are
/// scrapeable.
uint64_t GetLogRecordCount(LogLevel level);

namespace internal {

/// Stream-style log record. The destructor formats the whole record into
/// one buffer and hands it to stderr as a single serialized write, so
/// records from concurrent threads never interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the record is below the level.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define MACE_LOG_INTERNAL(level)                                    \
  ::mace::internal::LogMessage(::mace::LogLevel::level, __FILE__, \
                               __LINE__)                            \
      .stream()

#define MACE_LOG(level)                                   \
  (::mace::LogLevel::level < ::mace::GetLogLevel())       \
      ? (void)0                                           \
      : ::mace::internal::LogMessageVoidify() &           \
            MACE_LOG_INTERNAL(level)

}  // namespace mace

#endif  // MACE_COMMON_LOGGING_H_
