#ifndef MACE_COMMON_LOGGING_H_
#define MACE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mace {

/// \brief Severity of a log record.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; records below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log record; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the record is below the level.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define MACE_LOG_INTERNAL(level)                                    \
  ::mace::internal::LogMessage(::mace::LogLevel::level, __FILE__, \
                               __LINE__)                            \
      .stream()

#define MACE_LOG(level)                                   \
  (::mace::LogLevel::level < ::mace::GetLogLevel())       \
      ? (void)0                                           \
      : ::mace::internal::LogMessageVoidify() &           \
            MACE_LOG_INTERNAL(level)

}  // namespace mace

#endif  // MACE_COMMON_LOGGING_H_
