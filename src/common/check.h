#ifndef MACE_COMMON_CHECK_H_
#define MACE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mace {
namespace internal {

/// Aborts the process after printing the failed condition and message.
[[noreturn]] inline void CheckFail(const char* condition, const char* file,
                                   int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: check failed: %s%s%s\n", file, line, condition,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

/// Collects a streamed message for MACE_CHECK and aborts on destruction.
class CheckMessage {
 public:
  CheckMessage(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}
  [[noreturn]] ~CheckMessage() {
    CheckFail(condition_, file_, line_, stream_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mace

/// Invariant check for programmer errors (shape mismatches, index bounds).
/// Aborts with a diagnostic on failure; streams extra context:
///   MACE_CHECK(a.size() == b.size()) << "a=" << a.size();
#define MACE_CHECK(condition)                                            \
  if (condition) {                                                       \
  } else /* NOLINT */                                                    \
    ::mace::internal::CheckMessage(#condition, __FILE__, __LINE__)

#endif  // MACE_COMMON_CHECK_H_
