#ifndef MACE_COMMON_CRC32_H_
#define MACE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace mace::common {

/// CRC-32 (IEEE 802.3, reflected) — shared by the MHSNAPv1 history
/// snapshot format and the MWIREv1 serving wire protocol, so both
/// untrusted-input surfaces validate payload integrity with the same
/// pinned polynomial.
uint32_t Crc32(const void* data, size_t size);

}  // namespace mace::common

#endif  // MACE_COMMON_CRC32_H_
