#ifndef MACE_COMMON_PARALLEL_H_
#define MACE_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mace {

/// \brief Persistent pool of worker threads running indexed task loops.
///
/// A pool of `threads` workers (the calling thread counts as worker 0;
/// `threads - 1` are spawned once and parked between calls), built for
/// the repeated fan-out/barrier shape of training and preprocessing:
///
///   WorkerPool pool(config.fit_threads);
///   pool.ParallelFor(count, [&](size_t task, int worker) { ... });
///
/// ParallelFor runs fn(task, worker) for every task in [0, count) and
/// returns only after all tasks finished (a barrier). Tasks are claimed
/// dynamically from a shared counter, so WHICH worker runs a task is
/// scheduling-dependent — determinism is the caller's contract: write
/// results into task-indexed slots (never append) and keep per-task work
/// a pure function of the task index. The `worker` id (in [0, threads()))
/// is for thread-private scratch such as model replicas.
///
/// `threads <= 1` spawns nothing and runs every call inline on the
/// caller. Calls are not reentrant (ParallelFor must not be called from
/// inside a task of the same pool), but the pool may be SHARED between
/// driver threads: concurrent ParallelFor calls serialize on an internal
/// driver lock, and TryParallelFor lets a background driver (e.g. an
/// online refit) bail out instead of queueing behind another round.
/// Tasks must not throw (report failures through task-indexed status
/// slots).
class WorkerPool {
 public:
  /// Scheduling class of one ParallelFor round. Priority never changes
  /// WHAT is computed (task -> slot determinism is the caller's contract
  /// either way), only how aggressively the round competes for CPU:
  /// kLow rounds staff at most half of the pool's threads and yield
  /// between task claims, so a background refit sharing the machine with
  /// latency-sensitive scoring threads cannot starve them.
  enum class TaskPriority { kNormal, kLow };

  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Worker count including the calling thread; always >= 1.
  int threads() const { return threads_; }

  /// Runs fn(task, worker) for all tasks in [0, count); blocks until done.
  /// When another thread is mid-round, blocks until the pool is free.
  void ParallelFor(size_t count, const std::function<void(size_t, int)>& fn) {
    ParallelFor(count, TaskPriority::kNormal, fn);
  }
  void ParallelFor(size_t count, TaskPriority priority,
                   const std::function<void(size_t, int)>& fn);

  /// Non-blocking variant for background drivers: returns false without
  /// running anything when another thread currently drives the pool
  /// (the try-claim), true after running the round to completion.
  bool TryParallelFor(size_t count, TaskPriority priority,
                      const std::function<void(size_t, int)>& fn);

 private:
  void WorkerLoop(int worker);
  /// Claims tasks from next_task_ until the current round is drained;
  /// low-priority rounds yield between claims.
  void RunTasks(int worker, bool low_priority);
  void RunRound(size_t count, TaskPriority priority,
                const std::function<void(size_t, int)>& fn);

  const int threads_;
  /// Serializes drivers: one ParallelFor round at a time. Held for the
  /// whole round, so round state below needs no cross-driver hand-off.
  std::mutex driver_mu_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, int)>* job_ = nullptr;  // guarded by mutex_
  size_t job_count_ = 0;
  bool job_low_priority_ = false;  // guarded by mutex_
  std::atomic<size_t> next_task_{0};
  /// Participation slots left in this round: min(staff cap, count - 1).
  /// Rounds with fewer tasks than workers wake (and wait on) only as many
  /// workers as can possibly claim a task; a spurious waker claims a slot
  /// if one is left and otherwise skips the round.
  int round_slots_ = 0;
  int workers_in_round_ = 0;  ///< slot-holding workers still in this round
  uint64_t round_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mace

#endif  // MACE_COMMON_PARALLEL_H_
