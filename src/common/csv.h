#ifndef MACE_COMMON_CSV_H_
#define MACE_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mace {

/// \brief A rectangular table of doubles with optional column names.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const {
    return rows.empty() ? columns.size() : rows.front().size();
  }
};

/// \brief Parses CSV text. When `has_header` the first line is taken as
/// column names. All data cells must parse as doubles — fully, modulo
/// surrounding whitespace ("1.5abc" is an error) — and rows must be
/// rectangular. Literal "nan"/"inf" cells parse as their IEEE values:
/// they are data, and the caller's NonFinitePolicy (ts/sanitize.h)
/// decides whether such data is acceptable.
Result<CsvTable> ParseCsv(const std::string& text, bool has_header = true);

/// \brief Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true);

/// \brief Serializes a table to CSV text (header emitted when columns
/// are non-empty).
std::string FormatCsv(const CsvTable& table);

/// \brief Writes a table to disk, overwriting the file.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace mace

#endif  // MACE_COMMON_CSV_H_
