#ifndef MACE_COMMON_RNG_H_
#define MACE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mace {

/// \brief Deterministic pseudo-random number generator (xoshiro256++).
///
/// A small, fast, reproducible generator used throughout the library for
/// synthetic workloads, weight initialization and sampling. Not
/// cryptographically secure.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability `p` of true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mace

#endif  // MACE_COMMON_RNG_H_
