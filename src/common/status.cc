#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace mace {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kNotImplemented:
      return "NOT_IMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void AbortIfError(const Status& status, const char* file, int line) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s:%d: unexpected error: %s\n", file, line,
               status.ToString().c_str());
  std::abort();
}

}  // namespace mace
