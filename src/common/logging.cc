#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mace {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<uint64_t> g_records[4] = {};
/// Serializes the final write so huge records cannot interleave even on
/// platforms where a single fwrite to an unbuffered stream is not atomic.
std::mutex g_write_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Applies MACE_LOG_LEVEL exactly once, before the first Get/Set wins.
void ApplyEnvLevelOnce() {
  static const bool applied = [] {
    const char* value = std::getenv("MACE_LOG_LEVEL");
    LogLevel level;
    if (value != nullptr && ParseLogLevel(value, &level)) {
      g_log_level.store(static_cast<int>(level),
                        std::memory_order_relaxed);
    }
    return true;
  }();
  (void)applied;
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  ApplyEnvLevelOnce();
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  ApplyEnvLevelOnce();
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

uint64_t GetLogRecordCount(LogLevel level) {
  return g_records[static_cast<int>(level)].load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string record = stream_.str();
  g_records[static_cast<int>(level_)].fetch_add(1,
                                                std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_write_mu);
  std::fwrite(record.data(), 1, record.size(), stderr);
}

}  // namespace internal
}  // namespace mace
