#ifndef MACE_COMMON_STATUS_H_
#define MACE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mace {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kNotImplemented,
  kInternal,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without a payload.
///
/// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
/// (or Result<T>) instead of throwing. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "<CODE>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Aborts the process with a diagnostic if `status` is not OK.
///
/// For use in examples, benchmarks and tests where a failure is a bug.
void AbortIfError(const Status& status, const char* file, int line);

#define MACE_CHECK_OK(expr) \
  ::mace::AbortIfError((expr), __FILE__, __LINE__)

/// Propagates a non-OK Status to the caller.
#define MACE_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::mace::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace mace

#endif  // MACE_COMMON_STATUS_H_
