#include "common/crc32.h"

#include <array>

namespace mace::common {

uint32_t Crc32(const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace mace::common
