#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace mace {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: the first `count` slots become the sample.
  for (size_t i = 0; i < count && i + 1 < n; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count < n ? count : n);
  return indices;
}

}  // namespace mace
