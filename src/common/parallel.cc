#include "common/parallel.h"

#include <algorithm>

#include "common/check.h"

namespace mace {
namespace {

/// Pool whose task the current thread is executing (nullptr outside any
/// task). Guards against reentrant ParallelFor on the SAME pool — which
/// would now deadlock on driver_mu_ instead of tripping the old job_
/// check — while still allowing a task to drive a different pool.
thread_local const WorkerPool* tls_task_pool = nullptr;

}  // namespace

WorkerPool::WorkerPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::RunTasks(int worker, bool low_priority) {
  // Dynamic claiming balances uneven tasks; result determinism comes from
  // callers writing into task-indexed slots, not from the claim order.
  const WorkerPool* previous = tls_task_pool;
  tls_task_pool = this;
  while (true) {
    const size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= job_count_) break;
    (*job_)(task, worker);
    // Low priority backs off between claims so same-core scoring threads
    // get scheduled promptly even when every pool worker has work left.
    if (low_priority) std::this_thread::yield();
  }
  tls_task_pool = previous;
}

void WorkerPool::WorkerLoop(int worker) {
  uint64_t seen_round = 0;
  while (true) {
    bool low_priority = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || round_ != seen_round; });
      if (shutdown_) return;
      seen_round = round_;
      // Fully staffed round (fewer tasks than workers, or a spurious
      // wakeup after the notified workers claimed every slot): skip
      // without touching job_ and park until the next round.
      if (round_slots_ == 0) continue;
      --round_slots_;
      low_priority = job_low_priority_;
    }
    RunTasks(worker, low_priority);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_in_round_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::RunRound(size_t count, TaskPriority priority,
                          const std::function<void(size_t, int)>& fn) {
  // Waking a worker that cannot possibly claim a task (count - 1 already
  // cover everything beyond the caller) is pure context-switch overhead,
  // so rounds are staffed with min(staff cap, count - 1) participants. A
  // low-priority round halves the cap — at most threads()/2 threads ever
  // run it (caller included) — leaving the other cores to foreground
  // work. The notify_one calls below wake at most that many; a worker
  // notified for an earlier round that arrives late simply finds no slot
  // and re-parks, and the barrier waits only on workers that actually
  // claimed a slot.
  const bool low = priority == TaskPriority::kLow;
  const size_t staff_cap =
      low ? static_cast<size_t>(std::max(0, threads_ / 2 - 1))
          : workers_.size();
  const int participants = static_cast<int>(std::min(staff_cap, count - 1));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MACE_CHECK(job_ == nullptr) << "WorkerPool round state torn";
    job_ = &fn;
    job_count_ = count;
    job_low_priority_ = low;
    next_task_.store(0, std::memory_order_relaxed);
    round_slots_ = participants;
    workers_in_round_ = participants;
    ++round_;
  }
  for (int i = 0; i < participants; ++i) start_cv_.notify_one();
  RunTasks(/*worker=*/0, low);
  {
    // Every spawned worker must leave the round before the job can be
    // torn down, even if it woke late and found no tasks left.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_in_round_ == 0; });
    job_ = nullptr;
    job_count_ = 0;
  }
}

void WorkerPool::ParallelFor(size_t count, TaskPriority priority,
                             const std::function<void(size_t, int)>& fn) {
  if (count == 0) return;
  MACE_CHECK(tls_task_pool != this)
      << "WorkerPool::ParallelFor is not reentrant";
  if (threads_ == 1 || count == 1) {
    // Inline fast path: no wakeups, same task -> worker-0 semantics. No
    // driver lock either — the round touches no shared pool state.
    for (size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  std::lock_guard<std::mutex> driver(driver_mu_);
  RunRound(count, priority, fn);
}

bool WorkerPool::TryParallelFor(size_t count, TaskPriority priority,
                                const std::function<void(size_t, int)>& fn) {
  if (count == 0) return true;
  MACE_CHECK(tls_task_pool != this)
      << "WorkerPool::ParallelFor is not reentrant";
  if (threads_ == 1 || count == 1) {
    for (size_t task = 0; task < count; ++task) fn(task, 0);
    return true;
  }
  std::unique_lock<std::mutex> driver(driver_mu_, std::try_to_lock);
  if (!driver.owns_lock()) return false;  // another driver holds the pool
  RunRound(count, priority, fn);
  return true;
}

}  // namespace mace
