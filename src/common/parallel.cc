#include "common/parallel.h"

#include <algorithm>

#include "common/check.h"

namespace mace {

WorkerPool::WorkerPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::RunTasks(int worker) {
  // Dynamic claiming balances uneven tasks; result determinism comes from
  // callers writing into task-indexed slots, not from the claim order.
  while (true) {
    const size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= job_count_) return;
    (*job_)(task, worker);
  }
}

void WorkerPool::WorkerLoop(int worker) {
  uint64_t seen_round = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || round_ != seen_round; });
      if (shutdown_) return;
      seen_round = round_;
      // Fully staffed round (fewer tasks than workers, or a spurious
      // wakeup after the notified workers claimed every slot): skip
      // without touching job_ and park until the next round.
      if (round_slots_ == 0) continue;
      --round_slots_;
    }
    RunTasks(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_in_round_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::ParallelFor(size_t count,
                             const std::function<void(size_t, int)>& fn) {
  if (count == 0) return;
  if (threads_ == 1 || count == 1) {
    // Inline fast path: no wakeups, same task -> worker-0 semantics.
    for (size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  // Waking a worker that cannot possibly claim a task (count - 1 already
  // cover everything beyond the caller) is pure context-switch overhead,
  // so rounds are staffed with min(workers, count - 1) participants. The
  // notify_one calls below wake at most that many; a worker notified for
  // an earlier round that arrives late simply finds no slot and re-parks,
  // and the barrier waits only on workers that actually claimed a slot.
  const int participants = static_cast<int>(
      std::min(workers_.size(), count - 1));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MACE_CHECK(job_ == nullptr) << "WorkerPool::ParallelFor is not reentrant";
    job_ = &fn;
    job_count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    round_slots_ = participants;
    workers_in_round_ = participants;
    ++round_;
  }
  for (int i = 0; i < participants; ++i) start_cv_.notify_one();
  RunTasks(/*worker=*/0);
  {
    // Every spawned worker must leave the round before the job can be
    // torn down, even if it woke late and found no tasks left.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_in_round_ == 0; });
    job_ = nullptr;
    job_count_ = 0;
  }
}

}  // namespace mace
