#include "channel/model_io.h"

#include <fstream>
#include <utility>

#include "channel/channel_aware_detector.h"
#include "core/mace_detector.h"

namespace mace::channel {

Result<std::shared_ptr<const core::ServingModel>> LoadServingModel(
    const std::string& path) {
  std::string magic;
  {
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open '" + path + "'");
    in >> magic;
  }
  if (magic == "MACEv1") {
    Result<core::MaceDetector> loaded = core::MaceDetector::Load(path);
    if (!loaded.ok()) return loaded.status();
    return std::shared_ptr<const core::ServingModel>(
        std::make_shared<const core::MaceDetector>(std::move(loaded).value()));
  }
  if (magic == "MCHANv1") {
    Result<ChannelAwareDetector> loaded = ChannelAwareDetector::Load(path);
    if (!loaded.ok()) return loaded.status();
    return std::shared_ptr<const core::ServingModel>(
        std::make_shared<const ChannelAwareDetector>(
            std::move(loaded).value()));
  }
  return Status::InvalidArgument(
      "'" + path + "' is not a known model format (magic '" + magic +
      "'; known: MACEv1, MCHANv1)");
}

}  // namespace mace::channel
