#ifndef MACE_CHANNEL_MODEL_IO_H_
#define MACE_CHANNEL_MODEL_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/detector.h"

namespace mace::channel {

/// \brief Loads a serving model of ANY registered variant from `path`:
/// sniffs the magic line and dispatches to the variant's own loader
/// (MACEv1 -> core::MaceDetector::Load, MCHANv1 ->
/// ChannelAwareDetector::Load). The serve stack's hot-reload entry —
/// a reload can change the served detector VARIANT, not just its
/// weights. Unknown magics return a descriptive error naming the known
/// formats; any variant-loader error passes through untouched.
Result<std::shared_ptr<const core::ServingModel>> LoadServingModel(
    const std::string& path);

}  // namespace mace::channel

#endif  // MACE_CHANNEL_MODEL_IO_H_
