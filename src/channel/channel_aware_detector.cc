#include "channel/channel_aware_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/check.h"
#include "common/parallel.h"
#include "core/pattern_extractor.h"
#include "fft/fft.h"

namespace mace::channel {
namespace {

/// A series readied for scoring under a non-finite policy, mirroring the
/// MACE scoring surface: the values the detector sees (always fully
/// finite) plus, under kPropagate, the per-step contamination mask the
/// scores are NaN-masked with afterwards.
struct SanitizedSeries {
  ts::TimeSeries series;
  std::vector<uint8_t> contaminated;  // empty when clean or not propagating
};

Result<SanitizedSeries> SanitizeForScoring(const ts::TimeSeries& series,
                                           ts::NonFinitePolicy policy,
                                           const std::string& what) {
  SanitizedSeries out{series, {}};
  const ts::NonFiniteValue bad = ts::FindNonFinite(series);
  if (!bad.found) return out;
  switch (policy) {
    case ts::NonFinitePolicy::kReject:
      return Status::InvalidArgument(
          what + " holds non-finite value " + ts::DescribeNonFinite(bad) +
          " (non-finite policy 'reject')");
    case ts::NonFinitePolicy::kImpute: {
      Result<ts::TimeSeries> imputed =
          ts::SanitizeSeries(series, ts::NonFinitePolicy::kImpute);
      if (!imputed.ok()) {
        return Status::InvalidArgument(what + ": " +
                                       imputed.status().message());
      }
      out.series = std::move(imputed).value();
      return out;
    }
    case ts::NonFinitePolicy::kPropagate: {
      ts::SanitizeStats stats;
      Result<ts::TimeSeries> tagged =
          ts::SanitizeSeries(series, ts::NonFinitePolicy::kPropagate, &stats,
                             &out.contaminated);
      if (!tagged.ok()) return tagged.status();
      // The DFT must never see NaN: score an imputed copy and NaN-mask
      // the steps of contaminated windows afterwards — equivalent to
      // skipping those windows (the mask discards their results).
      Result<ts::TimeSeries> imputed =
          ts::SanitizeSeries(series, ts::NonFinitePolicy::kImpute);
      if (imputed.ok()) {
        out.series = std::move(imputed).value();
      } else {
        // A feature with no finite values leaves nothing to impute from;
        // then every step masks to NaN anyway, so zero-fill just keeps
        // the arithmetic finite.
        std::vector<std::vector<double>> values = series.values();
        for (std::vector<double>& row : values) {
          for (double& v : row) {
            if (!std::isfinite(v)) v = 0.0;
          }
        }
        out.series = ts::TimeSeries(std::move(values), series.labels());
      }
      return out;
    }
  }
  return Status::Internal("unreachable non-finite policy");
}

/// kPropagate post-mask (same rule as MACE and the streaming scorer): a
/// step's score becomes NaN iff any scheduled window covering it holds a
/// contaminated step.
void MaskPropagatedScores(const std::vector<size_t>& starts, size_t window,
                          const std::vector<uint8_t>& contaminated,
                          std::vector<double>* scores) {
  std::vector<size_t> prefix(contaminated.size() + 1, 0);
  for (size_t i = 0; i < contaminated.size(); ++i) {
    prefix[i + 1] = prefix[i] + (contaminated[i] != 0 ? 1 : 0);
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const size_t start : starts) {
    if (prefix[start + window] - prefix[start] == 0) continue;
    for (size_t t = start; t < start + window; ++t) (*scores)[t] = nan;
  }
}

/// Pearson correlation of two equal-length columns; 0 when either is
/// constant over the window (no direction to correlate).
double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t t = 0; t < n; ++t) {
    mean_a += a[t];
    mean_b += b[t];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double da = a[t] - mean_a;
    const double db = b[t] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

/// Cosine similarity of two spectra patches [lo, hi); 0 when either patch
/// carries no energy.
double PatchCosine(const std::vector<double>& a, const std::vector<double>& b,
                   size_t lo, size_t hi) {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = lo; i < hi; ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / std::sqrt(norm_a * norm_b);
}

/// One feature of a scaled series as a single-channel TimeSeries (the
/// shape ExtractPattern takes for the per-channel subspace).
ts::TimeSeries SingleChannel(const ts::TimeSeries& series, int channel) {
  std::vector<std::vector<double>> values(series.length());
  for (size_t t = 0; t < series.length(); ++t) {
    values[t] = {series.value(t, channel)};
  }
  return ts::TimeSeries(std::move(values));
}

}  // namespace

ChannelAwareDetector::ChannelAwareDetector(ChannelAwareConfig config)
    : config_(config) {
  const Status valid = ValidateConfig(config_);
  MACE_CHECK(valid.ok()) << valid.message();
}

Status ChannelAwareDetector::ValidateConfig(const ChannelAwareConfig& config) {
  if (config.window < 4 || config.window > 1024) {
    return Status::InvalidArgument("window must be in [4, 1024]");
  }
  if (config.train_stride < 1 || config.score_stride < 1) {
    return Status::InvalidArgument("strides must be >= 1");
  }
  if (config.score_stride > config.window) {
    return Status::InvalidArgument("score_stride must be <= window");
  }
  if (config.bases_per_channel < 1 ||
      config.bases_per_channel > config.window / 2) {
    return Status::InvalidArgument(
        "bases_per_channel must be in [1, window/2]");
  }
  if (config.num_patches < 1 || config.num_patches > config.window / 2) {
    return Status::InvalidArgument("num_patches must be in [1, window/2]");
  }
  if (!std::isfinite(config.fusion_weight) || config.fusion_weight < 0.0) {
    return Status::InvalidArgument(
        "fusion_weight must be finite and >= 0");
  }
  if (!std::isfinite(config.sigma_floor) || config.sigma_floor <= 0.0) {
    return Status::InvalidArgument("sigma_floor must be finite and > 0");
  }
  if (config.fit_threads < 1 || config.fit_threads > 256) {
    return Status::InvalidArgument("fit_threads must be in [1, 256]");
  }
  return Status::OK();
}

std::vector<std::pair<int, int>> ChannelAwareDetector::FusionPairs(
    int num_channels) {
  std::vector<std::pair<int, int>> pairs;
  if (num_channels < 2) return pairs;
  if (num_channels <= 16) {
    for (int i = 0; i < num_channels; ++i) {
      for (int j = i + 1; j < num_channels; ++j) pairs.emplace_back(i, j);
    }
  } else {
    // Wide deployments: the adjacency ring keeps the feature count linear
    // while still spanning every channel.
    for (int i = 0; i < num_channels; ++i) {
      pairs.emplace_back(i, (i + 1) % num_channels);
    }
  }
  return pairs;
}

int ChannelAwareDetector::FusionDimension(int num_channels) const {
  return static_cast<int>(FusionPairs(num_channels).size()) *
         (1 + config_.num_patches);
}

std::vector<size_t> ChannelAwareDetector::ScoreWindowStarts(
    size_t length) const {
  const auto window = static_cast<size_t>(config_.window);
  std::vector<size_t> starts;
  for (size_t start = 0; start + window <= length;
       start += static_cast<size_t>(config_.score_stride)) {
    starts.push_back(start);
  }
  if (length >= window &&
      (starts.empty() || starts.back() + window < length)) {
    starts.push_back(length - window);
  }
  return starts;
}

std::vector<double> ChannelAwareDetector::FusionFeatures(
    const std::vector<std::vector<double>>& columns,
    const std::vector<std::vector<double>>& amplitudes) const {
  const int channels = static_cast<int>(columns.size());
  const std::vector<std::pair<int, int>> pairs = FusionPairs(channels);
  std::vector<double> features;
  features.reserve(pairs.size() *
                   static_cast<size_t>(1 + config_.num_patches));
  const size_t bins = amplitudes.empty() ? 0 : amplitudes.front().size();
  const auto patches = static_cast<size_t>(config_.num_patches);
  for (const auto& [i, j] : pairs) {
    features.push_back(Pearson(columns[static_cast<size_t>(i)],
                               columns[static_cast<size_t>(j)]));
    for (size_t p = 0; p < patches; ++p) {
      const size_t lo = p * bins / patches;
      const size_t hi = (p + 1) * bins / patches;
      features.push_back(PatchCosine(amplitudes[static_cast<size_t>(i)],
                                     amplitudes[static_cast<size_t>(j)], lo,
                                     hi));
    }
  }
  return features;
}

std::vector<double> ChannelAwareDetector::ScoreWindowAgainst(
    const ChannelServiceState& state,
    const std::vector<std::vector<double>>& scaled_rows,
    std::vector<double>* raw_features) const {
  const auto window = static_cast<size_t>(config_.window);
  const auto channels = static_cast<size_t>(num_features_);
  // Transpose into per-channel columns, then per channel: DFT, project
  // onto the channel's selected bases (+ conjugates + DC), reconstruct,
  // and accumulate squared residuals.
  std::vector<std::vector<double>> columns(channels,
                                           std::vector<double>(window));
  for (size_t t = 0; t < window; ++t) {
    for (size_t c = 0; c < channels; ++c) columns[c][t] = scaled_rows[t][c];
  }
  std::vector<double> errors(window, 0.0);
  // One-sided magnitudes |X_b|, b = 1..window/2 (DC excluded: z-scored
  // windows carry no level information), reused for the fusion patches.
  std::vector<std::vector<double>> amplitudes(channels);
  for (size_t c = 0; c < channels; ++c) {
    const std::vector<fft::Complex> spectrum = fft::Dft(columns[c]);
    std::vector<fft::Complex> kept(window, fft::Complex(0.0, 0.0));
    kept[0] = spectrum[0];  // DC: keep the window's level out of the error
    for (const int base : state.channel_bases[c]) {
      const auto b = static_cast<size_t>(base);
      if (b == 0 || b >= window) continue;
      kept[b] = spectrum[b];
      kept[window - b] = spectrum[window - b];  // conjugate bin (real input)
    }
    const std::vector<double> recon = fft::InverseDftReal(kept);
    for (size_t t = 0; t < window; ++t) {
      const double residual = columns[c][t] - recon[t];
      errors[t] += residual * residual;
    }
    amplitudes[c].reserve(window / 2);
    for (size_t b = 1; b <= window / 2; ++b) {
      amplitudes[c].push_back(std::abs(spectrum[b]));
    }
  }
  for (double& e : errors) e /= static_cast<double>(channels);

  if (channels < 2) {
    if (raw_features != nullptr) raw_features->clear();
    return errors;
  }
  const std::vector<double> features = FusionFeatures(columns, amplitudes);
  if (raw_features != nullptr) *raw_features = features;
  if (state.fusion_mean.empty()) return errors;  // fit-time marginal pass
  MACE_CHECK(features.size() == state.fusion_mean.size());
  double distance = 0.0;
  for (size_t d = 0; d < features.size(); ++d) {
    const double z =
        (features[d] - state.fusion_mean[d]) / state.fusion_sigma[d];
    distance += z * z;
  }
  distance /= static_cast<double>(features.size());
  for (double& e : errors) e += fusion_gain_ * distance;
  return errors;
}

Result<ChannelServiceState> ChannelAwareDetector::BuildServiceState(
    const ts::TimeSeries& clean_train, double* marginal_sum,
    size_t* marginal_windows) const {
  ChannelServiceState state;
  state.scaler.Fit(clean_train);
  const ts::TimeSeries scaled = state.scaler.Transform(clean_train);
  const int channels = scaled.num_features();
  core::PatternExtractorOptions options;
  options.window = config_.window;
  options.stride = config_.train_stride;
  options.num_bases = config_.bases_per_channel;
  options.skip_dc = true;
  state.channel_bases.resize(static_cast<size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    MACE_ASSIGN_OR_RETURN(
        core::PatternSubspace subspace,
        core::ExtractPattern(SingleChannel(scaled, c), options));
    state.channel_bases[static_cast<size_t>(c)] = std::move(subspace.bases);
  }

  // Fusion statistics and marginal level over the training windows. The
  // state still has empty fusion moments here, so ScoreWindowAgainst
  // returns the pure marginal errors plus the raw feature vector.
  const std::vector<size_t> starts = ScoreWindowStarts(scaled.length());
  if (starts.empty()) {
    return Status::InvalidArgument("train split shorter than the window");
  }
  const auto window = static_cast<size_t>(config_.window);
  const int dim = FusionDimension(channels);
  std::vector<double> sum(static_cast<size_t>(dim), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(dim), 0.0);
  std::vector<double> features;
  std::vector<std::vector<double>> rows(window);
  for (const size_t start : starts) {
    for (size_t t = 0; t < window; ++t) {
      rows[t] = scaled.values()[start + t];
    }
    const std::vector<double> errors =
        ScoreWindowAgainst(state, rows, &features);
    double window_mean = 0.0;
    for (const double e : errors) window_mean += e;
    *marginal_sum += window_mean / static_cast<double>(window);
    ++*marginal_windows;
    for (size_t d = 0; d < features.size(); ++d) {
      sum[d] += features[d];
      sum_sq[d] += features[d] * features[d];
    }
  }
  if (dim > 0) {
    const auto n = static_cast<double>(starts.size());
    state.fusion_mean.resize(static_cast<size_t>(dim));
    state.fusion_sigma.resize(static_cast<size_t>(dim));
    for (size_t d = 0; d < static_cast<size_t>(dim); ++d) {
      const double mean = sum[d] / n;
      const double var = std::max(0.0, sum_sq[d] / n - mean * mean);
      state.fusion_mean[d] = mean;
      state.fusion_sigma[d] = std::max(config_.sigma_floor, std::sqrt(var));
    }
  }
  return state;
}

Status ChannelAwareDetector::Fit(const std::vector<ts::ServiceData>& services) {
  if (services.empty()) {
    return Status::InvalidArgument("no services to fit");
  }
  const int num_features = services.front().train.num_features();
  if (num_features < 1) {
    return Status::InvalidArgument("service '" + services.front().name +
                                   "' train split is empty");
  }
  for (const ts::ServiceData& service : services) {
    if (service.train.num_features() != num_features) {
      return Status::InvalidArgument(
          "service '" + service.name + "' has " +
          std::to_string(service.train.num_features()) +
          " features, expected " + std::to_string(num_features));
    }
    if (service.train.length() < static_cast<size_t>(config_.window)) {
      return Status::InvalidArgument(
          "service '" + service.name + "' train split (" +
          std::to_string(service.train.length()) +
          " steps) is shorter than the window (" +
          std::to_string(config_.window) + ")");
    }
  }
  // Same train-split contract as MACE: kImpute imputes, anything else
  // rejects (statistics cannot propagate NaN).
  const std::vector<ts::ServiceData>* input = &services;
  std::vector<ts::ServiceData> sanitized_storage;
  for (size_t si = 0; si < services.size(); ++si) {
    const ts::NonFiniteValue bad = ts::FindNonFinite(services[si].train);
    if (!bad.found) continue;
    if (config_.non_finite_policy == ts::NonFinitePolicy::kImpute) {
      if (sanitized_storage.empty()) sanitized_storage = services;
      Result<ts::TimeSeries> imputed = ts::SanitizeSeries(
          services[si].train, ts::NonFinitePolicy::kImpute);
      if (!imputed.ok()) {
        return Status::InvalidArgument("service '" + services[si].name +
                                       "': " + imputed.status().message());
      }
      sanitized_storage[si].train = std::move(imputed).value();
      input = &sanitized_storage;
      continue;
    }
    const bool propagate =
        config_.non_finite_policy == ts::NonFinitePolicy::kPropagate;
    return Status::InvalidArgument(
        "service '" + services[si].name +
        "' train split holds non-finite value " + ts::DescribeNonFinite(bad) +
        (propagate
             ? " (non-finite policy 'propagate' degrades to 'reject' for "
               "training: sanitize upstream or use 'impute')"
             : " (non-finite policy 'reject')"));
  }

  // All learned state builds in task-indexed slots and commits only at
  // the end, so an error leaves the detector exactly as it was, and any
  // fit_threads value produces bit-identical results (services are
  // independent; the gain pools per-service sums in service order).
  const size_t num_services = services.size();
  std::vector<ChannelServiceState> states(num_services);
  std::vector<double> marginal_sums(num_services, 0.0);
  std::vector<size_t> marginal_windows(num_services, 0);
  std::vector<Status> service_status(num_services, Status::OK());
  // BuildServiceState must see the committed-to-be num_features_ (it
  // sizes the transpose); stage it before the parallel phase.
  const int previous_features = num_features_;
  num_features_ = num_features;
  WorkerPool pool(config_.fit_threads);
  pool.ParallelFor(num_services, [&](size_t si, int /*worker*/) {
    Result<ChannelServiceState> state = BuildServiceState(
        (*input)[si].train, &marginal_sums[si], &marginal_windows[si]);
    if (!state.ok()) {
      service_status[si] = state.status();
      return;
    }
    states[si] = std::move(state).value();
  });
  for (size_t si = 0; si < num_services; ++si) {
    if (!service_status[si].ok()) {
      num_features_ = previous_features;
      return Status::InvalidArgument("service '" + services[si].name +
                                     "': " + service_status[si].message());
    }
  }
  double marginal_total = 0.0;
  size_t windows_total = 0;
  for (size_t si = 0; si < num_services; ++si) {
    marginal_total += marginal_sums[si];
    windows_total += marginal_windows[si];
  }
  services_ = std::move(states);
  // The gain ties the (dimensionless) fusion distance to the marginal
  // error scale of THIS fit; it stays frozen for onboarded services, the
  // same transfer contract as MACE's frozen network.
  fusion_gain_ =
      config_.fusion_weight *
      (windows_total > 0 ? marginal_total / static_cast<double>(windows_total)
                         : 0.0);
  fitted_ = true;
  return Status::OK();
}

int64_t ChannelAwareDetector::ParameterCount() const {
  if (!fitted_) return 0;
  int64_t count = 1;  // the global fusion gain
  for (const ChannelServiceState& state : services_) {
    count += 2 * static_cast<int64_t>(state.fusion_mean.size());
  }
  return count;
}

Result<std::vector<double>> ChannelAwareDetector::ScaleObservation(
    int service_index, const std::vector<double>& row) const {
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= services_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  const ts::StandardScaler& scaler =
      services_[static_cast<size_t>(service_index)].scaler;
  if (row.size() != scaler.means().size()) {
    return Status::InvalidArgument("observation feature count mismatch");
  }
  std::vector<double> scaled(row.size());
  for (size_t f = 0; f < row.size(); ++f) {
    scaled[f] = (row[f] - scaler.means()[f]) / scaler.stddevs()[f];
  }
  return scaled;
}

Result<std::vector<double>> ChannelAwareDetector::ScoreWindow(
    int service_index,
    const std::vector<std::vector<double>>& scaled_rows) const {
  if (!fitted_) {
    return Status::FailedPrecondition("ScoreWindow before Fit");
  }
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= services_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (scaled_rows.size() != static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument("window must hold exactly " +
                                   std::to_string(config_.window) + " rows");
  }
  const auto m = static_cast<size_t>(num_features_);
  for (size_t t = 0; t < scaled_rows.size(); ++t) {
    if (scaled_rows[t].size() != m) {
      return Status::InvalidArgument("row feature count mismatch");
    }
    for (size_t f = 0; f < m; ++f) {
      if (!std::isfinite(scaled_rows[t][f])) {
        return Status::InvalidArgument(
            "window row " + std::to_string(t) + " feature " +
            std::to_string(f) +
            " holds non-finite value; sanitize upstream (ts/sanitize.h) "
            "before ScoreWindow");
      }
    }
  }
  return ScoreWindowAgainst(services_[static_cast<size_t>(service_index)],
                            scaled_rows, nullptr);
}

Result<std::vector<std::vector<double>>> ChannelAwareDetector::ScoreWindowBatch(
    int service_index,
    const std::vector<std::vector<std::vector<double>>>& windows) const {
  std::vector<std::vector<double>> results;
  results.reserve(windows.size());
  for (const std::vector<std::vector<double>>& window : windows) {
    MACE_ASSIGN_OR_RETURN(std::vector<double> errors,
                          ScoreWindow(service_index, window));
    results.push_back(std::move(errors));
  }
  return results;
}

std::vector<double> ChannelAwareDetector::ScoreScaled(
    const ChannelServiceState& state, const ts::TimeSeries& scaled) const {
  const std::vector<size_t> starts = ScoreWindowStarts(scaled.length());
  const auto window = static_cast<size_t>(config_.window);
  // Min-reduction, like MACE: a normal step near an anomaly is covered by
  // at least one clean window; a fusion break raises EVERY window that
  // contains it.
  core::ScoreAccumulator accumulator(scaled.length(),
                                     core::ScoreReduction::kMin);
  std::vector<std::vector<double>> rows(window);
  for (const size_t start : starts) {
    for (size_t t = 0; t < window; ++t) {
      rows[t] = scaled.values()[start + t];
    }
    accumulator.Add(start, ScoreWindowAgainst(state, rows, nullptr));
  }
  return accumulator.Finalize();
}

Result<std::vector<double>> ChannelAwareDetector::Score(
    int service_index, const ts::TimeSeries& test) {
  if (!fitted_) {
    return Status::FailedPrecondition("Score before Fit");
  }
  if (service_index < 0 ||
      static_cast<size_t>(service_index) >= services_.size()) {
    return Status::OutOfRange("unknown service index");
  }
  if (test.num_features() != num_features_) {
    return Status::InvalidArgument(
        "test series has " + std::to_string(test.num_features()) +
        " features, the fitted model expects " +
        std::to_string(num_features_));
  }
  if (test.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument("test series shorter than window");
  }
  MACE_ASSIGN_OR_RETURN(
      SanitizedSeries sanitized,
      SanitizeForScoring(test, config_.non_finite_policy, "test series"));
  const ChannelServiceState& state =
      services_[static_cast<size_t>(service_index)];
  std::vector<double> scores =
      ScoreScaled(state, state.scaler.Transform(sanitized.series));
  if (!sanitized.contaminated.empty()) {
    MaskPropagatedScores(ScoreWindowStarts(test.length()),
                         static_cast<size_t>(config_.window),
                         sanitized.contaminated, &scores);
  }
  return scores;
}

Result<std::vector<double>> ChannelAwareDetector::ScoreUnseen(
    const ts::ServiceData& service) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScoreUnseen before Fit");
  }
  if (service.train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service train split has " +
        std::to_string(service.train.num_features()) +
        " features, the fitted model expects " +
        std::to_string(num_features_));
  }
  if (service.test.num_features() != num_features_) {
    return Status::InvalidArgument(
        "unseen service test split has " +
        std::to_string(service.test.num_features()) +
        " features, the fitted model expects " +
        std::to_string(num_features_));
  }
  if (service.train.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument(
        "unseen service train split (" +
        std::to_string(service.train.length()) +
        " steps) is shorter than the window (" +
        std::to_string(config_.window) + ")");
  }
  if (service.test.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument(
        "unseen service test split (" + std::to_string(service.test.length()) +
        " steps) is shorter than the window (" +
        std::to_string(config_.window) + ")");
  }
  // The train split feeds statistics: kImpute imputes, everything else
  // rejects (same contract as Fit and MACE's ScoreUnseen).
  std::optional<ts::TimeSeries> imputed_train;
  const ts::TimeSeries* train = &service.train;
  const ts::NonFiniteValue bad = ts::FindNonFinite(service.train);
  if (bad.found) {
    if (config_.non_finite_policy != ts::NonFinitePolicy::kImpute) {
      const bool propagate =
          config_.non_finite_policy == ts::NonFinitePolicy::kPropagate;
      return Status::InvalidArgument(
          "unseen service train split holds non-finite value " +
          ts::DescribeNonFinite(bad) +
          (propagate
               ? " (non-finite policy 'propagate' degrades to 'reject' for "
                 "subspace extraction: sanitize upstream or use 'impute')"
               : " (non-finite policy 'reject')"));
    }
    Result<ts::TimeSeries> imputed =
        ts::SanitizeSeries(service.train, ts::NonFinitePolicy::kImpute);
    if (!imputed.ok()) {
      return Status::InvalidArgument("unseen service train split: " +
                                     imputed.status().message());
    }
    imputed_train = std::move(imputed).value();
    train = &*imputed_train;
  }
  double marginal_sum = 0.0;
  size_t marginal_windows = 0;
  MACE_ASSIGN_OR_RETURN(
      ChannelServiceState state,
      BuildServiceState(*train, &marginal_sum, &marginal_windows));
  MACE_ASSIGN_OR_RETURN(SanitizedSeries sanitized,
                        SanitizeForScoring(service.test,
                                           config_.non_finite_policy,
                                           "unseen service test split"));
  std::vector<double> scores =
      ScoreScaled(state, state.scaler.Transform(sanitized.series));
  if (!sanitized.contaminated.empty()) {
    MaskPropagatedScores(ScoreWindowStarts(service.test.length()),
                         static_cast<size_t>(config_.window),
                         sanitized.contaminated, &scores);
  }
  return scores;
}

Result<std::shared_ptr<const core::ServingModel>>
ChannelAwareDetector::OnboardService(const ts::TimeSeries& train) const {
  if (!fitted_) {
    return Status::FailedPrecondition("OnboardService before Fit");
  }
  if (train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "onboarding train split has " + std::to_string(train.num_features()) +
        " features, the fitted model expects " + std::to_string(num_features_));
  }
  if (train.length() < static_cast<size_t>(config_.window)) {
    return Status::InvalidArgument(
        "onboarding train split (" + std::to_string(train.length()) +
        " steps) is shorter than the window (" + std::to_string(config_.window) +
        ")");
  }
  std::optional<ts::TimeSeries> imputed_train;
  const ts::TimeSeries* clean = &train;
  const ts::NonFiniteValue bad = ts::FindNonFinite(train);
  if (bad.found) {
    if (config_.non_finite_policy != ts::NonFinitePolicy::kImpute) {
      return Status::InvalidArgument(
          "onboarding train split holds non-finite value " +
          ts::DescribeNonFinite(bad) + " (sanitize upstream or use 'impute')");
    }
    Result<ts::TimeSeries> imputed =
        ts::SanitizeSeries(train, ts::NonFinitePolicy::kImpute);
    if (!imputed.ok()) {
      return Status::InvalidArgument("onboarding train split: " +
                                     imputed.status().message());
    }
    imputed_train = std::move(imputed).value();
    clean = &*imputed_train;
  }
  double marginal_sum = 0.0;
  size_t marginal_windows = 0;
  MACE_ASSIGN_OR_RETURN(
      ChannelServiceState state,
      BuildServiceState(*clean, &marginal_sum, &marginal_windows));
  // The copy shares everything (including the frozen fusion gain) and
  // appends the onboarded service; `this` stays untouched so live
  // sessions drain on the original.
  auto copy = std::make_shared<ChannelAwareDetector>(*this);
  copy->services_.push_back(std::move(state));
  return std::shared_ptr<const core::ServingModel>(std::move(copy));
}

}  // namespace mace::channel
