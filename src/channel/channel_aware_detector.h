#ifndef MACE_CHANNEL_CHANNEL_AWARE_DETECTOR_H_
#define MACE_CHANNEL_CHANNEL_AWARE_DETECTOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/detector.h"
#include "ts/sanitize.h"
#include "ts/scaler.h"
#include "ts/time_series.h"

namespace mace::channel {

/// \brief Configuration of the channel-aware detector (DESIGN.md §16).
struct ChannelAwareConfig {
  int window = 40;
  int train_stride = 8;
  int score_stride = 8;
  /// Fourier bases kept per channel (each channel gets its own subspace,
  /// unlike MACE's one joint subspace over all features).
  int bases_per_channel = 6;
  /// Contiguous patches the one-sided amplitude spectrum (bins 1..T/2) is
  /// split into for the per-pair spectral-shape similarity features.
  int num_patches = 4;
  /// Scales the fusion term against the marginal reconstruction error:
  /// fusion gain = fusion_weight * mean training marginal window error.
  double fusion_weight = 1.0;
  /// Floor on each fusion feature's learned stddev, so a feature that is
  /// near-constant on normal data (e.g. a locked correlation of 0.999...)
  /// produces a large-but-finite z-score when it breaks.
  double sigma_floor = 0.05;
  /// Worker threads of Fit's per-service preprocessing fan-out. Results
  /// are bit-identical for any value (task-indexed slots).
  int fit_threads = 1;
  int seed = 0;
  ts::NonFinitePolicy non_finite_policy = ts::NonFinitePolicy::kReject;
};

/// Learned per-service state: everything ScoreWindow needs besides the
/// globally-frozen fusion gain.
struct ChannelServiceState {
  ts::StandardScaler scaler;
  /// Selected Fourier base indices per channel, [channel][base].
  std::vector<std::vector<int>> channel_bases;
  /// Mean / stddev of each fusion feature over the training windows
  /// (stddev floored at sigma_floor). Dimension = pairs * (1 + patches);
  /// empty for single-channel services (no pairs, fusion term 0).
  std::vector<double> fusion_mean;
  std::vector<double> fusion_sigma;
};

/// \brief Channel-aware frequency-patching detector (the CATCH-style
/// complement to MACE; ROADMAP item 3).
///
/// MACE models all features in ONE joint spectral subspace, so an anomaly
/// visible only in cross-channel correlation — each marginal channel keeps
/// its normal spectrum, but the channels decohere — is invisible to it.
/// This variant scores two terms per window:
///
///   score[t] = marginal[t] + gain * fusion_distance(window)
///
/// marginal[t]: per-channel Fourier-subspace reconstruction error (each
/// channel projected onto its OWN selected bases), averaged over channels
/// — the per-channel analogue of MACE's spectral residual.
///
/// fusion_distance: the window's inter-channel features — per channel
/// pair, the time-domain Pearson correlation plus the cosine similarity
/// of each of `num_patches` amplitude-spectrum patches — z-scored against
/// their fitted normal statistics, mean-squared. A correlation break
/// leaves every marginal spectrum intact but flips these features many
/// floored-sigmas away from normal.
///
/// Non-neural: "learning" is subspace selection plus feature statistics,
/// which makes zero-shot onboarding (ScoreUnseen / OnboardService) exact —
/// an unseen service gets its own subspaces and fusion statistics from its
/// train split while the global fusion gain stays frozen.
class ChannelAwareDetector : public core::Detector, public core::ServingModel {
 public:
  explicit ChannelAwareDetector(ChannelAwareConfig config = {});

  /// Bounds mirror MaceDetector::ValidateConfig and double as
  /// untrusted-input armor for Load: window in [4, 1024], strides >= 1,
  /// score_stride <= window, bases_per_channel in [1, window/2],
  /// num_patches in [1, window/2], fusion_weight >= 0 finite, sigma_floor
  /// > 0 finite, fit_threads in [1, 256].
  static Status ValidateConfig(const ChannelAwareConfig& config);

  // core::Detector.
  Status Fit(const std::vector<ts::ServiceData>& services) override;
  Result<std::vector<double>> Score(int service_index,
                                    const ts::TimeSeries& test) override;
  Result<std::vector<double>> ScoreUnseen(
      const ts::ServiceData& service) override;
  std::string name() const override { return "ChannelAware"; }
  /// Learned scalars: per-service fusion statistics plus the global gain.
  int64_t ParameterCount() const override;

  // core::ServingModel.
  bool fitted() const override { return fitted_; }
  int window() const override { return config_.window; }
  int score_stride() const override { return config_.score_stride; }
  int num_features() const override { return num_features_; }
  int num_services() const override {
    return static_cast<int>(services_.size());
  }
  ts::NonFinitePolicy non_finite_policy() const override {
    return config_.non_finite_policy;
  }
  std::vector<double> ImputationFallback(int service_index) const override {
    return services_[static_cast<size_t>(service_index)].scaler.means();
  }
  Result<std::vector<double>> ScaleObservation(
      int service_index, const std::vector<double>& row) const override;
  Result<std::vector<double>> ScoreWindow(
      int service_index,
      const std::vector<std::vector<double>>& scaled_rows) const override;
  Result<std::vector<std::vector<double>>> ScoreWindowBatch(
      int service_index,
      const std::vector<std::vector<std::vector<double>>>& windows)
      const override;
  Result<std::shared_ptr<const core::ServingModel>> OnboardService(
      const ts::TimeSeries& train) const override;

  /// Text format "MCHANv1" (channel_serialization.cc); loadable directly
  /// or through channel::LoadServingModel's magic dispatch.
  Status Save(const std::string& path) const override;
  static Result<ChannelAwareDetector> Load(const std::string& path);

  const ChannelAwareConfig& config() const { return config_; }
  const std::vector<ChannelServiceState>& services() const {
    return services_;
  }
  /// Frozen global fusion gain (fusion_weight * mean training marginal
  /// window error of the original Fit).
  double fusion_gain() const { return fusion_gain_; }
  void set_non_finite_policy(ts::NonFinitePolicy policy) {
    config_.non_finite_policy = policy;
  }

  /// Start offsets of the scoring windows over a series of `length`
  /// (stride-spaced plus one tail window), same schedule as MACE.
  std::vector<size_t> ScoreWindowStarts(size_t length) const;

  /// Channel pairs whose fusion features are tracked for `num_channels`
  /// channels: all pairs up to 16 channels, the adjacency ring above (so
  /// the feature count stays linear in wide deployments). Exposed for
  /// tests and serialization.
  static std::vector<std::pair<int, int>> FusionPairs(int num_channels);
  /// Fusion feature dimension for `num_channels` channels.
  int FusionDimension(int num_channels) const;

 private:
  /// Per-window fusion feature vector (size FusionDimension):
  /// `columns[c]` are the window's scaled per-channel columns,
  /// `amplitudes[c]` their one-sided DFT magnitudes (bins 1..window/2,
  /// reused from the marginal pass).
  std::vector<double> FusionFeatures(
      const std::vector<std::vector<double>>& columns,
      const std::vector<std::vector<double>>& amplitudes) const;
  /// Per-step errors of one scaled window against one service state, plus
  /// (optionally) the raw fusion feature vector before z-scoring.
  std::vector<double> ScoreWindowAgainst(
      const ChannelServiceState& state,
      const std::vector<std::vector<double>>& scaled_rows,
      std::vector<double>* raw_features) const;
  /// Builds one service's learned state from a clean (finite) train split;
  /// also returns the sum and count of the train windows' mean marginal
  /// errors, which Fit pools into the global fusion gain.
  Result<ChannelServiceState> BuildServiceState(
      const ts::TimeSeries& clean_train, double* marginal_sum,
      size_t* marginal_windows) const;
  /// Shared scoring loop over a scaled series.
  std::vector<double> ScoreScaled(const ChannelServiceState& state,
                                  const ts::TimeSeries& scaled) const;

  ChannelAwareConfig config_;
  bool fitted_ = false;
  int num_features_ = 0;
  std::vector<ChannelServiceState> services_;
  double fusion_gain_ = 0.0;
};

}  // namespace mace::channel

#endif  // MACE_CHANNEL_CHANNEL_AWARE_DETECTOR_H_
