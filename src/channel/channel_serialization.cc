// Save/Load of a fitted ChannelAwareDetector: the MCHANv1 line-oriented
// text format — config, the frozen fusion gain, and each service's
// preprocessing (scaler moments, per-channel bases, fusion statistics).
// Built on the same primitives as the MACEv1 format
// (core/serialization_io.h), so corrupt artifacts fail identically.

#include <cmath>
#include <fstream>
#include <sstream>

#include "channel/channel_aware_detector.h"
#include "core/serialization_io.h"

namespace mace::channel {
namespace {

constexpr char kMagic[] = "MCHANv1";

using core::io::Corrupt;
using core::io::ReadVector;
using core::io::WriteVector;

}  // namespace

Status ChannelAwareDetector::Save(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Save before Fit");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "'");
  out << kMagic << '\n';
  out.precision(17);
  out << config_.window << ' ' << config_.train_stride << ' '
      << config_.score_stride << ' ' << config_.bases_per_channel << ' '
      << config_.num_patches << ' ' << config_.fusion_weight << ' '
      << config_.sigma_floor << ' ' << config_.fit_threads << ' '
      << config_.seed << '\n';
  out << num_features_ << ' ' << services_.size() << '\n';
  out << fusion_gain_ << '\n';
  for (const ChannelServiceState& state : services_) {
    WriteVector(out, state.scaler.means());
    WriteVector(out, state.scaler.stddevs());
    for (const std::vector<int>& bases : state.channel_bases) {
      out << bases.size();
      for (int b : bases) out << ' ' << b;
      out << '\n';
    }
    WriteVector(out, state.fusion_mean);
    WriteVector(out, state.fusion_sigma);
  }
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

Result<ChannelAwareDetector> ChannelAwareDetector::Load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string magic;
  in >> magic;
  if (magic != kMagic) {
    return Status::InvalidArgument(
        "'" + path + "' is not a channel-aware model (magic '" + magic +
        "', expected '" + kMagic + "')");
  }
  ChannelAwareConfig config;
  in >> config.window >> config.train_stride >> config.score_stride >>
      config.bases_per_channel >> config.num_patches >>
      config.fusion_weight >> config.sigma_floor >> config.fit_threads >>
      config.seed;
  if (!in) {
    return Corrupt(path, std::string("unreadable config block") +
                             (in.eof() ? " (file truncated)" : ""));
  }
  // Pre-validate before constructing: the constructor CHECK-aborts on a
  // bad config, but a corrupt file should surface as a Status.
  const Status config_valid = ValidateConfig(config);
  if (!config_valid.ok()) {
    return Corrupt(path, "invalid config: " + config_valid.message());
  }

  ChannelAwareDetector detector(config);
  size_t num_services = 0;
  in >> detector.num_features_ >> num_services;
  if (!in || detector.num_features_ <= 0) {
    return Corrupt(path, "unreadable feature/service header");
  }
  if (detector.num_features_ > 4096) {
    return Corrupt(path, "declares " +
                             std::to_string(detector.num_features_) +
                             " features (limit 4096)");
  }
  if (num_services == 0) {
    return Corrupt(path, "holds no services");
  }
  if (num_services > 4096) {
    return Corrupt(path, "declares " + std::to_string(num_services) +
                             " services (limit 4096)");
  }
  if (!(in >> detector.fusion_gain_) ||
      !std::isfinite(detector.fusion_gain_) || detector.fusion_gain_ < 0.0) {
    return Corrupt(path, "fusion gain is missing or non-finite/negative");
  }
  const auto num_features = static_cast<size_t>(detector.num_features_);
  const size_t fusion_dim = static_cast<size_t>(
      detector.FusionDimension(detector.num_features_));
  for (size_t s = 0; s < num_services; ++s) {
    const std::string which = "service " + std::to_string(s);
    ChannelServiceState state;
    MACE_ASSIGN_OR_RETURN(std::vector<double> means,
                          ReadVector(in, path, which + " scaler means"));
    MACE_ASSIGN_OR_RETURN(std::vector<double> stddevs,
                          ReadVector(in, path, which + " scaler stddevs"));
    if (means.size() != num_features || stddevs.size() != num_features) {
      std::ostringstream reason;
      reason << which << " scaler holds " << means.size() << " means and "
             << stddevs.size() << " stddevs for " << num_features
             << " features";
      return Corrupt(path, reason.str());
    }
    for (size_t f = 0; f < num_features; ++f) {
      if (!std::isfinite(means[f]) || !std::isfinite(stddevs[f]) ||
          stddevs[f] <= 0.0) {
        return Corrupt(path, which + " scaler moments for feature " +
                                 std::to_string(f) +
                                 " are non-finite or non-positive");
      }
    }
    state.scaler =
        ts::StandardScaler::FromMoments(std::move(means), std::move(stddevs));
    state.channel_bases.resize(num_features);
    for (size_t c = 0; c < num_features; ++c) {
      const std::string channel =
          which + " channel " + std::to_string(c);
      size_t num_bases = 0;
      if (!(in >> num_bases)) {
        return Corrupt(path, "missing base count of " + channel);
      }
      if (num_bases < 1 ||
          num_bases > static_cast<size_t>(config.window) / 2) {
        std::ostringstream reason;
        reason << channel << " declares " << num_bases
               << " bases, expected [1, window/2] = [1, " << config.window / 2
               << "]";
        return Corrupt(path, reason.str());
      }
      state.channel_bases[c].resize(num_bases);
      for (size_t b = 0; b < num_bases; ++b) {
        if (!(in >> state.channel_bases[c][b])) {
          std::ostringstream reason;
          reason << channel << " subspace holds " << b << " of " << num_bases
                 << " base indices";
          if (in.eof()) reason << " (file truncated)";
          return Corrupt(path, reason.str());
        }
        if (state.channel_bases[c][b] < 1 ||
            state.channel_bases[c][b] > config.window / 2) {
          std::ostringstream reason;
          reason << channel << " base " << b << " is frequency index "
                 << state.channel_bases[c][b]
                 << ", outside [1, window/2] = [1, " << config.window / 2
                 << "]";
          return Corrupt(path, reason.str());
        }
      }
    }
    MACE_ASSIGN_OR_RETURN(state.fusion_mean,
                          ReadVector(in, path, which + " fusion means"));
    MACE_ASSIGN_OR_RETURN(state.fusion_sigma,
                          ReadVector(in, path, which + " fusion sigmas"));
    if (state.fusion_mean.size() != fusion_dim ||
        state.fusion_sigma.size() != fusion_dim) {
      std::ostringstream reason;
      reason << which << " fusion statistics hold "
             << state.fusion_mean.size() << " means and "
             << state.fusion_sigma.size() << " sigmas, expected "
             << fusion_dim;
      return Corrupt(path, reason.str());
    }
    for (size_t d = 0; d < fusion_dim; ++d) {
      if (!std::isfinite(state.fusion_mean[d]) ||
          !std::isfinite(state.fusion_sigma[d]) ||
          state.fusion_sigma[d] <= 0.0) {
        return Corrupt(path, which + " fusion statistics for dimension " +
                                 std::to_string(d) +
                                 " are non-finite or non-positive");
      }
    }
    detector.services_.push_back(std::move(state));
  }
  detector.fitted_ = true;
  return detector;
}

}  // namespace mace::channel
