#ifndef MACE_OBS_TRACE_H_
#define MACE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mace::obs {

/// One completed span in detailed-trace mode.
struct TraceEvent {
  const char* name = "";    ///< static string, owned by the call site
  double start_seconds = 0; ///< relative to TraceRecorder epoch
  double duration_seconds = 0;
  int depth = 0;            ///< nesting depth within the thread
  uint64_t thread_id = 0;
};

/// \brief Collects individual span events when detailed mode is on.
///
/// Two modes:
///  - always-on (default): spans only feed their latency histograms in
///    the MetricsRegistry — two clock reads and a few relaxed atomics per
///    span, cheap enough to leave in the scoring hot path.
///  - detailed (`MACE_TRACE=1` at startup, or SetDetailed(true)): spans
///    additionally append a TraceEvent to a bounded in-memory buffer
///    which can be drained and exported as Chrome trace-viewer JSON
///    (chrome://tracing, perfetto).
class TraceRecorder {
 public:
  static TraceRecorder& Get();

  bool detailed() const {
    return detailed_.load(std::memory_order_relaxed);
  }
  void SetDetailed(bool on) {
    detailed_.store(on, std::memory_order_relaxed);
  }

  void Record(TraceEvent event);
  /// Events recorded so far (detailed mode only), oldest first.
  std::vector<TraceEvent> Events() const;
  /// Removes and returns all buffered events.
  std::vector<TraceEvent> Drain();
  size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Renders events as a Chrome trace-viewer JSON array ("X" phases).
  std::string ExportChromeTrace() const;

  /// Seconds since the recorder's epoch (process-stable monotonic clock).
  double NowSeconds() const;

  static constexpr size_t kMaxEvents = 1 << 16;

 private:
  TraceRecorder();

  std::atomic<bool> detailed_{false};
  std::atomic<size_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII wall-clock span. Always observes its duration into
/// `latency_histogram` (when non-null); in detailed mode it also records
/// a TraceEvent. `name` must outlive the recorder (use string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      Histogram* latency_histogram = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Lap timer for consecutive pipeline stages: one clock read per
/// stage boundary instead of a nested span per stage, for hot loops where
/// even ScopedSpan's two reads per stage are worth halving.
class StageTimer {
 public:
  StageTimer() : last_(std::chrono::steady_clock::now()) {}

  /// Observes the time since construction/previous Mark into `histogram`
  /// and starts the next lap.
  void Mark(Histogram* histogram) {
    const auto now = std::chrono::steady_clock::now();
    histogram->Observe(std::chrono::duration<double>(now - last_).count());
    last_ = now;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace mace::obs

#endif  // MACE_OBS_TRACE_H_
