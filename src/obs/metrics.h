#ifndef MACE_OBS_METRICS_H_
#define MACE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mace::obs {

/// Label set of one instrument, e.g. {{"service", "0"}, {"stage", "dft"}}.
/// Stored sorted by key so equal label sets compare equal.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter. Increment is one relaxed
/// atomic add — safe and cheap to call from scoring worker threads.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins floating-point gauge (Set) with a CAS-loop Add
/// for the rare accumulate case.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram in the Prometheus cumulative-bucket
/// model: `bounds` are ascending upper bounds; an implicit +Inf bucket
/// catches the rest. Observe is a bucket scan plus two relaxed atomics,
/// lock-free on every platform we target.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds()+1, last is +Inf.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean observation, 0 when empty (summary-table convenience).
  double Mean() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets: 1us .. 10s, roughly log-spaced.
const std::vector<double>& LatencyBuckets();
/// Power-of-two buckets 1 .. 4096 for step-count distributions.
const std::vector<double>& StepBuckets();
/// Ten linear buckets over [0, 1] for ratios/utilization.
const std::vector<double>& RatioBuckets();
/// [0, 1] buckets refined near 1 (0.95/0.98/0.99) for subspace-overlap
/// distributions, where the online drift gate's skip threshold lives.
const std::vector<double>& OverlapBuckets();

enum class InstrumentType { kCounter, kGauge, kHistogram };

/// One exported time series (all samples of one instrument).
struct InstrumentSnapshot {
  Labels labels;
  double value = 0.0;                  // counter / gauge
  std::vector<double> bounds;          // histogram only
  std::vector<uint64_t> bucket_counts; // histogram only, non-cumulative
  double sum = 0.0;                    // histogram only
  uint64_t count = 0;                  // histogram only
};

/// All instruments sharing one metric name (a Prometheus family).
struct FamilySnapshot {
  std::string name;
  std::string help;
  InstrumentType type = InstrumentType::kCounter;
  std::vector<InstrumentSnapshot> instruments;
};

/// \brief Process-wide instrument registry. GetX registers on first use
/// and returns a pointer that stays valid for the life of the process, so
/// hot paths resolve their instrument once (e.g. into a static) and then
/// touch only atomics. Registration takes a mutex; updates do not.
///
/// If `MACE_METRICS_JSON` (or `MACE_METRICS_PROM`) is set when the
/// registry first comes alive, a full snapshot is written to that path at
/// process exit — this is how the bench harness emits machine-readable
/// per-stage timing without per-bench wiring.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {},
                          const std::vector<double>& bounds =
                              LatencyBuckets());

  /// Families sorted by name, instruments in registration order. Includes
  /// the logging subsystem's per-level record counters (see
  /// common/logging.h) as `mace_log_records_total`.
  std::vector<FamilySnapshot> Collect() const;

  /// Zeroes every instrument's value. Pointers stay valid (instruments are
  /// never destroyed) — meant for tests, not production.
  void ResetAllForTest();

 private:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;

  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    InstrumentType type;
    // Deque, not vector: GetX hands out pointers into this container, so
    // element addresses must survive later registrations in the family.
    std::deque<Instrument> instruments;
  };

  Instrument* FindOrCreate(const std::string& name, const std::string& help,
                           InstrumentType type, const Labels& labels,
                           const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Shorthand for MetricsRegistry::Get().
inline MetricsRegistry& Metrics() { return MetricsRegistry::Get(); }

/// \brief Observes one parallel region's per-worker busy times: one
/// sample per worker into `busy` (seconds) and, when `wall_seconds` is
/// positive, one busy/wall ratio per worker into `utilization`
/// (RatioBuckets). Shared by the scoring and training pools so both
/// report straggler skew the same way.
void RecordPoolUtilization(Histogram* busy, Histogram* utilization,
                           const std::vector<double>& busy_seconds,
                           double wall_seconds);

}  // namespace mace::obs

#endif  // MACE_OBS_METRICS_H_
