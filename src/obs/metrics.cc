#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace mace::obs {

// Defined in export.cc; used for the exit dump so metrics.cc does not
// depend on the exporter headers.
std::string ExportPrometheus();
std::string ExportJson();

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MACE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must ascend";
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBuckets() {
  static const std::vector<double> kBuckets = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
      1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
      1.0,  2.5,    5.0,  10.0};
  return kBuckets;
}

const std::vector<double>& StepBuckets() {
  static const std::vector<double> kBuckets = {
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
  return kBuckets;
}

const std::vector<double>& RatioBuckets() {
  static const std::vector<double> kBuckets = {0.1, 0.2, 0.3, 0.4, 0.5,
                                               0.6, 0.7, 0.8, 0.9, 1.0};
  return kBuckets;
}

const std::vector<double>& OverlapBuckets() {
  static const std::vector<double> kBuckets = {
      0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99, 1.0};
  return kBuckets;
}

namespace {

Labels Sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* TypeName(InstrumentType type) {
  switch (type) {
    case InstrumentType::kCounter:
      return "counter";
    case InstrumentType::kGauge:
      return "gauge";
    case InstrumentType::kHistogram:
      return "histogram";
  }
  return "?";
}

/// Writes the final registry snapshot to $MACE_METRICS_JSON /
/// $MACE_METRICS_PROM. Registered with atexit by the registry
/// constructor, so every instrumented binary (benches included) honors
/// the env vars with no wiring of its own.
void DumpAtExit() {
  struct Target {
    const char* env;
    std::string (*render)();
  };
  const Target targets[] = {{"MACE_METRICS_JSON", &ExportJson},
                            {"MACE_METRICS_PROM", &ExportPrometheus}};
  for (const Target& target : targets) {
    const char* path = std::getenv(target.env);
    if (path == nullptr || *path == '\0') continue;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      MACE_LOG(kWarning) << "cannot write metrics to " << path;
      continue;
    }
    const std::string text = target.render();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
}

}  // namespace

MetricsRegistry::MetricsRegistry() {
  if (std::getenv("MACE_METRICS_JSON") != nullptr ||
      std::getenv("MACE_METRICS_PROM") != nullptr) {
    std::atexit(&DumpAtExit);
  }
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help, InstrumentType type,
    const Labels& labels, const std::vector<double>* bounds) {
  const Labels sorted = Sorted(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name, Family{help, type, {}});
  Family& family = it->second;
  MACE_CHECK(family.type == type)
      << "metric '" << name << "' registered as " << TypeName(family.type)
      << " and requested as " << TypeName(type);
  for (Instrument& instrument : family.instruments) {
    if (instrument.labels == sorted) {
      if (type == InstrumentType::kHistogram) {
        MACE_CHECK(instrument.histogram->bounds() == *bounds)
            << "histogram '" << name
            << "' re-registered with different bucket bounds";
      }
      return &instrument;
    }
  }
  // Create the instrument here, under the same lock that found the slot:
  // a second thread registering another label set in this family must not
  // observe (or race with) a half-built instrument.
  family.instruments.push_back(Instrument{sorted, nullptr, nullptr, nullptr});
  Instrument& instrument = family.instruments.back();
  switch (type) {
    case InstrumentType::kCounter:
      instrument.counter = std::make_unique<Counter>();
      break;
    case InstrumentType::kGauge:
      instrument.gauge = std::make_unique<Gauge>();
      break;
    case InstrumentType::kHistogram:
      instrument.histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  return &instrument;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  return FindOrCreate(name, help, InstrumentType::kCounter, labels, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  return FindOrCreate(name, help, InstrumentType::kGauge, labels, nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels,
                                         const std::vector<double>& bounds) {
  return FindOrCreate(name, help, InstrumentType::kHistogram, labels, &bounds)
      ->histogram.get();
}

std::vector<FamilySnapshot> MetricsRegistry::Collect() const {
  std::vector<FamilySnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : families_) {
      FamilySnapshot fs;
      fs.name = name;
      fs.help = family.help;
      fs.type = family.type;
      for (const Instrument& instrument : family.instruments) {
        InstrumentSnapshot is;
        is.labels = instrument.labels;
        if (instrument.counter) {
          is.value = static_cast<double>(instrument.counter->Value());
        } else if (instrument.gauge) {
          is.value = instrument.gauge->Value();
        } else if (instrument.histogram) {
          is.bounds = instrument.histogram->bounds();
          is.bucket_counts = instrument.histogram->BucketCounts();
          is.sum = instrument.histogram->Sum();
          is.count = instrument.histogram->Count();
        }
        fs.instruments.push_back(std::move(is));
      }
      snapshot.push_back(std::move(fs));
    }
  }
  // Splice in the logging subsystem's per-level record counters so error
  // rates are scrapeable alongside everything else.
  FamilySnapshot logs;
  logs.name = "mace_log_records_total";
  logs.help = "Log records emitted, by severity";
  logs.type = InstrumentType::kCounter;
  const struct {
    LogLevel level;
    const char* label;
  } kLevels[] = {{LogLevel::kDebug, "debug"},
                 {LogLevel::kInfo, "info"},
                 {LogLevel::kWarning, "warning"},
                 {LogLevel::kError, "error"}};
  for (const auto& entry : kLevels) {
    InstrumentSnapshot is;
    is.labels = {{"level", entry.label}};
    is.value = static_cast<double>(GetLogRecordCount(entry.level));
    logs.instruments.push_back(std::move(is));
  }
  const auto pos = std::lower_bound(
      snapshot.begin(), snapshot.end(), logs.name,
      [](const FamilySnapshot& fs, const std::string& name) {
        return fs.name < name;
      });
  snapshot.insert(pos, std::move(logs));

  // Likewise the trace recorder's drop counter: a detailed trace that
  // silently stopped at kMaxEvents looks identical to a quiet system
  // unless the drop count is scrapeable.
  FamilySnapshot trace_drops;
  trace_drops.name = "mace_trace_dropped_total";
  trace_drops.help =
      "Trace events dropped because the detailed-trace buffer was full";
  trace_drops.type = InstrumentType::kCounter;
  InstrumentSnapshot drops;
  drops.value = static_cast<double>(TraceRecorder::Get().dropped());
  trace_drops.instruments.push_back(std::move(drops));
  const auto trace_pos = std::lower_bound(
      snapshot.begin(), snapshot.end(), trace_drops.name,
      [](const FamilySnapshot& fs, const std::string& name) {
        return fs.name < name;
      });
  snapshot.insert(trace_pos, std::move(trace_drops));
  return snapshot;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (Instrument& instrument : family.instruments) {
      if (instrument.counter) instrument.counter->Reset();
      if (instrument.gauge) instrument.gauge->Reset();
      if (instrument.histogram) instrument.histogram->Reset();
    }
  }
}

void RecordPoolUtilization(Histogram* busy, Histogram* utilization,
                           const std::vector<double>& busy_seconds,
                           double wall_seconds) {
  for (double seconds : busy_seconds) {
    if (busy != nullptr) busy->Observe(seconds);
    if (utilization != nullptr && wall_seconds > 0.0) {
      utilization->Observe(seconds / wall_seconds);
    }
  }
}

}  // namespace mace::obs
