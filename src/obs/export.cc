#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace mace::obs {
namespace {

/// Renders a double the Prometheus way: integers without a fraction,
/// +Inf for infinity, shortest round-trip otherwise.
std::string FormatValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Range check first: casting a double outside int64 range is UB.
  if (std::abs(value) < 1e15 && value == static_cast<int64_t>(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// `{k1="v1",k2="v2"}` with `extra` appended last; empty string when no
/// labels at all.
std::string RenderLabels(const Labels& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

const char* TypeName(InstrumentType type) {
  switch (type) {
    case InstrumentType::kCounter:
      return "counter";
    case InstrumentType::kGauge:
      return "gauge";
    case InstrumentType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "\"+Inf\"" : "\"-Inf\"";
  return FormatValue(value);
}

void RenderJsonLabels(std::ostringstream& out, const Labels& labels) {
  out << "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
  }
  out << "}";
}

}  // namespace

std::string ExportPrometheus(const std::vector<FamilySnapshot>& snapshot) {
  std::ostringstream out;
  for (const FamilySnapshot& family : snapshot) {
    out << "# HELP " << family.name << " " << family.help << "\n";
    out << "# TYPE " << family.name << " " << TypeName(family.type) << "\n";
    for (const InstrumentSnapshot& instrument : family.instruments) {
      if (family.type != InstrumentType::kHistogram) {
        out << family.name << RenderLabels(instrument.labels, "") << " "
            << FormatValue(instrument.value) << "\n";
        continue;
      }
      uint64_t cumulative = 0;
      for (size_t b = 0; b < instrument.bucket_counts.size(); ++b) {
        cumulative += instrument.bucket_counts[b];
        const double bound = b < instrument.bounds.size()
                                 ? instrument.bounds[b]
                                 : std::numeric_limits<double>::infinity();
        out << family.name << "_bucket"
            << RenderLabels(instrument.labels,
                            "le=\"" + FormatValue(bound) + "\"")
            << " " << cumulative << "\n";
      }
      out << family.name << "_sum" << RenderLabels(instrument.labels, "")
          << " " << FormatValue(instrument.sum) << "\n";
      out << family.name << "_count" << RenderLabels(instrument.labels, "")
          << " " << instrument.count << "\n";
    }
  }
  return out.str();
}

std::string ExportPrometheus() {
  return ExportPrometheus(Metrics().Collect());
}

std::string ExportJson(const std::vector<FamilySnapshot>& snapshot) {
  std::ostringstream out;
  out << "{";
  bool first_family = true;
  for (const FamilySnapshot& family : snapshot) {
    if (!first_family) out << ",";
    first_family = false;
    out << "\n  \"" << JsonEscape(family.name) << "\": {\"type\":\""
        << TypeName(family.type) << "\",\"help\":\""
        << JsonEscape(family.help) << "\",\"samples\":[";
    bool first_sample = true;
    for (const InstrumentSnapshot& instrument : family.instruments) {
      if (!first_sample) out << ",";
      first_sample = false;
      out << "\n    {";
      RenderJsonLabels(out, instrument.labels);
      if (family.type != InstrumentType::kHistogram) {
        out << ",\"value\":" << JsonNumber(instrument.value);
      } else {
        out << ",\"count\":" << instrument.count
            << ",\"sum\":" << JsonNumber(instrument.sum) << ",\"mean\":"
            << JsonNumber(instrument.count == 0
                              ? 0.0
                              : instrument.sum /
                                    static_cast<double>(instrument.count))
            << ",\"buckets\":[";
        for (size_t b = 0; b < instrument.bucket_counts.size(); ++b) {
          if (b > 0) out << ",";
          const double bound =
              b < instrument.bounds.size()
                  ? instrument.bounds[b]
                  : std::numeric_limits<double>::infinity();
          out << "{\"le\":" << JsonNumber(bound)
              << ",\"count\":" << instrument.bucket_counts[b] << "}";
        }
        out << "]";
      }
      out << "}";
    }
    out << "\n  ]}";
  }
  out << "\n}\n";
  return out.str();
}

std::string ExportJson() { return ExportJson(Metrics().Collect()); }

std::string FormatSummaryTable(const std::vector<FamilySnapshot>& snapshot) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %-28s %s\n", "metric", "labels",
                "value");
  out << line;
  for (const FamilySnapshot& family : snapshot) {
    for (const InstrumentSnapshot& instrument : family.instruments) {
      std::string labels;
      for (const auto& [key, value] : instrument.labels) {
        if (!labels.empty()) labels.push_back(',');
        labels += key + "=" + value;
      }
      std::string value;
      if (family.type == InstrumentType::kHistogram) {
        if (instrument.count == 0) continue;  // unused instrument, skip
        const double mean =
            instrument.sum / static_cast<double>(instrument.count);
        value = "n=" + std::to_string(instrument.count) +
                " mean=" + FormatValue(mean) +
                " total=" + FormatValue(instrument.sum);
      } else {
        if (instrument.value == 0.0) continue;
        value = FormatValue(instrument.value);
      }
      std::snprintf(line, sizeof(line), "%-44s %-28s %s\n",
                    family.name.c_str(), labels.c_str(), value.c_str());
      out << line;
    }
  }
  return out.str();
}

std::string FormatSummaryTable() {
  return FormatSummaryTable(Metrics().Collect());
}

Status WriteMetricsFile(const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string text = json ? ExportJson() : ExportPrometheus();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open metrics file '" + path + "'");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to metrics file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mace::obs
