#ifndef MACE_OBS_EXPORT_H_
#define MACE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace mace::obs {

/// Prometheus text exposition format (version 0.0.4): `# HELP` / `# TYPE`
/// header per family, histogram as cumulative `_bucket{le=...}` series
/// plus `_sum` and `_count`.
std::string ExportPrometheus(const std::vector<FamilySnapshot>& snapshot);
/// Same, collected from the global registry.
std::string ExportPrometheus();

/// JSON object keyed by metric name: counters/gauges as
/// `{"type","help","samples":[{"labels",...,"value"}]}`, histograms with
/// per-bucket counts, sum, count and mean.
std::string ExportJson(const std::vector<FamilySnapshot>& snapshot);
std::string ExportJson();

/// Human-readable summary: one line per sample, histograms as
/// `count/mean/total`. Meant for a stderr dump after a CLI run.
std::string FormatSummaryTable(const std::vector<FamilySnapshot>& snapshot);
std::string FormatSummaryTable();

/// Writes Prometheus text or JSON to `path` — JSON when the path ends in
/// ".json", Prometheus exposition otherwise.
Status WriteMetricsFile(const std::string& path);

}  // namespace mace::obs

#endif  // MACE_OBS_EXPORT_H_
