#include "obs/trace.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>
#include <thread>

namespace mace::obs {
namespace {

/// Nesting depth of live spans on this thread.
thread_local int t_span_depth = 0;

uint64_t ThisThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

bool EnvDetailed() {
  const char* value = std::getenv("MACE_TRACE");
  return value != nullptr && *value != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {
  detailed_.store(EnvDetailed(), std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::Get() {
  static TraceRecorder* recorder = new TraceRecorder();  // never dtor'd
  return *recorder;
}

double TraceRecorder::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

std::string TraceRecorder::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    // Timestamps in microseconds, the trace-viewer convention.
    out << "\n{\"name\":\"" << event.name << "\",\"ph\":\"X\",\"pid\":1"
        << ",\"tid\":" << event.thread_id % 100000
        << ",\"ts\":" << event.start_seconds * 1e6
        << ",\"dur\":" << event.duration_seconds * 1e6
        << ",\"args\":{\"depth\":" << event.depth << "}}";
  }
  out << "\n]\n";
  return out.str();
}

ScopedSpan::ScopedSpan(const char* name, Histogram* latency_histogram)
    : name_(name),
      histogram_(latency_histogram),
      start_(std::chrono::steady_clock::now()) {
  ++t_span_depth;
}

ScopedSpan::~ScopedSpan() {
  const auto end = std::chrono::steady_clock::now();
  --t_span_depth;
  const double duration =
      std::chrono::duration<double>(end - start_).count();
  if (histogram_ != nullptr) histogram_->Observe(duration);
  TraceRecorder& recorder = TraceRecorder::Get();
  if (recorder.detailed()) {
    TraceEvent event;
    event.name = name_;
    event.duration_seconds = duration;
    event.start_seconds = recorder.NowSeconds() - duration;
    event.depth = t_span_depth;
    event.thread_id = ThisThreadId();
    recorder.Record(event);
  }
}

}  // namespace mace::obs
