#include "serve/session_registry.h"

#include "history/store.h"

namespace mace::serve {
namespace {

/// History tenant of one session: the serve tenant qualified by the
/// service index, so each monitored stream ranks separately. The scorer
/// timestamps records by its emitted step index, which restarts at 0 for
/// every session — so a session re-created for a key whose tenant already
/// holds records (after EvictIdle/Recycle) would violate the store's
/// non-decreasing-timestamp invariant. Seed the timestamp base one past
/// the tenant's newest stored timestamp, so timestamps stay monotonic
/// across session generations.
void AttachSessionHistory(core::StreamingScorer* scorer,
                          history::HistoryStore* history,
                          const SessionKey& key) {
  if (history == nullptr) return;
  const history::HistoryStore::TenantId id =
      history->Intern(key.tenant + "/" + std::to_string(key.service));
  scorer->AttachHistory(history, id, history->next_timestamp(id));
}

/// Binds a session to its stream's online-learning state under the same
/// "<tenant>/<service>" key the history store uses. The rolling buffer
/// (sink) lives in the hooks provider and survives session recycling —
/// a returning tenant keeps accumulating refit data — while the ensemble
/// binding is per-session pipeline state owned right here.
void AttachSessionOnline(SessionRegistry::Session* session,
                         core::OnlineHooks* online, const SessionKey& key) {
  if (online == nullptr) return;
  const int num_features = session->model.model->num_features();
  core::StreamBinding binding = online->Bind(
      key.tenant + "/" + std::to_string(key.service), num_features);
  session->ensemble = std::move(binding.ensemble);
  session->scorer.AttachOnline(binding.sink, session->ensemble.get());
}

}  // namespace

Result<SessionRegistry::Session*> SessionRegistry::GetOrCreate(
    const SessionKey& key, const ModelProvider::Handle& handle,
    Clock::time_point now, ts::NonFinitePolicy policy) {
  auto it = sessions_.find(key);
  if (it != sessions_.end()) return &it->second;

  // Reuse a pooled scorer bound to the same (model, service).
  const auto pool_key = std::make_pair(handle.model.get(), key.service);
  auto pooled = free_pool_.find(pool_key);
  if (pooled != free_pool_.end() && !pooled->second.empty()) {
    Session session = std::move(pooled->second.back());
    pooled->second.pop_back();
    if (pooled->second.empty()) free_pool_.erase(pooled);
    session.last_used = now;
    // A recycled scorer may have served a tenant with another policy, and
    // Reset() detached the previous tenant's history.
    session.scorer.set_non_finite_policy(policy);
    AttachSessionHistory(&session.scorer, history_, key);
    ++recycled_hits_;
    auto inserted = sessions_.emplace(key, std::move(session));
    AttachSessionOnline(&inserted.first->second, online_, key);
    return &inserted.first->second;
  }

  Result<core::StreamingScorer> scorer =
      core::StreamingScorer::Create(handle.model.get(), key.service, policy);
  if (!scorer.ok()) return scorer.status();
  auto inserted = sessions_.emplace(
      key, Session{handle, std::move(scorer).value(), now, nullptr});
  AttachSessionHistory(&inserted.first->second.scorer, history_, key);
  AttachSessionOnline(&inserted.first->second, online_, key);
  return &inserted.first->second;
}

SessionRegistry::Session* SessionRegistry::Find(const SessionKey& key) {
  auto it = sessions_.find(key);
  return it == sessions_.end() ? nullptr : &it->second;
}

bool SessionRegistry::Recycle(const SessionKey& key,
                              const core::ServingModel* current_model) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return false;
  Session session = std::move(it->second);
  sessions_.erase(it);
  if (session.model.model.get() == current_model) {
    // Reset() detaches the online hooks; the ensemble object itself dies
    // here so a pooled scorer can never vote with a previous stream's
    // generation lanes.
    session.scorer.Reset();
    session.ensemble.reset();
    free_pool_[std::make_pair(session.model.model.get(), key.service)]
        .push_back(std::move(session));
  }
  return true;
}

size_t SessionRegistry::EvictIdle(Clock::time_point now,
                                  Clock::duration ttl,
                                  const core::ServingModel* current_model) {
  std::vector<SessionKey> idle;
  for (const auto& [key, session] : sessions_) {
    if (now - session.last_used >= ttl) idle.push_back(key);
  }
  for (const SessionKey& key : idle) Recycle(key, current_model);
  return idle.size();
}

void SessionRegistry::PruneFreePool(
    const core::ServingModel* current_model) {
  for (auto it = free_pool_.begin(); it != free_pool_.end();) {
    if (it->first.first != current_model) {
      it = free_pool_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t SessionRegistry::free_pool_size() const {
  size_t total = 0;
  for (const auto& [key, pool] : free_pool_) total += pool.size();
  return total;
}

}  // namespace mace::serve
