#ifndef MACE_SERVE_SESSION_REGISTRY_H_
#define MACE_SERVE_SESSION_REGISTRY_H_

#include <chrono>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/streaming.h"
#include "serve/model_provider.h"
#include "serve/types.h"

namespace mace::serve {

/// \brief Owns the live StreamingScorer sessions of one shard.
///
/// NOT thread-safe by design: every registry belongs to exactly one shard
/// worker thread (sessions are pinned to shards by tenant hash), which
/// makes per-session scoring single-threaded and lock-free without any
/// session-level synchronization.
///
/// Each session pins the model it opened with (shared_ptr), so a hot
/// reload leaves it untouched. Recycled scorers go to a free pool keyed
/// by (model, service) and are reused via StreamingScorer::Reset()
/// instead of reallocating; pool entries for models that are no longer
/// current are dropped so retired models don't linger.
class SessionRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  struct Session {
    ModelProvider::Handle model;
    core::StreamingScorer scorer;
    Clock::time_point last_used;
    /// Online-learning fan-out of this stream (null when the shard has no
    /// online hooks): per-generation scoring lanes whose consensus vote
    /// becomes the history anomaly bit. Owned by the session — lanes hold
    /// per-stream pipeline state — and dropped on recycle, while the
    /// stream's rolling buffer lives in the hooks provider and survives.
    std::unique_ptr<core::StreamEnsemble> ensemble;
  };

  /// Anomaly-history sink for this shard's sessions (not owned; may be
  /// null). Every session opened afterwards appends its emitted scores
  /// under the history tenant "<tenant>/<service>".
  void set_history(history::HistoryStore* history) { history_ = history; }

  /// Online-learning hooks for this shard's sessions (not owned; may be
  /// null). Every session opened afterwards is bound under the stream key
  /// "<tenant>/<service>": its observations feed the stream's rolling
  /// refit buffer and its emitted steps are voted on by the stream's
  /// model ensemble.
  void set_online(core::OnlineHooks* online) { online_ = online; }

  /// Returns the session for `key`, opening one on `handle.model` if
  /// absent (recycled from the free pool when possible). `policy` is the
  /// non-finite policy a NEW (or recycled) session opens with; an
  /// existing session keeps its own.
  Result<Session*> GetOrCreate(const SessionKey& key,
                               const ModelProvider::Handle& handle,
                               Clock::time_point now,
                               ts::NonFinitePolicy policy);

  /// Session for `key`, or nullptr.
  Session* Find(const SessionKey& key);

  /// Removes the session; its scorer is Reset and pooled when the session
  /// still runs `current_model`, discarded otherwise. Returns true if the
  /// session existed. Call scorer.Finish() first if the tail matters.
  /// Pointer identity keys the pool, so a swap that changed the detector
  /// VARIANT (not just its weights) also retires the old sessions — a
  /// recycled scorer can never score through a stale variant.
  bool Recycle(const SessionKey& key,
               const core::ServingModel* current_model);

  /// Recycles every session idle since before `now - ttl`; returns the
  /// number evicted. Their pending (un-Finished) tails are discarded.
  size_t EvictIdle(Clock::time_point now, Clock::duration ttl,
                   const core::ServingModel* current_model);

  /// Drops pooled scorers not bound to `current_model` (called after a
  /// model swap so the old model's memory can be released).
  void PruneFreePool(const core::ServingModel* current_model);

  size_t size() const { return sessions_.size(); }
  size_t free_pool_size() const;
  /// Lifetime count of sessions served from the free pool (telemetry).
  uint64_t recycled_hits() const { return recycled_hits_; }

 private:
  std::unordered_map<SessionKey, Session, SessionKeyHash> sessions_;
  /// Reset scorers ready for reuse, keyed by (model, service index) —
  /// a scorer is bound to both, so reuse must match both. The pooled
  /// handle keeps the model alive as long as the pool entry exists.
  std::map<std::pair<const core::ServingModel*, int>, std::vector<Session>>
      free_pool_;
  uint64_t recycled_hits_ = 0;
  history::HistoryStore* history_ = nullptr;
  core::OnlineHooks* online_ = nullptr;
};

}  // namespace mace::serve

#endif  // MACE_SERVE_SESSION_REGISTRY_H_
