#include "serve/types.h"

#include <cstdio>

namespace mace::serve {

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "unknown";
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShed:
      return "shed";
    case OverloadPolicy::kLatestOnly:
      return "latest_only";
  }
  return "unknown";
}

ShardStats ServeStats::Totals() const {
  ShardStats total;
  double wait_weighted = 0.0;
  for (const ShardStats& shard : shards) {
    total.queue_depth += shard.queue_depth;
    total.sessions_active += shard.sessions_active;
    total.submitted += shard.submitted;
    total.scored_steps += shard.scored_steps;
    total.emitted += shard.emitted;
    total.shed += shard.shed;
    total.sessions_evicted += shard.sessions_evicted;
    wait_weighted +=
        shard.mean_queue_wait_us * static_cast<double>(shard.scored_steps);
  }
  if (total.scored_steps > 0) {
    total.mean_queue_wait_us =
        wait_weighted / static_cast<double>(total.scored_steps);
  }
  return total;
}

std::string ServeStats::FormatLine() const {
  const ShardStats t = Totals();
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "serve gen %llu | sessions %zu | q %zu | in %llu scored %llu out "
      "%llu | shed %llu evicted %llu | wait %.0fus",
      static_cast<unsigned long long>(model_generation), t.sessions_active,
      t.queue_depth, static_cast<unsigned long long>(t.submitted),
      static_cast<unsigned long long>(t.scored_steps),
      static_cast<unsigned long long>(t.emitted),
      static_cast<unsigned long long>(t.shed),
      static_cast<unsigned long long>(t.sessions_evicted),
      t.mean_queue_wait_us);
  return line;
}

}  // namespace mace::serve
