#ifndef MACE_SERVE_TYPES_H_
#define MACE_SERVE_TYPES_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ts/sanitize.h"

namespace mace::core {
class OnlineHooks;
}
namespace mace::history {
class HistoryStore;
}

namespace mace::serve {

/// \brief Identity of one logical stream in the pool: a tenant (the
/// isolation domain — team, customer, cluster) monitoring one service
/// index of the fitted model.
///
/// All sessions of a tenant are pinned to one shard (hashed on the tenant
/// alone), so per-tenant scoring is single-threaded by construction.
struct SessionKey {
  std::string tenant;
  int service = 0;

  bool operator==(const SessionKey& other) const {
    return service == other.service && tenant == other.tenant;
  }
};

struct SessionKeyHash {
  size_t operator()(const SessionKey& key) const {
    // The tenant hash alone picks the shard; mixing the service in keeps
    // map buckets spread within a shard.
    const size_t h = std::hash<std::string>()(key.tenant);
    return h ^ (std::hash<int>()(key.service) + 0x9e3779b97f4a7c15ull +
                (h << 6) + (h >> 2));
  }
};

/// \brief Request priority class. Lower numeric value = more important.
///
/// Priorities layer on the overload machinery in two places:
///   - admission (qos.h QosController): when a tenant's token bucket
///     runs low, lower classes are refused first — each class below
///     kHigh reserves a slice of the bucket for the classes above it;
///   - shedding (ShardedWorkerPool): under kShed/kLatestOnly a full
///     queue victimizes the lowest-priority queued observation, so a
///     high-priority request is never shed while a lower one is queued.
enum class Priority : uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};
inline constexpr int kNumPriorities = 3;

const char* PriorityName(Priority priority);

/// \brief What Submit does when the target shard's queue is full.
enum class OverloadPolicy {
  kBlock,       ///< producer waits for space — lossless backpressure
  kShed,        ///< reject the new observation — newest loses
  kLatestOnly,  ///< drop the oldest queued observation — newest wins
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// \brief Outcome of one submitted observation: the scores it finalized
/// (empty while the session's window pipeline fills, one per step once it
/// flows) or why it produced none.
///
/// Under kShed/kLatestOnly a dropped observation never reaches its
/// session, so the session's step clock skips it — time-contiguity of a
/// shed stream is the caller's concern.
struct ScoreBatch {
  std::vector<double> scores;
  /// Session step index of scores.front() (valid when scores non-empty).
  size_t first_step = 0;
  /// True when the overload policy dropped the observation.
  bool dropped = false;
  /// True when the observation held non-finite values that a lossy
  /// non-finite policy absorbed (kImpute replaced them, kPropagate will
  /// NaN the steps its windows cover). Under kReject a contaminated
  /// observation surfaces as `status` instead.
  bool contaminated = false;
  /// Non-OK when the observation reached its session but scoring failed
  /// (e.g. wrong feature count, non-finite values under the kReject
  /// policy, service index gone after a model swap).
  Status status;
};

/// \brief Per-request options of Submit/Score.
struct RequestOptions {
  /// Non-finite policy the session opens with; unset = the frontend's
  /// ServeConfig::non_finite_policy. Applied when the session is created
  /// (or recycled) — an already-open session keeps the policy it opened
  /// with until it closes or idles out.
  std::optional<ts::NonFinitePolicy> non_finite_policy;
  /// Priority class: picks shed victims under kShed/kLatestOnly overload
  /// (lowest class first) and feeds QoS admission where one is attached.
  Priority priority = Priority::kNormal;
};

struct ServeConfig {
  int num_shards = 4;
  size_t queue_capacity = 1024;  ///< per-shard bound, in observations
  size_t max_batch = 64;         ///< micro-batch drained per worker wakeup
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Sessions idle longer than this are evicted and their scorers
  /// recycled (pending un-Finished tail discarded); <= 0 disables TTL.
  int64_t session_ttl_ms = 5 * 60 * 1000;
  /// Default non-finite observation policy for sessions opened without a
  /// RequestOptions override. Shards export what each policy did through
  /// the mace_ingest_{dropped,imputed,propagated}_total counters.
  ts::NonFinitePolicy non_finite_policy = ts::NonFinitePolicy::kReject;
  /// Optional fleet anomaly-history sink (not owned; must outlive the
  /// frontend). When set, every session mirrors its emitted scores into
  /// the store under the tenant name "<tenant>/<service>", which the
  /// history query engine ranks and correlates across the fleet.
  history::HistoryStore* history = nullptr;
  /// Optional online-learning hooks (not owned; must outlive the
  /// frontend) — in practice an online::OnlineTrainer. When set, every
  /// session feeds its observations into the stream's rolling refit
  /// buffer and scores through the stream's model ensemble, and the
  /// anomaly bit mirrored into `history` is the ensemble's consensus
  /// vote whenever the ensemble is warmed up.
  core::OnlineHooks* online = nullptr;
};

struct ShardStats {
  size_t queue_depth = 0;
  size_t sessions_active = 0;
  uint64_t submitted = 0;      ///< observations accepted into the queue
  uint64_t scored_steps = 0;   ///< observations consumed by a scorer
  uint64_t emitted = 0;        ///< finalized scores returned
  uint64_t shed = 0;           ///< observations dropped by overload policy
  uint64_t sessions_evicted = 0;
  double mean_queue_wait_us = 0.0;
};

/// \brief One coherent snapshot of the whole pool — the single live-stats
/// path shared by the mace_served dashboard and streaming_monitor.
struct ServeStats {
  uint64_t model_generation = 0;
  std::vector<ShardStats> shards;

  /// Sums the shards (mean wait weighted by scored observations).
  ShardStats Totals() const;
  /// One dashboard line, e.g.
  /// "serve gen 1 | sessions 64 | q 12 | in 8000 scored 7988 out 5440 |
  ///  shed 0 evicted 0 | wait 113us".
  std::string FormatLine() const;
};

}  // namespace mace::serve

#endif  // MACE_SERVE_TYPES_H_
