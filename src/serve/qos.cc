#include "serve/qos.h"

#include <algorithm>

#include "common/check.h"

namespace mace::serve {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst > 0.0 ? burst : std::max(rate, 1.0)) {
  MACE_CHECK(rate_ > 0.0) << "token bucket rate must be positive";
  tokens_ = burst_;  // a fresh bucket starts full: bursts are allowed
}

void TokenBucket::Refill(double now_seconds) {
  if (!started_) {
    started_ = true;
    last_ = now_seconds;
    return;
  }
  if (now_seconds > last_) {
    tokens_ = std::min(burst_, tokens_ + (now_seconds - last_) * rate_);
    last_ = now_seconds;
  }
  // now < last_: a clock hiccup refills nothing and moves no state.
}

bool TokenBucket::TryAcquire(double now_seconds, double tokens) {
  Refill(now_seconds);
  if (tokens_ + 1e-12 < tokens) return false;  // epsilon: refill rounding
  tokens_ -= tokens;
  if (tokens_ < 0.0) tokens_ = 0.0;
  return true;
}

double TokenBucket::Available(double now_seconds) {
  Refill(now_seconds);
  return tokens_;
}

QosController::QosController(QosConfig config) : config_(config) {
  obs::MetricsRegistry& metrics = obs::Metrics();
  for (int c = 0; c < kNumPriorities; ++c) {
    const obs::Labels labels = {
        {"class", PriorityName(static_cast<Priority>(c))}};
    admitted_counters_[c] = metrics.GetCounter(
        "mace_qos_admitted_total",
        "Requests admitted by the per-tenant QoS token buckets", labels);
    rejected_counters_[c] = metrics.GetCounter(
        "mace_qos_rejected_total",
        "Requests refused by the per-tenant QoS token buckets", labels);
  }
}

bool QosController::Admit(const std::string& tenant, Priority priority,
                          double now_seconds) {
  const int c = static_cast<int>(priority);
  MACE_CHECK(c >= 0 && c < kNumPriorities) << "priority out of range";
  if (!enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++admitted_[c];
    admitted_counters_[c]->Increment();
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    // Beyond the tenant cap, newcomers share one overflow bucket so a
    // hostile stream of fresh tenant names can't grow memory unboundedly
    // (they then also share its rate, which is the conservative failure).
    const std::string& key =
        buckets_.size() >= config_.max_tenants ? std::string("\x01overflow")
                                               : tenant;
    it = buckets_.find(key);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(key, TokenBucket(config_.rate_per_tenant,
                                         config_.burst))
               .first;
    }
  }
  TokenBucket& bucket = it->second;
  // Class headroom: class c admits only while more than
  // burst * reserve_fraction * c tokens remain (on top of its own).
  const double reserve =
      bucket.burst() * config_.reserve_fraction * static_cast<double>(c);
  const bool admit = bucket.Available(now_seconds) > reserve &&
                     bucket.TryAcquire(now_seconds, 1.0);
  if (admit) {
    ++admitted_[c];
    admitted_counters_[c]->Increment();
  } else {
    ++rejected_[c];
    rejected_counters_[c]->Increment();
  }
  return admit;
}

uint64_t QosController::admitted(Priority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_[static_cast<int>(priority)];
}

uint64_t QosController::rejected(Priority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_[static_cast<int>(priority)];
}

size_t QosController::tracked_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

}  // namespace mace::serve
