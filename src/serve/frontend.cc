#include "serve/frontend.h"

#include <utility>

namespace mace::serve {

ServeFrontend::ServeFrontend(ServeConfig config,
                             std::unique_ptr<ModelProvider> provider)
    : config_(config), provider_(std::move(provider)) {
  pool_ = std::make_unique<ShardedWorkerPool>(config_, provider_.get());
}

ServeFrontend::~ServeFrontend() {
  if (pool_ != nullptr) pool_->Stop();
}

Result<std::unique_ptr<ServeFrontend>> ServeFrontend::Create(
    std::shared_ptr<const core::ServingModel> model, ServeConfig config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  MACE_ASSIGN_OR_RETURN(std::unique_ptr<ModelProvider> provider,
                        ModelProvider::Create(std::move(model)));
  return std::unique_ptr<ServeFrontend>(
      new ServeFrontend(config, std::move(provider)));
}

Result<std::future<ScoreBatch>> ServeFrontend::Submit(
    const std::string& tenant, int service,
    std::vector<double> observation, RequestOptions options) {
  const ModelProvider::Handle handle = provider_->Current();
  if (service < 0 || service >= handle.model->num_services()) {
    return Status::OutOfRange(
        "service " + std::to_string(service) + " outside the " +
        std::to_string(handle.model->num_services()) +
        " services of model generation " +
        std::to_string(handle.generation));
  }
  return pool_->Submit(SessionKey{tenant, service}, std::move(observation),
                       options.non_finite_policy, options.priority);
}

Status ServeFrontend::SubmitAsync(const std::string& tenant, int service,
                                  std::vector<double> observation,
                                  RequestOptions options,
                                  std::function<void(ScoreBatch&&)> done) {
  const ModelProvider::Handle handle = provider_->Current();
  if (service < 0 || service >= handle.model->num_services()) {
    return Status::OutOfRange(
        "service " + std::to_string(service) + " outside the " +
        std::to_string(handle.model->num_services()) +
        " services of model generation " +
        std::to_string(handle.generation));
  }
  pool_->SubmitAsync(SessionKey{tenant, service}, std::move(observation),
                     options.non_finite_policy, options.priority,
                     std::move(done));
  return Status();
}

Result<ScoreBatch> ServeFrontend::Score(const std::string& tenant,
                                        int service,
                                        std::vector<double> observation,
                                        RequestOptions options) {
  MACE_ASSIGN_OR_RETURN(
      std::future<ScoreBatch> future,
      Submit(tenant, service, std::move(observation), options));
  return future.get();
}

Result<std::vector<double>> ServeFrontend::Close(const std::string& tenant,
                                                 int service) {
  ScoreBatch batch = pool_->Close(SessionKey{tenant, service}).get();
  if (!batch.status.ok()) return batch.status;
  return std::move(batch.scores);
}

void ServeFrontend::CloseAsync(const std::string& tenant, int service,
                               std::function<void(ScoreBatch&&)> done) {
  pool_->CloseAsync(SessionKey{tenant, service}, std::move(done));
}

Status ServeFrontend::Reload(const std::string& path) {
  return provider_->Reload(path);
}

Status ServeFrontend::Swap(
    std::shared_ptr<const core::ServingModel> next) {
  return provider_->Swap(std::move(next));
}

Result<int> ServeFrontend::Onboard(const ts::TimeSeries& train) {
  const ModelProvider::Handle handle = provider_->Current();
  MACE_ASSIGN_OR_RETURN(std::shared_ptr<const core::ServingModel> next,
                        handle.model->OnboardService(train));
  MACE_RETURN_IF_ERROR(provider_->Swap(next));
  return next->num_services() - 1;
}

void ServeFrontend::Flush() { pool_->Flush(); }

ServeStats ServeFrontend::Stats() const {
  ServeStats stats = pool_->Stats();
  stats.model_generation = provider_->generation();
  return stats;
}

}  // namespace mace::serve
