#ifndef MACE_SERVE_FRONTEND_H_
#define MACE_SERVE_FRONTEND_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/model_provider.h"
#include "serve/types.h"
#include "serve/worker_pool.h"

namespace mace::serve {

/// \brief Embeddable multi-tenant serving facade over a fitted
/// core::ServingModel (any detector variant) — the paper's C2 cloud
/// deployment as a subsystem.
///
/// One frontend multiplexes any number of (tenant, service) observation
/// streams onto a sharded worker pool of StreamingScorer sessions:
///
///   auto frontend = ServeFrontend::Create(model, config);
///   std::future<ScoreBatch> f =
///       (*frontend)->Submit("tenant-a", /*service=*/0, observation);
///   // ... or the synchronous path:
///   Result<ScoreBatch> batch = (*frontend)->Score("tenant-a", 0, obs);
///
/// Sessions open lazily on first Submit, are pinned to a shard by tenant
/// hash (per-session scoring is single-threaded and in submission
/// order), idle out after `session_ttl_ms`, and keep the model they
/// opened with across Reload/Swap — a hot reload drains old sessions on
/// the old model while new sessions open on the new one.
class ServeFrontend {
 public:
  /// Validates the model (non-null, fitted) and the config
  /// (num_shards/queue_capacity/max_batch >= 1) and starts the shard
  /// workers.
  static Result<std::unique_ptr<ServeFrontend>> Create(
      std::shared_ptr<const core::ServingModel> model,
      ServeConfig config = ServeConfig());

  ~ServeFrontend();
  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  /// Asynchronous path: enqueues the observation on its tenant's shard
  /// under the overload policy. Fails fast (without touching the pool)
  /// when `service` is outside the current model's fitted services.
  /// `options.non_finite_policy` selects the session's non-finite
  /// handling at open (default: ServeConfig::non_finite_policy).
  Result<std::future<ScoreBatch>> Submit(const std::string& tenant,
                                         int service,
                                         std::vector<double> observation,
                                         RequestOptions options = {});

  /// Completion-callback path for event-loop callers (the net front
  /// door): validates like Submit — a non-OK return means `done` will
  /// never run — then enqueues. `done` runs exactly once, on the shard
  /// worker thread (or inline when shed/stopped); it must be cheap,
  /// non-blocking, and must not call back into the frontend.
  Status SubmitAsync(const std::string& tenant, int service,
                     std::vector<double> observation,
                     RequestOptions options,
                     std::function<void(ScoreBatch&&)> done);

  /// Synchronous path: Submit + wait. Still routed through the shard
  /// queue, so it composes with concurrent Submits to the same session.
  Result<ScoreBatch> Score(const std::string& tenant, int service,
                           std::vector<double> observation,
                           RequestOptions options = {});

  /// Finishes the session's pending tail, closes it, and returns the
  /// tail scores (empty when the session does not exist).
  Result<std::vector<double>> Close(const std::string& tenant, int service);

  /// Callback flavor of Close (same `done` contract as SubmitAsync).
  void CloseAsync(const std::string& tenant, int service,
                  std::function<void(ScoreBatch&&)> done);

  /// Hot reload from disk: on success new sessions open on the loaded
  /// model; live sessions keep draining on theirs. On failure the live
  /// model is untouched and the descriptive load error is returned.
  Status Reload(const std::string& path);
  /// Same, with an already-fitted in-memory model.
  Status Swap(std::shared_ptr<const core::ServingModel> next);

  /// Zero-shot tenant onboarding: extends the CURRENT model with one more
  /// service whose preprocessing is computed from `train` (learned
  /// weights frozen — the ScoreUnseen transfer protocol) and swaps the
  /// extended copy in. Returns the new service's index; sessions already
  /// open keep draining on the pre-onboard model. Onboards are serialized
  /// against each other and against Swap only by the caller — concurrent
  /// onboarders can race and drop each other's services.
  Result<int> Onboard(const ts::TimeSeries& train);

  /// Barrier: waits until everything submitted before the call is scored.
  void Flush();

  ServeStats Stats() const;
  uint64_t model_generation() const { return provider_->generation(); }
  const ServeConfig& config() const { return config_; }

  /// The pool, for tests that need shard-level control.
  ShardedWorkerPool& pool_for_test() { return *pool_; }

 private:
  ServeFrontend(ServeConfig config,
                std::unique_ptr<ModelProvider> provider);

  ServeConfig config_;
  std::unique_ptr<ModelProvider> provider_;
  std::unique_ptr<ShardedWorkerPool> pool_;
};

}  // namespace mace::serve

#endif  // MACE_SERVE_FRONTEND_H_
