#ifndef MACE_SERVE_QOS_H_
#define MACE_SERVE_QOS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "serve/types.h"

namespace mace::serve {

/// \brief Deterministic token bucket: `rate` tokens/second refill up to
/// `burst` capacity. Time is an explicit parameter (seconds on any
/// monotonic axis), so accounting is exactly testable and callers on an
/// epoll thread pass one clock read per batch of admissions.
class TokenBucket {
 public:
  /// `rate` > 0; `burst` <= 0 defaults to max(rate, 1).
  TokenBucket(double rate, double burst);

  /// Consumes `tokens` if available after refilling to `now_seconds`.
  /// Time moving backwards refills nothing (and never goes negative).
  bool TryAcquire(double now_seconds, double tokens = 1.0);

  /// Tokens available at `now_seconds` (refills as a side effect).
  double Available(double now_seconds);

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(double now_seconds);

  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
  bool started_ = false;
};

/// \brief Per-tenant rate limiting with priority-class headroom.
struct QosConfig {
  /// Sustained per-tenant admission rate, requests/second. <= 0 disables
  /// QoS entirely (every request admitted, no bucket state kept).
  double rate_per_tenant = 0.0;
  /// Bucket capacity (burst allowance); <= 0 = max(rate_per_tenant, 1).
  double burst = 0.0;
  /// Fraction of the bucket reserved away from each class below kHigh:
  /// class c is admitted only while the bucket holds more than
  /// `burst * reserve_fraction * c` tokens (kHigh needs just its own
  /// token). Under sustained overload the bucket hovers near empty, so
  /// low drops first, then normal, and high keeps its share — strict
  /// priority without starving the bucket arithmetic.
  double reserve_fraction = 0.25;
  /// Cap on distinct tenant buckets; beyond it, new tenants share one
  /// overflow bucket (bounds hostile tenant-name cardinality).
  size_t max_tenants = 1u << 20;
};

/// \brief Thread-safe per-tenant admission controller. Exports exact
/// admission accounting as mace_qos_admitted_total{class} /
/// mace_qos_rejected_total{class}.
class QosController {
 public:
  explicit QosController(QosConfig config);

  /// True = admitted (a token was consumed); false = rate-limited.
  bool Admit(const std::string& tenant, Priority priority,
             double now_seconds);

  bool enabled() const { return config_.rate_per_tenant > 0.0; }
  const QosConfig& config() const { return config_; }

  uint64_t admitted(Priority priority) const;
  uint64_t rejected(Priority priority) const;
  size_t tracked_tenants() const;

 private:
  QosConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TokenBucket> buckets_;
  obs::Counter* admitted_counters_[kNumPriorities] = {};
  obs::Counter* rejected_counters_[kNumPriorities] = {};
  uint64_t admitted_[kNumPriorities] = {};
  uint64_t rejected_[kNumPriorities] = {};
};

}  // namespace mace::serve

#endif  // MACE_SERVE_QOS_H_
