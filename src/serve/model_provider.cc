#include "serve/model_provider.h"

#include <utility>

#include "channel/model_io.h"

namespace mace::serve {

ModelProvider::ModelProvider(
    std::shared_ptr<const core::ServingModel> initial)
    : current_(std::move(initial)) {
  generation_gauge_ = obs::Metrics().GetGauge(
      "mace_serve_model_generation",
      "Reload generation of the currently served model (1 = initial)");
  generation_gauge_->Set(1.0);
}

Status ModelProvider::Validate(const core::ServingModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (!model->fitted() || model->num_services() == 0) {
    return Status::FailedPrecondition("model is not fitted");
  }
  return Status::OK();
}

Result<std::unique_ptr<ModelProvider>> ModelProvider::Create(
    std::shared_ptr<const core::ServingModel> initial) {
  MACE_RETURN_IF_ERROR(Validate(initial.get()));
  return std::unique_ptr<ModelProvider>(
      new ModelProvider(std::move(initial)));
}

ModelProvider::Handle ModelProvider::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Handle{current_, generation_.load(std::memory_order_relaxed)};
}

Status ModelProvider::Swap(
    std::shared_ptr<const core::ServingModel> next) {
  MACE_RETURN_IF_ERROR(Validate(next.get()));
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(next);
    generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  generation_gauge_->Set(static_cast<double>(generation));
  return Status::OK();
}

Status ModelProvider::Reload(const std::string& path) {
  Result<std::shared_ptr<const core::ServingModel>> loaded =
      channel::LoadServingModel(path);
  if (!loaded.ok()) return loaded.status();
  return Swap(std::move(loaded).value());
}

}  // namespace mace::serve
