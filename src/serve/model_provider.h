#ifndef MACE_SERVE_MODEL_PROVIDER_H_
#define MACE_SERVE_MODEL_PROVIDER_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/detector.h"
#include "obs/metrics.h"

namespace mace::serve {

/// \brief Shared handle to the currently-live fitted serving model plus
/// its reload generation — the hot-reload pivot of the serving subsystem.
///
/// Sessions capture the shared_ptr when they open, so Swap never
/// invalidates in-flight sessions: they keep draining on the model they
/// opened with (their scores stay bit-identical to an uninterrupted
/// stream) while sessions opened after the swap run on the replacement.
/// The old model is freed once its last session closes or is evicted.
/// The provider is variant-agnostic (core::ServingModel): a Swap may
/// replace the detector VARIANT, not just its weights.
class ModelProvider {
 public:
  struct Handle {
    std::shared_ptr<const core::ServingModel> model;
    uint64_t generation = 0;
  };

  /// \param initial fitted model to serve; must be non-null and fitted.
  static Result<std::unique_ptr<ModelProvider>> Create(
      std::shared_ptr<const core::ServingModel> initial);

  Handle Current() const;
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Atomically replaces the served model (generation += 1). `next` must
  /// be non-null and fitted.
  Status Swap(std::shared_ptr<const core::ServingModel> next);

  /// Hot reload from disk: channel::LoadServingModel(path) — the magic
  /// line dispatches to the variant's loader — then Swap. On any load
  /// error the live model stays untouched and the descriptive load Status
  /// (path + reason) is returned.
  Status Reload(const std::string& path);

 private:
  explicit ModelProvider(std::shared_ptr<const core::ServingModel> initial);

  static Status Validate(const core::ServingModel* model);

  mutable std::mutex mu_;
  std::shared_ptr<const core::ServingModel> current_;
  std::atomic<uint64_t> generation_{1};
  obs::Gauge* generation_gauge_ = nullptr;
};

}  // namespace mace::serve

#endif  // MACE_SERVE_MODEL_PROVIDER_H_
