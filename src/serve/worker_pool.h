#ifndef MACE_SERVE_WORKER_POOL_H_
#define MACE_SERVE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/model_provider.h"
#include "serve/session_registry.h"
#include "serve/types.h"

namespace mace::serve {

/// \brief N shards, each one worker thread plus a bounded MPSC queue.
///
/// Sessions are pinned to shards by tenant hash, so all observations of a
/// tenant are scored by one thread in submission order — per-session
/// state needs no locks. Workers drain up to `max_batch` queued
/// observations per wakeup (micro-batching amortizes wakeups and the one
/// ModelProvider lookup per batch), and a full queue triggers the
/// configured overload policy. Queue depth, shed counts, micro-batch
/// sizes and queue-wait latencies are exported per shard through the
/// obs metrics registry.
class ShardedWorkerPool {
 public:
  /// `provider` must outlive the pool. `config` is assumed validated
  /// (ServeFrontend::Create is the validating entry point).
  ShardedWorkerPool(const ServeConfig& config, ModelProvider* provider);
  ~ShardedWorkerPool();

  /// Enqueues one observation under the overload policy. The future
  /// resolves when the shard worker scored (or shed) it. `policy`
  /// overrides the config's non-finite policy for a session this
  /// observation opens (existing sessions keep theirs). `priority`
  /// selects shed victims under kShed/kLatestOnly: a full queue drops
  /// the lowest class first, so a high-priority observation is never
  /// shed while a lower-priority one is queued.
  std::future<ScoreBatch> Submit(
      SessionKey key, std::vector<double> observation,
      std::optional<ts::NonFinitePolicy> policy = std::nullopt,
      Priority priority = Priority::kNormal);

  /// Callback flavor of Submit for completion-driven callers (the epoll
  /// front door): `done` runs exactly once, on the shard worker thread
  /// (or inline on the submitting thread when the observation is shed or
  /// the pool is stopped). It must be cheap, non-blocking, and must not
  /// call back into the pool — it typically encodes a response frame and
  /// wakes an event loop.
  void SubmitAsync(SessionKey key, std::vector<double> observation,
                   std::optional<ts::NonFinitePolicy> policy,
                   Priority priority,
                   std::function<void(ScoreBatch&&)> done);

  /// Finishes the session's tail, evicts it, and resolves the future with
  /// the tail scores (empty batch when no such session exists).
  std::future<ScoreBatch> Close(SessionKey key);

  /// Callback flavor of Close (same contract as SubmitAsync's `done`).
  void CloseAsync(SessionKey key, std::function<void(ScoreBatch&&)> done);

  /// Barrier: returns once every observation queued before the call has
  /// been processed.
  void Flush();

  /// Stops accepting work, drains every queue, joins the workers.
  /// Idempotent; called by the destructor.
  void Stop();

  ServeStats Stats() const;
  int ShardOf(const std::string& tenant) const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Test hook: parks `shard`'s worker until `gate` becomes ready, so
  /// tests can fill a queue deterministically and observe the overload
  /// policies. Bypasses the capacity bound.
  void BlockShardUntilForTest(int shard, std::shared_future<void> gate);

 private:
  struct WorkItem {
    enum class Kind { kScore, kClose, kFence, kGate };
    Kind kind = Kind::kScore;
    SessionKey key;
    std::vector<double> observation;
    /// Session-open non-finite policy override (kScore only).
    std::optional<ts::NonFinitePolicy> policy;
    Priority priority = Priority::kNormal;
    /// Exactly one completion path: `callback` when set (async callers),
    /// the promise otherwise. Resolve() is the single dispatch point.
    std::promise<ScoreBatch> promise;
    std::function<void(ScoreBatch&&)> callback;
    std::shared_future<void> gate;  // kGate only
    std::chrono::steady_clock::time_point enqueued_at;

    void Resolve(ScoreBatch&& batch) {
      if (callback) {
        callback(std::move(batch));
      } else {
        promise.set_value(std::move(batch));
      }
    }
  };

  class Shard {
   public:
    Shard(int index, const ServeConfig& config, ModelProvider* provider);
    ~Shard();

    /// `control` items (fences, closes, gates) bypass the capacity bound
    /// and are never shed.
    std::future<ScoreBatch> Enqueue(WorkItem item, bool control);
    void Stop();
    ShardStats Stats() const;

   private:
    void Run();
    void Process(WorkItem& item, const ModelProvider::Handle& handle);
    /// Drains one micro-batch: score items between control items are
    /// grouped by session and pushed through the batched scoring fast
    /// path; control items stay ordering barriers.
    void ProcessBatch(std::vector<WorkItem>& batch,
                      const ModelProvider::Handle& handle);
    /// Scores >= 2 same-session observations via StreamingScorer::PushMany
    /// (falls back to per-item Push if the batched call rejects input).
    void ProcessScoreGroup(std::vector<WorkItem*>& group,
                           const ModelProvider::Handle& handle);
    /// Ingest accounting for one observation that held `bad` non-finite
    /// values, after its Push resolved under the session's policy.
    void AccountIngest(ts::NonFinitePolicy policy, size_t bad,
                       ScoreBatch* batch);

    const int index_;
    const ServeConfig config_;
    ModelProvider* const provider_;
    SessionRegistry registry_;  // worker-thread-only

    mutable std::mutex mu_;
    std::condition_variable queue_nonempty_;
    std::condition_variable queue_has_space_;
    std::deque<WorkItem> queue_;
    bool stop_ = false;

    // Read by Stats() from arbitrary threads.
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> scored_steps_{0};
    std::atomic<uint64_t> emitted_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> evicted_{0};
    std::atomic<size_t> sessions_active_{0};
    std::atomic<uint64_t> queue_wait_ns_{0};
    std::atomic<uint64_t> queue_wait_samples_{0};

    obs::Counter* submitted_counter_ = nullptr;
    obs::Counter* shed_counter_ = nullptr;
    obs::Counter* evicted_counter_ = nullptr;
    obs::Counter* ingest_dropped_counter_ = nullptr;
    obs::Counter* ingest_imputed_counter_ = nullptr;
    obs::Counter* ingest_propagated_counter_ = nullptr;
    obs::Gauge* depth_gauge_ = nullptr;
    obs::Gauge* sessions_gauge_ = nullptr;
    obs::Histogram* queue_wait_hist_ = nullptr;
    obs::Histogram* batch_size_hist_ = nullptr;

    std::thread worker_;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mace::serve

#endif  // MACE_SERVE_WORKER_POOL_H_
