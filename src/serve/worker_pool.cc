#include "serve/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mace::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Worker wakeup period when idle: bounds the staleness of TTL eviction
/// sweeps without costing anything under load (loaded workers never wait).
Clock::duration SweepInterval(const ServeConfig& config) {
  if (config.session_ttl_ms <= 0) return std::chrono::seconds(1);
  const auto quarter =
      std::chrono::milliseconds(config.session_ttl_ms) / 4;
  return std::clamp<Clock::duration>(quarter, std::chrono::milliseconds(1),
                                     std::chrono::seconds(1));
}

ScoreBatch DroppedBatch() {
  ScoreBatch batch;
  batch.dropped = true;
  return batch;
}

}  // namespace

ShardedWorkerPool::Shard::Shard(int index, const ServeConfig& config,
                                ModelProvider* provider)
    : index_(index), config_(config), provider_(provider) {
  registry_.set_history(config.history);
  registry_.set_online(config.online);
  obs::MetricsRegistry& metrics = obs::Metrics();
  const obs::Labels labels = {{"shard", std::to_string(index)}};
  submitted_counter_ = metrics.GetCounter(
      "mace_serve_submitted_total",
      "Observations accepted into a shard queue", labels);
  shed_counter_ = metrics.GetCounter(
      "mace_serve_shed_total",
      "Observations dropped by the overload policy", labels);
  evicted_counter_ = metrics.GetCounter(
      "mace_serve_sessions_evicted_total",
      "Sessions evicted by the idle TTL", labels);
  depth_gauge_ = metrics.GetGauge(
      "mace_serve_queue_depth", "Current shard queue depth", labels);
  sessions_gauge_ = metrics.GetGauge(
      "mace_serve_sessions_active", "Live sessions owned by the shard",
      labels);
  ingest_dropped_counter_ = metrics.GetCounter(
      "mace_ingest_dropped_total",
      "Observations rejected for non-finite values (policy 'reject')",
      labels);
  ingest_imputed_counter_ = metrics.GetCounter(
      "mace_ingest_imputed_total",
      "Non-finite values replaced by imputation (policy 'impute')", labels);
  ingest_propagated_counter_ = metrics.GetCounter(
      "mace_ingest_propagated_total",
      "Contaminated observations scored as NaN (policy 'propagate')",
      labels);
  queue_wait_hist_ = metrics.GetHistogram(
      "mace_serve_queue_wait_seconds",
      "Time an observation spent queued before its shard worker took it",
      labels, obs::LatencyBuckets());
  batch_size_hist_ = metrics.GetHistogram(
      "mace_serve_batch_size",
      "Observations drained per worker wakeup (micro-batch size)", labels,
      obs::StepBuckets());
  worker_ = std::thread([this] { Run(); });
}

ShardedWorkerPool::Shard::~Shard() { Stop(); }

void ShardedWorkerPool::Shard::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  queue_nonempty_.notify_all();
  queue_has_space_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::future<ScoreBatch> ShardedWorkerPool::Shard::Enqueue(WorkItem item,
                                                          bool control) {
  item.enqueued_at = Clock::now();
  std::future<ScoreBatch> future;
  if (!item.callback) future = item.promise.get_future();
  // A shed victim is resolved after the lock drops: async callbacks run
  // user code (frame encode + event-loop wakeup) that must not execute
  // under the shard mutex.
  std::optional<WorkItem> victim;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!control && queue_.size() >= config_.queue_capacity) {
      switch (config_.overload_policy) {
        case OverloadPolicy::kBlock:
          queue_has_space_.wait(lock, [this] {
            return stop_ || queue_.size() < config_.queue_capacity;
          });
          break;
        case OverloadPolicy::kShed: {
          // Newest loses within its class — but never ahead of queued
          // lower-priority work. If a strictly lower class is queued, its
          // newest observation is the victim instead (lowest class
          // first), so high is never shed while low waits.
          auto victim_it = queue_.end();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->kind != WorkItem::Kind::kScore) continue;
            if (it->priority <= item.priority) continue;
            if (victim_it == queue_.end() ||
                it->priority >= victim_it->priority) {
              victim_it = it;
            }
          }
          shed_.fetch_add(1, std::memory_order_relaxed);
          shed_counter_->Increment();
          if (victim_it == queue_.end()) {
            lock.unlock();
            item.Resolve(DroppedBatch());
            return future;
          }
          victim = std::move(*victim_it);
          queue_.erase(victim_it);
          break;
        }
        case OverloadPolicy::kLatestOnly: {
          // Newest wins within a class: drop the oldest queued
          // observation of the lowest class at or below the newcomer's
          // (control items are never dropped). When everything queued
          // outranks the newcomer, the newcomer is the lowest-priority
          // work present and loses instead.
          auto victim_it = queue_.end();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->kind != WorkItem::Kind::kScore) continue;
            if (it->priority < item.priority) continue;
            if (victim_it == queue_.end() ||
                it->priority > victim_it->priority) {
              victim_it = it;
            }
          }
          shed_.fetch_add(1, std::memory_order_relaxed);
          shed_counter_->Increment();
          if (victim_it == queue_.end()) {
            lock.unlock();
            item.Resolve(DroppedBatch());
            return future;
          }
          victim = std::move(*victim_it);
          queue_.erase(victim_it);
          break;
        }
      }
    }
    if (stop_) {
      lock.unlock();
      if (victim) victim->Resolve(DroppedBatch());
      ScoreBatch stopped;
      stopped.status = Status::FailedPrecondition("serving pool stopped");
      item.Resolve(std::move(stopped));
      return future;
    }
    if (item.kind == WorkItem::Kind::kScore) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      submitted_counter_->Increment();
    }
    queue_.push_back(std::move(item));
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  if (victim) victim->Resolve(DroppedBatch());
  queue_nonempty_.notify_one();
  return future;
}

void ShardedWorkerPool::Shard::Run() {
  const Clock::duration sweep_interval = SweepInterval(config_);
  Clock::time_point last_sweep = Clock::now();
  uint64_t seen_generation = 0;
  std::vector<WorkItem> batch;
  batch.reserve(config_.max_batch);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_nonempty_.wait_for(lock, sweep_interval, [this] {
        return stop_ || !queue_.empty();
      });
      if (stop_ && queue_.empty()) break;
      const size_t n = std::min(queue_.size(), config_.max_batch);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    queue_has_space_.notify_all();

    if (!batch.empty()) {
      batch_size_hist_->Observe(static_cast<double>(batch.size()));
      // One provider lookup per micro-batch, not per observation.
      const ModelProvider::Handle handle = provider_->Current();
      if (handle.generation != seen_generation) {
        registry_.PruneFreePool(handle.model.get());
        seen_generation = handle.generation;
      }
      ProcessBatch(batch, handle);
      sessions_gauge_->Set(static_cast<double>(registry_.size()));
    }

    if (config_.session_ttl_ms > 0) {
      const Clock::time_point now = Clock::now();
      if (now - last_sweep >= sweep_interval) {
        const size_t evicted = registry_.EvictIdle(
            now, std::chrono::milliseconds(config_.session_ttl_ms),
            provider_->Current().model.get());
        if (evicted > 0) {
          evicted_.fetch_add(evicted, std::memory_order_relaxed);
          evicted_counter_->Increment(evicted);
          sessions_active_.store(registry_.size(),
                                 std::memory_order_relaxed);
          sessions_gauge_->Set(static_cast<double>(registry_.size()));
        }
        last_sweep = now;
      }
    }
  }
}

void ShardedWorkerPool::Shard::ProcessBatch(
    std::vector<WorkItem>& batch, const ModelProvider::Handle& handle) {
  // Within a run of score items, observations group by session so each
  // session takes one batched scoring pass. Control items (close, fence,
  // gate) end the run and keep their queue position, and same-session
  // observations keep their relative order; only observations of
  // *different* sessions may reorder within a run, which no caller can
  // observe (futures resolve independently, sessions share no state).
  size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].kind != WorkItem::Kind::kScore) {
      Process(batch[i], handle);
      ++i;
      continue;
    }
    size_t end = i;
    while (end < batch.size() && batch[end].kind == WorkItem::Kind::kScore) {
      ++end;
    }
    std::vector<bool> grouped(end - i, false);
    for (size_t a = i; a < end; ++a) {
      if (grouped[a - i]) continue;
      std::vector<WorkItem*> group;
      group.push_back(&batch[a]);
      for (size_t b = a + 1; b < end; ++b) {
        if (!grouped[b - i] && batch[b].key == batch[a].key) {
          grouped[b - i] = true;
          group.push_back(&batch[b]);
        }
      }
      if (group.size() == 1) {
        Process(*group.front(), handle);
      } else {
        ProcessScoreGroup(group, handle);
      }
    }
    i = end;
  }
}

void ShardedWorkerPool::Shard::ProcessScoreGroup(
    std::vector<WorkItem*>& group, const ModelProvider::Handle& handle) {
  const Clock::time_point now = Clock::now();
  for (const WorkItem* item : group) {
    queue_wait_hist_->Observe(
        std::chrono::duration<double>(now - item->enqueued_at).count());
    queue_wait_ns_.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - item->enqueued_at)
                .count()),
        std::memory_order_relaxed);
    queue_wait_samples_.fetch_add(1, std::memory_order_relaxed);
  }
  Result<SessionRegistry::Session*> session = registry_.GetOrCreate(
      group.front()->key, handle, now,
      group.front()->policy.value_or(config_.non_finite_policy));
  if (!session.ok()) {
    for (WorkItem* item : group) {
      ScoreBatch batch;
      batch.status = session.status();
      item->Resolve(std::move(batch));
    }
    return;
  }
  (*session)->last_used = now;
  sessions_active_.store(registry_.size(), std::memory_order_relaxed);
  core::StreamingScorer& scorer = (*session)->scorer;
  const ts::NonFinitePolicy policy = scorer.non_finite_policy();

  std::vector<std::vector<double>> observations;
  std::vector<size_t> bad_values;
  observations.reserve(group.size());
  bad_values.reserve(group.size());
  for (const WorkItem* item : group) {
    observations.push_back(item->observation);
    bad_values.push_back(ts::CountNonFinite(item->observation));
  }
  size_t next_step = scorer.next_emitted_step();
  Result<std::vector<std::vector<double>>> results =
      scorer.PushMany(observations);
  if (!results.ok()) {
    // PushMany rejects input without consuming anything; replay per item
    // so the error lands on the observation that caused it, exactly as
    // the unbatched path reports it.
    for (size_t i = 0; i < group.size(); ++i) {
      WorkItem* item = group[i];
      ScoreBatch batch;
      batch.first_step = scorer.next_emitted_step();
      Result<std::vector<double>> scores = scorer.Push(item->observation);
      scored_steps_.fetch_add(1, std::memory_order_relaxed);
      if (!scores.ok()) {
        batch.status = scores.status();
      } else {
        batch.scores = std::move(scores).value();
        emitted_.fetch_add(batch.scores.size(), std::memory_order_relaxed);
      }
      AccountIngest(policy, bad_values[i], &batch);
      item->Resolve(std::move(batch));
    }
    return;
  }
  scored_steps_.fetch_add(group.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < group.size(); ++i) {
    ScoreBatch batch;
    batch.first_step = next_step;
    batch.scores = std::move((*results)[i]);
    next_step += batch.scores.size();
    emitted_.fetch_add(batch.scores.size(), std::memory_order_relaxed);
    AccountIngest(policy, bad_values[i], &batch);
    group[i]->Resolve(std::move(batch));
  }
}

void ShardedWorkerPool::Shard::AccountIngest(ts::NonFinitePolicy policy,
                                             size_t bad,
                                             ScoreBatch* batch) {
  if (bad == 0) return;
  switch (policy) {
    case ts::NonFinitePolicy::kReject:
      // The Push failed; the observation never entered the pipeline.
      ingest_dropped_counter_->Increment();
      return;
    case ts::NonFinitePolicy::kImpute:
      ingest_imputed_counter_->Increment(bad);
      batch->contaminated = true;
      return;
    case ts::NonFinitePolicy::kPropagate:
      ingest_propagated_counter_->Increment();
      batch->contaminated = true;
      return;
  }
}

void ShardedWorkerPool::Shard::Process(WorkItem& item,
                                       const ModelProvider::Handle& handle) {
  const Clock::time_point now = Clock::now();
  switch (item.kind) {
    case WorkItem::Kind::kFence:
      item.Resolve(ScoreBatch());
      return;
    case WorkItem::Kind::kGate:
      item.Resolve(ScoreBatch());
      if (item.gate.valid()) item.gate.wait();
      return;
    case WorkItem::Kind::kClose: {
      ScoreBatch batch;
      SessionRegistry::Session* session = registry_.Find(item.key);
      if (session != nullptr) {
        batch.first_step = session->scorer.next_emitted_step();
        batch.scores = session->scorer.Finish();
        emitted_.fetch_add(batch.scores.size(), std::memory_order_relaxed);
        registry_.Recycle(item.key, handle.model.get());
      }
      // Before the promise resolves, so a caller that waited on it reads
      // an up-to-date session count from Stats().
      sessions_active_.store(registry_.size(), std::memory_order_relaxed);
      item.Resolve(std::move(batch));
      return;
    }
    case WorkItem::Kind::kScore: {
      queue_wait_hist_->Observe(
          std::chrono::duration<double>(now - item.enqueued_at).count());
      queue_wait_ns_.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  now - item.enqueued_at)
                  .count()),
          std::memory_order_relaxed);
      queue_wait_samples_.fetch_add(1, std::memory_order_relaxed);

      ScoreBatch batch;
      Result<SessionRegistry::Session*> session = registry_.GetOrCreate(
          item.key, handle, now,
          item.policy.value_or(config_.non_finite_policy));
      if (!session.ok()) {
        batch.status = session.status();
        item.Resolve(std::move(batch));
        return;
      }
      (*session)->last_used = now;
      sessions_active_.store(registry_.size(), std::memory_order_relaxed);
      batch.first_step = (*session)->scorer.next_emitted_step();
      Result<std::vector<double>> scores =
          (*session)->scorer.Push(item.observation);
      scored_steps_.fetch_add(1, std::memory_order_relaxed);
      if (!scores.ok()) {
        batch.status = scores.status();
      } else {
        batch.scores = std::move(scores).value();
        emitted_.fetch_add(batch.scores.size(), std::memory_order_relaxed);
      }
      AccountIngest((*session)->scorer.non_finite_policy(),
                    ts::CountNonFinite(item.observation), &batch);
      item.Resolve(std::move(batch));
      return;
    }
  }
}

ShardStats ShardedWorkerPool::Shard::Stats() const {
  ShardStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
  }
  stats.sessions_active = sessions_active_.load(std::memory_order_relaxed);
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.scored_steps = scored_steps_.load(std::memory_order_relaxed);
  stats.emitted = emitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.sessions_evicted = evicted_.load(std::memory_order_relaxed);
  const uint64_t samples =
      queue_wait_samples_.load(std::memory_order_relaxed);
  if (samples > 0) {
    stats.mean_queue_wait_us =
        static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed)) /
        1e3 / static_cast<double>(samples);
  }
  return stats;
}

ShardedWorkerPool::ShardedWorkerPool(const ServeConfig& config,
                                     ModelProvider* provider) {
  shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, config, provider));
  }
}

ShardedWorkerPool::~ShardedWorkerPool() { Stop(); }

void ShardedWorkerPool::Stop() {
  for (auto& shard : shards_) shard->Stop();
}

int ShardedWorkerPool::ShardOf(const std::string& tenant) const {
  return static_cast<int>(std::hash<std::string>()(tenant) %
                          shards_.size());
}

std::future<ScoreBatch> ShardedWorkerPool::Submit(
    SessionKey key, std::vector<double> observation,
    std::optional<ts::NonFinitePolicy> policy, Priority priority) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key.tenant))];
  WorkItem item;
  item.kind = WorkItem::Kind::kScore;
  item.key = std::move(key);
  item.observation = std::move(observation);
  item.policy = policy;
  item.priority = priority;
  return shard.Enqueue(std::move(item), /*control=*/false);
}

void ShardedWorkerPool::SubmitAsync(SessionKey key,
                                    std::vector<double> observation,
                                    std::optional<ts::NonFinitePolicy> policy,
                                    Priority priority,
                                    std::function<void(ScoreBatch&&)> done) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key.tenant))];
  WorkItem item;
  item.kind = WorkItem::Kind::kScore;
  item.key = std::move(key);
  item.observation = std::move(observation);
  item.policy = policy;
  item.priority = priority;
  item.callback = std::move(done);
  shard.Enqueue(std::move(item), /*control=*/false);
}

std::future<ScoreBatch> ShardedWorkerPool::Close(SessionKey key) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key.tenant))];
  WorkItem item;
  item.kind = WorkItem::Kind::kClose;
  item.key = std::move(key);
  return shard.Enqueue(std::move(item), /*control=*/true);
}

void ShardedWorkerPool::CloseAsync(SessionKey key,
                                   std::function<void(ScoreBatch&&)> done) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key.tenant))];
  WorkItem item;
  item.kind = WorkItem::Kind::kClose;
  item.key = std::move(key);
  item.callback = std::move(done);
  shard.Enqueue(std::move(item), /*control=*/true);
}

void ShardedWorkerPool::Flush() {
  std::vector<std::future<ScoreBatch>> fences;
  fences.reserve(shards_.size());
  for (auto& shard : shards_) {
    WorkItem item;
    item.kind = WorkItem::Kind::kFence;
    fences.push_back(shard->Enqueue(std::move(item), /*control=*/true));
  }
  for (auto& fence : fences) fence.wait();
}

ServeStats ShardedWorkerPool::Stats() const {
  ServeStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) stats.shards.push_back(shard->Stats());
  return stats;
}

void ShardedWorkerPool::BlockShardUntilForTest(
    int shard, std::shared_future<void> gate) {
  WorkItem item;
  item.kind = WorkItem::Kind::kGate;
  item.gate = std::move(gate);
  shards_[static_cast<size_t>(shard)]
      ->Enqueue(std::move(item), /*control=*/true)
      .wait();
}

}  // namespace mace::serve
