#ifndef MACE_WIRE_FRAME_H_
#define MACE_WIRE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"

namespace mace::wire {

/// \brief MWIREv1 — the versioned, length-prefixed, CRC-framed binary
/// wire protocol of the scale-out serving path (DESIGN.md §15). It
/// promotes the serve fuzzer's ad-hoc request byte format into a real
/// network protocol: every frame is independently validated, every
/// malformation is a descriptive Status (never an abort), and the
/// decoder reassembles frames from arbitrary byte chunk boundaries.
///
/// Frame layout (little-endian, fixed 24-byte header):
///   [ 0.. 4)  magic "MWv1"
///   [ 4.. 5)  u8  version (1)
///   [ 5.. 6)  u8  frame type (FrameType)
///   [ 6.. 8)  u16 reserved (must be 0)
///   [ 8..16)  u64 request id (echoed verbatim in the response)
///   [16..20)  u32 payload length (<= kMaxPayload)
///   [20..24)  u32 CRC-32 (IEEE, reflected — common/crc32.h) of payload
///   [24.. )   payload bytes
///
/// The header is validated structurally (magic, version, known type,
/// zero reserved, bounded length) before any allocation sized from it;
/// the CRC is checked once the payload is complete. A header that fails
/// validation or a payload that fails its CRC is a *connection-fatal*
/// protocol error: framing is lost, so the peer closes the connection
/// (hostile-input hardening in the MHSNAPv1 mold).
inline constexpr uint8_t kMagic[4] = {'M', 'W', 'v', '1'};
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderSize = 24;
/// Payload cap: bounds per-connection buffering against hostile length
/// prefixes. 1 MiB fits ~128k raw doubles — far beyond any observation
/// or score batch this system produces.
inline constexpr size_t kMaxPayload = 1u << 20;

enum class FrameType : uint8_t {
  kPing = 1,           ///< health probe, empty payload
  kPong = 2,           ///< ping reply, empty payload
  kScoreRequest = 3,   ///< messages.h ScoreRequest
  kScoreResponse = 4,  ///< messages.h ScoreResponse
  kCloseRequest = 5,   ///< messages.h CloseRequest
  kCloseResponse = 6,  ///< messages.h ScoreResponse (the tail scores)
  kStatsRequest = 7,   ///< empty payload
  kStatsResponse = 8,  ///< messages.h StatsResponse
};

const char* FrameTypeName(FrameType type);
bool IsKnownFrameType(uint8_t type);

/// One reassembled frame, payload owned.
struct OwnedFrame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Appends a complete frame (header + payload) to `out`. Payload size is
/// the caller's to keep under kMaxPayload (checked; oversize aborts via
/// MACE_CHECK — encoding oversize frames is a programming error, only
/// *decoding* treats it as untrusted input).
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 uint64_t request_id, const uint8_t* payload, size_t size);
inline void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                        uint64_t request_id,
                        const std::vector<uint8_t>& payload) {
  AppendFrame(out, type, request_id, payload.data(), payload.size());
}

/// \brief Incremental frame reassembler: feed it bytes as they arrive
/// off a socket, pop complete frames.
///
/// Next() returns (in ok Results) a frame when one is complete, or
/// std::nullopt when more bytes are needed; a non-OK Status means the
/// stream is unrecoverably malformed (bad magic/version/type/reserved,
/// oversize length, CRC mismatch) and the connection must be closed —
/// once framing is wrong there is no resynchronization point.
class FrameDecoder {
 public:
  void Append(const uint8_t* data, size_t size);

  Result<std::optional<OwnedFrame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  bool poisoned_ = false;
};

}  // namespace mace::wire

#endif  // MACE_WIRE_FRAME_H_
