#include "wire/messages.h"

#include <algorithm>
#include <cstring>

namespace mace::wire {
namespace {

/// Bounded little-endian reader: every Read* checks remaining bytes, so
/// decoders are a straight-line sequence of reads with one error path.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 3; i >= 0; --i) out = (out << 8) | data_[pos_ + i];
    pos_ += 4;
    *v = out;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 7; i >= 0; --i) out = (out << 8) | data_[pos_ + i];
    pos_ += 8;
    *v = out;
    return true;
  }
  bool ReadString(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool ReadDoubles(size_t n, std::vector<double>* out) {
    if (remaining() < n * sizeof(double)) return false;
    out->resize(n);
    // Raw IEEE bit copy: NaN payloads and infinities round-trip exactly.
    std::memcpy(out->data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutDoubles(std::vector<uint8_t>* out, const std::vector<double>& v) {
  const size_t at = out->size();
  out->resize(at + v.size() * sizeof(double));
  std::memcpy(out->data() + at, v.data(), v.size() * sizeof(double));
}

Status Malformed(const char* what, const std::string& detail) {
  return Status::InvalidArgument(std::string("wire ") + what + ": " +
                                 detail);
}

}  // namespace

void EncodeScoreRequest(const ScoreRequest& request,
                        std::vector<uint8_t>* payload) {
  payload->clear();
  payload->push_back(request.policy_override);
  payload->push_back(request.priority);
  PutU16(payload, 0);
  PutU32(payload, static_cast<uint32_t>(request.service));
  PutU32(payload, static_cast<uint32_t>(request.tenant.size()));
  PutU32(payload, static_cast<uint32_t>(request.values.size()));
  payload->insert(payload->end(), request.tenant.begin(),
                  request.tenant.end());
  PutDoubles(payload, request.values);
}

namespace {

/// Shared prefix decode of a score request; stops after the tenant when
/// `routing_only`, leaving the values untouched.
Status DecodeScorePrefix(Reader& in, ScoreRequest* out,
                         uint32_t* value_count) {
  uint16_t reserved = 0;
  uint32_t service = 0, tenant_len = 0;
  if (!in.ReadU8(&out->policy_override) || !in.ReadU8(&out->priority) ||
      !in.ReadU16(&reserved) || !in.ReadU32(&service) ||
      !in.ReadU32(&tenant_len) || !in.ReadU32(value_count)) {
    return Malformed("score request", "truncated fixed prefix");
  }
  if (reserved != 0) {
    return Malformed("score request", "reserved bytes must be zero");
  }
  if (out->policy_override != kNoPolicyOverride &&
      out->policy_override > 2) {
    return Malformed("score request",
                     "policy override " +
                         std::to_string(int{out->policy_override}) +
                         " outside 0..2 / 0xFF");
  }
  if (out->priority >= kNumPriorityClasses) {
    return Malformed("score request",
                     "priority class " + std::to_string(int{out->priority}) +
                         " outside 0..2");
  }
  if (tenant_len == 0 || tenant_len > kMaxTenantLen) {
    return Malformed("score request",
                     "tenant length " + std::to_string(tenant_len) +
                         " outside 1.." + std::to_string(kMaxTenantLen));
  }
  if (*value_count > kMaxValues) {
    return Malformed("score request",
                     "value count " + std::to_string(*value_count) +
                         " exceeds the " + std::to_string(kMaxValues) +
                         " cap");
  }
  out->service = static_cast<int32_t>(service);
  if (!in.ReadString(tenant_len, &out->tenant)) {
    return Malformed("score request", "truncated tenant name");
  }
  return Status::OK();
}

}  // namespace

Result<ScoreRequest> DecodeScoreRequest(const uint8_t* payload,
                                        size_t size) {
  Reader in(payload, size);
  ScoreRequest out;
  uint32_t value_count = 0;
  MACE_RETURN_IF_ERROR(DecodeScorePrefix(in, &out, &value_count));
  if (!in.ReadDoubles(value_count, &out.values)) {
    return Malformed("score request", "truncated observation values");
  }
  if (in.remaining() != 0) {
    return Malformed("score request",
                     std::to_string(in.remaining()) +
                         " trailing bytes after the observation");
  }
  return out;
}

Result<ScoreRouting> PeekScoreRouting(const uint8_t* payload, size_t size) {
  Reader in(payload, size);
  ScoreRequest prefix;
  uint32_t value_count = 0;
  MACE_RETURN_IF_ERROR(DecodeScorePrefix(in, &prefix, &value_count));
  // The values themselves stay undecoded, but the declared count must
  // still match the bytes actually present so the backend can't be fed a
  // frame the router vouched for and the backend then rejects.
  if (in.remaining() != value_count * sizeof(double)) {
    return Malformed("score request",
                     "value bytes disagree with the declared count");
  }
  ScoreRouting routing;
  routing.tenant = std::move(prefix.tenant);
  routing.priority = prefix.priority;
  return routing;
}

void EncodeScoreResponse(const ScoreResponse& response,
                         std::vector<uint8_t>* payload) {
  payload->clear();
  payload->push_back(static_cast<uint8_t>(response.code));
  uint8_t flags = 0;
  if (response.dropped) flags |= kFlagDropped;
  if (response.contaminated) flags |= kFlagContaminated;
  if (response.rejected) flags |= kFlagRejected;
  payload->push_back(flags);
  PutU16(payload, 0);
  PutU64(payload, response.first_step);
  PutU32(payload, static_cast<uint32_t>(response.scores.size()));
  // Error text is operator-facing; cap it rather than fail the encode.
  const size_t msg_len =
      std::min(response.message.size(), kMaxMessageLen);
  PutU32(payload, static_cast<uint32_t>(msg_len));
  PutDoubles(payload, response.scores);
  payload->insert(payload->end(), response.message.begin(),
                  response.message.begin() + static_cast<ptrdiff_t>(msg_len));
}

Result<ScoreResponse> DecodeScoreResponse(const uint8_t* payload,
                                          size_t size) {
  Reader in(payload, size);
  ScoreResponse out;
  uint8_t code = 0, flags = 0;
  uint16_t reserved = 0;
  uint32_t score_count = 0, msg_len = 0;
  if (!in.ReadU8(&code) || !in.ReadU8(&flags) || !in.ReadU16(&reserved) ||
      !in.ReadU64(&out.first_step) || !in.ReadU32(&score_count) ||
      !in.ReadU32(&msg_len)) {
    return Malformed("score response", "truncated fixed prefix");
  }
  if (reserved != 0) {
    return Malformed("score response", "reserved bytes must be zero");
  }
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Malformed("score response",
                     "unknown status code " + std::to_string(int{code}));
  }
  if ((flags & ~(kFlagDropped | kFlagContaminated | kFlagRejected)) != 0) {
    return Malformed("score response",
                     "unknown flag bits " + std::to_string(int{flags}));
  }
  if (score_count > kMaxValues) {
    return Malformed("score response",
                     "score count " + std::to_string(score_count) +
                         " exceeds the " + std::to_string(kMaxValues) +
                         " cap");
  }
  if (msg_len > kMaxMessageLen) {
    return Malformed("score response",
                     "message length " + std::to_string(msg_len) +
                         " exceeds the " + std::to_string(kMaxMessageLen) +
                         " cap");
  }
  out.code = static_cast<StatusCode>(code);
  out.dropped = (flags & kFlagDropped) != 0;
  out.contaminated = (flags & kFlagContaminated) != 0;
  out.rejected = (flags & kFlagRejected) != 0;
  if (!in.ReadDoubles(score_count, &out.scores)) {
    return Malformed("score response", "truncated scores");
  }
  if (!in.ReadString(msg_len, &out.message)) {
    return Malformed("score response", "truncated message");
  }
  if (in.remaining() != 0) {
    return Malformed("score response",
                     std::to_string(in.remaining()) + " trailing bytes");
  }
  return out;
}

void EncodeCloseRequest(const CloseRequest& request,
                        std::vector<uint8_t>* payload) {
  payload->clear();
  PutU32(payload, static_cast<uint32_t>(request.service));
  PutU32(payload, static_cast<uint32_t>(request.tenant.size()));
  payload->insert(payload->end(), request.tenant.begin(),
                  request.tenant.end());
}

Result<CloseRequest> DecodeCloseRequest(const uint8_t* payload,
                                        size_t size) {
  Reader in(payload, size);
  CloseRequest out;
  uint32_t service = 0, tenant_len = 0;
  if (!in.ReadU32(&service) || !in.ReadU32(&tenant_len)) {
    return Malformed("close request", "truncated fixed prefix");
  }
  if (tenant_len == 0 || tenant_len > kMaxTenantLen) {
    return Malformed("close request",
                     "tenant length " + std::to_string(tenant_len) +
                         " outside 1.." + std::to_string(kMaxTenantLen));
  }
  out.service = static_cast<int32_t>(service);
  if (!in.ReadString(tenant_len, &out.tenant)) {
    return Malformed("close request", "truncated tenant name");
  }
  if (in.remaining() != 0) {
    return Malformed("close request",
                     std::to_string(in.remaining()) + " trailing bytes");
  }
  return out;
}

void EncodeStatsResponse(const std::string& text,
                         std::vector<uint8_t>* payload) {
  payload->clear();
  const size_t len = std::min(text.size(), kMaxMessageLen);
  PutU32(payload, static_cast<uint32_t>(len));
  payload->insert(payload->end(), text.begin(),
                  text.begin() + static_cast<ptrdiff_t>(len));
}

Result<std::string> DecodeStatsResponse(const uint8_t* payload,
                                        size_t size) {
  Reader in(payload, size);
  uint32_t len = 0;
  if (!in.ReadU32(&len)) {
    return Malformed("stats response", "truncated length");
  }
  if (len > kMaxMessageLen) {
    return Malformed("stats response",
                     "length " + std::to_string(len) + " exceeds the " +
                         std::to_string(kMaxMessageLen) + " cap");
  }
  std::string text;
  if (!in.ReadString(len, &text)) {
    return Malformed("stats response", "truncated text");
  }
  if (in.remaining() != 0) {
    return Malformed("stats response",
                     std::to_string(in.remaining()) + " trailing bytes");
  }
  return text;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t RingHash64(const void* data, size_t size) {
  // MurmurHash3 fmix64 over the FNV digest: full-width avalanche, still
  // byte-for-byte deterministic across processes and platforms.
  uint64_t h = Fnv1a64(data, size);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace mace::wire
