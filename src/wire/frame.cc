#include "wire/frame.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace mace::wire {
namespace {

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kScoreRequest: return "score_request";
    case FrameType::kScoreResponse: return "score_response";
    case FrameType::kCloseRequest: return "close_request";
    case FrameType::kCloseResponse: return "close_response";
    case FrameType::kStatsRequest: return "stats_request";
    case FrameType::kStatsResponse: return "stats_response";
  }
  return "unknown";
}

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kPing) &&
         type <= static_cast<uint8_t>(FrameType::kStatsResponse);
}

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 uint64_t request_id, const uint8_t* payload, size_t size) {
  MACE_CHECK(size <= kMaxPayload)
      << "wire frame payload " << size << " exceeds the " << kMaxPayload
      << "-byte protocol cap";
  out->reserve(out->size() + kHeaderSize + size);
  out->insert(out->end(), kMagic, kMagic + 4);
  out->push_back(kVersion);
  out->push_back(static_cast<uint8_t>(type));
  PutU16(out, 0);  // reserved
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(size));
  PutU32(out, common::Crc32(payload, size));
  out->insert(out->end(), payload, payload + size);
}

void FrameDecoder::Append(const uint8_t* data, size_t size) {
  if (poisoned_) return;  // connection is dead; don't buffer more
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer stays bounded by one partial frame.
  if (consumed_ > 0 &&
      (consumed_ >= buffer_.size() || consumed_ > (kMaxPayload >> 2))) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<std::optional<OwnedFrame>> FrameDecoder::Next() {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wire decoder: stream already failed a protocol check");
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return std::optional<OwnedFrame>();
  const uint8_t* h = buffer_.data() + consumed_;

  // Structural header validation before any length-derived work.
  if (std::memcmp(h, kMagic, 4) != 0) {
    poisoned_ = true;
    return Status::InvalidArgument("wire frame: bad magic");
  }
  if (h[4] != kVersion) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "wire frame: unsupported version " + std::to_string(int{h[4]}) +
        " (speaking " + std::to_string(int{kVersion}) + ")");
  }
  if (!IsKnownFrameType(h[5])) {
    poisoned_ = true;
    return Status::InvalidArgument("wire frame: unknown frame type " +
                                   std::to_string(int{h[5]}));
  }
  if (GetU16(h + 6) != 0) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "wire frame: reserved header bytes must be zero");
  }
  const uint64_t request_id = GetU64(h + 8);
  const uint32_t payload_len = GetU32(h + 16);
  if (payload_len > kMaxPayload) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "wire frame: payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(kMaxPayload) + "-byte cap");
  }
  if (available < kHeaderSize + payload_len) {
    return std::optional<OwnedFrame>();  // wait for the rest
  }
  const uint8_t* payload = h + kHeaderSize;
  const uint32_t crc = common::Crc32(payload, payload_len);
  if (crc != GetU32(h + 20)) {
    poisoned_ = true;
    return Status::InvalidArgument("wire frame: payload CRC mismatch");
  }
  OwnedFrame frame;
  frame.type = static_cast<FrameType>(h[5]);
  frame.request_id = request_id;
  frame.payload.assign(payload, payload + payload_len);
  consumed_ += kHeaderSize + payload_len;
  return std::optional<OwnedFrame>(std::move(frame));
}

}  // namespace mace::wire
