#ifndef MACE_WIRE_MESSAGES_H_
#define MACE_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "wire/frame.h"

namespace mace::wire {

/// Payload-level caps (frame.h caps the raw byte length; these cap the
/// decoded element counts so a hostile count can't size an allocation
/// past what the payload itself could hold).
inline constexpr size_t kMaxTenantLen = 256;
inline constexpr size_t kMaxValues = 65536;
inline constexpr size_t kMaxMessageLen = 4096;

/// Raw u8 policy override: 0/1/2 = ts::NonFinitePolicy value, 0xFF = use
/// the server's configured default. Kept numeric here so mace_wire stays
/// a leaf library (mace_common only); src/net/ converts to the typed
/// enum after range-checking.
inline constexpr uint8_t kNoPolicyOverride = 0xFF;
/// Raw u8 priority class: 0 high, 1 normal, 2 low (serve::Priority).
inline constexpr uint8_t kNumPriorityClasses = 3;

/// \brief kScoreRequest payload: one observation of one tenant stream.
///
/// Layout (little-endian):
///   u8  non-finite policy override (0xFF = server default)
///   u8  priority class (< kNumPriorityClasses)
///   u16 reserved (0)
///   i32 service index
///   u32 tenant length  (<= kMaxTenantLen, > 0)
///   u32 value count    (<= kMaxValues)
///   tenant bytes
///   f64 * value count  (raw IEEE bits — NaN/Inf arrive intact and meet
///                       the server's non-finite policy, not the wire)
struct ScoreRequest {
  std::string tenant;
  int32_t service = 0;
  uint8_t priority = 1;                     // normal
  uint8_t policy_override = kNoPolicyOverride;
  std::vector<double> values;
};

void EncodeScoreRequest(const ScoreRequest& request,
                        std::vector<uint8_t>* payload);
Result<ScoreRequest> DecodeScoreRequest(const uint8_t* payload,
                                        size_t size);

/// The routing prefix of a kScoreRequest — tenant + priority — decoded
/// without touching the observation values. The router shards on this
/// and forwards the payload bytes verbatim, so a million-tenant fan-in
/// never deserializes observations it won't score.
struct ScoreRouting {
  std::string tenant;
  uint8_t priority = 1;
};
Result<ScoreRouting> PeekScoreRouting(const uint8_t* payload, size_t size);

/// \brief kScoreResponse / kCloseResponse payload.
///
/// Layout:
///   u8  status code (StatusCode numeric value)
///   u8  flags (kFlagDropped | kFlagContaminated | kFlagRejected)
///   u16 reserved (0)
///   u64 first step
///   u32 score count (<= kMaxValues)
///   u32 message length (<= kMaxMessageLen)
///   f64 * score count
///   message bytes
struct ScoreResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint64_t first_step = 0;
  bool dropped = false;       ///< overload policy shed it at the pool
  bool contaminated = false;  ///< lossy non-finite policy absorbed values
  bool rejected = false;      ///< QoS / backpressure refused it up front
  std::vector<double> scores;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }
};

inline constexpr uint8_t kFlagDropped = 1u << 0;
inline constexpr uint8_t kFlagContaminated = 1u << 1;
inline constexpr uint8_t kFlagRejected = 1u << 2;

void EncodeScoreResponse(const ScoreResponse& response,
                         std::vector<uint8_t>* payload);
Result<ScoreResponse> DecodeScoreResponse(const uint8_t* payload,
                                          size_t size);

/// \brief kCloseRequest payload: i32 service, u32 tenant length, tenant.
struct CloseRequest {
  std::string tenant;
  int32_t service = 0;
};
void EncodeCloseRequest(const CloseRequest& request,
                        std::vector<uint8_t>* payload);
Result<CloseRequest> DecodeCloseRequest(const uint8_t* payload,
                                        size_t size);

/// \brief kStatsResponse payload: u32 length + UTF-8 stats text (the
/// ServeStats::FormatLine of a backend, or the router's own line).
void EncodeStatsResponse(const std::string& text,
                         std::vector<uint8_t>* payload);
Result<std::string> DecodeStatsResponse(const uint8_t* payload,
                                        size_t size);

/// FNV-1a 64-bit. Pinned here (not std::hash) so the router and any
/// future peer agree on hashes across processes, builds, and standard
/// libraries. The consistent-hash ring uses RingHash64 below, which
/// finalizes this digest.
uint64_t Fnv1a64(const void* data, size_t size);
inline uint64_t Fnv1a64(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

/// Ring placement hash: Fnv1a64 pushed through a 64-bit avalanche
/// finalizer (MurmurHash3's fmix64). Raw FNV-1a of short sequential
/// names ("tenant-0", "tenant-1", ...) differs only in a narrow band of
/// bits, which collapses a consistent-hash ring onto one arc — every
/// tenant lands on one backend. The finalizer spreads those inputs over
/// the full 64-bit space while staying just as pinned and portable.
uint64_t RingHash64(const void* data, size_t size);
inline uint64_t RingHash64(const std::string& s) {
  return RingHash64(s.data(), s.size());
}

}  // namespace mace::wire

#endif  // MACE_WIRE_MESSAGES_H_
