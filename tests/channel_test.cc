// Channel-aware detector suite (DESIGN.md §16): the correlation-break
// detection contract vs MACE, fit_threads bit-determinism, the
// non-finite-policy surface, MCHANv1 snapshot round-trip, zero-shot
// onboarding (ScoreUnseen / OnboardService / ServeFrontend::Onboard),
// streaming-vs-batch equivalence, the magic-dispatch model loader, and
// the cross-variant hot swap through the serve frontend.

#include "channel/channel_aware_detector.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/model_io.h"
#include "common/check.h"
#include "core/mace_detector.h"
#include "core/streaming.h"
#include "eval/roc.h"
#include "serve/frontend.h"
#include "ts/generator.h"

namespace mace::channel {
namespace {

constexpr int kChannels = 4;
constexpr size_t kTrainLength = 512;
constexpr size_t kTestLength = 384;

ts::NormalPattern BreakPattern(int service) {
  ts::NormalPattern pattern;
  pattern.kind = ts::WaveformKind::kSinusoid;
  pattern.period = service == 0 ? 24.0 : 30.0;
  pattern.harmonic_weights = {1.0, 0.3};
  pattern.noise_stddev = 0.05;
  pattern.feature_weights = {1.0, 0.9, 1.1, 0.8};
  pattern.feature_lags = {0.0, 3.0, 7.0, 11.0};
  return pattern;
}

/// One cross-channel correlation break in the middle of the test split;
/// every marginal channel keeps its normal spectrum.
std::vector<ts::ChannelBreakScenario> MidBreak() {
  ts::ChannelBreakScenario scenario;
  scenario.start = 128;
  scenario.length = 128;
  return {scenario};
}

ts::ServiceData BreakService(int service, uint64_t seed) {
  Rng rng(seed);
  const ts::NormalPattern pattern = BreakPattern(service);
  ts::ServiceData data;
  data.name = "svc" + std::to_string(service);
  data.train = ts::GenerateNormal(pattern, kTrainLength, 0, &rng);
  data.test = ts::GenerateCorrelatedChannelBreak(pattern, kTestLength,
                                                 kTrainLength, MidBreak(),
                                                 &rng);
  return data;
}

std::vector<ts::ServiceData> BreakWorkload() {
  return {BreakService(0, 11), BreakService(1, 12)};
}

ChannelAwareDetector FittedChannel(int fit_threads = 1) {
  ChannelAwareConfig config;
  config.fit_threads = fit_threads;
  ChannelAwareDetector detector(config);
  MACE_CHECK_OK(detector.Fit(BreakWorkload()));
  return detector;
}

double RecallAtBudget(const std::vector<double>& scores,
                      const std::vector<uint8_t>& labels) {
  auto ranking = eval::ComputeRanking(scores, labels);
  MACE_CHECK_OK(ranking.status());
  return eval::RecallAtFalsePositiveRate(*ranking, 0.05);
}

std::vector<double> SequentialScores(const core::ServingModel& model,
                                     int service,
                                     const ts::TimeSeries& series) {
  auto scorer = core::StreamingScorer::Create(&model, service);
  MACE_CHECK_OK(scorer.status());
  std::vector<double> scores;
  for (size_t t = 0; t < series.length(); ++t) {
    auto out = scorer->Push(series.values()[t]);
    MACE_CHECK_OK(out.status());
    scores.insert(scores.end(), out->begin(), out->end());
  }
  const auto tail = scorer->Finish();
  scores.insert(scores.end(), tail.begin(), tail.end());
  return scores;
}

TEST(ChannelConfigTest, ValidateConfigBounds) {
  ChannelAwareConfig config;
  EXPECT_TRUE(ChannelAwareDetector::ValidateConfig(config).ok());
  config.window = 2;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
  config = ChannelAwareConfig();
  config.bases_per_channel = config.window;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
  config = ChannelAwareConfig();
  config.num_patches = 0;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
  config = ChannelAwareConfig();
  config.score_stride = config.window + 1;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
  config = ChannelAwareConfig();
  config.fusion_weight = -1.0;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
  config = ChannelAwareConfig();
  config.sigma_floor = 0.0;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
  config = ChannelAwareConfig();
  config.fit_threads = 0;
  EXPECT_FALSE(ChannelAwareDetector::ValidateConfig(config).ok());
}

TEST(ChannelConfigTest, FusionPairsAllPairsThenRing) {
  EXPECT_TRUE(ChannelAwareDetector::FusionPairs(1).empty());
  EXPECT_EQ(ChannelAwareDetector::FusionPairs(4).size(), 6u);
  EXPECT_EQ(ChannelAwareDetector::FusionPairs(16).size(), 120u);
  // Above 16 channels the ring keeps the dimension linear.
  EXPECT_EQ(ChannelAwareDetector::FusionPairs(17).size(), 17u);
  EXPECT_EQ(ChannelAwareDetector::FusionPairs(64).size(), 64u);
}

TEST(ChannelDetectorTest, ErrorsAreDescriptiveNotAborts) {
  ChannelAwareDetector unfitted;
  const ts::TimeSeries one_row(std::vector<std::vector<double>>{{0.0}});
  EXPECT_EQ(unfitted.Score(0, one_row).status().code(),
            StatusCode::kFailedPrecondition);
  ts::ServiceData service;
  service.train = one_row;
  service.test = one_row;
  EXPECT_EQ(unfitted.ScoreUnseen(service).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(unfitted.ScoreWindow(0, {}).ok());
  EXPECT_FALSE(unfitted.OnboardService(service.train).ok());
  EXPECT_FALSE(unfitted.Fit({}).ok());

  ChannelAwareDetector detector = FittedChannel();
  // Single-channel series into the 4-channel model: descriptive mismatch.
  Rng rng(3);
  ts::NormalPattern narrow;
  narrow.feature_weights = {1.0};
  narrow.feature_lags = {0.0};
  ts::ServiceData single;
  single.train = ts::GenerateNormal(narrow, 128, 0, &rng);
  single.test = ts::GenerateNormal(narrow, 128, 128, &rng);
  auto mismatch = detector.ScoreUnseen(single);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("1 features"),
            std::string::npos)
      << mismatch.status().message();
  EXPECT_FALSE(detector.Score(0, single.test).ok());

  // Splits shorter than the window name both lengths.
  const auto full = BreakWorkload();
  ts::ServiceData short_train;
  short_train.train = full[0].train.Slice(0, 10);
  short_train.test = full[0].test;
  auto too_short = detector.ScoreUnseen(short_train);
  ASSERT_FALSE(too_short.ok());
  EXPECT_NE(too_short.status().message().find("10 steps"),
            std::string::npos)
      << too_short.status().message();
  ts::ServiceData short_test;
  short_test.train = full[0].train;
  short_test.test = full[0].test.Slice(0, 5);
  EXPECT_FALSE(detector.ScoreUnseen(short_test).ok());
  EXPECT_FALSE(detector.Score(0, short_test.test).ok());
  EXPECT_FALSE(detector.OnboardService(short_train.train).ok());

  // Out-of-range service indices.
  EXPECT_EQ(detector.Score(7, full[0].test).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(detector.ScoreWindow(-1, {}).status().code(),
            StatusCode::kOutOfRange);
}

// The reason this variant exists: a correlation break leaves every
// marginal spectrum intact (MACE stays blind) but flips the fusion
// features (the channel-aware variant catches it at the same FP budget).
TEST(ChannelDetectorTest, CatchesCorrelationBreakMaceMisses) {
  const auto services = BreakWorkload();
  ChannelAwareDetector channel_detector = FittedChannel();
  core::MaceConfig mace_config;
  mace_config.epochs = 2;
  core::MaceDetector mace_detector(mace_config);
  MACE_CHECK_OK(mace_detector.Fit(services));

  for (size_t s = 0; s < services.size(); ++s) {
    auto channel_scores =
        channel_detector.Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(channel_scores.ok());
    auto mace_scores =
        mace_detector.Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(mace_scores.ok());
    const auto& labels = services[s].test.labels();
    const double channel_recall = RecallAtBudget(*channel_scores, labels);
    const double mace_recall = RecallAtBudget(*mace_scores, labels);
    EXPECT_GE(channel_recall, 0.7) << "service " << s;
    EXPECT_LE(mace_recall, 0.35) << "service " << s;
  }
}

TEST(ChannelDetectorTest, FitThreadsAreBitDeterministic) {
  ChannelAwareDetector one = FittedChannel(/*fit_threads=*/1);
  ChannelAwareDetector four = FittedChannel(/*fit_threads=*/4);
  EXPECT_EQ(one.fusion_gain(), four.fusion_gain());
  const auto services = BreakWorkload();
  for (size_t s = 0; s < services.size(); ++s) {
    auto a = one.Score(static_cast<int>(s), services[s].test);
    auto b = four.Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      ASSERT_EQ((*a)[t], (*b)[t]) << "step " << t;
    }
  }
}

TEST(ChannelDetectorTest, NonFinitePolicySurface) {
  const auto services = BreakWorkload();
  ts::TimeSeries poisoned = services[0].test;
  std::vector<std::vector<double>> values = poisoned.values();
  values[50][1] = std::numeric_limits<double>::quiet_NaN();
  poisoned = ts::TimeSeries(std::move(values), poisoned.labels());

  // kReject (default): descriptive error naming the value.
  ChannelAwareDetector reject = FittedChannel();
  auto rejected = reject.Score(0, poisoned);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("non-finite"),
            std::string::npos);

  // kImpute: finite scores everywhere.
  ChannelAwareDetector impute = FittedChannel();
  impute.set_non_finite_policy(ts::NonFinitePolicy::kImpute);
  auto imputed = impute.Score(0, poisoned);
  ASSERT_TRUE(imputed.ok());
  for (size_t t = 0; t < imputed->size(); ++t) {
    EXPECT_TRUE(std::isfinite((*imputed)[t])) << "step " << t;
  }

  // kPropagate: NaN exactly on the steps covered by a contaminated
  // window, finite (and equal to the imputed run) elsewhere.
  ChannelAwareDetector propagate = FittedChannel();
  propagate.set_non_finite_policy(ts::NonFinitePolicy::kPropagate);
  auto propagated = propagate.Score(0, poisoned);
  ASSERT_TRUE(propagated.ok());
  const int window = propagate.config().window;
  size_t nans = 0;
  for (size_t t = 0; t < propagated->size(); ++t) {
    if (std::isnan((*propagated)[t])) {
      ++nans;
      EXPECT_TRUE(t + static_cast<size_t>(window) > 50 &&
                  t <= 50 + static_cast<size_t>(window))
          << "NaN outside the contaminated window range at step " << t;
    } else {
      EXPECT_EQ((*propagated)[t], (*imputed)[t]) << "step " << t;
    }
  }
  EXPECT_GT(nans, 0u);

  // Training under kReject refuses a non-finite train split; kImpute
  // accepts it.
  auto workload = BreakWorkload();
  std::vector<std::vector<double>> train_values = workload[0].train.values();
  train_values[7][0] = std::numeric_limits<double>::infinity();
  workload[0].train = ts::TimeSeries(std::move(train_values));
  ChannelAwareDetector refit;
  EXPECT_FALSE(refit.Fit(workload).ok());
  ChannelAwareConfig impute_config;
  impute_config.non_finite_policy = ts::NonFinitePolicy::kImpute;
  ChannelAwareDetector refit_impute(impute_config);
  EXPECT_TRUE(refit_impute.Fit(workload).ok());
}

TEST(ChannelDetectorTest, SnapshotRoundTripIsBitExact) {
  ChannelAwareDetector detector = FittedChannel();
  const std::string path = ::testing::TempDir() + "/channel.model";
  ASSERT_TRUE(detector.Save(path).ok());

  auto loaded = ChannelAwareDetector::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded->fitted());
  EXPECT_EQ(loaded->num_services(), detector.num_services());
  EXPECT_EQ(loaded->num_features(), detector.num_features());
  EXPECT_EQ(loaded->fusion_gain(), detector.fusion_gain());
  EXPECT_EQ(loaded->ParameterCount(), detector.ParameterCount());

  const auto services = BreakWorkload();
  for (size_t s = 0; s < services.size(); ++s) {
    auto a = detector.Score(static_cast<int>(s), services[s].test);
    auto b = loaded->Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t t = 0; t < a->size(); ++t) {
      ASSERT_EQ((*a)[t], (*b)[t]) << "step " << t;
    }
  }
  std::remove(path.c_str());
}

TEST(ChannelDetectorTest, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/corrupt.model";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "BOGUS1\n";
  }
  auto bad_magic = ChannelAwareDetector::Load(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("MCHANv1"), std::string::npos)
      << bad_magic.status().message();

  // Truncation after the header must be caught, not crash or zero-fill.
  ChannelAwareDetector detector = FittedChannel();
  const std::string full = ::testing::TempDir() + "/full.model";
  ASSERT_TRUE(detector.Save(full).ok());
  std::ifstream in(full);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }
  EXPECT_FALSE(ChannelAwareDetector::Load(path).ok());
  std::remove(path.c_str());
  std::remove(full.c_str());
}

TEST(ChannelDetectorTest, ScoreUnseenZeroShotDetectsBreak) {
  ChannelAwareDetector detector = FittedChannel();
  // A third, never-fitted service with its own period and the same break
  // class: zero-shot scoring must catch it too.
  const ts::ServiceData unseen = BreakService(2, 77);
  auto scores = detector.ScoreUnseen(unseen);
  ASSERT_TRUE(scores.ok()) << scores.status().message();
  EXPECT_GE(RecallAtBudget(*scores, unseen.test.labels()), 0.7);
  // Deterministic: a second call is bit-identical.
  auto again = detector.ScoreUnseen(unseen);
  ASSERT_TRUE(again.ok());
  for (size_t t = 0; t < scores->size(); ++t) {
    ASSERT_EQ((*scores)[t], (*again)[t]);
  }
}

TEST(ChannelDetectorTest, OnboardServiceMatchesScoreUnseen) {
  ChannelAwareDetector detector = FittedChannel();
  const ts::ServiceData unseen = BreakService(2, 78);
  auto onboarded = detector.OnboardService(unseen.train);
  ASSERT_TRUE(onboarded.ok()) << onboarded.status().message();
  EXPECT_EQ((*onboarded)->num_services(), detector.num_services() + 1);
  // The original is untouched (copy-on-onboard).
  EXPECT_EQ(detector.num_services(), 2);

  // Onboard-then-Score and ScoreUnseen share BuildServiceState and the
  // frozen gain, so they must agree bit for bit.
  auto via_unseen = detector.ScoreUnseen(unseen);
  ASSERT_TRUE(via_unseen.ok());
  auto channel_copy =
      dynamic_cast<const ChannelAwareDetector*>(onboarded->get());
  ASSERT_NE(channel_copy, nullptr);
  auto via_onboard =
      const_cast<ChannelAwareDetector*>(channel_copy)
          ->Score(detector.num_services(), unseen.test);
  ASSERT_TRUE(via_onboard.ok());
  ASSERT_EQ(via_onboard->size(), via_unseen->size());
  for (size_t t = 0; t < via_onboard->size(); ++t) {
    ASSERT_EQ((*via_onboard)[t], (*via_unseen)[t]) << "step " << t;
  }
}

TEST(ChannelStreamingTest, StreamingMatchesBatchExactly) {
  ChannelAwareDetector detector = FittedChannel();
  const auto services = BreakWorkload();
  for (size_t s = 0; s < services.size(); ++s) {
    auto batch = detector.Score(static_cast<int>(s), services[s].test);
    ASSERT_TRUE(batch.ok());
    const std::vector<double> streamed =
        SequentialScores(detector, static_cast<int>(s), services[s].test);
    ASSERT_EQ(streamed.size(), batch->size());
    for (size_t t = 0; t < streamed.size(); ++t) {
      ASSERT_EQ(streamed[t], (*batch)[t]) << "step " << t;
    }
  }
}

TEST(ChannelModelIoTest, LoadServingModelDispatchesOnMagic) {
  const std::string channel_path = ::testing::TempDir() + "/disp_chan.model";
  const std::string mace_path = ::testing::TempDir() + "/disp_mace.model";
  ChannelAwareDetector channel_detector = FittedChannel();
  ASSERT_TRUE(channel_detector.Save(channel_path).ok());
  core::MaceConfig mace_config;
  mace_config.epochs = 1;
  core::MaceDetector mace_detector(mace_config);
  MACE_CHECK_OK(mace_detector.Fit(BreakWorkload()));
  ASSERT_TRUE(mace_detector.Save(mace_path).ok());

  auto channel_model = LoadServingModel(channel_path);
  ASSERT_TRUE(channel_model.ok()) << channel_model.status().message();
  EXPECT_EQ((*channel_model)->name(), "ChannelAware");
  EXPECT_EQ((*channel_model)->num_services(), 2);
  auto mace_model = LoadServingModel(mace_path);
  ASSERT_TRUE(mace_model.ok()) << mace_model.status().message();
  EXPECT_EQ((*mace_model)->name(), "MACE");

  const std::string garbage = ::testing::TempDir() + "/disp_garbage.model";
  {
    std::ofstream out(garbage, std::ios::trunc);
    out << "not a model\n";
  }
  auto unknown = LoadServingModel(garbage);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("MACEv1"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("MCHANv1"), std::string::npos);
  EXPECT_FALSE(LoadServingModel("/no/such/file.model").ok());

  std::remove(channel_path.c_str());
  std::remove(mace_path.c_str());
  std::remove(garbage.c_str());
}

// Zero-shot onboarding end to end through the serve frontend: a tenant
// whose service was NEVER in the fitted model gets a service slot from
// Onboard() and scores bit-identically to a sequential scorer on the
// extended model.
TEST(ChannelServeTest, FrontendOnboardServesNewTenantEndToEnd) {
  auto model = std::make_shared<ChannelAwareDetector>(FittedChannel());
  auto frontend = serve::ServeFrontend::Create(model);
  ASSERT_TRUE(frontend.ok());

  const ts::ServiceData unseen = BreakService(2, 79);
  auto service = (*frontend)->Onboard(unseen.train);
  ASSERT_TRUE(service.ok()) << service.status().message();
  EXPECT_EQ(*service, 2);
  EXPECT_EQ((*frontend)->model_generation(), 2u);

  // The frontend's onboarded copy is deterministic, so a locally
  // onboarded twin is the sequential ground truth.
  auto twin = model->OnboardService(unseen.train);
  ASSERT_TRUE(twin.ok());
  const std::vector<double> sequential =
      SequentialScores(**twin, *service, unseen.test);

  std::vector<double> served;
  for (size_t t = 0; t < unseen.test.length(); ++t) {
    auto batch = (*frontend)->Score("fresh-tenant", *service,
                                    unseen.test.values()[t]);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(batch->status.ok()) << batch->status.message();
    served.insert(served.end(), batch->scores.begin(), batch->scores.end());
  }
  auto tail = (*frontend)->Close("fresh-tenant", *service);
  ASSERT_TRUE(tail.ok());
  served.insert(served.end(), tail->begin(), tail->end());
  ASSERT_EQ(served.size(), sequential.size());
  for (size_t t = 0; t < served.size(); ++t) {
    ASSERT_EQ(served[t], sequential[t]) << "step " << t;
  }

  // Onboarding validates like ScoreUnseen: a too-short or wrong-width
  // train split is a descriptive error, not a new broken service.
  EXPECT_FALSE((*frontend)->Onboard(unseen.train.Slice(0, 8)).ok());
  EXPECT_EQ((*frontend)->model_generation(), 2u);
}

// Hot-swapping the served VARIANT (MACE -> ChannelAware) mid-stream: new
// sessions score on the channel model while pre-swap sessions drain on
// MACE — same contract as the same-variant reload test in serve_test.
TEST(ChannelServeTest, CrossVariantSwapServesNewSessionsOnNewVariant) {
  const auto services = BreakWorkload();
  core::MaceConfig mace_config;
  mace_config.epochs = 1;
  auto mace_model = std::make_shared<core::MaceDetector>(mace_config);
  MACE_CHECK_OK(mace_model->Fit(services));
  auto channel_model = std::make_shared<ChannelAwareDetector>(FittedChannel());

  auto frontend = serve::ServeFrontend::Create(mace_model);
  ASSERT_TRUE(frontend.ok());
  const std::vector<double> mace_sequential =
      SequentialScores(*mace_model, 0, services[0].test);
  const std::vector<double> channel_sequential =
      SequentialScores(*channel_model, 0, services[0].test);

  // Open a session on MACE, swap to the channel variant mid-stream.
  const size_t half = services[0].test.length() / 2;
  std::vector<double> old_scores;
  for (size_t t = 0; t < half; ++t) {
    auto batch =
        (*frontend)->Score("old", 0, services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    old_scores.insert(old_scores.end(), batch->scores.begin(),
                      batch->scores.end());
  }
  ASSERT_TRUE((*frontend)->Swap(channel_model).ok());

  // The pre-swap session keeps draining on the MACE model.
  for (size_t t = half; t < services[0].test.length(); ++t) {
    auto batch =
        (*frontend)->Score("old", 0, services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    old_scores.insert(old_scores.end(), batch->scores.begin(),
                      batch->scores.end());
  }
  auto old_tail = (*frontend)->Close("old", 0);
  ASSERT_TRUE(old_tail.ok());
  old_scores.insert(old_scores.end(), old_tail->begin(), old_tail->end());
  ASSERT_EQ(old_scores.size(), mace_sequential.size());
  for (size_t t = 0; t < old_scores.size(); ++t) {
    ASSERT_EQ(old_scores[t], mace_sequential[t]) << "step " << t;
  }

  // A session opened after the swap scores on the channel variant.
  std::vector<double> new_scores;
  for (size_t t = 0; t < services[0].test.length(); ++t) {
    auto batch =
        (*frontend)->Score("new", 0, services[0].test.values()[t]);
    ASSERT_TRUE(batch.ok());
    new_scores.insert(new_scores.end(), batch->scores.begin(),
                      batch->scores.end());
  }
  auto new_tail = (*frontend)->Close("new", 0);
  ASSERT_TRUE(new_tail.ok());
  new_scores.insert(new_scores.end(), new_tail->begin(), new_tail->end());
  ASSERT_EQ(new_scores.size(), channel_sequential.size());
  for (size_t t = 0; t < new_scores.size(); ++t) {
    ASSERT_EQ(new_scores[t], channel_sequential[t]) << "step " << t;
  }
}

}  // namespace
}  // namespace mace::channel
