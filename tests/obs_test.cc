#include "obs/metrics.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace mace::obs {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
  gauge.Set(7.0);  // last write wins over accumulated state
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.0);
}

TEST(HistogramTest, BucketSemantics) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // <= 1.0
  histogram.Observe(1.0);   // boundary lands in its own bucket (le=1.0)
  histogram.Observe(3.0);   // <= 4.0
  histogram.Observe(100.0); // +Inf
  const std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 104.5);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 104.5 / 4.0);
}

TEST(HistogramTest, ConcurrentObserversLoseNothing) {
  Histogram histogram(LatencyBuckets());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Observe(1e-4);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, histogram.Count());
}

TEST(RegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  Counter* a = Metrics().GetCounter("obs_test_counter_total", "help",
                                    {{"k", "v"}});
  Counter* b = Metrics().GetCounter("obs_test_counter_total", "help",
                                    {{"k", "v"}});
  Counter* c = Metrics().GetCounter("obs_test_counter_total", "help",
                                    {{"k", "other"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order is irrelevant: sorted on registration.
  Counter* d = Metrics().GetCounter("obs_test_counter_total", "help",
                                    {{"b", "2"}, {"a", "1"}});
  Counter* e = Metrics().GetCounter("obs_test_counter_total", "help",
                                    {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(d, e);
}

TEST(RegistryTest, InstrumentPointersStableAcrossFamilyGrowth) {
  // Regression: GetX pointers must survive later registrations in the same
  // family (instruments live in a deque, so growth never relocates them).
  Counter* first = Metrics().GetCounter("obs_test_growth_total", "help",
                                        {{"i", "first"}});
  first->Increment(5);
  for (int i = 0; i < 100; ++i) {
    Metrics()
        .GetCounter("obs_test_growth_total", "help",
                    {{"i", std::to_string(i)}})
        ->Increment();
  }
  EXPECT_EQ(first->Value(), 5u);
  EXPECT_EQ(first, Metrics().GetCounter("obs_test_growth_total", "help",
                                        {{"i", "first"}}));
}

TEST(RegistryDeathTest, HistogramBoundsMismatchAborts) {
  Metrics().GetHistogram("obs_test_bounds_seconds", "help", {}, {1.0, 2.0});
  EXPECT_DEATH(Metrics().GetHistogram("obs_test_bounds_seconds", "help", {},
                                      {1.0, 3.0}),
               "different bucket bounds");
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&seen, t] {
      for (int i = 0; i < 500; ++i) {
        seen[static_cast<size_t>(t)] = Metrics().GetCounter(
            "obs_test_race_total", "help", {{"i", std::to_string(i % 7)}});
        seen[static_cast<size_t>(t)]->Increment();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  uint64_t total = 0;
  for (const FamilySnapshot& family : Metrics().Collect()) {
    if (family.name != "obs_test_race_total") continue;
    EXPECT_EQ(family.instruments.size(), 7u);
    for (const InstrumentSnapshot& instrument : family.instruments) {
      total += static_cast<uint64_t>(instrument.value);
    }
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 500);
}

TEST(ExportTest, PrometheusGoldenOutput) {
  Metrics()
      .GetCounter("obs_golden_requests_total", "Requests served",
                  {{"service", "0"}})
      ->Increment(3);
  Metrics()
      .GetGauge("obs_golden_temperature", "Current temperature")
      ->Set(21.5);
  Metrics()
      .GetHistogram("obs_golden_latency_seconds", "Request latency", {},
                    {0.1, 1.0})
      ->Observe(0.05);
  Metrics()
      .GetHistogram("obs_golden_latency_seconds", "Request latency", {},
                    {0.1, 1.0})
      ->Observe(0.5);

  const std::string text = ExportPrometheus();
  EXPECT_NE(text.find("# HELP obs_golden_requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_golden_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_golden_requests_total{service=\"0\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_golden_temperature 21.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_golden_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_golden_latency_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(text.find("obs_golden_latency_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_golden_latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_golden_latency_seconds_count 2\n"),
            std::string::npos);
  // The logging subsystem's counters ride along in every export.
  EXPECT_NE(text.find("mace_log_records_total{level=\"warning\"}"),
            std::string::npos);
}

TEST(ExportTest, JsonContainsHistogramAggregates) {
  Metrics()
      .GetHistogram("obs_json_latency_seconds", "Latency", {}, {1.0})
      ->Observe(0.5);
  const std::string json = ExportJson();
  EXPECT_NE(json.find("\"obs_json_latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"le\":1,\"count\":1"), std::string::npos);
}

TEST(ExportTest, LogRecordsAreScrapeable) {
  const uint64_t warnings_before = GetLogRecordCount(LogLevel::kWarning);
  MACE_LOG(kWarning) << "obs_test warning record";
  EXPECT_EQ(GetLogRecordCount(LogLevel::kWarning), warnings_before + 1);
  bool found = false;
  for (const FamilySnapshot& family : Metrics().Collect()) {
    if (family.name != "mace_log_records_total") continue;
    for (const InstrumentSnapshot& instrument : family.instruments) {
      for (const auto& [key, value] : instrument.labels) {
        if (key == "level" && value == "warning") {
          found = true;
          EXPECT_GE(static_cast<uint64_t>(instrument.value),
                    warnings_before + 1);
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

// The trace recorder's drop counter (events discarded because the
// bounded detailed-trace buffer was full) must be scrapeable — a silent
// full buffer reads as "no spans happened", which is exactly the failure
// the counter exists to expose.
TEST(ExportTest, TraceDropCounterIsExported) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.Drain();
  const size_t dropped_before = recorder.dropped();
  TraceEvent event;
  event.name = "obs_test_drop_filler";
  for (size_t i = 0; i < TraceRecorder::kMaxEvents + 3; ++i) {
    recorder.Record(event);
  }
  EXPECT_GE(recorder.dropped(), dropped_before + 3);

  bool found = false;
  for (const FamilySnapshot& family : Metrics().Collect()) {
    if (family.name != "mace_trace_dropped_total") continue;
    found = true;
    EXPECT_EQ(family.type, InstrumentType::kCounter);
    ASSERT_EQ(family.instruments.size(), 1u);
    EXPECT_GE(family.instruments[0].value,
              static_cast<double>(dropped_before + 3));
  }
  EXPECT_TRUE(found);

  const std::string text = ExportPrometheus();
  EXPECT_NE(text.find("# TYPE mace_trace_dropped_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nmace_trace_dropped_total "), std::string::npos);
  const std::string json = ExportJson();
  EXPECT_NE(json.find("\"mace_trace_dropped_total\""), std::string::npos);

  recorder.Drain();
}

TEST(TraceTest, DetailedModeRecordsNestedSpans) {
  TraceRecorder& recorder = TraceRecorder::Get();
  const bool was_detailed = recorder.detailed();
  recorder.Drain();
  recorder.SetDetailed(true);
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  recorder.SetDetailed(was_detailed);
  const std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner span closes first and was one level deeper.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, events[1].depth + 1);
  EXPECT_GE(events[1].duration_seconds, events[0].duration_seconds);
}

TEST(TraceTest, AlwaysOnModeFeedsHistogramOnly) {
  TraceRecorder& recorder = TraceRecorder::Get();
  const bool was_detailed = recorder.detailed();
  recorder.SetDetailed(false);
  recorder.Drain();
  Histogram histogram(LatencyBuckets());
  { ScopedSpan span("quiet", &histogram); }
  recorder.SetDetailed(was_detailed);
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_TRUE(recorder.Drain().empty());
}

TEST(TraceTest, ChromeExportIsWellFormedArray) {
  TraceRecorder& recorder = TraceRecorder::Get();
  const bool was_detailed = recorder.detailed();
  recorder.Drain();
  recorder.SetDetailed(true);
  { ScopedSpan span("export_me"); }
  const std::string trace = recorder.ExportChromeTrace();
  recorder.SetDetailed(was_detailed);
  recorder.Drain();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"name\":\"export_me\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(trace[trace.size() - 2], ']');
}

}  // namespace
}  // namespace mace::obs
