#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace mace {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[1][2], 6.0);
}

TEST(CsvTest, ParsesWithoutHeader) {
  auto table = ParseCsv("1.5,2.5\n-3,4\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->columns.empty());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[0][0], 1.5);
  EXPECT_EQ(table->rows[1][0], -3.0);
}

TEST(CsvTest, HandlesCrLfAndBlankLines) {
  auto table = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, RejectsNonNumericCells) {
  auto result = ParseCsv("a\nhello\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, ScientificNotationParses) {
  auto table = ParseCsv("x\n1e-3\n2.5E+2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->rows[0][0], 1e-3);
  EXPECT_DOUBLE_EQ(table->rows[1][0], 250.0);
}

TEST(CsvTest, FormatRoundTrips) {
  CsvTable table;
  table.columns = {"p", "q"};
  table.rows = {{0.125, -7.0}, {3.5, 0.0}};
  auto parsed = ParseCsv(FormatCsv(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->columns, table.columns);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mace_csv_test.csv";
  CsvTable table;
  table.columns = {"v"};
  table.rows = {{1.0}, {2.0}, {3.0}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mace
