#include "ts/io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "ts/profiles.h"

namespace mace::ts {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TimeSeriesIoTest, RoundTripUnlabeled) {
  TimeSeries series({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const std::string path = TempPath("unlabeled.csv");
  ASSERT_TRUE(TimeSeriesToCsv(path, series).ok());
  auto loaded = TimeSeriesFromCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), series.values());
  EXPECT_FALSE(loaded->has_labels());
  std::remove(path.c_str());
}

TEST(TimeSeriesIoTest, RoundTripLabeled) {
  TimeSeries series({{1.0}, {2.0}, {3.0}}, {0, 1, 0});
  const std::string path = TempPath("labeled.csv");
  ASSERT_TRUE(TimeSeriesToCsv(path, series).ok());
  // Last column carries the label.
  auto loaded = TimeSeriesFromCsv(path, /*label_column=*/1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_features(), 1);
  EXPECT_EQ(loaded->labels(), series.labels());
  std::remove(path.c_str());
}

TEST(TimeSeriesIoTest, NegativeLabelColumnMeansLast) {
  TimeSeries series({{1.0, 7.0}, {2.0, 8.0}}, {1, 0});
  const std::string path = TempPath("neg_label.csv");
  ASSERT_TRUE(TimeSeriesToCsv(path, series).ok());
  auto loaded = TimeSeriesFromCsv(path, /*label_column=*/-1);
  ASSERT_TRUE(loaded.ok());
  // -1 means "no label column" by contract... the explicit last column:
  EXPECT_FALSE(loaded->has_labels());
  auto labeled = TimeSeriesFromCsv(path, 2);
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(labeled->labels(), series.labels());
  std::remove(path.c_str());
}

TEST(TimeSeriesIoTest, RejectsNonBinaryLabels) {
  const std::string path = TempPath("badlabel.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("f0,label\n1.0,2.0\n", f);
    fclose(f);
  }
  EXPECT_FALSE(TimeSeriesFromCsv(path, 1).ok());
  std::remove(path.c_str());
}

TEST(TimeSeriesIoTest, MissingFileIsError) {
  EXPECT_FALSE(TimeSeriesFromCsv("/no/such/file.csv").ok());
}

TEST(ServiceDirTest, RoundTrip) {
  DatasetProfile profile = SmdProfile();
  profile.num_services = 1;
  profile.train_length = 120;
  profile.test_length = 80;
  const Dataset dataset = GenerateDataset(profile);
  const ServiceData& service = dataset.services[0];

  const std::string dir = TempPath("svc_dir");
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveServiceDir(dir, service).ok());
  auto loaded = LoadServiceDir(dir, "restored");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "restored");
  EXPECT_EQ(loaded->train.length(), service.train.length());
  EXPECT_EQ(loaded->test.labels(), service.test.labels());
  EXPECT_NEAR(loaded->test.value(5, 0), service.test.value(5, 0), 1e-12);
  std::filesystem::remove_all(dir);
}

TEST(ServiceDirTest, SaveRequiresLabeledTest) {
  ServiceData service;
  service.train =
      TimeSeries(std::vector<std::vector<double>>{{1.0}, {2.0}});
  service.test = TimeSeries(
      std::vector<std::vector<double>>{{3.0}, {4.0}});  // unlabeled
  const std::string dir = TempPath("svc_dir2");
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(SaveServiceDir(dir, service).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mace::ts
