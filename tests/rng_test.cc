#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace mace {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(43);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

}  // namespace
}  // namespace mace
