#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace mace::tensor {
namespace {

Tensor Vec(std::vector<double> v, bool rg = false) {
  return Tensor::FromVector(std::move(v), rg);
}

TEST(OpsTest, AddSubMulDivElementwise) {
  Tensor a = Vec({1, 2, 3});
  Tensor b = Vec({4, 5, 6});
  EXPECT_EQ(Add(a, b).data(), (std::vector<double>{5, 7, 9}));
  EXPECT_EQ(Sub(a, b).data(), (std::vector<double>{-3, -3, -3}));
  EXPECT_EQ(Mul(a, b).data(), (std::vector<double>{4, 10, 18}));
  EXPECT_EQ(Div(b, a).data(), (std::vector<double>{4, 2.5, 2}));
}

TEST(OpsTest, OperatorsMatchFunctions) {
  Tensor a = Vec({2, 4});
  Tensor b = Vec({1, 2});
  EXPECT_EQ((a + b).data(), Add(a, b).data());
  EXPECT_EQ((a - b).data(), Sub(a, b).data());
  EXPECT_EQ((a * b).data(), Mul(a, b).data());
  EXPECT_EQ((a / b).data(), Div(a, b).data());
  EXPECT_EQ((-a).data(), (std::vector<double>{-2, -4}));
  EXPECT_EQ((a + 1.0).data(), (std::vector<double>{3, 5}));
  EXPECT_EQ((a * 0.5).data(), (std::vector<double>{1, 2}));
}

TEST(OpsTest, BroadcastRowVector) {
  Tensor matrix = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor row = Vec({10, 20, 30});
  Tensor out = Add(matrix, row);
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  EXPECT_EQ(out.data(), (std::vector<double>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, BroadcastColumnAgainstRow) {
  Tensor col = Tensor::FromVector({1, 2}, {2, 1});
  Tensor row = Tensor::FromVector({10, 20, 30}, {1, 3});
  Tensor out = Mul(col, row);
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  EXPECT_EQ(out.data(), (std::vector<double>{10, 20, 30, 20, 40, 60}));
}

TEST(OpsTest, MaximumMinimum) {
  Tensor a = Vec({1, 5, 3});
  Tensor b = Vec({2, 4, 3});
  EXPECT_EQ(Maximum(a, b).data(), (std::vector<double>{2, 5, 3}));
  EXPECT_EQ(Minimum(a, b).data(), (std::vector<double>{1, 4, 3}));
}

TEST(OpsTest, UnaryFunctions) {
  Tensor x = Vec({-1.0, 0.0, 2.0});
  EXPECT_EQ(Relu(x).data(), (std::vector<double>{0, 0, 2}));
  EXPECT_EQ(Abs(x).data(), (std::vector<double>{1, 0, 2}));
  EXPECT_EQ(Square(x).data(), (std::vector<double>{1, 0, 4}));
  EXPECT_NEAR(Tanh(x).data()[2], std::tanh(2.0), 1e-12);
  EXPECT_NEAR(Sigmoid(x).data()[0], 1.0 / (1.0 + std::exp(1.0)), 1e-12);
  EXPECT_NEAR(Exp(x).data()[2], std::exp(2.0), 1e-12);
  EXPECT_NEAR(Sqrt(Vec({4.0})).data()[0], 2.0, 1e-12);
}

TEST(OpsTest, LogClampsNonPositive) {
  Tensor x = Vec({-1.0, 0.0, 1.0});
  Tensor y = Log(x);
  const auto& v = y.data();
  EXPECT_TRUE(std::isfinite(v[0]));
  EXPECT_TRUE(std::isfinite(v[1]));
  EXPECT_DOUBLE_EQ(v[2], 0.0);
}

TEST(OpsTest, SignedPowMatchesOddPower) {
  Tensor x = Vec({-2.0, -0.5, 0.0, 1.5});
  Tensor y = SignedPow(x, 3.0);
  const auto& v = y.data();
  EXPECT_NEAR(v[0], -8.0, 1e-12);
  EXPECT_NEAR(v[1], -0.125, 1e-12);
  EXPECT_NEAR(v[2], 0.0, 1e-12);
  EXPECT_NEAR(v[3], 3.375, 1e-12);
}

TEST(OpsTest, SignedRootInvertsSignedPow) {
  Tensor x = Vec({-2.0, 0.5, 3.0});
  Tensor y = SignedRoot(SignedPow(x, 7.0), 7.0);
  const auto& v = y.data();
  EXPECT_NEAR(v[0], -2.0, 1e-9);
  EXPECT_NEAR(v[1], 0.5, 1e-9);
  EXPECT_NEAR(v[2], 3.0, 1e-9);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor r = Reshape(t, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.data(), t.data());
}

TEST(OpsTest, TransposeTwoD) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor tt = Transpose(t);
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_EQ(tt.data(), (std::vector<double>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, SliceMiddleAxis) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 8}, {2, 2, 2});
  Tensor s = Slice(t, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 1, 2}));
  EXPECT_EQ(s.data(), (std::vector<double>{3, 4, 7, 8}));
}

TEST(OpsTest, SliceNegativeAxis) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor s = Slice(t, -1, 0, 1);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  EXPECT_EQ(s.data(), (std::vector<double>{1, 3}));
}

TEST(OpsTest, ConcatAxisZeroAndOne) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({3, 4}, {1, 2});
  Tensor rows = Concat({a, b}, 0);
  EXPECT_EQ(rows.shape(), (Shape{2, 2}));
  EXPECT_EQ(rows.data(), (std::vector<double>{1, 2, 3, 4}));
  Tensor cols = Concat({a, b}, 1);
  EXPECT_EQ(cols.shape(), (Shape{1, 4}));
  EXPECT_EQ(cols.data(), (std::vector<double>{1, 2, 3, 4}));
}

TEST(OpsTest, SumMeanSumAxis) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_DOUBLE_EQ(Sum(t).item(), 21.0);
  EXPECT_DOUBLE_EQ(Mean(t).item(), 3.5);
  Tensor s0 = SumAxis(t, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0.data(), (std::vector<double>{5, 7, 9}));
  Tensor s1 = SumAxis(t, 1);
  EXPECT_EQ(s1.shape(), (Shape{2}));
  EXPECT_EQ(s1.data(), (std::vector<double>{6, 15}));
}

TEST(OpsTest, MatMulKnownProduct) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, {2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.data(), (std::vector<double>{19, 22, 43, 50}));
}

TEST(OpsTest, MatMulRectangular) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromVector({1, 0, 0, 1, 1, 1}, {3, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.data(), (std::vector<double>{4, 5, 10, 11}));
}

TEST(OpsTest, Conv1dIdentityKernel) {
  // Single channel, kernel [1] -> output equals input.
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 4});
  Tensor w = Tensor::FromVector({1.0}, {1, 1, 1});
  Tensor y = Conv1d(x, w, Tensor(), 1);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4}));
  EXPECT_EQ(y.data(), x.data());
}

TEST(OpsTest, Conv1dAveragingKernelWithStride) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {1, 1, 6});
  Tensor w = Tensor::FromVector({0.5, 0.5}, {1, 1, 2});
  Tensor y = Conv1d(x, w, Tensor(), 2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.data(), (std::vector<double>{1.5, 3.5, 5.5}));
}

TEST(OpsTest, Conv1dMultiChannelWithBias) {
  // Two input channels summed by a kernel of ones, plus bias 10.
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {1, 2, 3});
  Tensor w = Tensor::FromVector({1, 1}, {1, 2, 1});
  Tensor b = Tensor::FromVector({10.0}, {1});
  Tensor y = Conv1d(x, w, b, 1);
  EXPECT_EQ(y.data(), (std::vector<double>{15, 17, 19}));
}

TEST(OpsTest, Conv1dBatched) {
  Tensor x = Tensor::FromVector({1, 2, 3, 10, 20, 30}, {2, 1, 3});
  Tensor w = Tensor::FromVector({1, 1}, {1, 1, 2});
  Tensor y = Conv1d(x, w, Tensor(), 1);
  EXPECT_EQ(y.shape(), (Shape{2, 1, 2}));
  EXPECT_EQ(y.data(), (std::vector<double>{3, 5, 30, 50}));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x = Tensor::FromVector({1, 2, 3, -1, 0, 1}, {2, 3});
  Tensor y = Softmax(x);
  for (int r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += y.at({r, c});
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(y.at({0, 2}), y.at({0, 0}));
}

TEST(OpsTest, SoftmaxStableForLargeInputs) {
  Tensor x = Tensor::FromVector({1000.0, 1000.0}, {1, 2});
  Tensor y = Softmax(x);
  EXPECT_NEAR(y.data()[0], 0.5, 1e-12);
}

TEST(OpsTest, MseLossZeroForIdentical) {
  Tensor a = Vec({1, 2, 3});
  EXPECT_DOUBLE_EQ(MseLoss(a, a).item(), 0.0);
}

TEST(OpsTest, MseLossKnownValue) {
  Tensor a = Vec({0, 0});
  Tensor b = Vec({3, 4});
  EXPECT_DOUBLE_EQ(MseLoss(a, b).item(), 12.5);
}

}  // namespace
}  // namespace mace::tensor
