#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace mace::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LinearTest, OutputShapeAndParams) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Tensor x = Tensor::Zeros({2, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(1);
  Linear layer(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(layer.NumParameters(), 12);
}

TEST(LinearTest, ComputesAffineMap) {
  Rng rng(2);
  Linear layer(2, 1, &rng);
  // Overwrite weights with known values: y = 2 a - b + 0.5.
  layer.weight().node()->values = {2.0, -1.0};
  layer.bias().node()->values = {0.5};
  Tensor x = Tensor::FromVector({3.0, 4.0}, {1, 2});
  EXPECT_NEAR(layer.Forward(x).item(), 2.5, 1e-12);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(3);
  Linear layer(3, 2, &rng);
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 3});
  Sum(layer.Forward(x)).Backward();
  // dW[i][j] = x[i] for every output j.
  const auto& grad = layer.weight().grad();
  EXPECT_DOUBLE_EQ(grad[0], 1.0);
  EXPECT_DOUBLE_EQ(grad[2], 2.0);
  EXPECT_DOUBLE_EQ(grad[4], 3.0);
  for (double g : layer.bias().grad()) EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(Conv1dLayerTest, OutputShape) {
  Rng rng(4);
  Conv1dLayer layer(3, 5, /*kernel=*/4, /*stride=*/2, &rng);
  Tensor x = Tensor::Zeros({2, 3, 10});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 4}));
  EXPECT_EQ(layer.NumParameters(), 5 * 3 * 4 + 5);
}

TEST(ActivationTest, AllKinds) {
  Tensor x = Tensor::FromVector({-1.0, 2.0}, Shape{2});
  EXPECT_EQ(Activation(ActivationKind::kRelu).Forward(x).data(),
            (std::vector<double>{0, 2}));
  EXPECT_NEAR(Activation(ActivationKind::kTanh).Forward(x).data()[0],
              std::tanh(-1.0), 1e-12);
  EXPECT_NEAR(Activation(ActivationKind::kSigmoid).Forward(x).data()[1],
              1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_EQ(Activation(ActivationKind::kIdentity).Forward(x).data(),
            x.data());
}

TEST(SequentialTest, ChainsLayersAndCollectsParams) {
  Rng rng(5);
  Sequential seq;
  seq.Add(std::make_shared<Linear>(4, 8, &rng));
  seq.Add(std::make_shared<Activation>(ActivationKind::kTanh));
  seq.Add(std::make_shared<Linear>(8, 2, &rng));
  Tensor x = Tensor::Zeros({1, 4});
  EXPECT_EQ(seq.Forward(x).shape(), (Shape{1, 2}));
  EXPECT_EQ(seq.NumParameters(), (4 * 8 + 8) + (8 * 2 + 2));
}

TEST(LstmTest, OutputShapeAndParamCount) {
  Rng rng(6);
  Lstm lstm(3, 5, &rng);
  Tensor sequence = Tensor::Zeros({7, 3});
  Tensor out = lstm.Forward(sequence);
  EXPECT_EQ(out.shape(), (Shape{7, 5}));
  EXPECT_EQ(lstm.NumParameters(), 3 * 20 + 5 * 20 + 20);
}

TEST(LstmTest, ZeroInputZeroWeightsGivesZeroOutput) {
  Rng rng(7);
  Lstm lstm(2, 3, &rng);
  for (Tensor& p : lstm.Parameters()) {
    std::fill(p.node()->values.begin(), p.node()->values.end(), 0.0);
  }
  Tensor out = lstm.Forward(Tensor::Zeros({4, 2}));
  for (double v : out.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LstmTest, StatePropagatesAcrossSteps) {
  // With non-zero weights, a pulse at t=0 influences later outputs.
  Rng rng(8);
  Lstm lstm(1, 4, &rng);
  Tensor pulse = Tensor::FromVector({5.0, 0.0, 0.0, 0.0}, {4, 1});
  Tensor silent = Tensor::Zeros({4, 1});
  Tensor out_pulse = lstm.Forward(pulse);
  Tensor out_silent = lstm.Forward(silent);
  double diff_late = 0.0;
  for (int c = 0; c < 4; ++c) {
    diff_late += std::fabs(out_pulse.at({3, c}) - out_silent.at({3, c}));
  }
  EXPECT_GT(diff_late, 1e-6);
}

TEST(LstmTest, GradientsReachAllParameters) {
  Rng rng(9);
  Lstm lstm(2, 3, &rng);
  Tensor x = Tensor::FromVector({1, -1, 0.5, 0.2, -0.3, 0.9}, {3, 2});
  Sum(Square(lstm.Forward(x))).Backward();
  for (const Tensor& p : lstm.Parameters()) {
    double norm = 0.0;
    for (double g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0) << "parameter with zero gradient";
  }
}

TEST(SelfAttentionTest, OutputShape) {
  Rng rng(10);
  SelfAttention attn(6, &rng);
  Tensor x = Tensor::Zeros({5, 6});
  EXPECT_EQ(attn.Forward(x).shape(), (Shape{5, 6}));
  EXPECT_EQ(attn.NumParameters(), 3 * 36);
}

TEST(SelfAttentionTest, UniformInputsGiveUniformMix) {
  // Identical rows attend equally; output rows must be identical too.
  Rng rng(11);
  SelfAttention attn(4, &rng);
  std::vector<double> row = {0.5, -0.2, 0.8, 0.1};
  std::vector<double> data;
  for (int t = 0; t < 3; ++t) data.insert(data.end(), row.begin(), row.end());
  Tensor out = attn.Forward(Tensor::FromVector(data, {3, 4}));
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(out.at({0, c}), out.at({1, c}), 1e-9);
    EXPECT_NEAR(out.at({1, c}), out.at({2, c}), 1e-9);
  }
}

TEST(GlorotTest, BoundsScaleWithFanInOut) {
  Rng rng(12);
  Tensor small = GlorotUniform({100}, 1000, 1000, &rng);
  const double limit = std::sqrt(6.0 / 2000.0);
  for (double v : small.data()) {
    EXPECT_LE(std::fabs(v), limit);
  }
  EXPECT_TRUE(small.requires_grad());
}

}  // namespace
}  // namespace mace::nn
