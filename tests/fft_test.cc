#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mace::fft {
namespace {

/// Reference O(n^2) DFT for validation.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x, bool inverse) {
  const size_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    for (size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

std::vector<Complex> RandomSignal(size_t n, Rng* rng) {
  std::vector<Complex> x(n);
  for (auto& c : x) c = Complex(rng->Gaussian(), rng->Gaussian());
  return x;
}

TEST(FftTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(40));
}

class FftSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const size_t n = GetParam();
  Rng rng(n * 31 + 7);
  const std::vector<Complex> x = RandomSignal(n, &rng);
  std::vector<Complex> fast = x;
  Fft(&fast, /*inverse=*/false);
  const std::vector<Complex> slow = NaiveDft(x, false);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-8 * n);
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-8 * n);
  }
}

TEST_P(FftSizeTest, RoundTripsThroughInverse) {
  const size_t n = GetParam();
  Rng rng(n * 13 + 1);
  const std::vector<Complex> x = RandomSignal(n, &rng);
  std::vector<Complex> work = x;
  Fft(&work, false);
  Fft(&work, true);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(work[i].real(), x[i].real(), 1e-9 * n);
    EXPECT_NEAR(work[i].imag(), x[i].imag(), 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 27,
                                           40, 64, 100, 128, 255),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(FftTest, Radix2RejectsNonPowerSizes) {
  std::vector<Complex> x(40);
  EXPECT_DEATH(Radix2Fft(&x, false), "Radix2Fft");
}

TEST(FftTest, BluesteinMatchesRadix2OnPowers) {
  Rng rng(77);
  const std::vector<Complex> x = RandomSignal(64, &rng);
  std::vector<Complex> a = x, b = x;
  Radix2Fft(&a, false);
  BluesteinFft(&b, false);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-8);
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-8);
  }
}

TEST(FftTest, DftOfConstantIsDcOnly) {
  const std::vector<double> x(40, 2.0);
  const std::vector<Complex> spectrum = Dft(x);
  EXPECT_NEAR(spectrum[0].real(), 80.0, 1e-9);
  for (size_t j = 1; j < spectrum.size(); ++j) {
    EXPECT_NEAR(std::abs(spectrum[j]), 0.0, 1e-9);
  }
}

TEST(FftTest, InverseDftRealRecoversSignal) {
  Rng rng(5);
  std::vector<double> x(40);
  for (double& v : x) v = rng.Gaussian();
  const std::vector<double> rec = InverseDftReal(Dft(x));
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(rec[i], x[i], 1e-9);
  }
}

TEST(AmplitudeSpectrumTest, SinusoidPeaksAtItsBin) {
  const int n = 40;
  const int cycles = 5;
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 3.0 * std::sin(2.0 * std::numbers::pi * cycles * t / n);
  }
  const std::vector<double> amps = AmplitudeSpectrum(x);
  ASSERT_EQ(amps.size(), 21u);
  EXPECT_NEAR(amps[cycles], 3.0, 1e-9);
  for (size_t j = 0; j < amps.size(); ++j) {
    if (j != static_cast<size_t>(cycles)) {
      EXPECT_NEAR(amps[j], 0.0, 1e-9);
    }
  }
}

TEST(AmplitudeSpectrumTest, DcAmplitudeIsTheMean) {
  std::vector<double> x(16, 1.25);
  const std::vector<double> amps = AmplitudeSpectrum(x);
  EXPECT_NEAR(amps[0], 1.25, 1e-12);
}

TEST(AmplitudeSpectrumTest, NyquistBinForEvenLength) {
  // Alternating signal lands entirely in the Nyquist bin.
  std::vector<double> x(8);
  for (size_t t = 0; t < x.size(); ++t) x[t] = (t % 2 == 0) ? 1.0 : -1.0;
  const std::vector<double> amps = AmplitudeSpectrum(x);
  EXPECT_NEAR(amps[4], 1.0, 1e-12);
  EXPECT_NEAR(amps[1], 0.0, 1e-12);
}

TEST(AmplitudeSpectrumTest, ParsevalEnergyConsistency) {
  // Total signal power equals the sum of squared one-sided amplitudes / 2
  // (plus DC and Nyquist terms without the half).
  Rng rng(9);
  const int n = 64;
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  const std::vector<double> amps = AmplitudeSpectrum(x);
  double power = 0.0;
  for (double v : x) power += v * v;
  power /= n;
  double spectral = amps[0] * amps[0] + amps[n / 2] * amps[n / 2];
  for (size_t j = 1; j < amps.size() - 1; ++j) {
    spectral += amps[j] * amps[j] / 2.0;
  }
  EXPECT_NEAR(power, spectral, 1e-9);
}

}  // namespace
}  // namespace mace::fft
