// Pins the non-finite data policy end-to-end (DESIGN.md §11): the
// ts/sanitize primitives, Fit's commit-at-end rejection, batch Score
// under all three policies, the streaming scorer's sticky-NaN
// propagation and all-or-nothing PushMany, and the serve frontend's
// per-request policy override, contaminated flag and ingest counters.

#include "ts/sanitize.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/mace_detector.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "serve/frontend.h"
#include "ts/time_series.h"

namespace mace {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

ts::TimeSeries Sinusoids(size_t length, double phase) {
  std::vector<std::vector<double>> values;
  values.reserve(length);
  for (size_t t = 0; t < length; ++t) {
    const double x = static_cast<double>(t);
    values.push_back({std::sin(0.7 * x + phase),
                      std::cos(0.3 * x + 2.0 * phase) + 0.01 * x});
  }
  return ts::TimeSeries(std::move(values), {});
}

core::MaceConfig TinyConfig() {
  core::MaceConfig config;
  config.window = 8;
  config.train_stride = 2;
  config.score_stride = 4;
  config.num_bases = 3;
  config.time_kernel = 3;
  config.freq_kernel = 3;  // must be <= num_bases (amplitude columns)
  config.hidden_channels = 4;
  config.characterization_channels = 2;
  config.epochs = 1;
  return config;
}

std::vector<ts::ServiceData> CleanWorkload() {
  std::vector<ts::ServiceData> services(2);
  for (size_t s = 0; s < services.size(); ++s) {
    services[s].name = "svc" + std::to_string(s);
    services[s].train = Sinusoids(64, 0.5 * static_cast<double>(s + 1));
    services[s].test = Sinusoids(40, 0.5 * static_cast<double>(s + 1));
  }
  return services;
}

core::MaceDetector Fitted(core::MaceConfig config = TinyConfig()) {
  core::MaceDetector detector(config);
  MACE_CHECK_OK(detector.Fit(CleanWorkload()));
  return detector;
}

/// Streams the whole series and returns the per-step scores (Push
/// outputs concatenated with Finish), like batch Score would emit.
std::vector<double> StreamAll(core::StreamingScorer* scorer,
                              const ts::TimeSeries& series) {
  std::vector<double> scores;
  for (size_t t = 0; t < series.length(); ++t) {
    auto out = scorer->Push(series.values()[t]);
    MACE_CHECK_OK(out.status());
    scores.insert(scores.end(), out->begin(), out->end());
  }
  const std::vector<double> tail = scorer->Finish();
  scores.insert(scores.end(), tail.begin(), tail.end());
  return scores;
}

/// Bitwise equality that treats NaN == NaN (EXPECT_EQ on doubles cannot).
void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Sum of one counter family across all label sets (serve shards).
double CounterTotal(const std::string& name) {
  for (const auto& family : obs::Metrics().Collect()) {
    if (family.name != name) continue;
    double total = 0.0;
    for (const auto& instrument : family.instruments) {
      total += instrument.value;
    }
    return total;
  }
  return 0.0;
}

// -- ts/sanitize primitives ------------------------------------------------

TEST(NonFinitePolicyTest, NameParseRoundTrip) {
  for (const ts::NonFinitePolicy policy :
       {ts::NonFinitePolicy::kReject, ts::NonFinitePolicy::kImpute,
        ts::NonFinitePolicy::kPropagate}) {
    auto parsed = ts::ParseNonFinitePolicy(ts::NonFinitePolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  auto bad = ts::ParseNonFinitePolicy("drop");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("drop"), std::string::npos);
}

TEST(SanitizeSeriesTest, RejectNamesTheFirstOffendingValue) {
  ts::TimeSeries series = Sinusoids(10, 0.0);
  series.mutable_values()[3][1] = kNaN;
  series.mutable_values()[7][0] = kInf;
  auto result = ts::SanitizeSeries(series, ts::NonFinitePolicy::kReject);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nan at step 3, feature 1"),
            std::string::npos)
      << result.status().message();

  // Clean input passes through identical under every policy.
  const ts::TimeSeries clean = Sinusoids(10, 0.0);
  for (const ts::NonFinitePolicy policy :
       {ts::NonFinitePolicy::kReject, ts::NonFinitePolicy::kImpute,
        ts::NonFinitePolicy::kPropagate}) {
    ts::SanitizeStats stats;
    auto out = ts::SanitizeSeries(clean, policy, &stats);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->values(), clean.values());
    EXPECT_EQ(stats.contaminated_steps, 0u);
    EXPECT_EQ(stats.values_imputed, 0u);
  }
}

TEST(SanitizeSeriesTest, ImputeCarriesForwardAndMediansLeadingGaps) {
  ts::TimeSeries series(
      {{kNaN, 10.0}, {2.0, kNaN}, {kInf, 30.0}, {4.0, 40.0}}, {});
  ts::SanitizeStats stats;
  auto out = ts::SanitizeSeries(series, ts::NonFinitePolicy::kImpute, &stats);
  ASSERT_TRUE(out.ok());
  // Feature 0: leading gap takes the finite median of {2, 4} = 3; the
  // inf at step 2 carries the last finite value (2) forward.
  EXPECT_EQ(out->values()[0][0], 3.0);
  EXPECT_EQ(out->values()[2][0], 2.0);
  // Feature 1: step 1 carries step 0's value forward.
  EXPECT_EQ(out->values()[1][1], 10.0);
  EXPECT_EQ(stats.contaminated_steps, 3u);
  EXPECT_EQ(stats.values_imputed, 3u);

  // A feature with no finite value at all cannot be imputed.
  ts::TimeSeries hopeless({{kNaN, 1.0}, {kNaN, 2.0}}, {});
  auto fail = ts::SanitizeSeries(hopeless, ts::NonFinitePolicy::kImpute);
  ASSERT_FALSE(fail.ok());
  EXPECT_NE(fail.status().message().find("feature 0"), std::string::npos);
}

TEST(SanitizeSeriesTest, PropagateReturnsUntouchedValuesWithMask) {
  ts::TimeSeries series = Sinusoids(6, 0.0);
  series.mutable_values()[2][0] = kNaN;
  series.mutable_values()[4][1] = -kInf;
  ts::SanitizeStats stats;
  std::vector<uint8_t> mask;
  auto out = ts::SanitizeSeries(series, ts::NonFinitePolicy::kPropagate,
                                &stats, &mask);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isnan(out->values()[2][0]));
  EXPECT_EQ(mask, (std::vector<uint8_t>{0, 0, 1, 0, 1, 0}));
  EXPECT_EQ(stats.contaminated_steps, 2u);
  EXPECT_EQ(stats.values_imputed, 0u);
}

TEST(ObservationSanitizerTest, RejectLeavesRowAndStateUntouched) {
  ts::ObservationSanitizer sanitizer(ts::NonFinitePolicy::kReject,
                                     {100.0, 200.0});
  std::vector<double> clean = {1.0, 2.0};
  ASSERT_TRUE(sanitizer.Apply(&clean).ok());
  std::vector<double> bad = {kNaN, 3.0};
  auto result = sanitizer.Apply(&bad);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(std::isnan(bad[0])) << "reject must not rewrite the row";
  // The carry-forward state was not advanced by the rejected row.
  sanitizer.set_policy(ts::NonFinitePolicy::kImpute);
  std::vector<double> next = {kNaN, 4.0};
  ASSERT_TRUE(sanitizer.Apply(&next).ok());
  EXPECT_EQ(next[0], 100.0) << "set_policy resets carry-forward state";
}

TEST(ObservationSanitizerTest, ImputeUsesLastGoodThenFallback) {
  ts::ObservationSanitizer sanitizer(ts::NonFinitePolicy::kImpute,
                                     {100.0, 200.0});
  // No finite observation yet: the fallback row imputes.
  std::vector<double> first = {kNaN, 5.0};
  auto outcome = sanitizer.Apply(&first);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(first[0], 100.0);
  EXPECT_TRUE(outcome->contaminated);
  EXPECT_EQ(outcome->values_imputed, 1u);
  // Feature 1 now has 5.0 as its last good value.
  std::vector<double> second = {7.0, kInf};
  ASSERT_TRUE(sanitizer.Apply(&second).ok());
  EXPECT_EQ(second[1], 5.0);
  // Reset drops the stream's carry-forward state.
  sanitizer.Reset();
  std::vector<double> third = {kNaN, kNaN};
  ASSERT_TRUE(sanitizer.Apply(&third).ok());
  EXPECT_EQ(third[0], 100.0);
  EXPECT_EQ(third[1], 200.0);
  // Width mismatches are an error under every policy.
  std::vector<double> narrow = {1.0};
  EXPECT_FALSE(sanitizer.Apply(&narrow).ok());
}

// -- Fit -------------------------------------------------------------------

TEST(FitSanitizeTest, RejectedFitLeavesDetectorBitwiseUntouched) {
  core::MaceDetector detector = Fitted();
  const std::string before = testing::TempDir() + "/sanitize_before.mace";
  const std::string after = testing::TempDir() + "/sanitize_after.mace";
  ASSERT_TRUE(detector.Save(before).ok());

  std::vector<ts::ServiceData> poisoned = CleanWorkload();
  poisoned[1].train.mutable_values()[5][0] = kNaN;
  const Status status = detector.Fit(poisoned);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("svc1"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("nan at step 5, feature 0"),
            std::string::npos)
      << status.message();

  ASSERT_TRUE(detector.Save(after).ok());
  EXPECT_EQ(FileContents(before), FileContents(after))
      << "failed Fit mutated detector state";
}

TEST(FitSanitizeTest, PropagateDegradesToRejectForTraining) {
  core::MaceConfig config = TinyConfig();
  config.non_finite_policy = ts::NonFinitePolicy::kPropagate;
  core::MaceDetector detector(config);
  std::vector<ts::ServiceData> poisoned = CleanWorkload();
  poisoned[0].train.mutable_values()[0][1] = kInf;
  const Status status = detector.Fit(poisoned);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("degrades"), std::string::npos)
      << status.message();
}

TEST(FitSanitizeTest, ImputeFitMatchesManuallySanitizedFit) {
  std::vector<ts::ServiceData> poisoned = CleanWorkload();
  poisoned[0].train.mutable_values()[10][0] = kNaN;
  poisoned[1].train.mutable_values()[20][1] = kInf;

  core::MaceConfig config = TinyConfig();
  config.non_finite_policy = ts::NonFinitePolicy::kImpute;
  core::MaceDetector impute_fit(config);
  ASSERT_TRUE(impute_fit.Fit(poisoned).ok());

  std::vector<ts::ServiceData> sanitized = poisoned;
  for (auto& service : sanitized) {
    auto clean =
        ts::SanitizeSeries(service.train, ts::NonFinitePolicy::kImpute);
    ASSERT_TRUE(clean.ok());
    service.train = *std::move(clean);
  }
  core::MaceDetector manual_fit((TinyConfig()));
  ASSERT_TRUE(manual_fit.Fit(sanitized).ok());

  EXPECT_EQ(impute_fit.epoch_losses(), manual_fit.epoch_losses());
  const ts::TimeSeries probe = Sinusoids(30, 0.5);
  auto a = impute_fit.Score(0, probe);
  auto b = manual_fit.Score(0, probe);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitwiseEqual(*a, *b);
}

// -- Batch Score -----------------------------------------------------------

TEST(BatchScoreSanitizeTest, PoliciesOnContaminatedTestSeries) {
  core::MaceDetector detector = Fitted();
  ts::TimeSeries poisoned = Sinusoids(40, 0.5);
  const size_t bad_step = 17;
  poisoned.mutable_values()[bad_step][1] = kNaN;

  // kReject (the default): descriptive error.
  auto rejected = detector.Score(0, poisoned);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("nan at step 17, feature 1"),
            std::string::npos)
      << rejected.status().message();

  // kImpute: identical to scoring the manually imputed series.
  detector.set_non_finite_policy(ts::NonFinitePolicy::kImpute);
  auto imputed_scores = detector.Score(0, poisoned);
  ASSERT_TRUE(imputed_scores.ok());
  auto manual = ts::SanitizeSeries(poisoned, ts::NonFinitePolicy::kImpute);
  ASSERT_TRUE(manual.ok());
  detector.set_non_finite_policy(ts::NonFinitePolicy::kReject);
  auto manual_scores = detector.Score(0, *manual);
  ASSERT_TRUE(manual_scores.ok());
  ExpectBitwiseEqual(*imputed_scores, *manual_scores);
  for (double s : *imputed_scores) EXPECT_TRUE(std::isfinite(s));

  // kPropagate: NaN exactly on the steps of windows covering the
  // contaminated step; every other step matches the impute scores.
  detector.set_non_finite_policy(ts::NonFinitePolicy::kPropagate);
  auto propagated = detector.Score(0, poisoned);
  ASSERT_TRUE(propagated.ok());
  ASSERT_EQ(propagated->size(), poisoned.length());
  const size_t window = static_cast<size_t>(detector.config().window);
  std::vector<bool> expect_nan(poisoned.length(), false);
  for (size_t start : detector.ScoreWindowStarts(poisoned.length())) {
    if (start <= bad_step && bad_step < start + window) {
      for (size_t t = start; t < start + window; ++t) expect_nan[t] = true;
    }
  }
  ASSERT_TRUE(expect_nan[bad_step]);
  for (size_t t = 0; t < propagated->size(); ++t) {
    EXPECT_EQ(std::isnan((*propagated)[t]), expect_nan[t]) << "step " << t;
    if (!expect_nan[t]) {
      EXPECT_EQ((*propagated)[t], (*imputed_scores)[t]) << "step " << t;
    }
  }

  // Bit-determinism: the same call twice returns identical bits.
  auto again = detector.Score(0, poisoned);
  ASSERT_TRUE(again.ok());
  ExpectBitwiseEqual(*propagated, *again);
}

TEST(BatchScoreSanitizeTest, ScoreWindowRejectsNonFiniteRows) {
  core::MaceDetector detector = Fitted();
  const size_t window = static_cast<size_t>(detector.config().window);
  std::vector<std::vector<double>> rows(window, {0.1, 0.2});
  rows[2][0] = kNaN;
  auto single = detector.ScoreWindow(0, rows);
  ASSERT_FALSE(single.ok());
  EXPECT_NE(single.status().message().find("sanitize upstream"),
            std::string::npos)
      << single.status().message();
  auto batch = detector.ScoreWindowBatch(0, {rows});
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("sanitize upstream"),
            std::string::npos)
      << batch.status().message();
}

// -- Streaming -------------------------------------------------------------

TEST(StreamingSanitizeTest, RejectFailsThePushAndKeepsThePipeline) {
  core::MaceDetector detector = Fitted();
  auto scorer = core::StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  auto reference = core::StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(reference.ok());

  const ts::TimeSeries clean = Sinusoids(30, 0.5);
  std::vector<double> scores;
  std::vector<double> ref_scores;
  for (size_t t = 0; t < clean.length(); ++t) {
    if (t == 11) {
      auto rejected = scorer->Push({kNaN, 1.0});
      ASSERT_FALSE(rejected.ok());
      EXPECT_NE(rejected.status().message().find("reject"),
                std::string::npos)
          << rejected.status().message();
    }
    auto out = scorer->Push(clean.values()[t]);
    ASSERT_TRUE(out.ok());
    scores.insert(scores.end(), out->begin(), out->end());
    auto ref = reference->Push(clean.values()[t]);
    ASSERT_TRUE(ref.ok());
    ref_scores.insert(ref_scores.end(), ref->begin(), ref->end());
  }
  auto tail = scorer->Finish();
  scores.insert(scores.end(), tail.begin(), tail.end());
  auto ref_tail = reference->Finish();
  ref_scores.insert(ref_scores.end(), ref_tail.begin(), ref_tail.end());
  ExpectBitwiseEqual(scores, ref_scores);
  EXPECT_EQ(scorer->ingest_stats().contaminated_steps, 0u)
      << "a rejected observation was never ingested";
}

TEST(StreamingSanitizeTest, ImputeMatchesBatchScoreBitwise) {
  core::MaceDetector detector = Fitted();
  ts::TimeSeries poisoned = Sinusoids(40, 0.5);
  poisoned.mutable_values()[17][1] = kNaN;

  auto scorer = core::StreamingScorer::Create(
      &detector, 0, ts::NonFinitePolicy::kImpute);
  ASSERT_TRUE(scorer.ok());
  EXPECT_EQ(scorer->non_finite_policy(), ts::NonFinitePolicy::kImpute);
  const std::vector<double> streamed = StreamAll(&*scorer, poisoned);
  EXPECT_EQ(scorer->ingest_stats().contaminated_steps, 1u);
  EXPECT_EQ(scorer->ingest_stats().values_imputed, 1u);

  detector.set_non_finite_policy(ts::NonFinitePolicy::kImpute);
  auto batch = detector.Score(0, poisoned);
  ASSERT_TRUE(batch.ok());
  ExpectBitwiseEqual(streamed, *batch);
}

TEST(StreamingSanitizeTest, PropagateMatchesBatchStickyNaN) {
  core::MaceDetector detector = Fitted();
  ts::TimeSeries poisoned = Sinusoids(40, 0.5);
  poisoned.mutable_values()[17][1] = kNaN;

  auto scorer = core::StreamingScorer::Create(
      &detector, 0, ts::NonFinitePolicy::kPropagate);
  ASSERT_TRUE(scorer.ok());
  const std::vector<double> streamed = StreamAll(&*scorer, poisoned);

  detector.set_non_finite_policy(ts::NonFinitePolicy::kPropagate);
  auto batch = detector.Score(0, poisoned);
  ASSERT_TRUE(batch.ok());
  ExpectBitwiseEqual(streamed, *batch);
  EXPECT_TRUE(std::isnan(streamed[17]));
  // The contamination stays windowed: steps far enough away score finite.
  EXPECT_TRUE(std::isfinite(streamed.front()));
  EXPECT_TRUE(std::isfinite(streamed[2]));

  // Run-twice bit-determinism, NaN positions included.
  auto rerun = core::StreamingScorer::Create(
      &detector, 0, ts::NonFinitePolicy::kPropagate);
  ASSERT_TRUE(rerun.ok());
  ExpectBitwiseEqual(streamed, StreamAll(&*rerun, poisoned));
}

TEST(StreamingSanitizeTest, PushManyMatchesSequentialPush) {
  core::MaceDetector detector = Fitted();
  ts::TimeSeries poisoned = Sinusoids(40, 0.5);
  poisoned.mutable_values()[9][0] = kInf;
  poisoned.mutable_values()[25][1] = kNaN;

  for (const ts::NonFinitePolicy policy :
       {ts::NonFinitePolicy::kImpute, ts::NonFinitePolicy::kPropagate}) {
    SCOPED_TRACE(ts::NonFinitePolicyName(policy));
    auto sequential = core::StreamingScorer::Create(&detector, 0, policy);
    ASSERT_TRUE(sequential.ok());
    const std::vector<double> seq_scores =
        StreamAll(&*sequential, poisoned);

    auto batched = core::StreamingScorer::Create(&detector, 0, policy);
    ASSERT_TRUE(batched.ok());
    auto many = batched->PushMany(poisoned.values());
    ASSERT_TRUE(many.ok());
    std::vector<double> batch_scores;
    for (const auto& per_obs : *many) {
      batch_scores.insert(batch_scores.end(), per_obs.begin(),
                          per_obs.end());
    }
    const std::vector<double> tail = batched->Finish();
    batch_scores.insert(batch_scores.end(), tail.begin(), tail.end());
    ExpectBitwiseEqual(seq_scores, batch_scores);
    EXPECT_EQ(batched->ingest_stats().contaminated_steps,
              sequential->ingest_stats().contaminated_steps);
    EXPECT_EQ(batched->ingest_stats().values_imputed,
              sequential->ingest_stats().values_imputed);
  }
}

TEST(StreamingSanitizeTest, PushManyIsAllOrNothingUnderReject) {
  core::MaceDetector detector = Fitted();
  const ts::TimeSeries clean = Sinusoids(36, 0.5);
  const auto& rows = clean.values();
  const std::vector<std::vector<double>> first(rows.begin(),
                                               rows.begin() + 12);
  const std::vector<std::vector<double>> second(rows.begin() + 12,
                                                rows.end());
  std::vector<std::vector<double>> poisoned_batch(rows.begin() + 12,
                                                  rows.begin() + 20);
  poisoned_batch[3][0] = kNaN;

  auto scorer = core::StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(scorer.ok());
  auto reference = core::StreamingScorer::Create(&detector, 0);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(scorer->PushMany(first).ok());
  ASSERT_TRUE(reference->PushMany(first).ok());
  auto failed = scorer->PushMany(poisoned_batch);
  ASSERT_FALSE(failed.ok());

  auto rest = scorer->PushMany(second);
  auto ref_rest = reference->PushMany(second);
  ASSERT_TRUE(rest.ok());
  ASSERT_TRUE(ref_rest.ok());
  std::vector<double> scores;
  for (const auto& per_obs : *rest) {
    scores.insert(scores.end(), per_obs.begin(), per_obs.end());
  }
  std::vector<double> ref_scores;
  for (const auto& per_obs : *ref_rest) {
    ref_scores.insert(ref_scores.end(), per_obs.begin(), per_obs.end());
  }
  ExpectBitwiseEqual(scores, ref_scores);
  const std::vector<double> tail = scorer->Finish();
  const std::vector<double> ref_tail = reference->Finish();
  ExpectBitwiseEqual(tail, ref_tail);
  EXPECT_EQ(scorer->ingest_stats().contaminated_steps, 0u);
}

// -- Serve frontend --------------------------------------------------------

TEST(ServeSanitizeTest, PoliciesCountersAndContaminatedFlag) {
  auto model = std::make_shared<core::MaceDetector>(Fitted());
  serve::ServeConfig config;
  config.num_shards = 1;
  auto frontend = serve::ServeFrontend::Create(model, config);
  ASSERT_TRUE(frontend.ok());

  const double dropped0 = CounterTotal("mace_ingest_dropped_total");
  const double imputed0 = CounterTotal("mace_ingest_imputed_total");
  const double propagated0 = CounterTotal("mace_ingest_propagated_total");

  // Default policy (reject): the NaN observation fails its ScoreBatch.
  auto rejected = (*frontend)->Score("tenant-r", 0, {kNaN, 1.0});
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected->status.ok());
  EXPECT_FALSE(rejected->contaminated);
  EXPECT_EQ(CounterTotal("mace_ingest_dropped_total"), dropped0 + 1);

  // Per-request override opens tenant-i's session under impute.
  serve::RequestOptions impute;
  impute.non_finite_policy = ts::NonFinitePolicy::kImpute;
  auto imputed = (*frontend)->Score("tenant-i", 0, {kNaN, 1.0}, impute);
  ASSERT_TRUE(imputed.ok());
  EXPECT_TRUE(imputed->status.ok()) << imputed->status.message();
  EXPECT_TRUE(imputed->contaminated);
  EXPECT_EQ(CounterTotal("mace_ingest_imputed_total"), imputed0 + 1);
  // The session keeps its policy on later requests (no options needed).
  auto follow_up = (*frontend)->Score("tenant-i", 0, {kInf, kInf});
  ASSERT_TRUE(follow_up.ok());
  EXPECT_TRUE(follow_up->status.ok());
  EXPECT_TRUE(follow_up->contaminated);
  EXPECT_EQ(CounterTotal("mace_ingest_imputed_total"), imputed0 + 3);

  // Propagate: the batch succeeds, is flagged, and eventually emits NaN
  // scores for the contaminated window.
  serve::RequestOptions propagate;
  propagate.non_finite_policy = ts::NonFinitePolicy::kPropagate;
  const int window = model->config().window;
  bool saw_nan_score = false;
  for (int t = 0; t < 3 * window; ++t) {
    const bool poison = t == window + 1;
    std::vector<double> observation = poison
                                          ? std::vector<double>{kNaN, 1.0}
                                          : std::vector<double>{0.1, 0.2};
    auto batch = (*frontend)->Score("tenant-p", 0, std::move(observation),
                                    propagate);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(batch->status.ok()) << batch->status.message();
    EXPECT_EQ(batch->contaminated, poison);
    for (double s : batch->scores) saw_nan_score |= std::isnan(s);
  }
  auto tail = (*frontend)->Close("tenant-p", 0);
  ASSERT_TRUE(tail.ok());
  for (double s : *tail) saw_nan_score |= std::isnan(s);
  EXPECT_TRUE(saw_nan_score)
      << "propagate session never emitted a NaN score";
  EXPECT_EQ(CounterTotal("mace_ingest_propagated_total"), propagated0 + 1);
}

}  // namespace
}  // namespace mace
