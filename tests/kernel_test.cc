// Direct tests of the fused scoring kernel (src/kernel/): plan packing
// invariants, backend dispatch, batch-size invariance of both arms, and
// the scalar arm's bit-identity against the tensor op graph at the
// MaceModel level. Detector-level fused-vs-op-graph equivalence (all
// scoring surfaces, awkward shapes, denormals) lives in
// tests/score_fastpath_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/fused_plan_builder.h"
#include "core/mace_config.h"
#include "core/mace_model.h"
#include "kernel/fused_kernel.h"
#include "tensor/tensor.h"

namespace mace::kernel {
namespace {

using core::MaceConfig;
using core::MaceModel;
using core::ServiceTransforms;

/// A config whose stage 1 is a no-op (use_dualistic_time=false), so the
/// kernel's input windows feed MaceModel::Forward unchanged and the two
/// are directly comparable without the detector's private amplifier.
MaceConfig NoAmplifyConfig() {
  MaceConfig config;
  config.window = 24;
  config.num_bases = 9;
  config.use_dualistic_time = false;
  return config;
}

struct Harness {
  MaceConfig config;
  std::unique_ptr<MaceModel> model;
  ServiceTransforms transforms;
  FusedModelPlan model_plan;
  FusedServicePlan service_plan;
};

Harness MakeHarness(MaceConfig config, int features = 3) {
  Harness h;
  h.config = config;
  std::vector<int> bases;
  for (int b = 1; b <= config.num_bases; ++b) bases.push_back(b);
  h.transforms = core::MakeServiceTransforms(config.window, bases);
  Rng rng(123);
  const int cols = 2 * config.num_bases;
  h.model = std::make_unique<MaceModel>(config, features, cols, &rng);
  h.model_plan =
      core::BuildFusedModelPlan(config, features, cols, *h.model);
  h.service_plan = core::BuildFusedServicePlan(h.model_plan, h.transforms);
  return h;
}

/// `batch` deterministic pseudo-random windows, feature-major per window.
std::vector<double> MakeWindows(const Harness& h, int batch, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> windows(
      static_cast<size_t>(batch) * 3 * static_cast<size_t>(h.config.window));
  for (double& v : windows) v = rng.Uniform(-2.0, 2.0);
  return windows;
}

TEST(KernelDispatchTest, ResolveBackendSemantics) {
  EXPECT_EQ(ResolveBackend(Backend::kScalar), Backend::kScalar);
  const Backend expected =
      SimdSupported() ? Backend::kSimd : Backend::kScalar;
  EXPECT_EQ(ResolveBackend(Backend::kAuto), expected);
  // An explicit SIMD request degrades rather than faulting when the arm
  // is unavailable (scalar-only build or pre-AVX2 CPU).
  EXPECT_EQ(ResolveBackend(Backend::kSimd), expected);
}

TEST(KernelPlanTest, FinalizedPlansCarryConsistentDimensions) {
  const Harness h = MakeHarness(NoAmplifyConfig());
  const FusedModelPlan& plan = h.model_plan;
  ASSERT_TRUE(plan.valid);
  ASSERT_TRUE(h.service_plan.valid);
  EXPECT_EQ(plan.features, 3);
  EXPECT_EQ(plan.window, h.config.window);
  EXPECT_EQ(plan.num_bases, h.config.num_bases);
  EXPECT_EQ(plan.latent, plan.hidden_channels * plan.compressed);
  EXPECT_EQ(plan.decoder_hidden, 2 * plan.latent);
  // Padded extents are 8-lane (AVX-512) multiples covering the true
  // extents; 8 is also a multiple of the AVX2 arm's 4-lane width.
  for (const auto [padded, real] :
       {std::pair{plan.window_pad, plan.window},
        std::pair{plan.cols_pad, 2 * plan.num_bases},
        std::pair{plan.flat_pad, plan.features * plan.num_bases},
        std::pair{plan.hidden_pad, plan.decoder_hidden},
        std::pair{plan.h_pad, plan.hidden_channels}}) {
    EXPECT_EQ(padded % 8, 0);
    EXPECT_GE(padded, real);
    EXPECT_LT(padded - real, 8);
  }
}

TEST(KernelScalarTest, MatchesOpGraphForwardBitwise) {
  const Harness h = MakeHarness(NoAmplifyConfig());
  const int batch = 3;
  const std::vector<double> windows = MakeWindows(h, batch, 7);
  const auto m = static_cast<size_t>(3);
  const auto T = static_cast<size_t>(h.config.window);

  std::vector<double> errors(static_cast<size_t>(batch) * T);
  ScoreWindows(h.model_plan, h.service_plan, windows.data(), batch,
               errors.data(), Backend::kScalar);

  tensor::NoGradGuard no_grad;
  for (int b = 0; b < batch; ++b) {
    std::vector<double> data(
        windows.begin() + static_cast<ptrdiff_t>(b * m * T),
        windows.begin() + static_cast<ptrdiff_t>((b + 1) * m * T));
    MaceModel::Output out = h.model->Forward(
        h.transforms,
        tensor::Tensor::FromVector(std::move(data),
                                   tensor::Shape{3, h.config.window}),
        /*want_step_errors=*/true);
    ASSERT_EQ(out.step_errors.size(), T);
    for (size_t t = 0; t < T; ++t) {
      EXPECT_EQ(out.step_errors[t],
                errors[static_cast<size_t>(b) * T + t])
          << "window " << b << " step " << t;
    }
  }
}

class KernelBatchInvarianceTest : public ::testing::TestWithParam<Backend> {};

TEST_P(KernelBatchInvarianceTest, BatchCallEqualsSingleWindowCalls) {
  const Backend backend = GetParam();
  const Harness h = MakeHarness(NoAmplifyConfig());
  const int batch = 8;
  const std::vector<double> windows = MakeWindows(h, batch, 11);
  const auto per_window = static_cast<size_t>(3 * h.config.window);
  const auto T = static_cast<size_t>(h.config.window);

  std::vector<double> batched(static_cast<size_t>(batch) * T);
  ScoreWindows(h.model_plan, h.service_plan, windows.data(), batch,
               batched.data(), backend);
  for (int b = 0; b < batch; ++b) {
    std::vector<double> single(T);
    ScoreWindows(h.model_plan, h.service_plan,
                 windows.data() + static_cast<size_t>(b) * per_window, 1,
                 single.data(), backend);
    for (size_t t = 0; t < T; ++t) {
      EXPECT_EQ(single[t], batched[static_cast<size_t>(b) * T + t])
          << "window " << b << " step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arms, KernelBatchInvarianceTest,
                         ::testing::Values(Backend::kScalar, Backend::kAuto),
                         [](const auto& info) {
                           return info.param == Backend::kScalar ? "scalar"
                                                                 : "auto";
                         });

// The per-file compile-flag guarantee (src/kernel/CMakeLists.txt builds
// kernel_scalar.cc with AVX/FMA explicitly disabled even under
// MACE_NATIVE_ARCH): a forced-scalar call on a SIMD machine must run the
// genuinely vector-free object and agree with the dispatched arm within
// the SIMD tolerance, while the dispatched arm is self-consistent with
// an explicit kSimd request bit for bit.
TEST(KernelDispatchTest, ForcedScalarAgreesWithDispatchedArm) {
  const Harness h = MakeHarness(NoAmplifyConfig());
  const std::vector<double> windows = MakeWindows(h, 2, 19);
  const auto T = static_cast<size_t>(h.config.window);

  std::vector<double> scalar(2 * T);
  std::vector<double> dispatched(2 * T);
  ScoreWindows(h.model_plan, h.service_plan, windows.data(), 2,
               scalar.data(), Backend::kScalar);
  ScoreWindows(h.model_plan, h.service_plan, windows.data(), 2,
               dispatched.data(), Backend::kAuto);
  for (size_t i = 0; i < scalar.size(); ++i) {
    if (SimdSupported()) {
      EXPECT_NEAR(scalar[i], dispatched[i],
                  1e-11 + 1e-9 * std::abs(scalar[i]))
          << "slot " << i;
    } else {
      EXPECT_EQ(scalar[i], dispatched[i]) << "slot " << i;
    }
  }
  if (SimdSupported()) {
    std::vector<double> simd(2 * T);
    ScoreWindows(h.model_plan, h.service_plan, windows.data(), 2,
                 simd.data(), Backend::kSimd);
    for (size_t i = 0; i < simd.size(); ++i) {
      EXPECT_EQ(simd[i], dispatched[i]) << "slot " << i;
    }
  }
}

// Stage 1 enabled: the kernel's own amplifier must reproduce the full
// default config end to end on both arms (exercised against the op graph
// in score_fastpath_test; here we pin arm-vs-arm sanity on finite data).
TEST(KernelScalarTest, AmplifiedConfigProducesFiniteErrorsOnBothArms) {
  MaceConfig config;
  config.window = 20;
  config.num_bases = 8;
  const Harness h = MakeHarness(config);
  const std::vector<double> windows = MakeWindows(h, 4, 23);
  const auto T = static_cast<size_t>(h.config.window);
  for (const Backend backend : {Backend::kScalar, Backend::kAuto}) {
    std::vector<double> errors(4 * T, -1.0);
    ScoreWindows(h.model_plan, h.service_plan, windows.data(), 4,
                 errors.data(), backend);
    for (size_t i = 0; i < errors.size(); ++i) {
      EXPECT_TRUE(std::isfinite(errors[i])) << "slot " << i;
      EXPECT_GE(errors[i], 0.0) << "slot " << i;
    }
  }
}

}  // namespace
}  // namespace mace::kernel
