#include "fft/context_aware_dft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/fft.h"

namespace mace::fft {
namespace {

std::vector<double> Sinusoid(int n, double cycles, double amp,
                             double phase = 0.0) {
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = amp * std::sin(2.0 * std::numbers::pi * cycles * t / n + phase);
  }
  return x;
}

std::vector<int> AllBases(int window) {
  std::vector<int> bases;
  for (int j = 0; j <= window / 2; ++j) bases.push_back(j);
  return bases;
}

TEST(ContextAwareDftTest, FullBasisReconstructsExactly) {
  const int n = 40;
  Rng rng(3);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  ContextAwareDft dft(n, AllBases(n));
  const std::vector<double> rec = dft.Project(x);
  for (int t = 0; t < n; ++t) {
    EXPECT_NEAR(rec[t], x[t], 1e-9);
  }
}

TEST(ContextAwareDftTest, OddWindowFullBasisReconstructs) {
  const int n = 39;
  Rng rng(4);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  ContextAwareDft dft(n, AllBases(n));
  const std::vector<double> rec = dft.Project(x);
  for (int t = 0; t < n; ++t) {
    EXPECT_NEAR(rec[t], x[t], 1e-9);
  }
}

TEST(ContextAwareDftTest, ProjectionIsIdempotent) {
  const int n = 40;
  Rng rng(5);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  ContextAwareDft dft(n, {1, 3, 5, 8});
  const std::vector<double> once = dft.Project(x);
  const std::vector<double> twice = dft.Project(once);
  for (int t = 0; t < n; ++t) {
    EXPECT_NEAR(twice[t], once[t], 1e-9);
  }
}

TEST(ContextAwareDftTest, InBandSinusoidPassesThrough) {
  const int n = 40;
  const std::vector<double> x = Sinusoid(n, 5, 2.0, 0.7);
  ContextAwareDft dft(n, {5});
  const std::vector<double> rec = dft.Project(x);
  for (int t = 0; t < n; ++t) {
    EXPECT_NEAR(rec[t], x[t], 1e-9);
  }
}

TEST(ContextAwareDftTest, OutOfBandSinusoidIsRemoved) {
  const int n = 40;
  const std::vector<double> x = Sinusoid(n, 7, 2.0);
  ContextAwareDft dft(n, {5});
  const std::vector<double> rec = dft.Project(x);
  for (int t = 0; t < n; ++t) {
    EXPECT_NEAR(rec[t], 0.0, 1e-9);
  }
}

TEST(ContextAwareDftTest, AmplitudeOfKnownSinusoid) {
  const int n = 40;
  const std::vector<double> x = Sinusoid(n, 3, 1.5);
  ContextAwareDft dft(n, {3});
  std::vector<double> re, im;
  dft.Forward(x, &re, &im);
  const std::vector<double> amps = dft.Amplitudes(re, im);
  ASSERT_EQ(amps.size(), 1u);
  EXPECT_NEAR(amps[0], 1.5, 1e-9);
}

TEST(ContextAwareDftTest, MatricesMatchDirectComputation) {
  const int n = 24;
  Rng rng(7);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  const std::vector<int> bases = {1, 2, 5, 9};
  ContextAwareDft dft(n, bases);

  std::vector<double> re, im;
  dft.Forward(x, &re, &im);

  tensor::Tensor xt = tensor::Tensor::FromVector(x, {n, 1});
  tensor::Tensor coeffs = MatMul(dft.ForwardMatrix(), xt);  // [2k, 1]
  const int k = dft.num_bases();
  for (int b = 0; b < k; ++b) {
    EXPECT_NEAR(coeffs.at({b, 0}), re[static_cast<size_t>(b)], 1e-9);
    EXPECT_NEAR(coeffs.at({k + b, 0}), im[static_cast<size_t>(b)], 1e-9);
  }

  tensor::Tensor rec = MatMul(dft.InverseMatrix(), coeffs);  // [n, 1]
  const std::vector<double> direct = dft.Inverse(re, im);
  for (int t = 0; t < n; ++t) {
    EXPECT_NEAR(rec.at({t, 0}), direct[static_cast<size_t>(t)], 1e-9);
  }
}

TEST(ContextAwareDftTest, ProjectionReducesEnergy) {
  // An orthogonal projector never increases the L2 norm.
  const int n = 40;
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.Gaussian();
    ContextAwareDft dft(n, {2, 4, 6});
    const std::vector<double> rec = dft.Project(x);
    double ex = 0.0, er = 0.0;
    for (int t = 0; t < n; ++t) {
      ex += x[t] * x[t];
      er += rec[t] * rec[t];
    }
    EXPECT_LE(er, ex + 1e-9);
  }
}

TEST(ContextAwareDftTest, ResidualOrthogonalToProjection) {
  const int n = 40;
  Rng rng(13);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  ContextAwareDft dft(n, {1, 4, 9, 16});
  const std::vector<double> proj = dft.Project(x);
  double dot = 0.0;
  for (int t = 0; t < n; ++t) dot += proj[t] * (x[t] - proj[t]);
  EXPECT_NEAR(dot, 0.0, 1e-8);
}

TEST(ContextAwareDftTest, FrequencyOfMatchesBaseIndex) {
  ContextAwareDft dft(40, {0, 5, 20});
  EXPECT_NEAR(dft.FrequencyOf(0), 0.0, 1e-12);
  EXPECT_NEAR(dft.FrequencyOf(1), 2.0 * std::numbers::pi * 5 / 40, 1e-12);
  EXPECT_NEAR(dft.FrequencyOf(2), std::numbers::pi, 1e-12);
}

TEST(ContextAwareDftDeathTest, RejectsDuplicateAndOutOfRangeBases) {
  EXPECT_DEATH(ContextAwareDft(40, {1, 1}), "duplicate");
  EXPECT_DEATH(ContextAwareDft(40, {21}), "outside");
  EXPECT_DEATH(ContextAwareDft(40, {-1}), "outside");
}

}  // namespace
}  // namespace mace::fft
